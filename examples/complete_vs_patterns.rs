//! Patterns vs complete reasoning (paper §4's discussion).
//!
//! Runs three engines over the same schemas:
//!
//! 1. the **patterns** (fast, incomplete),
//! 2. the **DL tableau** over the [JF05]-style translation (complete on the
//!    mappable fragment, exponential),
//! 3. the **bounded model finder** (complete within bounds, covers every
//!    constraint including rings/values).
//!
//! and prints agreement plus wall-clock cost — the "both approaches
//! complement each other" conclusion, measured.
//!
//! Run with `cargo run --release -p orm-examples --example complete_vs_patterns`.

use orm_core::{fixtures, validate};
use orm_dl::{translate, DlOutcome};
use orm_gen::{faults::FaultKind, generate_clean, GenConfig};
use orm_reasoner::{concept_satisfiability, strong_satisfiability, Bounds, Outcome};
use std::time::Instant;

fn main() {
    println!(
        "{:<28} {:>9} {:>11} {:>9} {:>11} {:>9} {:>11}",
        "schema", "patterns", "time", "DL", "time", "finder", "time"
    );

    // The paper's figures first.
    for fixture in fixtures::all() {
        run_row(fixture.id, &fixture.schema);
    }

    // Then synthetic clean/faulty pairs of growing size.
    for size in [8usize, 12, 16] {
        let clean = generate_clean(&GenConfig::sized(1, size));
        run_row(&format!("clean(size≈{size})"), &clean);
        let faulty = orm_gen::faults::inject(&clean, FaultKind::P7, 0);
        run_row(&format!("faulty(size≈{size})"), &faulty);
    }

    println!(
        "\nReading: `unsat` means some role/type is provably unpopulatable; `unsat≤b` \
         is the bounded finder's refutation within its domain bounds (genuine for the \
         figure-sized contradictions, a bound artifact on larger random schemas); \
         `sat*` marks DL verdicts on schemas with constructs outside the DL fragment \
         (rings, values, strict subtyping — the DLR gap of paper footnote 10); \
         `budget` means the engine's resource limit struck first. The growth of the \
         DL/finder columns against the flat patterns column is the paper's §4 claim."
    );
}

fn run_row(name: &str, schema: &orm_model::Schema) {
    let t0 = Instant::now();
    let report = validate(schema);
    let patterns_verdict = if report.has_unsat() { "unsat" } else { "sat" };
    let patterns_time = t0.elapsed();

    let t0 = Instant::now();
    let translation = translate(schema);
    let mut dl_unsat = false;
    let mut dl_budget = false;
    for (r, _) in schema.roles() {
        match translation.role_satisfiable(r, 200_000) {
            DlOutcome::Unsat => dl_unsat = true,
            DlOutcome::ResourceLimit => dl_budget = true,
            DlOutcome::Sat => {}
        }
    }
    for (t, _) in schema.object_types() {
        match translation.type_satisfiable(t, 200_000) {
            DlOutcome::Unsat => dl_unsat = true,
            DlOutcome::ResourceLimit => dl_budget = true,
            DlOutcome::Sat => {}
        }
    }
    let dl_verdict = if dl_unsat {
        "unsat"
    } else if dl_budget {
        "budget"
    } else if translation.unmapped.is_empty() {
        "sat"
    } else {
        "sat*"
    };
    let dl_time = t0.elapsed();

    // The paper: strong satisfiability when the schema has roles, concept
    // satisfiability otherwise.
    let t0 = Instant::now();
    let outcome = if schema.fact_type_count() > 0 {
        strong_satisfiability(schema, Bounds::default())
    } else {
        concept_satisfiability(schema, Bounds::default())
    };
    let finder_verdict = match outcome {
        Outcome::Satisfiable(_) => "sat",
        Outcome::UnsatWithinBounds => "unsat≤b",
        Outcome::BudgetExhausted => "budget",
    };
    let finder_time = t0.elapsed();

    println!(
        "{:<28} {:>9} {:>11.2?} {:>9} {:>11.2?} {:>9} {:>11.2?}",
        name, patterns_verdict, patterns_time, dl_verdict, dl_time, finder_verdict, finder_time
    );
}
