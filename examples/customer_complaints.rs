//! The CCFORM scenario (paper §4): a customer-complaint ontology built by
//! legal domain experts, validated interactively while mistakes are made
//! and corrected.
//!
//! The original CCFORM ontology (built by "10s of lawyers") is not
//! published; this synthetic reconstruction exercises the same workflow:
//! a realistic complaint-domain schema, three lawyer-style mistakes of the
//! kinds the paper reports the patterns catching, and the edit→revalidate
//! loop DogmaModeler supported.
//!
//! Run with `cargo run -p orm-examples --example customer_complaints`.

use orm_core::{EditHint, Validator, ValidatorSettings};
use orm_examples::{banner, show_report};
use orm_model::{ConstraintKind, RoleSeq, SchemaBuilder, ValueConstraint};

fn main() {
    banner("CCFORM-style customer complaint ontology");
    let mut b = SchemaBuilder::new("ccform");

    // Core complaint domain.
    let party = b.entity_type("Party").expect("fresh");
    let complainant = b.entity_type("Complainant").expect("fresh");
    let recipient = b.entity_type("Recipient").expect("fresh");
    let complaint = b.entity_type("Complaint").expect("fresh");
    let resolution = b.entity_type("Resolution").expect("fresh");
    let severity = b
        .value_type("Severity", Some(ValueConstraint::enumeration(["low", "medium", "high"])))
        .expect("fresh");
    b.subtype(complainant, party).expect("link");
    b.subtype(recipient, party).expect("link");

    let files = b
        .fact_type_full(
            "files",
            (complainant, Some("fil_c")),
            (complaint, Some("fil_x")),
            Some("files"),
        )
        .expect("fresh");
    let against = b
        .fact_type_full(
            "against",
            (complaint, Some("agn_x")),
            (recipient, Some("agn_r")),
            Some("is against"),
        )
        .expect("fresh");
    let rated = b
        .fact_type_full(
            "rated",
            (complaint, Some("rat_x")),
            (severity, Some("rat_s")),
            Some("is rated"),
        )
        .expect("fresh");
    let resolves = b
        .fact_type_full(
            "resolves",
            (resolution, Some("res_r")),
            (complaint, Some("res_x")),
            Some("resolves"),
        )
        .expect("fresh");

    let fil_x = b.schema().fact_type(files).second();
    let agn_x = b.schema().fact_type(against).first();
    let rat_x = b.schema().fact_type(rated).first();
    let rat_s = b.schema().fact_type(rated).second();
    let res_x = b.schema().fact_type(resolves).second();

    // Sound business rules: every complaint is filed by someone, targets
    // someone, and carries exactly one severity rating.
    b.mandatory(fil_x).expect("ok");
    b.mandatory(agn_x).expect("ok");
    b.mandatory(rat_x).expect("ok");
    b.unique([fil_x]).expect("ok");
    b.unique([rat_x]).expect("ok");
    b.unique([res_x]).expect("ok");
    // Only rated complaints can be resolved.
    b.subset(RoleSeq::single(res_x), RoleSeq::single(rat_x)).expect("ok");

    let mut schema = b.finish();
    let validator = Validator::with_settings(ValidatorSettings::patterns_only().with_propagation());

    banner("Initial validation");
    let report = validator.validate(&schema);
    show_report(&schema, &report);
    assert!(!report.has_unsat());

    // ------------------------------------------------------------------
    // Lawyer mistake 1: "private and corporate complainants are different
    // things" + "a corporate person is both a Party and an Organization".
    // Organization is introduced as a new top-level type: Pattern 1.
    // ------------------------------------------------------------------
    banner("Edit 1: CorporateComplainant under Complainant AND Organization");
    let mut edit = SchemaBuilder::from_schema(schema);
    let organization = edit.entity_type("Organization").expect("fresh");
    let corporate = edit.entity_type("CorporateComplainant").expect("fresh");
    edit.subtype(corporate, complainant).expect("link");
    edit.subtype(corporate, organization).expect("link");
    schema = edit.finish();
    let report = validator.validate_incremental(&schema, &EditHint::Subtyping);
    show_report(&schema, &report);
    assert!(report.has_unsat(), "Pattern 1 should flag CorporateComplainant");

    banner("Fix 1: make Organization a kind of Party");
    schema.add_subtype(organization, party).expect("link");
    let report = validator.validate_incremental(&schema, &EditHint::Subtyping);
    show_report(&schema, &report);
    assert!(!report.has_unsat());

    // ------------------------------------------------------------------
    // Lawyer mistake 2: "a complaint is either rated or resolved, never
    // both" — an exclusion constraint that contradicts the mandatory
    // rating rule (Pattern 3) and the resolves ⊆ rated subset (Pattern 6).
    // ------------------------------------------------------------------
    banner("Edit 2: exclusion between the rated and resolved roles");
    let exclusion =
        schema.add_constraint(orm_model::Constraint::SetComparison(orm_model::SetComparison {
            kind: orm_model::SetComparisonKind::Exclusion,
            args: vec![RoleSeq::single(rat_x), RoleSeq::single(res_x)],
        }));
    let report = validator
        .validate_incremental(&schema, &EditHint::Constraint(ConstraintKind::SetComparison));
    show_report(&schema, &report);
    assert!(report.has_unsat(), "Patterns 3/6 should flag the exclusion");

    banner("Fix 2: retract the exclusion");
    schema.remove_constraint(exclusion);
    let report = validator
        .validate_incremental(&schema, &EditHint::Constraint(ConstraintKind::SetComparison));
    show_report(&schema, &report);
    assert!(!report.has_unsat());

    // ------------------------------------------------------------------
    // Lawyer mistake 3: "every severity level must be used by at least
    // five complaints" — FC(5-) on the severity side with only 3 values…
    // wait, that is fine; the mistake is demanding each complaint to carry
    // five distinct severities: FC(5-) on rat_x vs 3 severity values
    // (Pattern 4) and vs the uniqueness of rat_x (Pattern 7).
    // ------------------------------------------------------------------
    banner("Edit 3: every complaint must carry at least 5 ratings");
    let fc = schema.add_constraint(orm_model::Constraint::Frequency(orm_model::Frequency {
        roles: vec![rat_x],
        min: 5,
        max: None,
    }));
    let report =
        validator.validate_incremental(&schema, &EditHint::Constraint(ConstraintKind::Frequency));
    show_report(&schema, &report);
    assert!(report.has_unsat(), "Patterns 4/7 should flag the frequency");

    banner("Fix 3: the rule belonged on the severity side, as FC(1-)");
    schema.remove_constraint(fc);
    schema.add_constraint(orm_model::Constraint::Frequency(orm_model::Frequency {
        roles: vec![rat_s],
        min: 1,
        max: None,
    }));
    let report =
        validator.validate_incremental(&schema, &EditHint::Constraint(ConstraintKind::Frequency));
    show_report(&schema, &report);
    assert!(!report.has_unsat());

    banner("Final ontology");
    println!("{}", orm_syntax::print(&schema));
    println!(
        "The interactive loop caught {} mistakes before any data was collected — the \
         paper's §4 lesson.",
        3
    );
}
