//! A DogmaModeler-style command line validator (paper §4, Fig. 15).
//!
//! Usage:
//!
//! ```text
//! cargo run -p orm-examples --example validator_cli -- [FILE.orm] \
//!     [--all|--patterns|--lints] [--without P6] [--with Fr5] [--propagate] \
//!     [--verbalize]
//! ```
//!
//! Without a file argument, a built-in demo schema (the paper's Fig. 1) is
//! validated. The `--with`/`--without` flags are the Fig. 15 checkboxes.

use orm_core::{CheckCode, Validator, ValidatorSettings};
use orm_examples::show_report;
use orm_syntax::{parse, print, verbalize};
use std::process::ExitCode;

fn parse_code(name: &str) -> Option<CheckCode> {
    CheckCode::all().find(|c| format!("{c:?}").eq_ignore_ascii_case(name))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut file: Option<String> = None;
    let mut settings = ValidatorSettings::patterns_only();
    let mut do_verbalize = false;
    let mut show_source = false;

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--all" => settings = ValidatorSettings::all(),
            "--patterns" => settings = ValidatorSettings::patterns_only(),
            "--lints" => settings = ValidatorSettings::lints_only(),
            "--propagate" => settings = settings.with_propagation(),
            "--verbalize" => do_verbalize = true,
            "--print" => show_source = true,
            "--with" | "--without" => {
                let flag = args[i].clone();
                i += 1;
                let Some(name) = args.get(i) else {
                    eprintln!("{flag} needs a check code (e.g. P6, Fr5, S4)");
                    return ExitCode::from(2);
                };
                let Some(code) = parse_code(name) else {
                    eprintln!("unknown check code `{name}`");
                    return ExitCode::from(2);
                };
                settings =
                    if flag == "--with" { settings.with(code) } else { settings.without(code) };
            }
            other if !other.starts_with("--") => file = Some(other.to_owned()),
            other => {
                eprintln!("unknown flag `{other}`");
                return ExitCode::from(2);
            }
        }
        i += 1;
    }

    let source = match &file {
        Some(path) => match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("cannot read `{path}`: {e}");
                return ExitCode::from(2);
            }
        },
        None => DEMO.to_owned(),
    };

    let schema = match parse(&source) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("parse error: {e}");
            return ExitCode::from(2);
        }
    };

    println!(
        "validating `{}` with checks: {}",
        schema.name(),
        settings.enabled().map(|c| format!("{c:?}")).collect::<Vec<_>>().join(", ")
    );
    if show_source {
        println!("\n{}", print(&schema));
    }
    if do_verbalize {
        println!("\n{}\n", verbalize(&schema));
    }

    let validator = Validator::with_settings(settings);
    let report = validator.validate(&schema);
    show_report(&schema, &report);

    if report.has_unsat() {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}

const DEMO: &str = r#"
schema fig1_demo {
  entity Person;
  entity Student subtype-of Person;
  entity Employee subtype-of Person;
  entity PhdStudent subtype-of Student, Employee;
  exclusive { Student, Employee };
}
"#;
