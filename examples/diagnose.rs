//! Diagnosis walkthrough: from a bare "unsatisfiable" verdict to the
//! named, verbalized constraints that cause it — the paper's interactive
//! scenario with the explanation pipeline of `docs/EXPLANATIONS.md`.
//!
//! Run with `cargo run -p orm-examples --example diagnose`.

use orm_examples::banner;
use orm_model::SchemaBuilder;
use orm_reasoner::{diagnose, diagnose_with, InteractiveSession};

const BUDGET: u64 = 500_000;

fn main() {
    banner("Fig. 1: the PhD student paradox, diagnosed");

    let mut b = SchemaBuilder::new("university");
    let person = b.entity_type("Person").expect("fresh name");
    let student = b.entity_type("Student").expect("fresh name");
    let employee = b.entity_type("Employee").expect("fresh name");
    let phd = b.entity_type("PhdStudent").expect("fresh name");
    b.subtype(student, person).expect("valid link");
    b.subtype(employee, person).expect("valid link");
    b.subtype(phd, student).expect("valid link");
    b.subtype(phd, employee).expect("valid link");
    b.exclusive_types([student, employee]).expect("valid constraint");
    let schema = b.finish();

    // One call: sweep, extract a minimal unsat core per doomed element,
    // map it to ORM constraints, verbalize.
    let diagnoses = diagnose(&schema, BUDGET);
    assert_eq!(diagnoses.len(), 1, "exactly PhdStudent is doomed");
    for d in &diagnoses {
        println!("{d}");
    }

    banner("Fig. 4a: a doomed role, diagnosed mid-session");

    // The same pipeline over a live editing session: the modeler adds the
    // two clashing constraints interactively, and the warm shards carry
    // both the verdicts and the cores across edits.
    let mut b = SchemaBuilder::new("fig4a");
    let a = b.entity_type("A").expect("fresh name");
    let x = b.entity_type("X").expect("fresh name");
    let y = b.entity_type("Y").expect("fresh name");
    let f1 = b.fact_type("f1", a, x).expect("fresh name");
    let f2 = b.fact_type("f2", a, y).expect("fresh name");
    let r1 = b.schema().fact_type(f1).first();
    let r3 = b.schema().fact_type(f2).first();
    let schema = b.finish();

    let mut session = InteractiveSession::new(&schema);
    assert!(diagnose_with(&schema, session.translation(), BUDGET).is_empty());
    println!("before the edits: nothing to diagnose");

    session.edit().add_mandatory(a, &[r1]);
    session.edit().add_role_exclusion(r1, r3);
    for d in diagnose_with(&schema, session.translation(), BUDGET) {
        println!("{d}");
    }

    // The sharded cache kept every verdict it could across the edits and
    // stored the cores beside them — the stats line is the `Display`
    // impl, not hand-formatting.
    println!("\ncache after the session: {}", session.cache_stats());

    println!("\nDone. docs/EXPLANATIONS.md documents the pipeline end to end.");
}
