//! Diagnosis walkthrough: from a bare "unsatisfiable" verdict to the
//! named, verbalized constraints that cause it — the paper's interactive
//! scenario with the explanation pipeline of `docs/EXPLANATIONS.md`.
//!
//! Run with `cargo run -p orm-examples --example diagnose`.

use orm_examples::banner;
use orm_model::SchemaBuilder;
use orm_reasoner::{diagnose, diagnose_with, InteractiveSession};

const BUDGET: u64 = 500_000;

fn main() {
    banner("Fig. 1: the PhD student paradox, diagnosed");

    let mut b = SchemaBuilder::new("university");
    let person = b.entity_type("Person").expect("fresh name");
    let student = b.entity_type("Student").expect("fresh name");
    let employee = b.entity_type("Employee").expect("fresh name");
    let phd = b.entity_type("PhdStudent").expect("fresh name");
    b.subtype(student, person).expect("valid link");
    b.subtype(employee, person).expect("valid link");
    b.subtype(phd, student).expect("valid link");
    b.subtype(phd, employee).expect("valid link");
    b.exclusive_types([student, employee]).expect("valid constraint");
    let schema = b.finish();

    // One call: sweep, enumerate the minimal-unsat-core family per
    // doomed element, map every core to ORM constraints, verbalize, and
    // rank the verified "drop one of: …" repairs.
    let diagnoses = diagnose(&schema, BUDGET);
    assert_eq!(diagnoses.len(), 1, "exactly PhdStudent is doomed");
    for d in &diagnoses {
        println!("{d}");
    }

    banner("Two independent contradictions, one element");

    // Merge Fig. 1 with a second exclusion cycle over the same PhD type:
    // the diagnosis now carries a two-core family, and every ranked
    // repair breaks BOTH contradictions at once (each is re-proved to
    // restore satisfiability, newest culprit edit ranked first).
    let mut b = SchemaBuilder::new("university2");
    let person = b.entity_type("Person").expect("fresh name");
    let student = b.entity_type("Student").expect("fresh name");
    let employee = b.entity_type("Employee").expect("fresh name");
    let tenured = b.entity_type("Tenured").expect("fresh name");
    let temp = b.entity_type("Temporary").expect("fresh name");
    let phd = b.entity_type("PhdStudent").expect("fresh name");
    for sup in [student, employee, tenured, temp] {
        b.subtype(sup, person).expect("valid link");
    }
    for sup in [student, employee, tenured, temp] {
        b.subtype(phd, sup).expect("valid link");
    }
    b.exclusive_types([student, employee]).expect("valid constraint");
    b.exclusive_types([tenured, temp]).expect("valid constraint");
    let schema = b.finish();

    let diagnoses = diagnose(&schema, BUDGET);
    assert_eq!(diagnoses.len(), 1, "exactly PhdStudent is doomed");
    let d = &diagnoses[0];
    assert_eq!(d.family.len(), 2, "both contradictions enumerated");
    assert!(d.family.complete, "provably all of them");
    assert!(d.repairs.iter().all(|r| r.set.verified), "every repair re-proved Sat");
    println!("{d}");

    banner("Fig. 4a: a doomed role, diagnosed mid-session");

    // The same pipeline over a live editing session: the modeler adds the
    // two clashing constraints interactively, and the warm shards carry
    // both the verdicts and the cores across edits.
    let mut b = SchemaBuilder::new("fig4a");
    let a = b.entity_type("A").expect("fresh name");
    let x = b.entity_type("X").expect("fresh name");
    let y = b.entity_type("Y").expect("fresh name");
    let f1 = b.fact_type("f1", a, x).expect("fresh name");
    let f2 = b.fact_type("f2", a, y).expect("fresh name");
    let r1 = b.schema().fact_type(f1).first();
    let r3 = b.schema().fact_type(f2).first();
    let schema = b.finish();

    let mut session = InteractiveSession::new(&schema);
    assert!(diagnose_with(&schema, session.translation(), BUDGET).is_empty());
    println!("before the edits: nothing to diagnose");

    session.edit().add_mandatory(a, &[r1]);
    session.edit().add_role_exclusion(r1, r3);
    for d in diagnose_with(&schema, session.translation(), BUDGET) {
        println!("{d}");
    }

    // The sharded cache kept every verdict it could across the edits and
    // stored the cores beside them — the stats line is the `Display`
    // impl, not hand-formatting.
    println!("\ncache after the session: {}", session.cache_stats());

    println!("\nDone. docs/EXPLANATIONS.md documents the pipeline end to end.");
}
