//! Quickstart: build the paper's Fig. 1 schema, validate it, read the
//! diagnostics, fix the mistake, validate again.
//!
//! Run with `cargo run -p orm-examples --example quickstart`.

use orm_core::{validate, CheckCode};
use orm_examples::{banner, show_report};
use orm_model::SchemaBuilder;
use orm_syntax::verbalize;

fn main() {
    banner("Fig. 1: the PhD student paradox");

    // Students and Employees are Persons, a PhD student is both — but the
    // modeler also declared Student and Employee mutually exclusive.
    let mut b = SchemaBuilder::new("university");
    let person = b.entity_type("Person").expect("fresh name");
    let student = b.entity_type("Student").expect("fresh name");
    let employee = b.entity_type("Employee").expect("fresh name");
    let phd = b.entity_type("PhdStudent").expect("fresh name");
    b.subtype(student, person).expect("valid link");
    b.subtype(employee, person).expect("valid link");
    b.subtype(phd, student).expect("valid link");
    b.subtype(phd, employee).expect("valid link");
    let exclusion = b.exclusive_types([student, employee]).expect("valid constraint");
    let mut schema = b.finish();

    banner("What the schema says (pseudo natural language)");
    println!("{}", verbalize(&schema));

    banner("Validation (the paper's nine patterns)");
    let report = validate(&schema);
    show_report(&schema, &report);
    assert!(report.by_code(CheckCode::P2).count() == 1, "Pattern 2 must fire");

    banner("Interactive fix: drop the exclusive constraint, re-validate");
    schema.remove_constraint(exclusion);
    let report = validate(&schema);
    show_report(&schema, &report);
    assert!(report.is_clean());

    println!("\nDone. See `university` and `customer_complaints` for richer scenarios.");
}
