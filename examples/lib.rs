//! Shared helpers for the runnable examples: consistent section headers and
//! report printing.

use orm_core::Report;
use orm_model::Schema;

/// Print a section banner.
pub fn banner(title: &str) {
    println!("\n=== {title} ===");
}

/// Print a validation report with a verdict line.
pub fn show_report(schema: &Schema, report: &Report) {
    print!("{}", report.render(schema));
    if report.has_unsat() {
        let roles: Vec<&str> = report.unsat_roles().iter().map(|r| schema.role_label(*r)).collect();
        let types: Vec<&str> =
            report.unsat_types().iter().map(|t| schema.object_type(*t).name()).collect();
        println!(
            "verdict: NOT strongly satisfiable (dead roles: [{}], dead types: [{}])",
            roles.join(", "),
            types.join(", ")
        );
    } else {
        println!("verdict: no contradiction detected by the enabled checks");
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn helpers_link() {
        super::banner("smoke");
    }
}
