//! A realistic university schema exercising most ORM constraint kinds:
//! subtype hierarchy, mandatory/uniqueness/frequency constraints, value
//! constraints, ring constraints and set comparisons — first in a clean
//! version, then with the paper's mistakes seeded in one by one.
//!
//! Run with `cargo run -p orm-examples --example university`.

use orm_core::{validate_all, CheckCode, Severity, Validator, ValidatorSettings};
use orm_examples::{banner, show_report};
use orm_model::{RingKind, RoleSeq, SchemaBuilder, ValueConstraint};
use orm_syntax::{print, verbalize};

fn main() {
    banner("Building the university schema");
    let mut b = SchemaBuilder::new("university");

    let person = b.entity_type("Person").expect("fresh");
    let student = b.entity_type("Student").expect("fresh");
    let employee = b.entity_type("Employee").expect("fresh");
    let professor = b.entity_type("Professor").expect("fresh");
    let course = b.entity_type("Course").expect("fresh");
    let grade = b
        .value_type("Grade", Some(ValueConstraint::enumeration(["A", "B", "C", "D", "F"])))
        .expect("fresh");
    b.subtype(student, person).expect("link");
    b.subtype(employee, person).expect("link");
    b.subtype(professor, employee).expect("link");

    let enrolls = b
        .fact_type_full(
            "enrolls",
            (student, Some("enr_s")),
            (course, Some("enr_c")),
            Some("enrolls in"),
        )
        .expect("fresh");
    let teaches = b
        .fact_type_full(
            "teaches",
            (professor, Some("tch_p")),
            (course, Some("tch_c")),
            Some("teaches"),
        )
        .expect("fresh");
    let grades = b
        .fact_type_full(
            "grades",
            (student, Some("grd_s")),
            (grade, Some("grd_g")),
            Some("received"),
        )
        .expect("fresh");
    let mentors = b
        .fact_type_full(
            "mentors",
            (person, Some("mnt_a")),
            (person, Some("mnt_b")),
            Some("mentors"),
        )
        .expect("fresh");

    let enr_s = b.schema().fact_type(enrolls).first();
    let tch_c = b.schema().fact_type(teaches).second();
    let grd_s = b.schema().fact_type(grades).first();
    let grd_g = b.schema().fact_type(grades).second();

    // Every student enrolls in 1..6 courses; every course is taught by
    // exactly one professor; grades are unique per student here (toy);
    // mentorship is irreflexive and acyclic.
    b.mandatory(enr_s).expect("ok");
    b.frequency([enr_s], 1, Some(6)).expect("ok");
    b.unique([tch_c]).expect("ok");
    b.mandatory(tch_c).expect("ok");
    b.unique([grd_s]).expect("ok");
    b.subset(RoleSeq::single(grd_s), RoleSeq::single(enr_s)).expect("ok");
    b.ring(mentors, [RingKind::Irreflexive, RingKind::Acyclic]).expect("ok");

    let schema = b.finish();

    banner("Textual form (.orm)");
    print!("{}", print(&schema));

    banner("Verbalization");
    println!("{}", verbalize(&schema));

    banner("Clean validation (all checks incl. lints)");
    let report = validate_all(&schema);
    show_report(&schema, &report);
    assert!(!report.has_unsat(), "the clean schema must have no contradictions");

    // ------------------------------------------------------------------
    // Mistake 1 (Fig. 1 style): declare Student ⊗ Employee, then add a
    // TeachingAssistant below both.
    // ------------------------------------------------------------------
    banner("Mistake 1: exclusive Student/Employee + TeachingAssistant under both");
    let mut faulty = SchemaBuilder::from_schema(schema.clone());
    let ta = faulty.entity_type("TeachingAssistant").expect("fresh");
    faulty.subtype(ta, student).expect("link");
    faulty.subtype(ta, employee).expect("link");
    faulty.exclusive_types([student, employee]).expect("ok");
    let faulty = faulty.finish();
    let report = validate_all(&faulty);
    show_report(&faulty, &report);
    assert_eq!(report.by_code(CheckCode::P2).count(), 1);

    // ------------------------------------------------------------------
    // Mistake 2 (Fig. 10 style): demand every grade row appears 2-3 times
    // while grd_s is unique.
    // ------------------------------------------------------------------
    banner("Mistake 2: frequency 2..3 on the unique grading role");
    let mut faulty = SchemaBuilder::from_schema(schema.clone());
    faulty.frequency([grd_s], 2, Some(3)).expect("ok");
    let faulty = faulty.finish();
    let report = validate_all(&faulty);
    show_report(&faulty, &report);
    assert_eq!(report.by_code(CheckCode::P7).count(), 1);

    // ------------------------------------------------------------------
    // Mistake 3 (Fig. 5 style): each student must receive at least 6
    // distinct grades — but only 5 grade values exist.
    // ------------------------------------------------------------------
    banner("Mistake 3: 6 distinct grades demanded, 5 grade values exist");
    let mut faulty = SchemaBuilder::from_schema(schema.clone());
    faulty.frequency([grd_s.to_owned()], 6, None).expect("ok");
    let faulty = faulty.finish();
    // Keep P7 out of the way to show P4 in isolation (grd_s is unique, so
    // P7 also fires — this is the Fig. 15 toggle in action).
    let validator =
        Validator::with_settings(ValidatorSettings::patterns_only().without(CheckCode::P7));
    let report = validator.validate(&faulty);
    show_report(&faulty, &report);
    assert_eq!(report.by_code(CheckCode::P4).count(), 1);
    let _ = grd_g;

    // ------------------------------------------------------------------
    // Mistake 4 (Fig. 12 style): make mentorship symmetric too.
    // ------------------------------------------------------------------
    banner("Mistake 4: symmetric + acyclic mentorship");
    let mut faulty = SchemaBuilder::from_schema(schema.clone());
    faulty.ring(mentors, [RingKind::Symmetric]).expect("ok");
    let faulty = faulty.finish();
    let report = validate_all(&faulty);
    show_report(&faulty, &report);
    assert_eq!(report.by_code(CheckCode::P8).count(), 1);

    banner("Lint severity summary for the last faulty schema");
    for severity in
        [Severity::Unsatisfiable, Severity::Guideline, Severity::Redundancy, Severity::Info]
    {
        let n = report.by_severity(severity).count();
        println!("{severity:>14}: {n} finding(s)");
    }
}
