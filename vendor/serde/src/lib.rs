//! Offline stand-in for `serde`.
//!
//! Nothing in this workspace serializes data (no format crate is available
//! offline), so `Serialize`/`Deserialize` are marker traits and the derive
//! macros (feature `derive`) expand to nothing. Swap this vendored stub
//! for real `serde` once a registry is reachable — call sites need no
//! change.

#![forbid(unsafe_code)]

/// Marker standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker standing in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
