//! Offline stand-in for `serde_derive`.
//!
//! The workspace derives `Serialize`/`Deserialize` on its model types but
//! never serializes anything in-tree (no serde_json/postcard dependency
//! exists offline), so the derives expand to nothing. The `serde`
//! attribute is still accepted so annotated types keep compiling.

use proc_macro::TokenStream;

/// No-op `Serialize` derive.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
