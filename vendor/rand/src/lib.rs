//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access, so this workspace vendors
//! the small slice of the `rand` 0.8 API it actually uses: `StdRng`
//! seeded via [`SeedableRng::seed_from_u64`], [`Rng::gen_range`] /
//! [`Rng::gen_bool`] over integer ranges, and [`seq::SliceRandom::choose`].
//! Determinism in the seed is the only contract the workspace relies on
//! (schema generation must be reproducible); statistical quality beyond
//! SplitMix64 is not needed.

#![forbid(unsafe_code)]

use std::ops::Range;

/// Types that can be sampled uniformly from a `Range` by the stub.
pub trait UniformSample: Copy {
    /// Sample uniformly from `[range.start, range.end)`.
    fn sample(range: Range<Self>, rng: &mut dyn RngCore) -> Self;
}

macro_rules! impl_uniform {
    ($($t:ty),*) => {$(
        impl UniformSample for $t {
            fn sample(range: Range<Self>, rng: &mut dyn RngCore) -> Self {
                assert!(range.start < range.end, "empty gen_range");
                let span = (range.end as i128 - range.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (range.start as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Minimal core-RNG interface: a stream of `u64`s.
pub trait RngCore {
    /// Next raw 64-bit value.
    fn next_u64(&mut self) -> u64;
}

/// The user-facing sampling interface (subset of `rand::Rng`).
pub trait Rng: RngCore + Sized {
    /// Uniform sample from a half-open integer range.
    fn gen_range<T: UniformSample>(&mut self, range: Range<T>) -> T {
        T::sample(range, self)
    }

    /// Bernoulli sample with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        // 53 high bits give a uniform in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<T: RngCore + Sized> Rng for T {}

/// Construction of RNGs from seeds (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Build the RNG from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named RNG types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic SplitMix64 generator standing in for `rand::rngs::StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea, Flood 2014).
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

/// Sequence-related helpers (subset of `rand::seq`).
pub mod seq {
    use super::Rng;

    /// Random selection from slices (subset of `rand::seq::SliceRandom`).
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// A uniformly random element, or `None` when empty.
        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// `amount` distinct elements in random order (fewer when the slice
        /// is shorter than `amount`).
        fn choose_multiple<R: Rng>(
            &self,
            rng: &mut R,
            amount: usize,
        ) -> std::vec::IntoIter<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }

        fn choose_multiple<R: Rng>(&self, rng: &mut R, amount: usize) -> std::vec::IntoIter<&T> {
            // Partial Fisher–Yates over an index table.
            let amount = amount.min(self.len());
            let mut indices: Vec<usize> = (0..self.len()).collect();
            for i in 0..amount {
                let j = if i + 1 < indices.len() { rng.gen_range(i..indices.len()) } else { i };
                indices.swap(i, j);
            }
            indices[..amount].iter().map(|&i| &self[i]).collect::<Vec<_>>().into_iter()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_in_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1000u64), b.gen_range(0..1000u64));
        }
    }

    #[test]
    fn ranges_are_respected() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3..9usize);
            assert!((3..9).contains(&v));
        }
        let items = [1, 2, 3];
        for _ in 0..100 {
            assert!(items.contains(items.choose(&mut rng).unwrap()));
        }
        assert!(Vec::<u8>::new().choose(&mut rng).is_none());
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
