//! Offline stand-in for `proptest`.
//!
//! The build environment has no network access, so this crate reimplements
//! the slice of the proptest API the workspace's property tests use:
//! integer-range / tuple / `Just` / `any` / `prop_oneof!` /
//! `prop::collection::vec` strategies, `.prop_map`, and the `proptest!`,
//! `prop_assert!`, `prop_assert_eq!` macros. Inputs are sampled from a
//! deterministic SplitMix64 stream per test case (no shrinking — a failing
//! case prints its index and message instead). Swapping in the real crate
//! requires no call-site changes.

#![forbid(unsafe_code)]

use std::fmt;
use std::marker::PhantomData;
use std::ops::Range;

/// Deterministic RNG handed to strategies.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// RNG for one test case.
    pub fn for_case(case: u32) -> TestRng {
        TestRng {
            state: 0xD1B5_4A32_D192_ED03 ^ u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        }
    }

    /// Next raw 64-bit value (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Error produced by `prop_assert!` family macros.
#[derive(Clone, Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// A failed assertion with a message.
    pub fn fail(message: impl Into<String>) -> TestCaseError {
        TestCaseError { message: message.into() }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

/// Per-`proptest!`-block configuration.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A generator of random values (subset of `proptest::strategy::Strategy`).
pub trait Strategy {
    /// The value type produced.
    type Value;

    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// A boxed, type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// Box a strategy (used by `prop_oneof!`).
pub fn boxed<S: Strategy + 'static>(s: S) -> BoxedStrategy<S::Value> {
    Box::new(s)
}

/// Integers uniformly samplable from a half-open range.
pub trait SampleRange: Copy {
    /// Sample from `[start, end)`.
    fn sample(range: &Range<Self>, rng: &mut TestRng) -> Self;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for $t {
            fn sample(range: &Range<Self>, rng: &mut TestRng) -> Self {
                assert!(range.start < range.end, "empty range strategy");
                let span = (range.end as i128 - range.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (range.start as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<T: SampleRange> Strategy for Range<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::sample(self, rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Produce an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> u64 {
        rng.next_u64()
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> u32 {
        rng.next_u64() as u32
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy for [`Arbitrary`] types; see [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The `any::<T>()` strategy.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Uniform choice between boxed alternatives (used by `prop_oneof!`).
pub struct OneOf<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> OneOf<T> {
    /// Choice over the given alternatives.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> OneOf<T> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        OneOf { options }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let i = (rng.next_u64() % self.options.len() as u64) as usize;
        self.options[i].generate(rng)
    }
}

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use super::{SampleRange, Strategy, TestRng};
    use std::ops::Range;

    /// Vec length: a fixed size or a half-open range.
    pub trait IntoLen {
        /// Sample a concrete length.
        fn sample_len(&self, rng: &mut TestRng) -> usize;
    }

    impl IntoLen for usize {
        fn sample_len(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl IntoLen for Range<usize> {
        fn sample_len(&self, rng: &mut TestRng) -> usize {
            if self.start >= self.end {
                self.start
            } else {
                SampleRange::sample(self, rng)
            }
        }
    }

    /// Strategy produced by [`vec()`](fn@vec).
    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    /// `prop::collection::vec(element, len)`.
    pub fn vec<S: Strategy, L: IntoLen>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }

    impl<S: Strategy, L: IntoLen> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.sample_len(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The `prop::` module path used by `prelude::*` consumers.
pub mod prop {
    pub use crate::collection;
}

/// One-stop imports, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_oneof, proptest, Arbitrary, BoxedStrategy,
        Just, ProptestConfig, Strategy, TestCaseError, TestRng,
    };
}

/// Define property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` deterministic random cases.
#[macro_export]
macro_rules! proptest {
    // Parameter muncher: `name: Type` (= any::<Type>()) or `pat in strategy`,
    // comma-separated, expanding to `let` bindings against `$rng`.
    (@bind $rng:ident) => {};
    (@bind $rng:ident ,) => {};
    (@bind $rng:ident $arg:ident : $ty:ty) => {
        let $arg = <$ty as $crate::Arbitrary>::arbitrary(&mut $rng);
    };
    (@bind $rng:ident $arg:ident : $ty:ty , $($rest:tt)*) => {
        let $arg = <$ty as $crate::Arbitrary>::arbitrary(&mut $rng);
        $crate::proptest!(@bind $rng $($rest)*);
    };
    (@bind $rng:ident $arg:pat in $strat:expr) => {
        let $arg = $crate::Strategy::generate(&($strat), &mut $rng);
    };
    (@bind $rng:ident $arg:pat in $strat:expr , $($rest:tt)*) => {
        let $arg = $crate::Strategy::generate(&($strat), &mut $rng);
        $crate::proptest!(@bind $rng $($rest)*);
    };
    (@cfg ($cfg:expr) $( $(#[$meta:meta])* fn $name:ident ( $($params:tt)* ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                for case in 0..cfg.cases {
                    let mut rng = $crate::TestRng::for_case(case);
                    $crate::proptest!(@bind rng $($params)*);
                    #[allow(unreachable_code)]
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                        $body;
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!("proptest case {case} failed: {e}");
                    }
                }
            }
        )*
    };
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Assert inside a `proptest!` body, failing the case instead of panicking.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Equality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "assertion failed: `{:?}` != `{:?}`", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` != `{:?}`: {}",
                l,
                r,
                format!($($fmt)+)
            )));
        }
    }};
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![$($crate::boxed($strat)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn strategies_sample_in_bounds() {
        let mut rng = TestRng::for_case(0);
        for _ in 0..100 {
            let v = Strategy::generate(&(3u64..9), &mut rng);
            assert!((3..9).contains(&v));
            let (a, b) = Strategy::generate(&((0usize..4), (1u32..2)), &mut rng);
            assert!(a < 4 && b == 1);
            let xs = Strategy::generate(&prop::collection::vec(0u8..3, 0..5), &mut rng);
            assert!(xs.len() < 5 && xs.iter().all(|x| *x < 3));
        }
    }

    #[test]
    fn oneof_and_map_compose() {
        let strat = prop_oneof![(0usize..4).prop_map(|x| x * 2), Just(99usize),];
        let mut rng = TestRng::for_case(1);
        let mut saw_just = false;
        for _ in 0..200 {
            let v = Strategy::generate(&strat, &mut rng);
            assert!(v == 99 || v < 8);
            saw_just |= v == 99;
        }
        assert!(saw_just);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_runs_cases(x in 0u64..100, flip in any::<bool>()) {
            if flip && x > 1000 {
                return Ok(());
            }
            prop_assert!(x < 100);
            prop_assert_eq!(x, x, "reflexivity of {}", x);
        }
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    #[allow(unnameable_test_items)]
    fn failing_case_panics_with_index() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]

            #[test]
            fn inner(x in 0u64..10) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        inner();
    }
}
