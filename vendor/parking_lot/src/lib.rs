//! Offline stand-in for `parking_lot`: wraps `std::sync::Mutex` behind the
//! `parking_lot` signature (`lock()` returns the guard directly, recovering
//! from poisoning instead of returning a `Result`).

#![forbid(unsafe_code)]

use std::sync;

/// A mutex whose `lock` never returns a `Result` (poisoning is swallowed,
/// matching `parking_lot`'s no-poisoning semantics).
#[derive(Debug, Default)]
pub struct Mutex<T>(sync::Mutex<T>);

/// Guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Wrap a value.
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Acquire the lock, recovering from poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.0.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(value) => value,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }
}
