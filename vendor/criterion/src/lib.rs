//! Offline stand-in for `criterion`.
//!
//! Implements the API surface the workspace's benches use — `Criterion`,
//! benchmark groups, `Bencher::iter`, `BenchmarkId`, `Throughput`, the
//! `criterion_group!`/`criterion_main!` macros — on a plain wall-clock
//! harness: adaptive iteration count targeting the configured measurement
//! time, reporting mean/min per benchmark to stdout. When invoked with
//! `--test` (as `cargo test --benches` does) every benchmark body runs
//! exactly once, so benches double as smoke tests.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Throughput annotation (recorded, echoed in the report line).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier: function name plus optional parameter.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Function name + parameter value.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId { id: format!("{}/{}", function.into(), parameter) }
    }

    /// Parameter-only id (inside a named group).
    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Anything accepted as a benchmark name: `&str`, `String` or [`BenchmarkId`].
pub trait IntoBenchmarkId {
    /// The rendered name.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_owned()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher<'a> {
    config: &'a Config,
    /// Measured mean per iteration, filled by [`Bencher::iter`].
    result: Option<Measurement>,
}

/// One benchmark's measurement.
#[derive(Clone, Copy, Debug)]
pub struct Measurement {
    /// Mean wall-clock time per iteration.
    pub mean: Duration,
    /// Fastest observed iteration.
    pub min: Duration,
    /// Iterations measured.
    pub iters: u64,
}

impl<'a> Bencher<'a> {
    /// Time `routine`, adaptively choosing an iteration count that fills
    /// the configured measurement window.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        if self.config.test_mode {
            black_box(routine());
            self.result = Some(Measurement { mean: Duration::ZERO, min: Duration::ZERO, iters: 1 });
            return;
        }
        // Warm-up: run until the warm-up window elapses (at least once).
        let warm_until = Instant::now() + self.config.warm_up_time;
        let mut one = Duration::MAX;
        loop {
            let t0 = Instant::now();
            black_box(routine());
            one = one.min(t0.elapsed());
            if Instant::now() >= warm_until {
                break;
            }
        }
        // Choose an iteration count targeting the measurement window,
        // bounded below by the sample size.
        let per_iter = one.max(Duration::from_nanos(1));
        let fit = self.config.measurement_time.as_nanos() / per_iter.as_nanos().max(1);
        let iters = fit.clamp(self.config.sample_size as u128, 1_000_000) as u64;
        let mut min = Duration::MAX;
        let started = Instant::now();
        for _ in 0..iters {
            let t0 = Instant::now();
            black_box(routine());
            min = min.min(t0.elapsed());
        }
        let total = started.elapsed();
        self.result = Some(Measurement { mean: total / iters as u32, min, iters });
    }
}

#[derive(Clone, Debug)]
struct Config {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    test_mode: bool,
    filter: Option<String>,
}

impl Config {
    fn from_args() -> Config {
        let mut test_mode = false;
        let mut filter = None;
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" => test_mode = true,
                "--bench" | "--nocapture" | "-q" | "--quiet" => {}
                other if other.starts_with('-') => {}
                other => filter = Some(other.to_owned()),
            }
        }
        Config {
            sample_size: 10,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_secs(2),
            test_mode,
            filter,
        }
    }

    fn matches(&self, name: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| name.contains(f))
    }
}

fn run_one(config: &Config, name: &str, f: &mut dyn FnMut(&mut Bencher<'_>)) {
    if !config.matches(name) {
        return;
    }
    let mut bencher = Bencher { config, result: None };
    f(&mut bencher);
    match bencher.result {
        Some(_) if config.test_mode => println!("test {name} ... ok"),
        Some(m) => {
            println!("{name:<50} mean {:>12.3?}  min {:>12.3?}  ({} iters)", m.mean, m.min, m.iters)
        }
        None => println!("{name:<50} (no measurement: closure never called iter)"),
    }
}

/// Top-level benchmark driver (subset of `criterion::Criterion`).
pub struct Criterion {
    config: Config,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { config: Config::from_args() }
    }
}

impl Criterion {
    /// Configure the default sample size.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.config.sample_size = n;
        self
    }

    /// Run a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher<'_>)>(
        &mut self,
        name: &str,
        mut f: F,
    ) -> &mut Self {
        run_one(&self.config, name, &mut f);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), config: self.config.clone(), _parent: self }
    }
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    config: Config,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the number of samples (lower bound on iterations here).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.config.sample_size = n;
        self
    }

    /// Set the warm-up window.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.config.warm_up_time = d;
        self
    }

    /// Set the measurement window.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.config.measurement_time = d;
        self
    }

    /// Record the group's throughput annotation.
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Benchmark within the group.
    pub fn bench_function<N: IntoBenchmarkId, F: FnMut(&mut Bencher<'_>)>(
        &mut self,
        id: N,
        mut f: F,
    ) -> &mut Self {
        let name = format!("{}/{}", self.name, id.into_id());
        run_one(&self.config, &name, &mut f);
        self
    }

    /// Benchmark with an explicit input value.
    pub fn bench_with_input<N: IntoBenchmarkId, I: ?Sized, F: FnMut(&mut Bencher<'_>, &I)>(
        &mut self,
        id: N,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let name = format!("{}/{}", self.name, id.into_id());
        run_one(&self.config, &name, &mut |b| f(b, input));
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

/// Declare a benchmark group function, mirroring `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Declare the bench `main`, mirroring `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $($group(&mut c);)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_render() {
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }

    #[test]
    fn bencher_measures() {
        let config = Config {
            sample_size: 3,
            warm_up_time: Duration::from_millis(1),
            measurement_time: Duration::from_millis(5),
            test_mode: false,
            filter: None,
        };
        let mut b = Bencher { config: &config, result: None };
        let mut count = 0u64;
        b.iter(|| count += 1);
        let m = b.result.expect("measured");
        assert!(m.iters >= 3);
        assert!(count >= m.iters);
    }
}
