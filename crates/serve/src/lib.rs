//! # orm-serve — a fault-tolerant reasoning service core
//!
//! The paper frames unsatisfiability reasoning as something an ORM
//! modeling tool calls *continuously* — every constraint edit triggers
//! fresh satisfiability checks. A production tool therefore wraps the
//! reasoner in a long-lived service: many editor sessions multiplexed
//! over one warm verdict cache, a process that survives restarts without
//! re-proving its world, and overload behavior that degrades *honestly*
//! (a fast `Unknown` beats a stalled editor; a wrong verdict is never
//! acceptable).
//!
//! [`ReasonerService`] is that core, deliberately transport-free — bind
//! it to whatever RPC surface a tool uses:
//!
//! * **Admission control** — each request arrives with its own
//!   [`ExecCx`] (deadline, budget, cancellation). The service classifies
//!   it ([`Admission`]): `Full` under normal load, `Degraded` (a tighter
//!   step budget via [`ExecCx::with_step_budget`]) once concurrent
//!   sessions cross the soft limit, `Shed` ([`Overloaded`]) at the hard
//!   limit or when the request's own deadline is already hopeless.
//!   Degraded runs end in an honest `BudgetExhausted`; the verdict cache
//!   guarantees a starved retry can never *weaken* a richer cached
//!   `Unknown`, and a definitive verdict is never displaced. Sheds and
//!   downgrades are counted in the service [`Meter`] and in
//!   [`CacheStats`].
//! * **Crash-safe snapshots** — [`ReasonerService::snapshot`] serializes
//!   the warm cache (verdicts, witnesses, unsat cores, MUS families,
//!   seed pool) into a versioned, checksummed blob;
//!   [`ReasonerService::restore`] installs one into a freshly started
//!   service after validating integrity and TBox provenance. Corrupt or
//!   mismatched blobs degrade to a cold cache — never a panic, never a
//!   stale verdict (see `docs/SERVE.md` for the soundness argument).
//! * **Panic isolation** — queries run on a shared [`std::sync::RwLock`]
//!   whose guards recover from poisoning, and the parallel sweeps
//!   underneath isolate per-item panics (`orm_dl::par::fan_out_cx`), so
//!   one poisoned session cannot take the service down or wedge its
//!   siblings.
//!
//! ```
//! use orm_model::SchemaBuilder;
//! use orm_serve::{ReasonerService, ServiceConfig};
//! use orm_dl::{ExecCx, SearchOutcome};
//!
//! let mut b = SchemaBuilder::new("demo");
//! let student = b.entity_type("Student").unwrap();
//! let employee = b.entity_type("Employee").unwrap();
//! let phd = b.entity_type("PhdStudent").unwrap();
//! b.subtype(phd, student).unwrap();
//! b.subtype(phd, employee).unwrap();
//! b.exclusive_types([student, employee]).unwrap();
//! let schema = b.finish();
//!
//! let service = ReasonerService::new(&schema, ServiceConfig::default());
//! let verdict = service.check_type(phd, &ExecCx::unlimited()).unwrap();
//! assert_eq!(verdict, SearchOutcome::Unsat);
//!
//! // Warm restart: snapshot, then restore into a fresh process.
//! let blob = service.snapshot();
//! let restarted = ReasonerService::new(&schema, ServiceConfig::default());
//! restarted.restore(&blob).unwrap();
//! assert_eq!(restarted.check_type(phd, &ExecCx::unlimited()), Ok(SearchOutcome::Unsat));
//! assert_eq!(restarted.stats().misses, 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use orm_dl::{
    translate, CacheStats, EditSession, ExecCx, Explanation, Meter, RestoreReport, SearchOutcome,
    SnapshotError, Translation,
};
use orm_model::{ObjectTypeId, RoleId, Schema};
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, RwLock, RwLockReadGuard, RwLockWriteGuard};
use std::time::{Duration, Instant};

/// Load thresholds and degradation budgets for a [`ReasonerService`].
#[derive(Clone, Copy, Debug)]
pub struct ServiceConfig {
    /// Hard concurrency cap: a request arriving with this many already
    /// in flight is shed ([`Overloaded`]). `0` sheds everything — a
    /// drain/maintenance mode.
    pub max_inflight: usize,
    /// Soft cap: at or above this many in flight, new requests are
    /// admitted *degraded* — their step budget tightened to
    /// [`ServiceConfig::degraded_steps`]. `0` degrades everything.
    pub soft_inflight: usize,
    /// Step budget granted to a fully admitted request (the request's
    /// own budget still applies if tighter).
    pub full_steps: u64,
    /// Step budget granted to a degraded request — small enough to end
    /// in a prompt, honest `BudgetExhausted` under overload.
    pub degraded_steps: u64,
    /// Requests whose deadline leaves less than this are shed outright:
    /// admitting work that cannot possibly finish only steals capacity
    /// from requests that can.
    pub min_deadline: Duration,
}

impl Default for ServiceConfig {
    fn default() -> ServiceConfig {
        ServiceConfig {
            max_inflight: 256,
            soft_inflight: 64,
            full_steps: 100_000,
            degraded_steps: 2_000,
            min_deadline: Duration::from_micros(50),
        }
    }
}

/// How the admission layer classified a request under current load.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Admission {
    /// Normal load: full step budget.
    Full,
    /// Soft overload: admitted with [`ServiceConfig::degraded_steps`].
    Degraded,
    /// Hard overload (or a hopeless deadline): refused.
    Shed,
}

/// The service refused a request at admission — hard overload, a
/// deadline too close to matter, or an already-cancelled context.
/// Retry later or with a saner deadline; nothing was proved and nothing
/// was cached.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Overloaded;

impl fmt::Display for Overloaded {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "request shed: reasoning service overloaded")
    }
}

impl std::error::Error for Overloaded {}

/// RAII in-flight slot: admission reserves it with a `fetch_add`, drop
/// releases it — including on panic, so a poisoned request can never
/// leak capacity.
struct Permit<'a> {
    inflight: &'a AtomicUsize,
}

impl Drop for Permit<'_> {
    fn drop(&mut self) {
        self.inflight.fetch_sub(1, Ordering::SeqCst);
    }
}

/// A long-lived reasoning service multiplexing any number of concurrent
/// sessions over one shared [`Translation`] (and thus one warm sharded
/// verdict cache). Queries take a read lock and run concurrently; edits
/// take the write lock. See the [crate docs](self) for the admission and
/// recovery story.
pub struct ReasonerService {
    translation: RwLock<Translation>,
    /// Requests currently executing — the admission layer's load signal.
    inflight: AtomicUsize,
    /// Service-lifetime meter: every admitted request's context is
    /// re-pointed at it ([`ExecCx::with_meter`]), so steps, proofs,
    /// sheds and downgrades aggregate service-wide.
    meter: Arc<Meter>,
    cfg: ServiceConfig,
}

impl ReasonerService {
    /// Translate `schema` and serve it.
    pub fn new(schema: &Schema, cfg: ServiceConfig) -> ReasonerService {
        ReasonerService::from_translation(translate(schema), cfg)
    }

    /// Serve an existing translation (e.g. one that already has a warm
    /// cache from a previous life as a batch job).
    pub fn from_translation(translation: Translation, cfg: ServiceConfig) -> ReasonerService {
        ReasonerService {
            translation: RwLock::new(translation),
            inflight: AtomicUsize::new(0),
            meter: Arc::new(Meter::default()),
            cfg,
        }
    }

    /// The admission policy's configuration.
    pub fn config(&self) -> &ServiceConfig {
        &self.cfg
    }

    /// The service-lifetime meter (shared with every admitted request).
    pub fn meter(&self) -> &Arc<Meter> {
        &self.meter
    }

    /// Requests currently executing.
    pub fn inflight(&self) -> usize {
        self.inflight.load(Ordering::SeqCst)
    }

    // -- locking ----------------------------------------------------------

    /// Read access that survives poisoning: a panic inside a *write*
    /// critical section poisons the lock, but the translation is only
    /// ever mutated through `EditSession`, whose operations don't
    /// half-apply — recovering the guard is strictly better than
    /// cascading the panic to every session.
    fn read(&self) -> RwLockReadGuard<'_, Translation> {
        self.translation.read().unwrap_or_else(|e| e.into_inner())
    }

    fn write(&self) -> RwLockWriteGuard<'_, Translation> {
        self.translation.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Run `f` against the shared translation (read lock).
    pub fn with_translation<R>(&self, f: impl FnOnce(&Translation) -> R) -> R {
        f(&self.read())
    }

    // -- admission --------------------------------------------------------

    fn deadline_hopeless(&self, cx: &ExecCx) -> bool {
        cx.deadline().is_some_and(|deadline| {
            deadline
                .checked_duration_since(Instant::now())
                .is_none_or(|left| left < self.cfg.min_deadline)
        })
    }

    /// Peek at how a request with this context would be admitted right
    /// now, without booking anything. Racy by nature (load moves);
    /// useful for load-shedding hints in a transport layer.
    pub fn admission(&self, cx: &ExecCx) -> Admission {
        if self.deadline_hopeless(cx) || cx.is_cancelled() {
            return Admission::Shed;
        }
        let inflight = self.inflight.load(Ordering::SeqCst);
        if inflight >= self.cfg.max_inflight {
            Admission::Shed
        } else if inflight >= self.cfg.soft_inflight {
            Admission::Degraded
        } else {
            Admission::Full
        }
    }

    /// Reserve an in-flight slot or shed. On success returns the permit
    /// and the admitted step cap.
    fn try_admit(&self, cx: &ExecCx) -> Result<(Permit<'_>, u64), Overloaded> {
        if self.deadline_hopeless(cx) || cx.is_cancelled() {
            self.note_shed();
            return Err(Overloaded);
        }
        // Reserve first, then check: the slot is visible to concurrent
        // admissions for exactly as long as we might use it.
        let prev = self.inflight.fetch_add(1, Ordering::SeqCst);
        let permit = Permit { inflight: &self.inflight };
        if prev >= self.cfg.max_inflight {
            drop(permit);
            self.note_shed();
            return Err(Overloaded);
        }
        if prev >= self.cfg.soft_inflight {
            self.note_downgrade();
            Ok((permit, self.cfg.degraded_steps))
        } else {
            Ok((permit, self.cfg.full_steps))
        }
    }

    fn note_shed(&self) {
        self.meter.add_shed();
        self.read().shards().note_shed();
    }

    fn note_downgrade(&self) {
        self.meter.add_downgrade();
        self.read().shards().note_downgrade();
    }

    /// Admit, derive the request's effective context, and run `f` under
    /// the read lock. The derived context keeps the caller's deadline,
    /// cancellation token lineage ([`ExecCx::child`] — cancelling this
    /// request leaves siblings running) and auto-cancel trigger, but
    /// meters into the service-wide [`Meter`] and caps the step budget
    /// at the admitted tier (the caller's own budget still applies if
    /// tighter).
    fn run<R>(
        &self,
        cx: &ExecCx,
        f: impl FnOnce(&Translation, &ExecCx) -> R,
    ) -> Result<R, Overloaded> {
        let (permit, cap) = self.try_admit(cx)?;
        let budget = cx.steps().unwrap_or(u64::MAX).min(cap);
        let run_cx = cx.child().with_meter(Arc::clone(&self.meter)).with_step_budget(budget);
        let translation = self.read();
        let out = f(&translation, &run_cx);
        drop(translation);
        drop(permit);
        Ok(out)
    }

    // -- queries ----------------------------------------------------------

    /// Is the object type's concept satisfiable? Interrupts and budget
    /// exhaustion surface as their honest [`SearchOutcome`] variants;
    /// nothing half-proved is cached.
    pub fn check_type(&self, ty: ObjectTypeId, cx: &ExecCx) -> Result<SearchOutcome, Overloaded> {
        self.run(cx, |t, run| t.type_satisfiable_cx(ty, run))
    }

    /// Is the ORM role's concept satisfiable?
    pub fn check_role(&self, role: RoleId, cx: &ExecCx) -> Result<SearchOutcome, Overloaded> {
        self.run(cx, |t, run| t.role_satisfiable_cx(role, run))
    }

    /// Why is the object type unsatisfiable? (A certified minimal core,
    /// cached beside the verdict.)
    pub fn explain_type(&self, ty: ObjectTypeId, cx: &ExecCx) -> Result<Explanation, Overloaded> {
        self.run(cx, |t, run| t.explain_type_cx(ty, run))
    }

    /// The per-type satisfiability sweep — one admission covers the
    /// whole battery (it is one editor gesture, not `n` requests).
    pub fn type_sweep(
        &self,
        schema: &Schema,
        cx: &ExecCx,
    ) -> Result<Vec<(ObjectTypeId, SearchOutcome)>, Overloaded> {
        self.run(cx, |t, run| t.type_sweep_cx(schema, run))
    }

    /// The per-role satisfiability sweep.
    pub fn role_sweep(
        &self,
        schema: &Schema,
        cx: &ExecCx,
    ) -> Result<Vec<(RoleId, SearchOutcome)>, Overloaded> {
        self.run(cx, |t, run| t.role_sweep_cx(schema, run))
    }

    // -- edits ------------------------------------------------------------

    /// Apply constraint additions under the write lock (all sessions
    /// observe the edit atomically; the warm cache survives monotone
    /// additions via delta retention). Edits are never shed — refusing
    /// a schema change would desynchronize the tool from its service.
    pub fn edit<R>(&self, f: impl FnOnce(&mut EditSession<'_>) -> R) -> R {
        let mut translation = self.write();
        let mut session = translation.edit();
        f(&mut session)
    }

    // -- persistence ------------------------------------------------------

    /// Serialize the warm verdict cache (see
    /// [`orm_dl::SatShards::snapshot`]). Persist the bytes beside the
    /// schema; hand them to [`ReasonerService::restore`] after a restart.
    pub fn snapshot(&self) -> Vec<u8> {
        self.read().snapshot()
    }

    /// Install a snapshot into this freshly started service. Corrupt
    /// bytes or a snapshot of a diverged terminology are rejected with
    /// the cache untouched ([`SnapshotError`]) and the service simply
    /// starts cold — never a panic, never a stale verdict.
    pub fn restore(&self, bytes: &[u8]) -> Result<RestoreReport, SnapshotError> {
        self.read().restore(bytes)
    }

    /// Aggregated cache counters, including the service-level `sheds`,
    /// `downgrades`, `snapshots`, `restores` and `corrupt_rejected`.
    pub fn stats(&self) -> CacheStats {
        self.read().cache_stats()
    }
}

impl fmt::Debug for ReasonerService {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ReasonerService")
            .field("inflight", &self.inflight())
            .field("cfg", &self.cfg)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orm_model::SchemaBuilder;

    /// Fig. 1 of the paper: PhdStudent ⊑ Student ⊓ Employee with the two
    /// supertypes exclusive — PhdStudent is doomed, everything else fine.
    fn fig1() -> (Schema, ObjectTypeId, ObjectTypeId) {
        let mut b = SchemaBuilder::new("fig1");
        let person = b.entity_type("Person").unwrap();
        let student = b.entity_type("Student").unwrap();
        let employee = b.entity_type("Employee").unwrap();
        let phd = b.entity_type("PhdStudent").unwrap();
        b.subtype(student, person).unwrap();
        b.subtype(employee, person).unwrap();
        b.subtype(phd, student).unwrap();
        b.subtype(phd, employee).unwrap();
        b.exclusive_types([student, employee]).unwrap();
        (b.finish(), phd, person)
    }

    #[test]
    fn serves_verdicts_and_meters_work() {
        let (schema, phd, person) = fig1();
        let service = ReasonerService::new(&schema, ServiceConfig::default());
        assert_eq!(service.check_type(phd, &ExecCx::unlimited()), Ok(SearchOutcome::Unsat));
        assert_eq!(service.check_type(person, &ExecCx::unlimited()), Ok(SearchOutcome::Sat));
        assert!(service.meter().proofs() >= 2);
        assert_eq!(service.inflight(), 0, "permit leaked");
        // Re-asks are cache hits.
        assert_eq!(service.check_type(phd, &ExecCx::unlimited()), Ok(SearchOutcome::Unsat));
        assert_eq!(service.stats().hits, 1);
    }

    #[test]
    fn drain_mode_sheds_everything_and_counts() {
        let (schema, phd, _) = fig1();
        let cfg = ServiceConfig { max_inflight: 0, ..ServiceConfig::default() };
        let service = ReasonerService::new(&schema, cfg);
        assert_eq!(service.check_type(phd, &ExecCx::unlimited()), Err(Overloaded));
        assert_eq!(service.admission(&ExecCx::unlimited()), Admission::Shed);
        assert_eq!(service.meter().sheds(), 1);
        assert_eq!(service.stats().sheds, 1);
        assert_eq!(service.inflight(), 0, "shed request held its slot");
    }

    #[test]
    fn hopeless_deadlines_and_dead_tokens_are_shed_up_front() {
        let (schema, phd, _) = fig1();
        let service = ReasonerService::new(&schema, ServiceConfig::default());
        let expired = ExecCx::unlimited().with_deadline(Instant::now() - Duration::from_millis(1));
        assert_eq!(service.check_type(phd, &expired), Err(Overloaded));
        let cancelled = ExecCx::unlimited();
        cancelled.cancel();
        assert_eq!(service.check_type(phd, &cancelled), Err(Overloaded));
        assert_eq!(service.meter().sheds(), 2);
        // Nothing was proved or cached by either.
        assert_eq!(service.stats().misses, 0);
    }

    #[test]
    fn soft_overload_degrades_to_an_honest_unknown() {
        let (schema, phd, _) = fig1();
        let cfg = ServiceConfig { soft_inflight: 0, degraded_steps: 1, ..ServiceConfig::default() };
        let service = ReasonerService::new(&schema, cfg);
        let verdict = service.check_type(phd, &ExecCx::unlimited()).unwrap();
        assert_eq!(verdict, SearchOutcome::BudgetExhausted, "degraded run wasn't honest");
        assert_eq!(service.meter().downgrades(), 1);
        assert_eq!(service.stats().downgrades, 1);
        // The degraded Unknown gates equally-starved retries (hit), but
        // never masks the richer truth: a fresh service at full budget
        // proves Unsat — and so would this one once load drops.
        let again = service.check_type(phd, &ExecCx::unlimited()).unwrap();
        assert_eq!(again, SearchOutcome::BudgetExhausted);
        assert_eq!(service.stats().hits, 1, "starved retry re-proved instead of hitting");
    }

    #[test]
    fn admission_tiers_follow_inflight_load() {
        let (schema, _, _) = fig1();
        let cfg = ServiceConfig { max_inflight: 8, soft_inflight: 4, ..ServiceConfig::default() };
        let service = ReasonerService::new(&schema, cfg);
        let cx = ExecCx::unlimited();
        assert_eq!(service.admission(&cx), Admission::Full);
        service.inflight.store(4, Ordering::SeqCst);
        assert_eq!(service.admission(&cx), Admission::Degraded);
        service.inflight.store(8, Ordering::SeqCst);
        assert_eq!(service.admission(&cx), Admission::Shed);
        service.inflight.store(0, Ordering::SeqCst);
    }

    #[test]
    fn concurrent_sessions_share_the_warm_cache() {
        let (schema, phd, person) = fig1();
        let service = ReasonerService::new(&schema, ServiceConfig::default());
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    assert_eq!(
                        service.check_type(phd, &ExecCx::unlimited()),
                        Ok(SearchOutcome::Unsat)
                    );
                    assert_eq!(
                        service.check_type(person, &ExecCx::unlimited()),
                        Ok(SearchOutcome::Sat)
                    );
                });
            }
        });
        let stats = service.stats();
        assert_eq!(stats.hits + stats.misses, 16);
        assert_eq!(service.inflight(), 0);
    }

    #[test]
    fn edits_keep_sessions_warm() {
        let (schema, phd, person) = fig1();
        let service = ReasonerService::new(&schema, ServiceConfig::default());
        assert_eq!(service.check_type(phd, &ExecCx::unlimited()), Ok(SearchOutcome::Unsat));
        assert_eq!(service.check_type(person, &ExecCx::unlimited()), Ok(SearchOutcome::Sat));
        service.edit(|e| e.add_subtype(phd, person));
        assert_eq!(service.check_type(phd, &ExecCx::unlimited()), Ok(SearchOutcome::Unsat));
        let stats = service.stats();
        assert_eq!(stats.invalidations, 0, "edit thrashed the shared cache");
        assert!(stats.retained >= 1);
    }

    #[test]
    fn warm_restart_round_trip() {
        let (schema, phd, person) = fig1();
        let service = ReasonerService::new(&schema, ServiceConfig::default());
        assert_eq!(service.check_type(phd, &ExecCx::unlimited()), Ok(SearchOutcome::Unsat));
        assert_eq!(service.check_type(person, &ExecCx::unlimited()), Ok(SearchOutcome::Sat));
        let blob = service.snapshot();
        assert_eq!(service.stats().snapshots, 1);

        let restarted = ReasonerService::new(&schema, ServiceConfig::default());
        let report = restarted.restore(&blob).expect("round trip");
        assert_eq!(report.entries, 2);
        assert_eq!(restarted.check_type(phd, &ExecCx::unlimited()), Ok(SearchOutcome::Unsat));
        assert_eq!(restarted.check_type(person, &ExecCx::unlimited()), Ok(SearchOutcome::Sat));
        let stats = restarted.stats();
        assert_eq!((stats.misses, stats.restores), (0, 1));

        // A corrupt blob degrades the next restart to a cold (correct) start.
        let mut bad = blob.clone();
        let mid = bad.len() / 2;
        bad[mid] ^= 0x10;
        let cold = ReasonerService::new(&schema, ServiceConfig::default());
        assert!(cold.restore(&bad).is_err());
        assert_eq!(cold.stats().corrupt_rejected, 1);
        assert_eq!(cold.check_type(phd, &ExecCx::unlimited()), Ok(SearchOutcome::Unsat));
    }
}
