//! A minimal host for [`orm_serve::ReasonerService`]: serve the paper's
//! Fig. 1 university schema, answer a satisfiability sweep, and persist
//! the warm verdict cache across runs.
//!
//! ```text
//! cargo run --release -p orm-serve --bin service -- /tmp/orm-cache.snap
//! ```
//!
//! The first run proves everything cold and writes the snapshot; later
//! runs restore it and answer from the warm cache (watch `misses` drop
//! to zero). Delete or corrupt the snapshot file and the service simply
//! starts cold again — corruption is detected and rejected, never
//! trusted.

use orm_dl::ExecCx;
use orm_model::{Schema, SchemaBuilder};
use orm_serve::{ReasonerService, ServiceConfig};

/// Fig. 1 of the paper, plus a doomed PhD student: Student and Employee
/// are exclusive, yet PhdStudent must be both.
fn university() -> Schema {
    let mut b = SchemaBuilder::new("university");
    let person = b.entity_type("Person").expect("fresh name");
    let student = b.entity_type("Student").expect("fresh name");
    let employee = b.entity_type("Employee").expect("fresh name");
    let phd = b.entity_type("PhdStudent").expect("fresh name");
    let course = b.entity_type("Course").expect("fresh name");
    b.subtype(student, person).expect("valid subtype");
    b.subtype(employee, person).expect("valid subtype");
    b.subtype(phd, student).expect("valid subtype");
    b.subtype(phd, employee).expect("valid subtype");
    b.exclusive_types([student, employee]).expect("valid exclusion");
    let enrolls = b.fact_type("Enrolls", student, course).expect("valid fact type");
    let [enrollee, _] = b.schema().fact_type(enrolls).roles();
    b.mandatory(enrollee).expect("valid mandatory");
    b.finish()
}

fn main() {
    let snapshot_path = std::env::args().nth(1);
    let schema = university();
    let service = ReasonerService::new(&schema, ServiceConfig::default());

    if let Some(path) = snapshot_path.as_deref() {
        match std::fs::read(path) {
            Ok(bytes) => match service.restore(&bytes) {
                Ok(report) => println!(
                    "restored {} cached verdicts ({} witnesses, {} cores) from {path}",
                    report.entries, report.witnesses, report.cores
                ),
                Err(err) => println!("snapshot rejected ({err}); starting cold"),
            },
            Err(_) => println!("no snapshot at {path}; starting cold"),
        }
    }

    let cx = ExecCx::unlimited();
    let verdicts = service.type_sweep(&schema, &cx).expect("admitted: service is idle");
    for (ty, verdict) in &verdicts {
        println!("  {:30} {verdict:?}", schema.object_type(*ty).name());
    }
    println!("cache: {}", service.stats());

    if let Some(path) = snapshot_path.as_deref() {
        let blob = service.snapshot();
        match std::fs::write(path, &blob) {
            Ok(()) => println!("snapshot ({} bytes) written to {path}", blob.len()),
            Err(err) => println!("could not write snapshot to {path}: {err}"),
        }
    }
}
