//! Property tests for the population semantics: satisfied populations stay
//! satisfied under growth where monotone, and every violation has a
//! matching mutation that introduces it.

use orm_model::{Schema, SchemaBuilder, Value};
use orm_population::{check, satisfies, CheckOptions, Population, Violation};
use proptest::prelude::*;

/// One fact type A—X with optional uniqueness/mandatory constraints chosen
/// by flags.
fn flagged_schema(unique: bool, mandatory: bool) -> Schema {
    let mut b = SchemaBuilder::new("p");
    let a = b.entity_type("A").expect("fresh");
    let x = b.entity_type("X").expect("fresh");
    let f = b.fact_type("f", a, x).expect("fresh");
    let r = b.schema().fact_type(f).first();
    if unique {
        b.unique([r]).expect("valid");
    }
    if mandatory {
        b.mandatory(r).expect("valid");
    }
    b.finish()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The empty population satisfies every generated schema.
    #[test]
    fn empty_population_is_always_a_model(unique: bool, mandatory: bool) {
        let schema = flagged_schema(unique, mandatory);
        prop_assert!(satisfies(&schema, &Population::new(), CheckOptions::default()));
    }

    /// Conformity: any tuple whose members are missing from the player
    /// extents is reported, and adding the members fixes exactly that.
    #[test]
    fn conformity_violations_track_extents(pairs in prop::collection::vec((0i64..3, 0i64..3), 1..6)) {
        let schema = flagged_schema(false, false);
        let a = schema.object_type_by_name("A").expect("exists");
        let x = schema.object_type_by_name("X").expect("exists");
        let f = schema.fact_type_by_name("f").expect("exists");
        let mut pop = Population::new();
        for (l, r) in &pairs {
            pop.add_fact(f, Value::int(*l), Value::int(*r + 100));
        }
        let violations = check(&schema, &pop, CheckOptions::default());
        let all_conformity =
            violations.iter().all(|v| matches!(v, Violation::Conformity { .. }));
        prop_assert!(all_conformity);
        prop_assert!(!violations.is_empty());
        for (l, r) in &pairs {
            pop.add_instance(a, Value::int(*l));
            pop.add_instance(x, Value::int(*r + 100));
        }
        prop_assert!(satisfies(&schema, &pop, CheckOptions::default()));
    }

    /// Uniqueness: duplicates in the constrained column are reported iff
    /// the constraint is present.
    #[test]
    fn uniqueness_fires_exactly_with_duplicates(unique: bool, n in 2usize..5) {
        let schema = flagged_schema(unique, false);
        let a = schema.object_type_by_name("A").expect("exists");
        let x = schema.object_type_by_name("X").expect("exists");
        let f = schema.fact_type_by_name("f").expect("exists");
        let mut pop = Population::new();
        pop.add_instance(a, "dup");
        for i in 0..n {
            pop.add_instance(x, Value::int(i as i64));
            pop.add_fact(f, Value::str("dup"), Value::int(i as i64));
        }
        let violations = check(&schema, &pop, CheckOptions::default());
        let has_uc_violation =
            violations.iter().any(|v| matches!(v, Violation::Uniqueness { .. }));
        prop_assert_eq!(has_uc_violation, unique);
    }

    /// Mandatory: an idle instance of the player is reported iff the
    /// constraint is present.
    #[test]
    fn mandatory_fires_exactly_for_idle_instances(mandatory: bool) {
        let schema = flagged_schema(false, mandatory);
        let a = schema.object_type_by_name("A").expect("exists");
        let mut pop = Population::new();
        pop.add_instance(a, "idle");
        let violations = check(&schema, &pop, CheckOptions::default());
        let has_mandatory =
            violations.iter().any(|v| matches!(v, Violation::Mandatory { .. }));
        prop_assert_eq!(has_mandatory, mandatory);
    }

    /// Removing a tuple never introduces conformity, value-constraint,
    /// exclusion or ring violations (those are anti-monotone in the fact
    /// table), and removing instances never introduces uniqueness
    /// violations.
    #[test]
    fn monotonicity_of_violation_classes(pairs in prop::collection::vec((0i64..3, 0i64..3), 1..6)) {
        let schema = flagged_schema(true, false);
        let a = schema.object_type_by_name("A").expect("exists");
        let x = schema.object_type_by_name("X").expect("exists");
        let f = schema.fact_type_by_name("f").expect("exists");
        let mut pop = Population::new();
        for (l, r) in &pairs {
            pop.add_instance(a, Value::int(*l));
            pop.add_instance(x, Value::int(*r));
            pop.add_fact(f, Value::int(*l), Value::int(*r));
        }
        let before: usize = check(&schema, &pop, CheckOptions::default())
            .iter()
            .filter(|v| matches!(v, Violation::Uniqueness { .. }))
            .count();
        // Remove one tuple: uniqueness violations cannot increase.
        let (l, r) = pairs[0];
        pop.remove_fact(f, &Value::int(l), &Value::int(r));
        let after: usize = check(&schema, &pop, CheckOptions::default())
            .iter()
            .filter(|v| matches!(v, Violation::Uniqueness { .. }))
            .count();
        prop_assert!(after <= before);
    }
}
