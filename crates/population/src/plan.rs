//! Compile-once bulk conformance: a certified [`CheckPlan`] lowering a
//! schema's constraints into vectorized primitives over a
//! [`ColumnarPopulation`].
//!
//! The paper's reasoning services are schema-level; populations only enter
//! as witnesses. Serving data-scale validation with the per-violation
//! checker ([`crate::check`]) would put `BTreeSet` probes and per-row
//! dispatch on the hot path for every row. Following the query-rewriting
//! idea (certify once, then answer with no reasoning on the data path),
//! [`CheckPlan::compile`] runs the tableau **once** — a type sweep through
//! the [`Translation`]'s verdict cache — and freezes the constraint set
//! into a flat op list:
//!
//! * mandatory → sorted-scan of the player extent against role bitsets;
//! * uniqueness/frequency → group-count runs over sorted tuple columns;
//! * exclusion (explicit, implicit, set-comparison) → bitset intersection
//!   and sorted-merge intersection;
//! * subset/subtype/totality → bitset containment scans;
//! * value/conformity/ring → columnar scans with binary-search probes.
//!
//! The plan is **keyed on the schema revision and the TBox cache stamp**
//! (the PR 4 invalidation tokens): any schema edit bumps one of them and
//! [`CheckPlan::is_current`] turns false, exactly like a stale verdict
//! cache entry. Execution streams into the ordinary [`Violation`] type, so
//! diagnostics and rendering work unchanged — and the compiled engine is
//! differential-tested to report *exactly* the same violation sequence as
//! [`crate::check`] (see `tests/bulk_conformance.rs`).

use crate::columnar::ColumnarPopulation;
use crate::{CheckOptions, Population, Violation};
use orm_dl::orm_to_dl::Translation;
use orm_dl::tableau::DlOutcome;
use orm_model::{
    Constraint, ConstraintId, FactTypeId, ObjectTypeId, RingKinds, RoleId, Schema,
    SetComparisonKind, Value,
};
use std::collections::BTreeMap;

/// One vectorized check, compiled from a schema constraint (or from an
/// implicit semantic rule such as conformity or implicit type exclusion).
#[derive(Clone, Debug)]
enum CheckOp {
    /// Every tuple value must conform to its role player's extent.
    Conformity { fact: FactTypeId, roles: [RoleId; 2], players: [ObjectTypeId; 2] },
    /// Extent values must be admitted by the type's value constraint.
    ValueDomain { ty: ObjectTypeId },
    /// Subtype extent ⊆ supertype extent.
    SubtypeSubset { sub: ObjectTypeId, sup: ObjectTypeId },
    /// Strict-subset semantics: non-empty subtype extent ≠ supertype's.
    SubtypeProper { sub: ObjectTypeId, sup: ObjectTypeId },
    /// Implicit exclusion of a type pair with no common supertype.
    ImplicitExclusion { a: ObjectTypeId, b: ObjectTypeId },
    /// Every player instance plays at least one covered role.
    Mandatory { constraint: ConstraintId, player: ObjectTypeId, roles: Vec<RoleId> },
    /// Group-count bounds over a projection of one fact table
    /// (uniqueness is `min = max = 1`).
    GroupCount {
        constraint: ConstraintId,
        fact: FactTypeId,
        positions: Vec<u8>,
        min: u32,
        max: Option<u32>,
        is_uniqueness: bool,
    },
    /// Subset / equality / exclusion over role-sequence populations.
    SetCompare { constraint: ConstraintId, kind: SetComparisonKind, args: Vec<SeqSpec> },
    /// Pairwise-disjoint type extents.
    ExclusiveTypes { constraint: ConstraintId, types: Vec<ObjectTypeId> },
    /// Supertype extent covered by the union of subtype extents.
    Totality { constraint: ConstraintId, supertype: ObjectTypeId, subtypes: Vec<ObjectTypeId> },
    /// Ring properties of one fact table.
    Ring { constraint: ConstraintId, fact: FactTypeId, kinds: RingKinds },
}

/// A compiled role sequence: a single role's projection column, or a
/// permutation of a fact table's two columns.
#[derive(Clone, Debug)]
enum SeqSpec {
    Single(RoleId),
    Pair { fact: FactTypeId, positions: [u8; 2] },
}

/// A compiled, certified constraint-check plan (see the
/// [module docs](self)).
#[derive(Clone, Debug)]
pub struct CheckPlan {
    schema_revision: u64,
    tbox_stamp: (u64, u64),
    options: CheckOptions,
    ops: Vec<CheckOp>,
    /// Whether the compile-time tableau sweep proved every object type
    /// satisfiable (the "certified Sat" verdict the plan rides on).
    certified_sat: bool,
    /// Object types the sweep proved *unsatisfiable*: any population
    /// giving them a non-empty extent is doomed before execution starts.
    unsat_types: Vec<ObjectTypeId>,
}

impl CheckPlan {
    /// Compile `schema`'s constraints into a plan, certifying the schema
    /// through `translation`'s tableau (one cached type sweep under
    /// `budget`). The plan is stamped with the schema revision and the
    /// TBox cache stamp so later edits invalidate it.
    pub fn compile(
        schema: &Schema,
        translation: &Translation,
        budget: u64,
        options: CheckOptions,
    ) -> CheckPlan {
        let sweep = translation.type_sweep(schema, budget);
        let certified_sat = sweep.iter().all(|(_, o)| *o == DlOutcome::Sat);
        let unsat_types: Vec<ObjectTypeId> =
            sweep.iter().filter(|(_, o)| *o == DlOutcome::Unsat).map(|(ty, _)| *ty).collect();

        let idx = schema.index();
        let mut ops = Vec::new();
        // Op order mirrors `crate::check` exactly: the differential tests
        // compare full violation sequences, not just sets.
        for (fid, ft) in schema.fact_types() {
            ops.push(CheckOp::Conformity {
                fact: fid,
                roles: ft.roles(),
                players: [schema.player(ft.first()), schema.player(ft.second())],
            });
        }
        for (ty, ot) in schema.object_types() {
            if ot.value_constraint().is_some() {
                ops.push(CheckOp::ValueDomain { ty });
            }
        }
        for link in schema.subtype_links() {
            ops.push(CheckOp::SubtypeSubset { sub: link.sub, sup: link.sup });
            if options.proper_subtypes {
                ops.push(CheckOp::SubtypeProper { sub: link.sub, sup: link.sup });
            }
        }
        if options.implicit_type_exclusion {
            let types: Vec<ObjectTypeId> = schema.object_types().map(|(id, _)| id).collect();
            for (i, &a) in types.iter().enumerate() {
                for &b in types.iter().skip(i + 1) {
                    if !idx.may_overlap(a, b) {
                        ops.push(CheckOp::ImplicitExclusion { a, b });
                    }
                }
            }
        }
        for (cid, c) in schema.constraints() {
            ops.push(match c {
                Constraint::Mandatory(m) => CheckOp::Mandatory {
                    constraint: cid,
                    player: schema.player(m.roles[0]),
                    roles: m.roles.clone(),
                },
                Constraint::Uniqueness(u) => CheckOp::GroupCount {
                    constraint: cid,
                    fact: schema.role(u.roles[0]).fact_type(),
                    positions: u.roles.iter().map(|r| schema.role(*r).position()).collect(),
                    min: 1,
                    max: Some(1),
                    is_uniqueness: true,
                },
                Constraint::Frequency(f) => CheckOp::GroupCount {
                    constraint: cid,
                    fact: schema.role(f.roles[0]).fact_type(),
                    positions: f.roles.iter().map(|r| schema.role(*r).position()).collect(),
                    min: f.min,
                    max: f.max,
                    is_uniqueness: false,
                },
                Constraint::SetComparison(sc) => CheckOp::SetCompare {
                    constraint: cid,
                    kind: sc.kind,
                    args: sc
                        .args
                        .iter()
                        .map(|seq| match seq.roles() {
                            [r] => SeqSpec::Single(*r),
                            [a, b] => SeqSpec::Pair {
                                fact: schema.role(*a).fact_type(),
                                positions: [schema.role(*a).position(), schema.role(*b).position()],
                            },
                            _ => unreachable!("role sequences have length 1 or 2"),
                        })
                        .collect(),
                },
                Constraint::ExclusiveTypes(e) => {
                    CheckOp::ExclusiveTypes { constraint: cid, types: e.types.clone() }
                }
                Constraint::TotalSubtypes(t) => CheckOp::Totality {
                    constraint: cid,
                    supertype: t.supertype,
                    subtypes: t.subtypes.clone(),
                },
                Constraint::Ring(r) => {
                    CheckOp::Ring { constraint: cid, fact: r.fact_type, kinds: r.kinds }
                }
            });
        }

        CheckPlan {
            schema_revision: schema.revision(),
            tbox_stamp: translation.tbox.cache_stamp(),
            options,
            ops,
            certified_sat,
            unsat_types,
        }
    }

    /// Whether the plan still matches `schema` + `translation`: both the
    /// schema revision and the TBox cache stamp must be unchanged. Any
    /// edit — builder mutation or [`EditSession`] axiom — flips this to
    /// `false`, exactly like a stale [`SatCache`] entry.
    ///
    /// [`EditSession`]: orm_dl::orm_to_dl::EditSession
    /// [`SatCache`]: orm_dl::cache::SatCache
    pub fn is_current(&self, schema: &Schema, translation: &Translation) -> bool {
        self.schema_revision == schema.revision()
            && self.tbox_stamp == translation.tbox.cache_stamp()
    }

    /// The schema revision the plan was compiled against.
    pub fn schema_revision(&self) -> u64 {
        self.schema_revision
    }

    /// The TBox cache stamp the plan was compiled against.
    pub fn tbox_stamp(&self) -> (u64, u64) {
        self.tbox_stamp
    }

    /// The options the plan was compiled under.
    pub fn options(&self) -> CheckOptions {
        self.options
    }

    /// Number of compiled ops.
    pub fn op_count(&self) -> usize {
        self.ops.len()
    }

    /// Whether the compile-time sweep proved every object type
    /// satisfiable.
    pub fn certified_sat(&self) -> bool {
        self.certified_sat
    }

    /// Object types the compile-time sweep proved unsatisfiable.
    pub fn unsat_types(&self) -> &[ObjectTypeId] {
        &self.unsat_types
    }

    /// Freeze `pop` into columnar form and execute the plan. Returns the
    /// same violation sequence [`crate::check`] would.
    pub fn execute(&self, schema: &Schema, pop: &Population) -> Vec<Violation> {
        let cols = ColumnarPopulation::build(schema, pop);
        self.execute_columnar(schema, &cols)
    }

    /// Execute over an already-frozen columnar population (amortize the
    /// freeze across repeated runs).
    pub fn execute_columnar(&self, schema: &Schema, cols: &ColumnarPopulation) -> Vec<Violation> {
        let mut out = Vec::new();
        for op in &self.ops {
            run_op(op, schema, cols, &mut out);
        }
        out
    }
}

fn run_op(op: &CheckOp, schema: &Schema, cols: &ColumnarPopulation, out: &mut Vec<Violation>) {
    match op {
        CheckOp::Conformity { fact, roles, players } => {
            for &(a, b) in cols.fact_col(*fact) {
                for (id, (role, player)) in [a, b].into_iter().zip(roles.iter().zip(players)) {
                    if !cols.extent_bits(*player).contains(id) {
                        out.push(Violation::Conformity {
                            role: *role,
                            value: cols.value(id).clone(),
                            player: *player,
                        });
                    }
                }
            }
        }
        CheckOp::ValueDomain { ty } => {
            let Some(vc) = schema.object_type(*ty).value_constraint() else { return };
            for &id in cols.extent_col(*ty) {
                if !vc.admits(cols.value(id)) {
                    out.push(Violation::ValueConstraint { ty: *ty, value: cols.value(id).clone() });
                }
            }
        }
        CheckOp::SubtypeSubset { sub, sup } => {
            let sup_bits = cols.extent_bits(*sup);
            for &id in cols.extent_col(*sub) {
                if !sup_bits.contains(id) {
                    out.push(Violation::SubtypeNotSubset {
                        sub: *sub,
                        sup: *sup,
                        value: cols.value(id).clone(),
                    });
                }
            }
        }
        CheckOp::SubtypeProper { sub, sup } => {
            let sub_col = cols.extent_col(*sub);
            if !sub_col.is_empty() && sub_col == cols.extent_col(*sup) {
                out.push(Violation::SubtypeNotProper { sub: *sub, sup: *sup });
            }
        }
        CheckOp::ImplicitExclusion { a, b } => {
            for id in cols.extent_bits(*a).iter_and(cols.extent_bits(*b)) {
                out.push(Violation::ImplicitExclusion {
                    a: *a,
                    b: *b,
                    value: cols.value(id).clone(),
                });
            }
        }
        CheckOp::Mandatory { constraint, player, roles } => {
            for &id in cols.extent_col(*player) {
                if !roles.iter().any(|r| cols.role_bits(*r).contains(id)) {
                    out.push(Violation::Mandatory {
                        constraint: *constraint,
                        value: cols.value(id).clone(),
                    });
                }
            }
        }
        CheckOp::GroupCount { constraint, fact, positions, min, max, is_uniqueness } => {
            run_group_count(cols, *fact, positions, *min, *max, *is_uniqueness, *constraint, out);
        }
        CheckOp::SetCompare { constraint, kind, args } => {
            run_set_compare(cols, *constraint, *kind, args, out);
        }
        CheckOp::ExclusiveTypes { constraint, types } => {
            for (i, &a) in types.iter().enumerate() {
                for &b in types.iter().skip(i + 1) {
                    for id in cols.extent_bits(a).iter_and(cols.extent_bits(b)) {
                        out.push(Violation::ExclusiveTypes {
                            constraint: *constraint,
                            value: cols.value(id).clone(),
                        });
                    }
                }
            }
        }
        CheckOp::Totality { constraint, supertype, subtypes } => {
            for &id in cols.extent_col(*supertype) {
                if !subtypes.iter().any(|s| cols.extent_bits(*s).contains(id)) {
                    out.push(Violation::Totality {
                        constraint: *constraint,
                        value: cols.value(id).clone(),
                    });
                }
            }
        }
        CheckOp::Ring { constraint, fact, kinds } => {
            run_ring(cols, *constraint, *fact, *kinds, out);
        }
    }
}

/// Emit a group's violation if its size is out of bounds. `key` ids are
/// resolved back to values only on the (rare) violation path.
#[allow(clippy::too_many_arguments)]
fn emit_count(
    cols: &ColumnarPopulation,
    constraint: ConstraintId,
    key: &[u32],
    count: u32,
    min: u32,
    max: Option<u32>,
    is_uniqueness: bool,
    out: &mut Vec<Violation>,
) {
    if count < min || max.is_some_and(|m| count > m) {
        let combo: Vec<Value> = key.iter().map(|&id| cols.value(id).clone()).collect();
        if is_uniqueness {
            out.push(Violation::Uniqueness { constraint, combo, count });
        } else {
            out.push(Violation::Frequency { constraint, combo, count, min, max });
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn run_group_count(
    cols: &ColumnarPopulation,
    fact: FactTypeId,
    positions: &[u8],
    min: u32,
    max: Option<u32>,
    is_uniqueness: bool,
    constraint: ConstraintId,
    out: &mut Vec<Violation>,
) {
    let col = cols.fact_col(fact);
    match positions {
        // First-column groups: the tuple column is already sorted by its
        // first component, so counting is one run-length scan.
        [0] => {
            let mut i = 0;
            while i < col.len() {
                let key = col[i].0;
                let mut j = i + 1;
                while j < col.len() && col[j].0 == key {
                    j += 1;
                }
                emit_count(cols, constraint, &[key], (j - i) as u32, min, max, is_uniqueness, out);
                i = j;
            }
        }
        // Second-column groups: project, sort, run-scan. Ascending id
        // order is ascending value order, so groups come out in the same
        // order the per-violation checker's `BTreeMap` yields them.
        [1] => {
            let mut keys: Vec<u32> = col.iter().map(|&(_, b)| b).collect();
            keys.sort_unstable();
            let mut i = 0;
            while i < keys.len() {
                let key = keys[i];
                let mut j = i + 1;
                while j < keys.len() && keys[j] == key {
                    j += 1;
                }
                emit_count(cols, constraint, &[key], (j - i) as u32, min, max, is_uniqueness, out);
                i = j;
            }
        }
        // Both columns (possibly swapped): tuples are a set, so every
        // group has size 1 — but keep the generic scan for `min > 1`
        // frequency constraints.
        [p0, p1] => {
            let pick = |t: (u32, u32), p: u8| if p == 0 { t.0 } else { t.1 };
            let mut keys: Vec<(u32, u32)> =
                col.iter().map(|&t| (pick(t, *p0), pick(t, *p1))).collect();
            keys.sort_unstable();
            let mut i = 0;
            while i < keys.len() {
                let key = keys[i];
                let mut j = i + 1;
                while j < keys.len() && keys[j] == key {
                    j += 1;
                }
                emit_count(
                    cols,
                    constraint,
                    &[key.0, key.1],
                    (j - i) as u32,
                    min,
                    max,
                    is_uniqueness,
                    out,
                );
                i = j;
            }
        }
        _ => unreachable!("role sequences have length 1 or 2"),
    }
}

/// The population of a compiled role sequence as sorted, deduplicated
/// id keys (length 1 or 2 each).
fn seq_keys(cols: &ColumnarPopulation, spec: &SeqSpec) -> Vec<Vec<u32>> {
    match spec {
        SeqSpec::Single(r) => cols.role_col(*r).iter().map(|&id| vec![id]).collect(),
        SeqSpec::Pair { fact, positions } => {
            let pick = |t: (u32, u32), p: u8| if p == 0 { t.0 } else { t.1 };
            let mut keys: Vec<Vec<u32>> = cols
                .fact_col(*fact)
                .iter()
                .map(|&t| vec![pick(t, positions[0]), pick(t, positions[1])])
                .collect();
            keys.sort_unstable();
            keys.dedup();
            keys
        }
    }
}

fn resolve_key(cols: &ColumnarPopulation, key: &[u32]) -> Vec<Value> {
    key.iter().map(|&id| cols.value(id).clone()).collect()
}

fn run_set_compare(
    cols: &ColumnarPopulation,
    constraint: ConstraintId,
    kind: SetComparisonKind,
    args: &[SeqSpec],
    out: &mut Vec<Violation>,
) {
    let pops: Vec<Vec<Vec<u32>>> = args.iter().map(|spec| seq_keys(cols, spec)).collect();
    match kind {
        SetComparisonKind::Subset => {
            // Sorted-merge set difference pops[0] \ pops[1]; id order is
            // value order, so emissions match the BTreeSet difference.
            for item in sorted_difference(&pops[0], &pops[1]) {
                let item = resolve_key(cols, item);
                out.push(Violation::SetComparison {
                    constraint,
                    detail: format!("{item:?} is in the sub-population but not the super"),
                });
            }
        }
        SetComparisonKind::Equality => {
            for (i, p) in pops.iter().enumerate().skip(1) {
                if p != &pops[0] {
                    out.push(Violation::SetComparison {
                        constraint,
                        detail: format!("argument {i} differs from argument 0"),
                    });
                }
            }
        }
        SetComparisonKind::Exclusion => {
            for i in 0..pops.len() {
                for j in (i + 1)..pops.len() {
                    for item in sorted_intersection(&pops[i], &pops[j]) {
                        let item = resolve_key(cols, item);
                        out.push(Violation::SetComparison {
                            constraint,
                            detail: format!("{item:?} occurs in arguments {i} and {j}"),
                        });
                    }
                }
            }
        }
    }
}

/// Elements of sorted `a` not in sorted `b`, ascending.
fn sorted_difference<'a, T: Ord>(a: &'a [T], b: &'a [T]) -> impl Iterator<Item = &'a T> {
    let mut j = 0;
    a.iter().filter(move |x| {
        while j < b.len() && b[j] < **x {
            j += 1;
        }
        !(j < b.len() && b[j] == **x)
    })
}

/// Elements present in both sorted slices, ascending.
fn sorted_intersection<'a, T: Ord>(a: &'a [T], b: &'a [T]) -> impl Iterator<Item = &'a T> {
    let mut j = 0;
    a.iter().filter(move |x| {
        while j < b.len() && b[j] < **x {
            j += 1;
        }
        j < b.len() && b[j] == **x
    })
}

fn run_ring(
    cols: &ColumnarPopulation,
    constraint: ConstraintId,
    fact: FactTypeId,
    kinds: RingKinds,
    out: &mut Vec<Violation>,
) {
    use orm_model::RingKind;
    let tuples = cols.fact_col(fact);
    let holds = |x: u32, y: u32| tuples.binary_search(&(x, y)).is_ok();
    let show = |id: u32| cols.value(id);
    for kind in kinds.iter() {
        let violated: Option<String> = match kind {
            RingKind::Irreflexive => tuples
                .iter()
                .find(|(x, y)| x == y)
                .map(|&(x, _)| format!("self-pair ({}, {})", show(x), show(x))),
            RingKind::Antisymmetric => {
                tuples.iter().find(|&&(x, y)| x != y && holds(y, x)).map(|&(x, y)| {
                    format!(
                        "both ({}, {}) and ({}, {}) present",
                        show(x),
                        show(y),
                        show(y),
                        show(x)
                    )
                })
            }
            RingKind::Asymmetric => tuples.iter().find(|&&(x, y)| holds(y, x)).map(|&(x, y)| {
                format!("both ({}, {}) and ({}, {}) present", show(x), show(y), show(y), show(x))
            }),
            RingKind::Symmetric => tuples.iter().find(|&&(x, y)| !holds(y, x)).map(|&(x, y)| {
                format!("({}, {}) present without ({}, {})", show(x), show(y), show(y), show(x))
            }),
            RingKind::Intransitive => {
                let mut found = None;
                'outer: for &(x, y) in tuples {
                    // All (y, z) successors form one contiguous run of the
                    // sorted column — same matches, same order, no O(n²).
                    let lo = tuples.partition_point(|&(a, _)| a < y);
                    let hi = tuples.partition_point(|&(a, _)| a <= y);
                    for &(_, z) in &tuples[lo..hi] {
                        if holds(x, z) {
                            found = Some(format!(
                                "({}, {}), ({}, {}) and ({}, {}) present",
                                show(x),
                                show(y),
                                show(y),
                                show(z),
                                show(x),
                                show(z)
                            ));
                            break 'outer;
                        }
                    }
                }
                found
            }
            RingKind::Acyclic => find_cycle_ids(tuples).map(|cycle| {
                let names: Vec<String> = cycle.iter().map(|&id| show(id).to_string()).collect();
                format!("cycle through {}", names.join(" -> "))
            }),
        };
        if let Some(witness) = violated {
            out.push(Violation::Ring { constraint, kind, witness });
        }
    }
}

/// Find a directed cycle in the (sorted) tuple column, if any — the
/// iterative twin of the per-violation checker's recursive `find_cycle`,
/// visiting nodes and neighbors in exactly the same order so the reported
/// cycle is identical (and deep chains can't blow the stack).
fn find_cycle_ids(tuples: &[(u32, u32)]) -> Option<Vec<u32>> {
    let mut adjacency: BTreeMap<u32, Vec<u32>> = BTreeMap::new();
    for &(x, y) in tuples {
        adjacency.entry(x).or_default().push(y);
    }
    let nodes: Vec<u32> = adjacency.keys().copied().collect();
    // 0 = unvisited, 1 = on the current path (gray), 2 = done (black).
    let mut state: BTreeMap<u32, u8> = BTreeMap::new();
    for node in nodes {
        if state.get(&node).copied().unwrap_or(0) != 0 {
            continue;
        }
        let mut stack: Vec<(u32, usize)> = vec![(node, 0)];
        state.insert(node, 1);
        while let Some(&(n, i)) = stack.last() {
            let neighbors = adjacency.get(&n).map_or(&[][..], Vec::as_slice);
            if i < neighbors.len() {
                stack.last_mut().expect("stack is non-empty").1 = i + 1;
                let next = neighbors[i];
                match state.get(&next).copied().unwrap_or(0) {
                    1 => {
                        let start = stack.iter().position(|(m, _)| *m == next).unwrap_or(0);
                        let mut cycle: Vec<u32> = stack[start..].iter().map(|(m, _)| *m).collect();
                        cycle.push(next);
                        return Some(cycle);
                    }
                    0 => {
                        state.insert(next, 1);
                        stack.push((next, 0));
                    }
                    _ => {}
                }
            } else {
                state.insert(n, 2);
                stack.pop();
            }
        }
    }
    None
}
