//! Concrete populations: type extents and fact tables.

use orm_model::{FactTypeId, ObjectTypeId, RoleId, Schema, Value};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::sync::OnceLock;

fn empty_extent() -> &'static BTreeSet<Value> {
    static EMPTY: OnceLock<BTreeSet<Value>> = OnceLock::new();
    EMPTY.get_or_init(BTreeSet::new)
}

/// An interpretation of a schema: instances per object type, tuples per
/// fact type. Instances are plain [`Value`]s so identity is shared across
/// types (as subtyping requires).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Population {
    extents: BTreeMap<ObjectTypeId, BTreeSet<Value>>,
    facts: BTreeMap<FactTypeId, BTreeSet<(Value, Value)>>,
}

impl Population {
    /// The empty population (always a model of any schema in this
    /// constraint language).
    pub fn new() -> Population {
        Population::default()
    }

    /// Add an instance to a type's extent. Idempotent.
    pub fn add_instance(&mut self, ty: ObjectTypeId, value: impl Into<Value>) {
        self.extents.entry(ty).or_default().insert(value.into());
    }

    /// Remove an instance from a type's extent; returns whether it was
    /// present.
    pub fn remove_instance(&mut self, ty: ObjectTypeId, value: &Value) -> bool {
        self.extents.get_mut(&ty).is_some_and(|e| e.remove(value))
    }

    /// Add a tuple to a fact table. Idempotent (fact tables are sets).
    pub fn add_fact(
        &mut self,
        fact: FactTypeId,
        first: impl Into<Value>,
        second: impl Into<Value>,
    ) {
        self.facts.entry(fact).or_default().insert((first.into(), second.into()));
    }

    /// Remove a tuple; returns whether it was present.
    pub fn remove_fact(&mut self, fact: FactTypeId, first: &Value, second: &Value) -> bool {
        self.facts.get_mut(&fact).is_some_and(|t| t.remove(&(first.clone(), second.clone())))
    }

    /// The extent of an object type (empty set if never populated).
    pub fn extent(&self, ty: ObjectTypeId) -> &BTreeSet<Value> {
        self.extents.get(&ty).unwrap_or_else(|| empty_extent())
    }

    /// Iterate over the tuples of a fact type.
    pub fn tuples(&self, fact: FactTypeId) -> impl Iterator<Item = &(Value, Value)> {
        self.facts.get(&fact).into_iter().flatten()
    }

    /// Number of tuples in a fact table.
    pub fn fact_count(&self, fact: FactTypeId) -> usize {
        self.facts.get(&fact).map_or(0, BTreeSet::len)
    }

    /// The population of a role: the projection of its fact table onto the
    /// role's column. This is the set the paper's "role satisfiability"
    /// quantifies over.
    pub fn role_population(&self, schema: &Schema, role: RoleId) -> BTreeSet<Value> {
        self.role_values(schema, role).cloned().collect()
    }

    /// Borrowed projection of a role's fact table onto the role's column —
    /// the non-allocating companion of [`Population::role_population`].
    /// Yields one value **per tuple** (duplicates included) in fact-table
    /// order; collect into a set when projection semantics is needed, or
    /// scan directly when a membership/containment test is enough.
    pub fn role_values<'a>(
        &'a self,
        schema: &Schema,
        role: RoleId,
    ) -> impl Iterator<Item = &'a Value> {
        let r = schema.role(role);
        let position = r.position();
        self.tuples(r.fact_type()).map(move |(a, b)| if position == 0 { a } else { b })
    }

    /// Whether a role has a non-empty population.
    pub fn role_populated(&self, schema: &Schema, role: RoleId) -> bool {
        let r = schema.role(role);
        self.facts.get(&r.fact_type()).is_some_and(|t| !t.is_empty())
    }

    /// Whether a type has a non-empty extent.
    pub fn type_populated(&self, ty: ObjectTypeId) -> bool {
        self.extents.get(&ty).is_some_and(|e| !e.is_empty())
    }

    /// Whether nothing at all is populated.
    pub fn is_empty(&self) -> bool {
        self.extents.values().all(BTreeSet::is_empty) && self.facts.values().all(BTreeSet::is_empty)
    }

    /// Total instance + tuple count (for reporting).
    pub fn size(&self) -> usize {
        self.extents.values().map(BTreeSet::len).sum::<usize>()
            + self.facts.values().map(BTreeSet::len).sum::<usize>()
    }

    /// Render against a schema, with element names resolved.
    pub fn render(&self, schema: &Schema) -> String {
        let mut out = String::new();
        for (ty, extent) in &self.extents {
            if extent.is_empty() {
                continue;
            }
            let values: Vec<String> = extent.iter().map(Value::to_string).collect();
            out.push_str(&format!(
                "  {} = {{{}}}\n",
                schema.object_type(*ty).name(),
                values.join(", ")
            ));
        }
        for (fact, tuples) in &self.facts {
            if tuples.is_empty() {
                continue;
            }
            let pairs: Vec<String> = tuples.iter().map(|(a, b)| format!("({a}, {b})")).collect();
            out.push_str(&format!(
                "  {} = {{{}}}\n",
                schema.fact_type(*fact).name(),
                pairs.join(", ")
            ));
        }
        if out.is_empty() {
            out.push_str("  (empty population)\n");
        }
        out
    }
}

impl fmt::Display for Population {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Population({} elements)", self.size())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orm_model::SchemaBuilder;

    #[test]
    fn extents_are_sets() {
        let mut pop = Population::new();
        let ty = ObjectTypeId::from_raw(0);
        pop.add_instance(ty, "a");
        pop.add_instance(ty, "a");
        assert_eq!(pop.extent(ty).len(), 1);
        assert!(pop.type_populated(ty));
        assert!(pop.remove_instance(ty, &Value::str("a")));
        assert!(!pop.remove_instance(ty, &Value::str("a")));
        assert!(pop.is_empty());
    }

    #[test]
    fn fact_tables_are_sets() {
        let mut pop = Population::new();
        let f = FactTypeId::from_raw(0);
        pop.add_fact(f, "a", "b");
        pop.add_fact(f, "a", "b");
        assert_eq!(pop.fact_count(f), 1);
        assert!(pop.remove_fact(f, &Value::str("a"), &Value::str("b")));
        assert_eq!(pop.fact_count(f), 0);
    }

    #[test]
    fn role_population_projects_columns() {
        let mut b = SchemaBuilder::new("s");
        let a = b.entity_type("A").unwrap();
        let x = b.entity_type("X").unwrap();
        let f = b.fact_type("f", a, x).unwrap();
        let s = b.finish();
        let [r0, r1] = s.fact_type(f).roles();
        let mut pop = Population::new();
        pop.add_fact(f, "a1", "x1");
        pop.add_fact(f, "a1", "x2");
        assert_eq!(pop.role_population(&s, r0).len(), 1);
        assert_eq!(pop.role_population(&s, r1).len(), 2);
        assert!(pop.role_populated(&s, r0));
    }

    #[test]
    fn render_mentions_names() {
        let mut b = SchemaBuilder::new("s");
        let a = b.entity_type("Person").unwrap();
        let f = b.fact_type("knows", a, a).unwrap();
        let s = b.finish();
        let mut pop = Population::new();
        pop.add_instance(a, "ann");
        pop.add_fact(f, "ann", "ann");
        let rendered = pop.render(&s);
        assert!(rendered.contains("Person"));
        assert!(rendered.contains("knows"));
        assert!(Population::new().render(&s).contains("empty"));
    }

    #[test]
    fn size_counts_everything() {
        let mut pop = Population::new();
        pop.add_instance(ObjectTypeId::from_raw(0), "a");
        pop.add_fact(FactTypeId::from_raw(0), "a", "b");
        assert_eq!(pop.size(), 2);
    }
}
