//! Constraint violations found while checking a population.

use orm_model::{ConstraintId, ObjectTypeId, RingKind, RoleId, Schema, Value};
use std::fmt;

/// One way a population fails to satisfy a schema.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Violation {
    /// A fact tuple's value is not a member of the role player's extent.
    Conformity {
        /// The role whose column holds the stray value.
        role: RoleId,
        /// The value.
        value: Value,
        /// The player type it should belong to.
        player: ObjectTypeId,
    },
    /// A type extent contains a value its value constraint does not admit.
    ValueConstraint {
        /// The constrained type.
        ty: ObjectTypeId,
        /// The inadmissible value.
        value: Value,
    },
    /// A subtype instance missing from the supertype extent.
    SubtypeNotSubset {
        /// The subtype.
        sub: ObjectTypeId,
        /// The supertype.
        sup: ObjectTypeId,
        /// The offending value.
        value: Value,
    },
    /// Strict-subset semantics: a non-empty subtype population equals its
    /// supertype's.
    SubtypeNotProper {
        /// The subtype.
        sub: ObjectTypeId,
        /// The supertype.
        sup: ObjectTypeId,
    },
    /// ORM's implicit exclusion: two unrelated types share an instance.
    ImplicitExclusion {
        /// First type.
        a: ObjectTypeId,
        /// Second type.
        b: ObjectTypeId,
        /// The shared value.
        value: Value,
    },
    /// An instance of the player does not play any covered role.
    Mandatory {
        /// The violated constraint.
        constraint: ConstraintId,
        /// The non-playing instance.
        value: Value,
    },
    /// A combination occurs more than once under a uniqueness constraint.
    Uniqueness {
        /// The violated constraint.
        constraint: ConstraintId,
        /// The repeated combination.
        combo: Vec<Value>,
        /// How often it occurs.
        count: u32,
    },
    /// A combination occurs outside the frequency bounds.
    Frequency {
        /// The violated constraint.
        constraint: ConstraintId,
        /// The offending combination.
        combo: Vec<Value>,
        /// How often it occurs.
        count: u32,
        /// Required lower bound.
        min: u32,
        /// Required upper bound, if any.
        max: Option<u32>,
    },
    /// A subset/equality/exclusion constraint does not hold.
    SetComparison {
        /// The violated constraint.
        constraint: ConstraintId,
        /// Human-readable witness.
        detail: String,
    },
    /// Two exclusive types share an instance.
    ExclusiveTypes {
        /// The violated constraint.
        constraint: ConstraintId,
        /// The shared value.
        value: Value,
    },
    /// A supertype instance not covered by any subtype.
    Totality {
        /// The violated constraint.
        constraint: ConstraintId,
        /// The uncovered value.
        value: Value,
    },
    /// A ring constraint kind does not hold on the fact table.
    Ring {
        /// The violated constraint.
        constraint: ConstraintId,
        /// Which kind failed.
        kind: RingKind,
        /// Human-readable witness.
        witness: String,
    },
}

impl Violation {
    /// Render with names resolved against `schema`.
    pub fn render(&self, schema: &Schema) -> String {
        match self {
            Violation::Conformity { role, value, player } => format!(
                "value {value} in role `{}` is not an instance of `{}`",
                schema.role_label(*role),
                schema.object_type(*player).name()
            ),
            Violation::ValueConstraint { ty, value } => format!(
                "value {value} is not admitted by the value constraint on `{}`",
                schema.object_type(*ty).name()
            ),
            Violation::SubtypeNotSubset { sub, sup, value } => format!(
                "{value} is a `{}` but not a `{}`",
                schema.object_type(*sub).name(),
                schema.object_type(*sup).name()
            ),
            Violation::SubtypeNotProper { sub, sup } => format!(
                "population of subtype `{}` equals its supertype `{}` (strict subset required)",
                schema.object_type(*sub).name(),
                schema.object_type(*sup).name()
            ),
            Violation::ImplicitExclusion { a, b, value } => format!(
                "{value} belongs to both `{}` and `{}`, which share no common supertype",
                schema.object_type(*a).name(),
                schema.object_type(*b).name()
            ),
            Violation::Mandatory { constraint, value } => {
                format!("{value} does not play the mandatory role(s) of {constraint}")
            }
            Violation::Uniqueness { constraint, combo, count } => {
                format!("combination {combo:?} occurs {count} times under uniqueness {constraint}")
            }
            Violation::Frequency { constraint, combo, count, min, max } => format!(
                "combination {combo:?} occurs {count} times, outside FC({min}-{}) of {constraint}",
                max.map_or("∞".to_owned(), |m| m.to_string())
            ),
            Violation::SetComparison { constraint, detail } => {
                format!("set-comparison {constraint} violated: {detail}")
            }
            Violation::ExclusiveTypes { constraint, value } => {
                format!("{value} is shared by the exclusive types of {constraint}")
            }
            Violation::Totality { constraint, value } => {
                format!("{value} is not covered by any subtype required by {constraint}")
            }
            Violation::Ring { constraint, kind, witness } => {
                format!("ring kind `{kind}` of {constraint} violated: {witness}")
            }
        }
    }
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orm_model::SchemaBuilder;

    #[test]
    fn render_resolves_names() {
        let mut b = SchemaBuilder::new("s");
        let person = b.entity_type("Person").unwrap();
        let student = b.entity_type("Student").unwrap();
        b.subtype(student, person).unwrap();
        let s = b.finish();
        let v = Violation::SubtypeNotSubset { sub: student, sup: person, value: Value::str("ann") };
        let rendered = v.render(&s);
        assert!(rendered.contains("Student"));
        assert!(rendered.contains("Person"));
        assert!(rendered.contains("ann"));
    }
}
