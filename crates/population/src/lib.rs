//! # orm-population — model-theoretic semantics for ORM schemas
//!
//! A [`Population`] assigns a set of instances to every object type and a
//! set of tuples to every (binary) fact type. [`check`] decides whether a
//! population *satisfies* a schema — the formal semantics from
//! \[H89\]/\[BHW91\] that the paper's satisfiability notions are defined
//! against:
//!
//! * **weak (schema) satisfiability** — some population satisfies the
//!   schema (the all-empty population always does for this constraint
//!   language, as the paper's Fig. 1 discussion illustrates);
//! * **concept satisfiability** — a satisfying population populates the
//!   queried object types;
//! * **strong (role) satisfiability** — a satisfying population populates
//!   the queried roles.
//!
//! The checker reports precise [`Violation`]s, which makes it usable both
//! as the ground truth for the pattern checkers (see the cross-validation
//! tests) and as a data-validation utility in its own right.
//!
//! Two semantic switches from the paper are configurable via
//! [`CheckOptions`]:
//!
//! * `proper_subtypes` — \[H01\]'s *strict* subset semantics for subtypes,
//!   the premise of Pattern 9;
//! * `implicit_type_exclusion` — ORM's convention that object types are
//!   mutually exclusive unless connected through the subtype graph, the
//!   premise of Pattern 1.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod columnar;
pub mod plan;
mod population;
mod violation;

pub use columnar::{BitSet, ColumnarPopulation};
pub use plan::CheckPlan;
pub use population::Population;
pub use violation::Violation;

use orm_model::{
    Constraint, ConstraintId, FactTypeId, ObjectTypeId, RingKind, RoleSeq, Schema, SchemaIndex,
    Value,
};
use std::collections::{BTreeMap, BTreeSet};

/// Semantic switches for [`check`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CheckOptions {
    /// Enforce strict (proper) subset semantics for subtypes: a non-empty
    /// subtype population must differ from its supertype's (\[H01\]).
    pub proper_subtypes: bool,
    /// Enforce ORM's implicit mutual exclusion of object types that share
    /// no common supertype.
    pub implicit_type_exclusion: bool,
}

impl Default for CheckOptions {
    fn default() -> Self {
        CheckOptions { proper_subtypes: true, implicit_type_exclusion: true }
    }
}

impl CheckOptions {
    /// Plain subset semantics, no implicit exclusion — the permissive
    /// reading some ORM dialects use.
    pub fn permissive() -> Self {
        CheckOptions { proper_subtypes: false, implicit_type_exclusion: false }
    }
}

/// Check `pop` against every constraint of `schema`; returns all
/// violations (empty = the population is a model of the schema).
pub fn check(schema: &Schema, pop: &Population, options: CheckOptions) -> Vec<Violation> {
    let idx = schema.index();
    let mut out = Vec::new();
    check_conformity(schema, pop, &mut out);
    check_value_constraints(schema, pop, &mut out);
    check_subtyping(schema, pop, options, &mut out);
    if options.implicit_type_exclusion {
        check_implicit_exclusion(schema, &idx, pop, &mut out);
    }
    for (cid, c) in schema.constraints() {
        match c {
            Constraint::Mandatory(m) => check_mandatory(schema, pop, cid, &m.roles, &mut out),
            Constraint::Uniqueness(u) => {
                check_counting(schema, pop, cid, &u.roles, 1, Some(1), true, &mut out)
            }
            Constraint::Frequency(f) => {
                check_counting(schema, pop, cid, &f.roles, f.min, f.max, false, &mut out)
            }
            Constraint::SetComparison(sc) => check_set_comparison(schema, pop, cid, sc, &mut out),
            Constraint::ExclusiveTypes(e) => {
                check_exclusive_types(schema, pop, cid, &e.types, &mut out)
            }
            Constraint::TotalSubtypes(t) => {
                check_totality(schema, pop, cid, t.supertype, &t.subtypes, &mut out)
            }
            Constraint::Ring(r) => check_ring(schema, pop, cid, r, &mut out),
        }
    }
    out
}

/// Whether `pop` is a model of `schema` under `options`.
pub fn satisfies(schema: &Schema, pop: &Population, options: CheckOptions) -> bool {
    check(schema, pop, options).is_empty()
}

fn check_conformity(schema: &Schema, pop: &Population, out: &mut Vec<Violation>) {
    for (fid, ft) in schema.fact_types() {
        let players = [schema.player(ft.first()), schema.player(ft.second())];
        for (a, b) in pop.tuples(fid) {
            for (value, (role, player)) in [a, b].iter().zip(ft.roles().into_iter().zip(players)) {
                if !pop.extent(player).contains(value) {
                    out.push(Violation::Conformity { role, value: (*value).clone(), player });
                }
            }
        }
    }
}

fn check_value_constraints(schema: &Schema, pop: &Population, out: &mut Vec<Violation>) {
    for (ty, ot) in schema.object_types() {
        let Some(vc) = ot.value_constraint() else { continue };
        for v in pop.extent(ty) {
            if !vc.admits(v) {
                out.push(Violation::ValueConstraint { ty, value: v.clone() });
            }
        }
    }
}

fn check_subtyping(
    schema: &Schema,
    pop: &Population,
    options: CheckOptions,
    out: &mut Vec<Violation>,
) {
    for link in schema.subtype_links() {
        let sub = pop.extent(link.sub);
        let sup = pop.extent(link.sup);
        for v in sub {
            if !sup.contains(v) {
                out.push(Violation::SubtypeNotSubset {
                    sub: link.sub,
                    sup: link.sup,
                    value: v.clone(),
                });
            }
        }
        if options.proper_subtypes && !sub.is_empty() && sub == sup {
            out.push(Violation::SubtypeNotProper { sub: link.sub, sup: link.sup });
        }
    }
}

fn check_implicit_exclusion(
    schema: &Schema,
    idx: &SchemaIndex,
    pop: &Population,
    out: &mut Vec<Violation>,
) {
    let types: Vec<ObjectTypeId> = schema.object_types().map(|(id, _)| id).collect();
    for (i, &a) in types.iter().enumerate() {
        for &b in types.iter().skip(i + 1) {
            if idx.may_overlap(a, b) {
                continue;
            }
            for v in pop.extent(a).intersection(pop.extent(b)) {
                out.push(Violation::ImplicitExclusion { a, b, value: v.clone() });
            }
        }
    }
}

fn check_mandatory(
    schema: &Schema,
    pop: &Population,
    constraint: ConstraintId,
    roles: &[orm_model::RoleId],
    out: &mut Vec<Violation>,
) {
    let player = schema.player(roles[0]);
    for v in pop.extent(player) {
        // `role_values` scans the fact column in place — no per-(value,
        // role) `BTreeSet` is materialized just to ask `contains`.
        let plays_one = roles.iter().any(|r| pop.role_values(schema, *r).any(|w| w == v));
        if !plays_one {
            out.push(Violation::Mandatory { constraint, value: v.clone() });
        }
    }
}

/// Shared counting semantics for uniqueness (`min=max=1`) and frequency
/// constraints: group the fact table by the projection onto the covered
/// roles, then bound each group's size.
#[allow(clippy::too_many_arguments)]
fn check_counting(
    schema: &Schema,
    pop: &Population,
    constraint: ConstraintId,
    roles: &[orm_model::RoleId],
    min: u32,
    max: Option<u32>,
    is_uniqueness: bool,
    out: &mut Vec<Violation>,
) {
    let fact = schema.role(roles[0]).fact_type();
    let positions: Vec<u8> = roles.iter().map(|r| schema.role(*r).position()).collect();
    let mut groups: BTreeMap<Vec<Value>, u32> = BTreeMap::new();
    for (a, b) in pop.tuples(fact) {
        let key: Vec<Value> =
            positions.iter().map(|p| if *p == 0 { a.clone() } else { b.clone() }).collect();
        *groups.entry(key).or_insert(0) += 1;
    }
    for (combo, count) in groups {
        let too_few = count < min;
        let too_many = max.is_some_and(|m| count > m);
        if too_few || too_many {
            if is_uniqueness {
                out.push(Violation::Uniqueness { constraint, combo, count });
            } else {
                out.push(Violation::Frequency { constraint, combo, count, min, max });
            }
        }
    }
}

fn seq_population(schema: &Schema, pop: &Population, seq: &RoleSeq) -> BTreeSet<Vec<Value>> {
    match seq.roles() {
        [r] => pop.role_values(schema, *r).map(|v| vec![v.clone()]).collect(),
        [a, b] => {
            let fact = schema.role(*a).fact_type();
            let (pa, pb) = (schema.role(*a).position(), schema.role(*b).position());
            pop.tuples(fact)
                .map(|(x, y)| {
                    let pick = |p: u8| if p == 0 { x.clone() } else { y.clone() };
                    vec![pick(pa), pick(pb)]
                })
                .collect()
        }
        _ => unreachable!("role sequences have length 1 or 2"),
    }
}

fn check_set_comparison(
    schema: &Schema,
    pop: &Population,
    constraint: ConstraintId,
    sc: &orm_model::SetComparison,
    out: &mut Vec<Violation>,
) {
    use orm_model::SetComparisonKind::*;
    let pops: Vec<BTreeSet<Vec<Value>>> =
        sc.args.iter().map(|seq| seq_population(schema, pop, seq)).collect();
    match sc.kind {
        Subset => {
            for item in pops[0].difference(&pops[1]) {
                out.push(Violation::SetComparison {
                    constraint,
                    detail: format!("{item:?} is in the sub-population but not the super"),
                });
            }
        }
        Equality => {
            for (i, p) in pops.iter().enumerate().skip(1) {
                if p != &pops[0] {
                    out.push(Violation::SetComparison {
                        constraint,
                        detail: format!("argument {i} differs from argument 0"),
                    });
                }
            }
        }
        Exclusion => {
            for i in 0..pops.len() {
                for j in (i + 1)..pops.len() {
                    for item in pops[i].intersection(&pops[j]) {
                        out.push(Violation::SetComparison {
                            constraint,
                            detail: format!("{item:?} occurs in arguments {i} and {j}"),
                        });
                    }
                }
            }
        }
    }
}

fn check_exclusive_types(
    _schema: &Schema,
    pop: &Population,
    constraint: ConstraintId,
    types: &[ObjectTypeId],
    out: &mut Vec<Violation>,
) {
    for (i, &a) in types.iter().enumerate() {
        for &b in types.iter().skip(i + 1) {
            for v in pop.extent(a).intersection(pop.extent(b)) {
                out.push(Violation::ExclusiveTypes { constraint, value: v.clone() });
            }
        }
    }
}

fn check_totality(
    _schema: &Schema,
    pop: &Population,
    constraint: ConstraintId,
    supertype: ObjectTypeId,
    subtypes: &[ObjectTypeId],
    out: &mut Vec<Violation>,
) {
    for v in pop.extent(supertype) {
        if !subtypes.iter().any(|s| pop.extent(*s).contains(v)) {
            out.push(Violation::Totality { constraint, value: v.clone() });
        }
    }
}

fn check_ring(
    schema: &Schema,
    pop: &Population,
    constraint: ConstraintId,
    ring: &orm_model::Ring,
    out: &mut Vec<Violation>,
) {
    let _ = schema;
    let tuples: BTreeSet<(Value, Value)> = pop.tuples(ring.fact_type).cloned().collect();
    let holds = |x: &Value, y: &Value| tuples.contains(&(x.clone(), y.clone()));
    for kind in ring.kinds.iter() {
        let violated: Option<String> = match kind {
            RingKind::Irreflexive => {
                tuples.iter().find(|(x, y)| x == y).map(|(x, _)| format!("self-pair ({x}, {x})"))
            }
            RingKind::Antisymmetric => tuples
                .iter()
                .find(|(x, y)| x != y && holds(y, x))
                .map(|(x, y)| format!("both ({x}, {y}) and ({y}, {x}) present")),
            RingKind::Asymmetric => tuples
                .iter()
                .find(|(x, y)| holds(y, x))
                .map(|(x, y)| format!("both ({x}, {y}) and ({y}, {x}) present")),
            RingKind::Symmetric => tuples
                .iter()
                .find(|(x, y)| !holds(y, x))
                .map(|(x, y)| format!("({x}, {y}) present without ({y}, {x})")),
            RingKind::Intransitive => {
                let mut found = None;
                'outer: for (x, y) in &tuples {
                    for (y2, z) in &tuples {
                        if y == y2 && holds(x, z) {
                            found = Some(format!("({x}, {y}), ({y}, {z}) and ({x}, {z}) present"));
                            break 'outer;
                        }
                    }
                }
                found
            }
            RingKind::Acyclic => find_cycle(&tuples).map(|cycle| {
                let names: Vec<String> = cycle.iter().map(Value::to_string).collect();
                format!("cycle through {}", names.join(" -> "))
            }),
        };
        if let Some(witness) = violated {
            out.push(Violation::Ring { constraint, kind, witness });
        }
    }
}

/// Find a directed cycle in the relation, if any, returning its nodes.
fn find_cycle(tuples: &BTreeSet<(Value, Value)>) -> Option<Vec<Value>> {
    let mut adjacency: BTreeMap<&Value, Vec<&Value>> = BTreeMap::new();
    for (x, y) in tuples {
        adjacency.entry(x).or_default().push(y);
    }
    let nodes: Vec<&Value> = adjacency.keys().copied().collect();
    let mut state: BTreeMap<&Value, u8> = BTreeMap::new();
    fn dfs<'a>(
        node: &'a Value,
        adjacency: &BTreeMap<&'a Value, Vec<&'a Value>>,
        state: &mut BTreeMap<&'a Value, u8>,
        stack: &mut Vec<&'a Value>,
    ) -> Option<Vec<Value>> {
        state.insert(node, 1);
        stack.push(node);
        for next in adjacency.get(node).into_iter().flatten() {
            match state.get(next).copied().unwrap_or(0) {
                1 => {
                    let start = stack.iter().position(|n| *n == *next).unwrap_or(0);
                    let mut cycle: Vec<Value> =
                        stack[start..].iter().map(|v| (*v).clone()).collect();
                    cycle.push((*next).clone());
                    return Some(cycle);
                }
                0 => {
                    if let Some(cycle) = dfs(next, adjacency, state, stack) {
                        return Some(cycle);
                    }
                }
                _ => {}
            }
        }
        stack.pop();
        state.insert(node, 2);
        None
    }
    for node in nodes {
        if state.get(node).copied().unwrap_or(0) == 0 {
            let mut stack = Vec::new();
            if let Some(cycle) = dfs(node, &adjacency, &mut state, &mut stack) {
                return Some(cycle);
            }
        }
    }
    None
}

/// Convenience: the population of a whole fact type as value pairs.
pub fn fact_population(pop: &Population, fact: FactTypeId) -> BTreeSet<(Value, Value)> {
    pop.tuples(fact).cloned().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use orm_model::{RingKind, SchemaBuilder, Value, ValueConstraint};

    fn v(s: &str) -> Value {
        Value::str(s)
    }

    #[test]
    fn empty_population_satisfies_everything() {
        // Weak satisfiability is trivial for this constraint language —
        // the observation behind the paper's Fig. 1 discussion.
        let fixture = orm_fixture();
        let pop = Population::new();
        assert!(satisfies(&fixture, &pop, CheckOptions::default()));
    }

    /// Small schema exercising several constraint kinds.
    fn orm_fixture() -> Schema {
        let mut b = SchemaBuilder::new("s");
        let person = b.entity_type("Person").unwrap();
        let student = b.entity_type("Student").unwrap();
        b.subtype(student, person).unwrap();
        let code = b.value_type("Code", Some(ValueConstraint::enumeration(["x1", "x2"]))).unwrap();
        let f = b.fact_type_full("has", (student, Some("r1")), (code, Some("r2")), None).unwrap();
        let r1 = b.schema().fact_type(f).first();
        b.unique([r1]).unwrap();
        b.mandatory(r1).unwrap();
        b.finish()
    }

    #[test]
    fn conforming_population_passes() {
        let s = orm_fixture();
        let person = s.object_type_by_name("Person").unwrap();
        let student = s.object_type_by_name("Student").unwrap();
        let code = s.object_type_by_name("Code").unwrap();
        let f = s.fact_type_by_name("has").unwrap();
        let mut pop = Population::new();
        pop.add_instance(person, v("ann"));
        pop.add_instance(person, v("bob")); // proper superset
        pop.add_instance(student, v("ann"));
        pop.add_instance(code, v("x1"));
        pop.add_fact(f, v("ann"), v("x1"));
        assert_eq!(check(&s, &pop, CheckOptions::default()), vec![]);
    }

    #[test]
    fn conformity_violation_detected() {
        let s = orm_fixture();
        let f = s.fact_type_by_name("has").unwrap();
        let mut pop = Population::new();
        // Tuple without the instances being members of the player types.
        pop.add_fact(f, v("ghost"), v("x1"));
        let violations = check(&s, &pop, CheckOptions::default());
        assert!(violations.iter().any(|x| matches!(x, Violation::Conformity { .. })));
    }

    #[test]
    fn value_constraint_violation_detected() {
        let s = orm_fixture();
        let code = s.object_type_by_name("Code").unwrap();
        let mut pop = Population::new();
        pop.add_instance(code, v("nope"));
        let violations = check(&s, &pop, CheckOptions::default());
        assert!(violations.iter().any(|x| matches!(x, Violation::ValueConstraint { .. })));
    }

    #[test]
    fn subtype_subset_violation_detected() {
        let s = orm_fixture();
        let student = s.object_type_by_name("Student").unwrap();
        let mut pop = Population::new();
        pop.add_instance(student, v("ann")); // not a Person
        let violations = check(&s, &pop, CheckOptions::default());
        assert!(violations.iter().any(|x| matches!(x, Violation::SubtypeNotSubset { .. })));
    }

    #[test]
    fn proper_subtype_semantics_configurable() {
        let s = orm_fixture();
        let person = s.object_type_by_name("Person").unwrap();
        let student = s.object_type_by_name("Student").unwrap();
        let code = s.object_type_by_name("Code").unwrap();
        let f = s.fact_type_by_name("has").unwrap();
        let mut pop = Population::new();
        pop.add_instance(person, v("ann"));
        pop.add_instance(student, v("ann")); // equal, non-empty
        pop.add_instance(code, v("x1"));
        pop.add_fact(f, v("ann"), v("x1"));
        let strict = check(&s, &pop, CheckOptions::default());
        assert!(strict.iter().any(|x| matches!(x, Violation::SubtypeNotProper { .. })));
        let permissive = check(&s, &pop, CheckOptions::permissive());
        assert!(permissive.is_empty());
    }

    #[test]
    fn mandatory_violation_detected() {
        let s = orm_fixture();
        let person = s.object_type_by_name("Person").unwrap();
        let student = s.object_type_by_name("Student").unwrap();
        let mut pop = Population::new();
        pop.add_instance(person, v("ann"));
        pop.add_instance(person, v("x"));
        pop.add_instance(student, v("ann")); // ann plays nothing
        let violations = check(&s, &pop, CheckOptions::default());
        assert!(violations.iter().any(|x| matches!(x, Violation::Mandatory { .. })));
    }

    #[test]
    fn uniqueness_violation_detected() {
        let s = orm_fixture();
        let person = s.object_type_by_name("Person").unwrap();
        let student = s.object_type_by_name("Student").unwrap();
        let code = s.object_type_by_name("Code").unwrap();
        let f = s.fact_type_by_name("has").unwrap();
        let mut pop = Population::new();
        for p in ["ann", "pad"] {
            pop.add_instance(person, v(p));
        }
        pop.add_instance(student, v("ann"));
        pop.add_instance(code, v("x1"));
        pop.add_instance(code, v("x2"));
        pop.add_fact(f, v("ann"), v("x1"));
        pop.add_fact(f, v("ann"), v("x2")); // ann twice in unique r1
        let violations = check(&s, &pop, CheckOptions::default());
        assert!(violations.iter().any(|x| matches!(x, Violation::Uniqueness { .. })));
    }

    #[test]
    fn frequency_violations_detected_both_directions() {
        let mut b = SchemaBuilder::new("s");
        let a = b.entity_type("A").unwrap();
        let x = b.entity_type("X").unwrap();
        let f = b.fact_type("f", a, x).unwrap();
        let r = b.schema().fact_type(f).first();
        b.frequency([r], 2, Some(2)).unwrap();
        let s = b.finish();
        let mut pop = Population::new();
        pop.add_instance(a, v("a1"));
        for i in 0..3 {
            pop.add_instance(x, Value::int(i));
        }
        pop.add_fact(f, v("a1"), Value::int(0)); // a1 occurs once: too few
        let violations = check(&s, &pop, CheckOptions::default());
        assert!(violations.iter().any(|x| matches!(x, Violation::Frequency { count: 1, .. })));

        pop.add_fact(f, v("a1"), Value::int(1));
        pop.add_fact(f, v("a1"), Value::int(2)); // now three: too many
        let violations = check(&s, &pop, CheckOptions::default());
        assert!(violations.iter().any(|x| matches!(x, Violation::Frequency { count: 3, .. })));
    }

    #[test]
    fn frequency_within_bounds_passes() {
        let mut b = SchemaBuilder::new("s");
        let a = b.entity_type("A").unwrap();
        let x = b.entity_type("X").unwrap();
        let f = b.fact_type("f", a, x).unwrap();
        let r = b.schema().fact_type(f).first();
        b.frequency([r], 2, Some(3)).unwrap();
        let s = b.finish();
        let mut pop = Population::new();
        pop.add_instance(a, v("a1"));
        pop.add_instance(x, Value::int(0));
        pop.add_instance(x, Value::int(1));
        pop.add_fact(f, v("a1"), Value::int(0));
        pop.add_fact(f, v("a1"), Value::int(1));
        assert!(satisfies(&s, &pop, CheckOptions::default()));
    }

    #[test]
    fn exclusion_constraint_checked() {
        let mut b = SchemaBuilder::new("s");
        let a = b.entity_type("A").unwrap();
        let x = b.entity_type("X").unwrap();
        let f1 = b.fact_type("f1", a, x).unwrap();
        let f2 = b.fact_type("f2", a, x).unwrap();
        let r1 = b.schema().fact_type(f1).first();
        let r3 = b.schema().fact_type(f2).first();
        b.exclusion_roles([r1, r3]).unwrap();
        let s = b.finish();
        let mut pop = Population::new();
        pop.add_instance(a, v("a1"));
        pop.add_instance(x, v("x1"));
        pop.add_fact(f1, v("a1"), v("x1"));
        pop.add_fact(f2, v("a1"), v("x1")); // a1 plays both excluded roles
        let violations = check(&s, &pop, CheckOptions::default());
        assert!(violations.iter().any(|x| matches!(x, Violation::SetComparison { .. })));
    }

    #[test]
    fn subset_constraint_checked() {
        let mut b = SchemaBuilder::new("s");
        let a = b.entity_type("A").unwrap();
        let x = b.entity_type("X").unwrap();
        let f1 = b.fact_type("f1", a, x).unwrap();
        let f2 = b.fact_type("f2", a, x).unwrap();
        let r1 = b.schema().fact_type(f1).first();
        let r3 = b.schema().fact_type(f2).first();
        b.subset(RoleSeq::single(r1), RoleSeq::single(r3)).unwrap();
        let s = b.finish();
        let mut pop = Population::new();
        pop.add_instance(a, v("a1"));
        pop.add_instance(x, v("x1"));
        pop.add_fact(f1, v("a1"), v("x1")); // plays r1 but not r3
        let violations = check(&s, &pop, CheckOptions::default());
        assert!(violations.iter().any(|x| matches!(x, Violation::SetComparison { .. })));
        // Add the superset tuple: satisfied.
        pop.add_fact(f2, v("a1"), v("x1"));
        assert!(satisfies(&s, &pop, CheckOptions::default()));
    }

    #[test]
    fn exclusive_types_checked() {
        let mut b = SchemaBuilder::new("s");
        let p = b.entity_type("P").unwrap();
        let a = b.entity_type("A").unwrap();
        let c = b.entity_type("C").unwrap();
        b.subtype(a, p).unwrap();
        b.subtype(c, p).unwrap();
        b.exclusive_types([a, c]).unwrap();
        let s = b.finish();
        let mut pop = Population::new();
        pop.add_instance(p, v("x"));
        pop.add_instance(p, v("pad1"));
        pop.add_instance(p, v("pad2"));
        pop.add_instance(a, v("x"));
        pop.add_instance(c, v("x"));
        let violations = check(&s, &pop, CheckOptions::default());
        assert!(violations.iter().any(|m| matches!(m, Violation::ExclusiveTypes { .. })));
    }

    #[test]
    fn totality_checked() {
        let mut b = SchemaBuilder::new("s");
        let a = b.entity_type("A").unwrap();
        let p = b.entity_type("P").unwrap();
        let q = b.entity_type("Q").unwrap();
        b.subtype(p, a).unwrap();
        b.subtype(q, a).unwrap();
        b.total_subtypes(a, [p, q]).unwrap();
        let s = b.finish();
        let mut pop = Population::new();
        pop.add_instance(a, v("u"));
        let violations = check(&s, &pop, CheckOptions::default());
        assert!(violations.iter().any(|m| matches!(m, Violation::Totality { .. })));
    }

    #[test]
    fn implicit_exclusion_checked() {
        let mut b = SchemaBuilder::new("s");
        let a = b.entity_type("A").unwrap();
        let c = b.entity_type("C").unwrap(); // unrelated top-level types
        let s = b.finish();
        let mut pop = Population::new();
        pop.add_instance(a, v("shared"));
        pop.add_instance(c, v("shared"));
        let violations = check(&s, &pop, CheckOptions::default());
        assert!(violations.iter().any(|m| matches!(m, Violation::ImplicitExclusion { .. })));
        assert!(satisfies(&s, &pop, CheckOptions::permissive()));
    }

    #[test]
    fn ring_constraints_checked() {
        let mut b = SchemaBuilder::new("s");
        let w = b.entity_type("W").unwrap();
        let f = b.fact_type("rel", w, w).unwrap();
        b.ring(f, [RingKind::Irreflexive, RingKind::Acyclic]).unwrap();
        let s = b.finish();

        let mut pop = Population::new();
        pop.add_instance(w, v("a"));
        pop.add_fact(f, v("a"), v("a")); // self loop: violates both kinds
        let violations = check(&s, &pop, CheckOptions::default());
        let ring_violations: Vec<_> =
            violations.iter().filter(|m| matches!(m, Violation::Ring { .. })).collect();
        assert_eq!(ring_violations.len(), 2);
    }

    #[test]
    fn ring_acyclic_detects_long_cycle() {
        let mut b = SchemaBuilder::new("s");
        let w = b.entity_type("W").unwrap();
        let f = b.fact_type("rel", w, w).unwrap();
        b.ring(f, [RingKind::Acyclic]).unwrap();
        let s = b.finish();
        let mut pop = Population::new();
        for x in ["a", "b", "c"] {
            pop.add_instance(w, v(x));
        }
        pop.add_fact(f, v("a"), v("b"));
        pop.add_fact(f, v("b"), v("c"));
        pop.add_fact(f, v("c"), v("a"));
        let violations = check(&s, &pop, CheckOptions::default());
        assert!(violations.iter().any(|m| matches!(m, Violation::Ring { .. })));
    }

    #[test]
    fn ring_symmetric_requires_reverse() {
        let mut b = SchemaBuilder::new("s");
        let w = b.entity_type("W").unwrap();
        let f = b.fact_type("rel", w, w).unwrap();
        b.ring(f, [RingKind::Symmetric]).unwrap();
        let s = b.finish();
        let mut pop = Population::new();
        pop.add_instance(w, v("a"));
        pop.add_instance(w, v("b"));
        pop.add_fact(f, v("a"), v("b"));
        assert!(!satisfies(&s, &pop, CheckOptions::default()));
        pop.add_fact(f, v("b"), v("a"));
        assert!(satisfies(&s, &pop, CheckOptions::default()));
    }

    #[test]
    fn ring_intransitive_checked() {
        let mut b = SchemaBuilder::new("s");
        let w = b.entity_type("W").unwrap();
        let f = b.fact_type("rel", w, w).unwrap();
        b.ring(f, [RingKind::Intransitive]).unwrap();
        let s = b.finish();
        let mut pop = Population::new();
        for x in ["a", "b", "c"] {
            pop.add_instance(w, v(x));
        }
        pop.add_fact(f, v("a"), v("b"));
        pop.add_fact(f, v("b"), v("c"));
        assert!(satisfies(&s, &pop, CheckOptions::default()));
        pop.add_fact(f, v("a"), v("c")); // transitive edge
        assert!(!satisfies(&s, &pop, CheckOptions::default()));
    }

    #[test]
    fn fact_population_helper() {
        let mut b = SchemaBuilder::new("s");
        let a = b.entity_type("A").unwrap();
        let f = b.fact_type("f", a, a).unwrap();
        let s = b.finish();
        let _ = &s;
        let mut pop = Population::new();
        pop.add_fact(f, v("x"), v("y"));
        assert_eq!(fact_population(&pop, f).len(), 1);
    }
}
