//! Columnar population indexes: interned values, sorted id columns and
//! bitset membership — the data layout the compiled [`crate::CheckPlan`]
//! executes over.
//!
//! A [`Population`] stores `BTreeSet<Value>` extents and
//! `BTreeSet<(Value, Value)>` fact tables: ideal for incremental edits and
//! tiny witness models, hopeless for validating millions of rows (every
//! membership probe re-compares owned strings, every projection allocates).
//! [`ColumnarPopulation`] freezes one population into:
//!
//! * a **value interner** — every distinct [`Value`] of the population
//!   mapped to a dense `u32` id, assigned in ascending `Value` order so
//!   **id order equals value order**. Sorted id columns therefore iterate
//!   in exactly the order the `BTreeSet`-based validator iterates values,
//!   which is what lets the compiled plan reproduce the per-violation
//!   checker's output verbatim (down to ring witnesses, which report the
//!   *first* offending tuple in value order);
//! * per object type, a sorted **extent column** plus a **membership
//!   bitset** over the interned universe (O(1) `contains`, word-wise
//!   intersection/difference);
//! * per fact type, a lexicographically sorted **tuple column** of id
//!   pairs (group-count scans, binary-search `holds(x, y)` for ring
//!   checks);
//! * per role, the sorted deduplicated **projection column** and its
//!   bitset (mandatory and set-comparison primitives).

use crate::population::Population;
use orm_model::{Schema, Value};
use std::collections::BTreeSet;

/// A fixed-size bitset over the interned value universe.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BitSet {
    words: Vec<u64>,
}

impl BitSet {
    /// An empty bitset sized for `n` ids.
    pub fn with_capacity(n: usize) -> BitSet {
        BitSet { words: vec![0; n.div_ceil(64)] }
    }

    /// Set bit `i`.
    pub fn insert(&mut self, i: u32) {
        self.words[(i / 64) as usize] |= 1u64 << (i % 64);
    }

    /// Whether bit `i` is set.
    pub fn contains(&self, i: u32) -> bool {
        self.words.get((i / 64) as usize).is_some_and(|w| w & (1u64 << (i % 64)) != 0)
    }

    /// Number of set bits.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether no bit is set.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|w| *w == 0)
    }

    /// Ascending ids present in both `self` and `other`.
    pub fn iter_and<'a>(&'a self, other: &'a BitSet) -> impl Iterator<Item = u32> + 'a {
        iter_bits(self.words.iter().zip(&other.words).map(|(a, b)| a & b))
    }

    /// Union `other` into `self` (missing words are treated as zero).
    pub fn union_with(&mut self, other: &BitSet) {
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }
}

/// Ascending bit positions of a word stream.
fn iter_bits(words: impl Iterator<Item = u64>) -> impl Iterator<Item = u32> {
    words.enumerate().flat_map(|(wi, mut w)| {
        std::iter::from_fn(move || {
            if w == 0 {
                None
            } else {
                let bit = w.trailing_zeros();
                w &= w - 1;
                Some(wi as u32 * 64 + bit)
            }
        })
    })
}

/// One population frozen into columnar form against one schema (see the
/// [module docs](self) for the layout).
#[derive(Clone, Debug)]
pub struct ColumnarPopulation {
    /// The interned universe, ascending: `values[id]` is the value of `id`.
    values: Vec<Value>,
    /// Sorted extent column per object type (indexed by `ObjectTypeId`).
    extent_cols: Vec<Vec<u32>>,
    /// Extent membership bitset per object type.
    extent_bits: Vec<BitSet>,
    /// Lexicographically sorted tuple column per fact type.
    fact_cols: Vec<Vec<(u32, u32)>>,
    /// Sorted, deduplicated projection column per role.
    role_cols: Vec<Vec<u32>>,
    /// Projection membership bitset per role.
    role_bits: Vec<BitSet>,
}

impl ColumnarPopulation {
    /// Freeze `pop` into columnar form. One pass interns the universe in
    /// ascending value order; every column is then a monotone map of an
    /// already-sorted `BTreeSet` iteration, so no per-column sort is
    /// needed except for second-position role projections.
    pub fn build(schema: &Schema, pop: &Population) -> ColumnarPopulation {
        let mut universe: BTreeSet<&Value> = BTreeSet::new();
        for (ty, _) in schema.object_types() {
            universe.extend(pop.extent(ty).iter());
        }
        for (fid, _) in schema.fact_types() {
            for (a, b) in pop.tuples(fid) {
                universe.insert(a);
                universe.insert(b);
            }
        }
        let values: Vec<Value> = universe.into_iter().cloned().collect();
        let n = values.len();
        let id_of = |v: &Value| -> u32 {
            values.binary_search(v).expect("population value was interned") as u32
        };

        let n_types = schema.object_type_count();
        let mut extent_cols: Vec<Vec<u32>> = vec![Vec::new(); n_types];
        let mut extent_bits: Vec<BitSet> = vec![BitSet::with_capacity(n); n_types];
        for (ty, _) in schema.object_types() {
            let col = &mut extent_cols[ty.index()];
            col.reserve(pop.extent(ty).len());
            for v in pop.extent(ty) {
                let id = id_of(v);
                col.push(id);
                extent_bits[ty.index()].insert(id);
            }
        }

        let n_facts = schema.fact_type_count();
        let n_roles = schema.roles().count();
        let mut fact_cols: Vec<Vec<(u32, u32)>> = vec![Vec::new(); n_facts];
        let mut role_cols: Vec<Vec<u32>> = vec![Vec::new(); n_roles];
        let mut role_bits: Vec<BitSet> = vec![BitSet::with_capacity(n); n_roles];
        for (fid, ft) in schema.fact_types() {
            let col = &mut fact_cols[fid.index()];
            col.reserve(pop.fact_count(fid));
            for (a, b) in pop.tuples(fid) {
                col.push((id_of(a), id_of(b)));
            }
            let [r0, r1] = ft.roles();
            // First column: already ascending (lexicographic tuple order);
            // dedup on the fly. Second column: sort + dedup.
            let first = &mut role_cols[r0.index()];
            for &(a, _) in col.iter() {
                if first.last() != Some(&a) {
                    first.push(a);
                }
                role_bits[r0.index()].insert(a);
            }
            let second = &mut role_cols[r1.index()];
            second.extend(col.iter().map(|&(_, b)| b));
            second.sort_unstable();
            second.dedup();
            for &b in second.iter() {
                role_bits[r1.index()].insert(b);
            }
        }

        ColumnarPopulation { values, extent_cols, extent_bits, fact_cols, role_cols, role_bits }
    }

    /// Size of the interned value universe.
    pub fn universe_len(&self) -> usize {
        self.values.len()
    }

    /// The value behind an interned id.
    pub fn value(&self, id: u32) -> &Value {
        &self.values[id as usize]
    }

    /// Sorted extent column of an object type.
    pub fn extent_col(&self, ty: orm_model::ObjectTypeId) -> &[u32] {
        &self.extent_cols[ty.index()]
    }

    /// Extent membership bitset of an object type.
    pub fn extent_bits(&self, ty: orm_model::ObjectTypeId) -> &BitSet {
        &self.extent_bits[ty.index()]
    }

    /// Sorted tuple column of a fact type.
    pub fn fact_col(&self, fact: orm_model::FactTypeId) -> &[(u32, u32)] {
        &self.fact_cols[fact.index()]
    }

    /// Sorted, deduplicated projection column of a role.
    pub fn role_col(&self, role: orm_model::RoleId) -> &[u32] {
        &self.role_cols[role.index()]
    }

    /// Projection membership bitset of a role.
    pub fn role_bits(&self, role: orm_model::RoleId) -> &BitSet {
        &self.role_bits[role.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orm_model::SchemaBuilder;

    #[test]
    fn bitset_ops() {
        let mut a = BitSet::with_capacity(130);
        let mut b = BitSet::with_capacity(130);
        for i in [0u32, 63, 64, 129] {
            a.insert(i);
        }
        b.insert(63);
        b.insert(129);
        assert!(a.contains(0) && a.contains(129) && !a.contains(1));
        assert_eq!(a.len(), 4);
        assert_eq!(a.iter_and(&b).collect::<Vec<_>>(), vec![63, 129]);
        let mut u = BitSet::with_capacity(130);
        u.union_with(&b);
        assert_eq!(u.len(), 2);
        assert!(!BitSet::with_capacity(10).contains(9));
        assert!(BitSet::with_capacity(0).is_empty());
    }

    #[test]
    fn ids_follow_value_order_and_columns_are_sorted() {
        let mut b = SchemaBuilder::new("s");
        let a = b.entity_type("A").unwrap();
        let x = b.entity_type("X").unwrap();
        let f = b.fact_type("f", a, x).unwrap();
        let s = b.finish();
        let [r0, r1] = s.fact_type(f).roles();

        let mut pop = Population::new();
        pop.add_instance(a, "b");
        pop.add_instance(a, "a");
        pop.add_fact(f, "b", "z");
        pop.add_fact(f, "a", "y");
        pop.add_fact(f, "a", "z");
        let cols = ColumnarPopulation::build(&s, &pop);

        // Universe ascending: a < b < y < z.
        assert_eq!(cols.universe_len(), 4);
        let vals: Vec<String> = (0..4).map(|i| cols.value(i).to_string()).collect();
        assert_eq!(vals, vec!["'a'", "'b'", "'y'", "'z'"]);

        assert_eq!(cols.extent_col(a), &[0, 1]);
        assert!(cols.extent_bits(a).contains(0));
        assert!(!cols.extent_bits(x).contains(0));
        // Tuples lexicographic: (a,y) < (a,z) < (b,z).
        assert_eq!(cols.fact_col(f), &[(0, 2), (0, 3), (1, 3)]);
        assert_eq!(cols.role_col(r0), &[0, 1]);
        assert_eq!(cols.role_col(r1), &[2, 3]);
        assert!(cols.role_bits(r1).contains(3));
    }
}
