//! Property tests for the bounded model finder.

use orm_model::{RoleSeq, SchemaBuilder};
use orm_population::{check, CheckOptions};
use orm_reasoner::{
    find_model, role_satisfiability, strong_satisfiability, Bounds, Outcome, Target,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every witness the finder returns is verified as a model, populates
    /// the targets, and the finder honors growing bound monotonicity: a
    /// model found at small bounds is found at larger ones too.
    #[test]
    fn witnesses_are_models_and_bounds_are_monotone(
        n_facts in 1usize..3,
        mandatory in prop::collection::vec(any::<bool>(), 3),
    ) {
        let mut b = SchemaBuilder::new("p");
        let a = b.entity_type("A").expect("fresh");
        let x = b.entity_type("X").expect("fresh");
        let mut roles = Vec::new();
        for i in 0..n_facts {
            let f = b.fact_type(&format!("f{i}"), a, x).expect("fresh");
            roles.push(b.schema().fact_type(f).first());
        }
        for (i, r) in roles.iter().enumerate() {
            if mandatory.get(i).copied().unwrap_or(false) {
                b.mandatory(*r).expect("valid");
            }
        }
        let schema = b.finish();

        match strong_satisfiability(&schema, Bounds::small()) {
            Outcome::Satisfiable(pop) => {
                prop_assert!(check(&schema, &pop, CheckOptions::default()).is_empty());
                for (role, _) in schema.roles() {
                    prop_assert!(pop.role_populated(&schema, role));
                }
                // Larger bounds must also succeed.
                prop_assert!(strong_satisfiability(&schema, Bounds::default()).is_sat());
            }
            Outcome::UnsatWithinBounds | Outcome::BudgetExhausted => {
                // Plain mandatory schemas over two unrelated types are
                // always strongly satisfiable at these bounds.
                prop_assert!(false, "schema unexpectedly not satisfied");
            }
        }
    }

    /// Subset constraints are respected by found models.
    #[test]
    fn witnesses_respect_subsets(seed in 0u64..32) {
        let _ = seed;
        let mut b = SchemaBuilder::new("p");
        let a = b.entity_type("A").expect("fresh");
        let x = b.entity_type("X").expect("fresh");
        let f1 = b.fact_type("f1", a, x).expect("fresh");
        let f2 = b.fact_type("f2", a, x).expect("fresh");
        let r1 = b.schema().fact_type(f1).first();
        let r3 = b.schema().fact_type(f2).first();
        b.subset(RoleSeq::single(r1), RoleSeq::single(r3)).expect("valid");
        let schema = b.finish();
        match role_satisfiability(&schema, r1, Bounds::small()) {
            Outcome::Satisfiable(pop) => {
                let sub = pop.role_population(&schema, r1);
                let sup = pop.role_population(&schema, r3);
                prop_assert!(sub.is_subset(&sup));
                prop_assert!(!sub.is_empty());
            }
            other => prop_assert!(false, "expected model, got {other:?}"),
        }
    }
}

/// Target bookkeeping: requesting a type target forces that extent.
#[test]
fn type_targets_are_honored() {
    let mut b = SchemaBuilder::new("t");
    let a = b.entity_type("A").expect("fresh");
    let x = b.entity_type("X").expect("fresh");
    let schema = b.finish();
    match find_model(&schema, &[Target::Type(a)], Bounds::small()) {
        Outcome::Satisfiable(pop) => {
            assert!(pop.type_populated(a));
            // X was not requested; the minimal model leaves it empty.
            assert!(!pop.type_populated(x));
        }
        other => panic!("expected model, got {other:?}"),
    }
}

/// The finder prefers small witnesses: an unconstrained one-fact schema is
/// strongly satisfied with a single tuple.
#[test]
fn minimal_witnesses_are_small() {
    let mut b = SchemaBuilder::new("m");
    let a = b.entity_type("A").expect("fresh");
    let x = b.entity_type("X").expect("fresh");
    let f = b.fact_type("f", a, x).expect("fresh");
    let schema = b.finish();
    match strong_satisfiability(&schema, Bounds::default()) {
        Outcome::Satisfiable(pop) => {
            assert_eq!(pop.fact_count(f), 1);
            assert_eq!(pop.extent(a).len(), 1);
            assert_eq!(pop.extent(x).len(), 1);
        }
        other => panic!("expected model, got {other:?}"),
    }
}
