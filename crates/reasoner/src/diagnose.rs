//! ORM-level diagnosis: from a bare unsat verdict to the named schema
//! constraints that cause it, verbalized.
//!
//! This is the end of the explanation pipeline (documented start to
//! finish in `docs/EXPLANATIONS.md`):
//!
//! 1. the DL sweep finds the unsatisfiable types and roles
//!    (`Translation::{type,role}_sweep`);
//! 2. each unsat element gets a **minimal unsat core** of DL axioms
//!    (`orm_dl::explain`, cached beside the verdicts);
//! 3. the core's axioms are mapped back to the ORM constructs that
//!    produced them through the provenance table `translate` records
//!    (`Translation::core_origins`);
//! 4. each origin is rendered as one pseudo-natural-language statement
//!    via `orm_syntax::verbalize`.
//!
//! The result is what the paper's interactive scenario actually needs to
//! show a modeler: *"PhdStudent can never be populated because: Each
//! PhdStudent is a Student. Each PhdStudent is a Employee. No instance is
//! more than one of Student, Employee."*
//!
//! Since the MUS-enumeration PR the pipeline goes further: step 2
//! enumerates the **whole family** of minimal cores per element
//! (`Translation::enumerate_unsat`, capped at [`FAMILY_LIMIT`]), so a
//! schema with several independent contradictions behind one element
//! surfaces all of them at once; and the verified hitting-set repairs
//! over that family (`Translation::repairs_for`) are verbalized as
//! ranked *"drop one of: …"* alternatives
//! ([`orm_syntax::verbalize_repair_alternatives`]) — most recently
//! edited culprit first, because in an interactive session the newest
//! constraint is usually the mistake.

use orm_dl::{
    AxiomOrigin, ExecCx, MusEnumeration, MusFamily, NonDlOrigin, Refutation, RepairSet,
    SaturationEngine, SaturationOutcome, SearchOutcome, Translation, UnsatCore,
};
use orm_model::{Constraint, ConstraintId, FactTypeId, ObjectTypeId, RingKinds, RoleId, Schema};
use orm_syntax::{
    verbalize_constraint, verbalize_fact_typing, verbalize_implicit_exclusion,
    verbalize_repair_alternatives, verbalize_ring_declaration, verbalize_subtype,
};
use std::collections::BTreeMap;

/// Per-element cap on enumerated cores ([`Translation::enumerate_unsat`]'s
/// `limit`): real doomed elements carry a handful of independent
/// contradictions (the bench battery averages well under three axioms per
/// core), so eight families is ample headroom while bounding the probe
/// tree on adversarial inputs. A truncated family is reported as such
/// (`Diagnosis::family`'s `truncated` flag).
pub const FAMILY_LIMIT: usize = 8;

/// The schema element a [`Diagnosis`] is about.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DiagnosedElement {
    /// An object type that can never be populated.
    Type(ObjectTypeId),
    /// A role that can never be populated.
    Role(RoleId),
}

/// One verified way out of a contradiction family: a ⊆-minimal axiom
/// set hitting every enumerated core, re-proved to restore
/// satisfiability, verbalized at the ORM level.
#[derive(Clone, Debug)]
pub struct Repair {
    /// The underlying verified repair ([`orm_dl::explain::ranked_repairs`]
    /// guarantees: hits all cores, re-proved Sat, no proper subset
    /// suffices), carrying the DL axiom ids and the edit-recency rank key.
    pub set: RepairSet,
    /// The repair's distinct ORM-level origins, verbalized one statement
    /// each (in axiom order) — the constraints to drop *together*.
    pub statements: Vec<String>,
}

/// One unsatisfiable element with its explanation: the minimal DL core,
/// the distinct ORM origins behind it, and one verbalized statement per
/// origin — plus, since the MUS-enumeration PR, the whole core *family*
/// and the ranked verified [`Repair`]s over it.
#[derive(Clone, Debug)]
pub struct Diagnosis {
    /// The doomed element.
    pub element: DiagnosedElement,
    /// Its display label (type name or role label).
    pub label: String,
    /// The primary (first-found) minimal unsat core ([`orm_dl::explain`]
    /// guarantees) — identical to `family.cores[0]`.
    pub core: UnsatCore,
    /// The primary core's distinct ORM-level origins, verbalized one
    /// statement each (in core order) — identical to `alternatives[0]`.
    /// Axioms added behind the translation's back have no origin and
    /// contribute no statement.
    pub statements: Vec<String>,
    /// Every enumerated minimal core of the element (up to
    /// [`FAMILY_LIMIT`]), each certified sound and pairwise
    /// ⊆-incomparable; `family.complete` says whether the enumeration
    /// provably found them all.
    pub family: MusFamily,
    /// One verbalized statement list per core, in `family.cores` order —
    /// each entry names one independent contradiction.
    pub alternatives: Vec<Vec<String>>,
    /// The verified repairs of the whole family, ranked most recently
    /// edited culprit first.
    pub repairs: Vec<Repair>,
}

impl std::fmt::Display for Diagnosis {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "`{}` can never be populated because:", self.label)?;
        for s in &self.statements {
            writeln!(f, "  - {s}")?;
        }
        let qualifier = if self.core.minimal { "minimal, " } else { "" };
        write!(f, "  ({}{} DL axiom(s) in the unsat core)", qualifier, self.core.len())?;
        for (i, alt) in self.alternatives.iter().enumerate().skip(1) {
            write!(f, "\n  and independently (contradiction {} of {}):", i + 1, self.family.len())?;
            for s in alt {
                write!(f, "\n  - {s}")?;
            }
        }
        if self.family.truncated {
            write!(f, "\n  (further contradictions exist beyond the first {})", self.family.len())?;
        }
        let repair_stmts: Vec<Vec<String>> =
            self.repairs.iter().map(|r| r.statements.clone()).collect();
        write!(f, "\n  {}", verbalize_repair_alternatives(&repair_stmts))
    }
}

/// Render one ORM origin as a statement.
fn origin_statement(schema: &Schema, origin: &AxiomOrigin) -> String {
    match origin {
        AxiomOrigin::Subtype { sub, sup } => verbalize_subtype(schema, *sub, *sup),
        AxiomOrigin::ImplicitExclusion { a, b } => verbalize_implicit_exclusion(schema, *a, *b),
        AxiomOrigin::FactTyping { role, .. } => verbalize_fact_typing(schema, *role),
        AxiomOrigin::Constraint(cid) => match schema.constraint(*cid) {
            Some(c) => verbalize_constraint(schema, c),
            None => format!("A since-removed constraint ({cid:?})."),
        },
        AxiomOrigin::TypeExclusion { a, b } => format!(
            "No instance is both {} and {} (added this session).",
            schema.object_type(*a).name(),
            schema.object_type(*b).name()
        ),
        AxiomOrigin::Mandatory { player, roles } => {
            let role_list: Vec<&str> = roles.iter().map(|r| schema.role_label(*r)).collect();
            format!(
                "Each {} must play {} (added this session).",
                schema.object_type(*player).name(),
                role_list.join(" or ")
            )
        }
        AxiomOrigin::RoleSubset { sub, sup } => format!(
            "Whatever populates role {} also populates role {} (added this session).",
            schema.role_label(*sub),
            schema.role_label(*sup)
        ),
        AxiomOrigin::RoleExclusion { a, b } => format!(
            "No instance populates both role {} and role {} (added this session).",
            schema.role_label(*a),
            schema.role_label(*b)
        ),
    }
}

/// Diagnose every unsatisfiable type and role of `schema` through the DL
/// pipeline: translate, sweep, enumerate the minimal-unsat-core *family*
/// per doomed element (up to [`FAMILY_LIMIT`]), map every core to ORM
/// constraints, verbalize, and attach the verified ranked repairs as
/// "drop one of: …" alternatives. Elements whose verdicts are `Sat` or
/// hit the budget produce no diagnosis — this reports *certified*
/// contradictions only, in sweep order (types first).
///
/// ```
/// use orm_model::SchemaBuilder;
/// use orm_reasoner::{diagnose, DiagnosedElement};
///
/// // Fig. 1: PhdStudent ⊑ Student ⊓ Employee, with the two exclusive.
/// let mut b = SchemaBuilder::new("fig1");
/// let person = b.entity_type("Person").unwrap();
/// let student = b.entity_type("Student").unwrap();
/// let employee = b.entity_type("Employee").unwrap();
/// let phd = b.entity_type("PhdStudent").unwrap();
/// b.subtype(student, person).unwrap();
/// b.subtype(employee, person).unwrap();
/// b.subtype(phd, student).unwrap();
/// b.subtype(phd, employee).unwrap();
/// b.exclusive_types([student, employee]).unwrap();
/// let schema = b.finish();
///
/// let diagnoses = diagnose(&schema, 100_000);
/// assert_eq!(diagnoses.len(), 1);
/// let d = &diagnoses[0];
/// assert_eq!(d.element, DiagnosedElement::Type(phd));
/// assert!(d.core.minimal);
/// // Three statements: the two subtype links into the exclusive pair,
/// // and the exclusion itself.
/// assert_eq!(d.statements.len(), 3);
/// assert!(d.statements.iter().any(|s| s == "Each PhdStudent is a Student."));
/// assert!(d.statements.iter().any(|s| s.contains("more than one of Student, Employee")));
/// // One contradiction only, provably — and three single-constraint
/// // ways out, each re-proved to make PhdStudent satisfiable.
/// assert_eq!(d.family.len(), 1);
/// assert!(d.family.complete);
/// assert_eq!(d.repairs.len(), 3);
/// assert!(d.repairs.iter().all(|r| r.set.verified && r.set.len() == 1));
/// assert!(d.to_string().contains("To repair, drop one of:"));
/// ```
pub fn diagnose(schema: &Schema, budget: u64) -> Vec<Diagnosis> {
    diagnose_with(schema, &orm_dl::translate(schema), budget)
}

/// [`diagnose`] against an existing translation — the warm-cache variant
/// for interactive sessions: cores are cached beside verdicts in the
/// translation's shards, so re-diagnosing after unrelated edits replays
/// retained entries instead of re-proving.
pub fn diagnose_with(schema: &Schema, translation: &Translation, budget: u64) -> Vec<Diagnosis> {
    diagnose_with_cx(schema, translation, &ExecCx::with_steps(budget))
}

/// [`diagnose`] under an execution context: every sweep verdict, core
/// enumeration, and repair verification inherits `cx`'s budget, deadline,
/// and cancellation token. On an interrupt the pipeline stops cleanly —
/// already-certified diagnoses are returned (each core and repair is
/// individually re-proved, so partial output is still sound), nothing
/// half-proved is cached, and re-running under a richer context finishes
/// the job against warm shards.
pub fn diagnose_cx(schema: &Schema, cx: &ExecCx) -> Vec<Diagnosis> {
    diagnose_with_cx(schema, &orm_dl::translate(schema), cx)
}

/// [`diagnose_cx`] against an existing translation (the warm-cache
/// variant, see [`diagnose_with`]).
pub fn diagnose_with_cx(schema: &Schema, translation: &Translation, cx: &ExecCx) -> Vec<Diagnosis> {
    let mut out = Vec::new();
    let mut diagnose_element = |element: DiagnosedElement, label: String| {
        let (query, enumeration) = match element {
            DiagnosedElement::Type(ty) => {
                (translation.type_concept(ty), translation.enumerate_type_cx(ty, cx, FAMILY_LIMIT))
            }
            DiagnosedElement::Role(role) => (
                translation.role_concept(role),
                translation.enumerate_role_cx(role, cx, FAMILY_LIMIT),
            ),
        };
        if let MusEnumeration::Unsat(family) = enumeration {
            let verbalize_core = |core: &UnsatCore| -> Vec<String> {
                translation
                    .core_origins(core)
                    .into_iter()
                    .map(|origin| origin_statement(schema, origin))
                    .collect()
            };
            let alternatives: Vec<Vec<String>> = family.cores.iter().map(verbalize_core).collect();
            let repairs = translation
                .repairs_for_cx(&query, cx, &family)
                .into_iter()
                .map(|set| {
                    let statements = translation
                        .repair_origins(&set)
                        .into_iter()
                        .map(|origin| origin_statement(schema, origin))
                        .collect();
                    Repair { set, statements }
                })
                .collect();
            let core = family.cores[0].clone();
            let statements = alternatives[0].clone();
            out.push(Diagnosis { element, label, core, statements, family, alternatives, repairs });
        }
    };
    for (ty, _) in schema.object_types() {
        if translation.type_satisfiable_cx(ty, cx) == SearchOutcome::Unsat {
            diagnose_element(DiagnosedElement::Type(ty), schema.object_type(ty).name().to_owned());
        }
    }
    for (role, _) in schema.roles() {
        if translation.role_satisfiable_cx(role, cx) == SearchOutcome::Unsat {
            diagnose_element(DiagnosedElement::Role(role), schema.role_label(role).to_owned());
        }
    }
    out
}

/// One unsatisfiable element as decided by the **saturation engine**, with
/// the refuting constraints verbalized. This is the attribution path for
/// verdicts the DL pipeline cannot produce at all — ring incompatibilities,
/// value-starved frequencies, acyclic-plus-mandatory traps — where no DL
/// unsat core exists to map back ([`Refutation::beyond_dl`] marks them).
#[derive(Clone, Debug)]
pub struct SaturationDiagnosis {
    /// The doomed element.
    pub element: DiagnosedElement,
    /// Its display label (type name or role label).
    pub label: String,
    /// The saturation engine's refutation: the origins that killed every
    /// candidate, and whether the argument needed non-DL constructs.
    pub refutation: Refutation,
    /// One verbalized statement per distinct origin, in origin order (ring
    /// origins of one fact type are merged into a single declaration
    /// statement).
    pub statements: Vec<String>,
}

impl std::fmt::Display for SaturationDiagnosis {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "`{}` can never be populated because:", self.label)?;
        for s in &self.statements {
            writeln!(f, "  - {s}")?;
        }
        if self.refutation.beyond_dl {
            write!(f, "  (outside the DL fragment — decided by the saturation engine)")
        } else {
            write!(f, "  (decided by the saturation engine)")
        }
    }
}

/// Render a saturation refutation's origins as statements: ring origins
/// are grouped per fact type into one declaration sentence; every other
/// origin verbalizes the constraint(s) or implicit rule it names.
fn saturation_statements(schema: &Schema, refutation: &Refutation) -> Vec<String> {
    let ring_fact = |cid: ConstraintId| -> Option<(FactTypeId, RingKinds)> {
        match schema.constraint(cid) {
            Some(Constraint::Ring(r)) => Some((r.fact_type, r.kinds)),
            _ => None,
        }
    };
    let mut ring_by_fact: BTreeMap<FactTypeId, RingKinds> = BTreeMap::new();
    for origin in &refutation.origins {
        let cids: Vec<ConstraintId> = match origin {
            NonDlOrigin::Ring { constraint } => vec![*constraint],
            NonDlOrigin::RingMandatory { ring, .. } => vec![*ring],
            _ => continue,
        };
        for cid in cids {
            if let Some((fact, kinds)) = ring_fact(cid) {
                let entry = ring_by_fact.entry(fact).or_insert(RingKinds::EMPTY);
                *entry = entry.union(kinds);
            }
        }
    }
    let constraint_statement = |cid: ConstraintId| -> String {
        match schema.constraint(cid) {
            Some(c) => verbalize_constraint(schema, c),
            None => format!("A since-removed constraint ({cid:?})."),
        }
    };
    let value_statement = |ty: ObjectTypeId| -> String {
        let ot = schema.object_type(ty);
        match ot.value_constraint() {
            Some(vc) => format!("The possible values of {} are {}.", ot.name(), vc),
            None => format!("The effective value set of {} is too small.", ot.name()),
        }
    };
    let mut out: Vec<String> =
        ring_by_fact.iter().map(|(f, k)| verbalize_ring_declaration(schema, *f, *k)).collect();
    for origin in &refutation.origins {
        match origin {
            NonDlOrigin::Ring { .. } => {}
            NonDlOrigin::RingMandatory { mandatory, .. } => {
                out.push(constraint_statement(*mandatory));
            }
            NonDlOrigin::ValueCardinality { ty } => out.push(value_statement(*ty)),
            NonDlOrigin::Frequency { constraint }
            | NonDlOrigin::SpanningFrequency { constraint }
            | NonDlOrigin::SetIncompatible { constraint }
            | NonDlOrigin::ExclusiveTypes { constraint } => {
                out.push(constraint_statement(*constraint));
            }
            NonDlOrigin::FrequencyValue { frequency, ty } => {
                out.push(constraint_statement(*frequency));
                out.push(value_statement(*ty));
            }
            NonDlOrigin::UniquenessFrequency { uniqueness, frequency } => {
                out.push(constraint_statement(*uniqueness));
                out.push(constraint_statement(*frequency));
            }
            NonDlOrigin::ExclusionMandatory { exclusion, mandatory } => {
                out.push(constraint_statement(*exclusion));
                out.push(constraint_statement(*mandatory));
            }
            NonDlOrigin::SubsetExclusion { subset, exclusion } => {
                out.push(constraint_statement(*subset));
                out.push(constraint_statement(*exclusion));
            }
            NonDlOrigin::TypeExclusion { a, b } => {
                out.push(verbalize_implicit_exclusion(schema, *a, *b));
            }
            NonDlOrigin::SubtypeCycle { ty } => out.push(format!(
                "{} sits on a subtype cycle, and subtypes are proper subsets.",
                schema.object_type(*ty).name()
            )),
        }
    }
    let mut seen = std::collections::BTreeSet::new();
    out.retain(|s| seen.insert(s.clone()));
    out
}

/// Diagnose every element the **saturation engine** refutes, under `cx`:
/// one sweep over all object types and roles, each `Unsat` turned into a
/// verbalized [`SaturationDiagnosis`]. Interrupted or undecided queries
/// produce no diagnosis — like [`diagnose`], this reports *certified*
/// refutations only, in sweep order (types first).
///
/// The DL pipeline's [`diagnose`] and this function are complementary:
/// where both engines refute an element, the DL diagnosis carries the
/// minimal-core machinery (families, repairs); where only the saturation
/// engine can decide (`refutation.beyond_dl`), this is the sole source of
/// attribution.
pub fn diagnose_saturation(schema: &Schema, cx: &ExecCx) -> Vec<SaturationDiagnosis> {
    let engine = SaturationEngine::new(schema);
    let mut out = Vec::new();
    for (ty, ot) in schema.object_types() {
        if let SaturationOutcome::Unsat(refutation) = engine.check_type(ty, cx) {
            let statements = saturation_statements(schema, &refutation);
            out.push(SaturationDiagnosis {
                element: DiagnosedElement::Type(ty),
                label: ot.name().to_owned(),
                refutation,
                statements,
            });
        }
    }
    for (role, _) in schema.roles() {
        if let SaturationOutcome::Unsat(refutation) = engine.check_role(role, cx) {
            let statements = saturation_statements(schema, &refutation);
            out.push(SaturationDiagnosis {
                element: DiagnosedElement::Role(role),
                label: schema.role_label(role).to_owned(),
                refutation,
                statements,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use orm_model::SchemaBuilder;

    const BUDGET: u64 = 200_000;

    #[test]
    fn saturation_diagnosis_names_ring_declaration() {
        let mut b = SchemaBuilder::new("s");
        let e = b.entity_type("Employee").unwrap();
        let f = b
            .fact_type_full("reports_to", (e, Some("r1")), (e, Some("r2")), Some("reports to"))
            .unwrap();
        b.ring(f, [orm_model::RingKind::Acyclic, orm_model::RingKind::Symmetric]).unwrap();
        let s = b.finish();
        let ds = diagnose_saturation(&s, &ExecCx::unlimited());
        // Both roles of the ring fact are doomed; the type itself is fine.
        assert_eq!(ds.len(), 2, "{ds:?}");
        for d in &ds {
            assert!(matches!(d.element, DiagnosedElement::Role(_)));
            assert!(d.refutation.beyond_dl);
            assert_eq!(
                d.statements,
                vec!["*reports to* is declared acyclic and symmetric.".to_owned()]
            );
            assert!(d.to_string().contains("outside the DL fragment"));
        }
    }

    #[test]
    fn saturation_diagnosis_empty_on_clean_schema() {
        let mut b = SchemaBuilder::new("clean");
        let person = b.entity_type("Person").unwrap();
        let student = b.entity_type("Student").unwrap();
        b.subtype(student, person).unwrap();
        let s = b.finish();
        assert!(diagnose_saturation(&s, &ExecCx::unlimited()).is_empty());
    }

    #[test]
    fn saturation_diagnosis_interrupt_yields_nothing() {
        let mut b = SchemaBuilder::new("s");
        let w = b.entity_type("W").unwrap();
        let f = b.fact_type("f", w, w).unwrap();
        b.ring(f, [orm_model::RingKind::Acyclic, orm_model::RingKind::Symmetric]).unwrap();
        let s = b.finish();
        let cx = ExecCx::unlimited();
        cx.cancel();
        assert!(diagnose_saturation(&s, &cx).is_empty());
    }

    #[test]
    fn exclusion_mandatory_diagnosed_at_role_level() {
        // Fig. 4a: mandatory r1 + exclusion {r1, r3} dooms r3. The
        // diagnosis must name both constraints (and the fact typing that
        // links them), not merely flag the role.
        let mut b = SchemaBuilder::new("fig4a");
        let a = b.entity_type("A").unwrap();
        let x = b.entity_type("X").unwrap();
        let y = b.entity_type("Y").unwrap();
        let f1 = b.fact_type("f1", a, x).unwrap();
        let f2 = b.fact_type("f2", a, y).unwrap();
        let r1 = b.schema().fact_type(f1).first();
        let r3 = b.schema().fact_type(f2).first();
        b.mandatory(r1).unwrap();
        b.exclusion_roles([r1, r3]).unwrap();
        let s = b.finish();
        let ds = diagnose(&s, BUDGET);
        // Both ends of the doomed fact type f2 are reported (a tuple
        // would populate both), r1 is not.
        assert!(!ds.iter().any(|d| d.element == DiagnosedElement::Role(r1)), "{ds:?}");
        let d = ds
            .iter()
            .find(|d| d.element == DiagnosedElement::Role(r3))
            .expect("r3 must be diagnosed");
        assert!(d.core.minimal);
        assert!(!d.statements.is_empty());
        assert!(
            d.statements.iter().any(|s| s.contains("must")),
            "mandatory constraint missing from {:?}",
            d.statements
        );
        assert!(
            d.statements.iter().any(|s| s.contains("more than one")),
            "exclusion missing from {:?}",
            d.statements
        );
        // Display renders the element and every statement.
        let text = d.to_string();
        assert!(text.contains("can never be populated"));
        assert!(text.contains("minimal"));
    }

    #[test]
    fn uniqueness_frequency_conflict_names_both() {
        // Fig. 10 / Pattern 7: UC (≤1) against FC(2..5) on one role.
        let mut b = SchemaBuilder::new("fig10");
        let a = b.entity_type("A").unwrap();
        let x = b.entity_type("X").unwrap();
        let f = b.fact_type("f", a, x).unwrap();
        let r1 = b.schema().fact_type(f).first();
        b.unique([r1]).unwrap();
        b.frequency([r1], 2, Some(5)).unwrap();
        let s = b.finish();
        let ds = diagnose(&s, BUDGET);
        let d = ds
            .iter()
            .find(|d| d.element == DiagnosedElement::Role(r1))
            .expect("r1 must be diagnosed");
        assert!(
            d.statements.iter().any(|s| s.contains("at most once")),
            "uniqueness missing: {:?}",
            d.statements
        );
        assert!(
            d.statements.iter().any(|s| s.contains("between 2 and 5")),
            "frequency missing: {:?}",
            d.statements
        );
    }

    #[test]
    fn two_independent_contradictions_enumerated_with_repairs() {
        // Fig. 1 (exclusive supertypes) merged with a second independent
        // exclusion cycle on the same Phd type: the diagnosis must carry
        // BOTH contradictions in its family and every verified repair
        // must break both at once.
        let mut b = SchemaBuilder::new("two");
        let person = b.entity_type("Person").unwrap();
        let student = b.entity_type("Student").unwrap();
        let employee = b.entity_type("Employee").unwrap();
        let x = b.entity_type("X").unwrap();
        let y = b.entity_type("Y").unwrap();
        let phd = b.entity_type("Phd").unwrap();
        // One shared root keeps ORM's implicit exclusions out of play, so
        // the two declared exclusions are the only contradiction sources.
        for ty in [student, employee, x, y] {
            b.subtype(ty, person).unwrap();
        }
        for sup in [student, employee, x, y] {
            b.subtype(phd, sup).unwrap();
        }
        b.exclusive_types([student, employee]).unwrap();
        b.exclusive_types([x, y]).unwrap();
        let s = b.finish();
        let ds = diagnose(&s, BUDGET);
        let d = ds
            .iter()
            .find(|d| d.element == DiagnosedElement::Type(phd))
            .expect("Phd must be diagnosed");
        assert_eq!(d.family.len(), 2, "exactly both contradictions expected: {:?}", d.family);
        assert!(d.family.complete);
        assert!(!d.family.truncated);
        // 9 repairs: one subtype-or-exclusion pick per contradiction.
        assert_eq!(d.repairs.len(), 9);
        assert_eq!(d.alternatives.len(), d.family.len());
        assert_eq!(d.core, d.family.cores[0]);
        assert_eq!(d.statements, d.alternatives[0]);
        // Every repair is verified and hits every core in the family.
        assert!(!d.repairs.is_empty());
        for r in &d.repairs {
            assert!(r.set.verified);
            for core in &d.family.cores {
                assert!(
                    core.axioms.iter().any(|a| r.set.axioms.contains(a)),
                    "repair {r:?} misses core {core:?}"
                );
            }
            assert!(!r.statements.is_empty());
        }
        let text = d.to_string();
        assert!(text.contains("and independently (contradiction 2 of"));
        assert!(text.contains("To repair, drop one of:"));
    }

    #[test]
    fn satisfiable_schema_yields_no_diagnoses() {
        let mut b = SchemaBuilder::new("clean");
        let person = b.entity_type("Person").unwrap();
        let student = b.entity_type("Student").unwrap();
        b.subtype(student, person).unwrap();
        let s = b.finish();
        assert!(diagnose(&s, BUDGET).is_empty());
    }

    #[test]
    fn warm_session_diagnosis_matches_cold() {
        // diagnose_with over an edited translation agrees with diagnose
        // over the equivalent rebuilt schema.
        let mut b = SchemaBuilder::new("s");
        let person = b.entity_type("Person").unwrap();
        let student = b.entity_type("Student").unwrap();
        let employee = b.entity_type("Employee").unwrap();
        let phd = b.entity_type("Phd").unwrap();
        b.subtype(student, person).unwrap();
        b.subtype(employee, person).unwrap();
        b.subtype(phd, student).unwrap();
        b.subtype(phd, employee).unwrap();
        let schema = b.finish();
        let mut translation = orm_dl::translate(&schema);
        assert!(diagnose_with(&schema, &translation, BUDGET).is_empty());
        translation.edit().add_type_exclusion(student, employee);
        let warm = diagnose_with(&schema, &translation, BUDGET);
        assert_eq!(warm.len(), 1);
        assert_eq!(warm[0].element, DiagnosedElement::Type(phd));
        assert!(
            warm[0].statements.iter().any(|s| s.contains("added this session")),
            "session-added exclusion should be named: {:?}",
            warm[0].statements
        );
    }
}
