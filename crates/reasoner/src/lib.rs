//! # orm-reasoner — a complete bounded model finder for ORM schemas
//!
//! The paper contrasts its fast-but-incomplete patterns with a *complete*
//! reasoning procedure obtained by translating ORM to the DLR description
//! logic and running RACER (§4). RACER is closed source and no DLR
//! reasoner exists in the open Rust ecosystem, so this crate provides the
//! substitute comparator: an exhaustive, propagation-pruned search for a
//! **population** of the schema over bounded domains, covering **all**
//! constraint kinds — including the ring and value constraints that the
//! DLR mapping cannot express (paper footnote 10).
//!
//! Semantics:
//!
//! * [`Outcome::Satisfiable`] — a witness population was found (and
//!   re-verified through `orm-population`, so this verdict is
//!   unconditionally sound);
//! * [`Outcome::UnsatWithinBounds`] — the *entire* bounded space was
//!   exhausted. For the contradiction patterns of the paper this is a
//!   genuine refutation: each pattern's inconsistency already manifests at
//!   tiny domain sizes. In general ORM lacks a finite-model property, so
//!   the verdict is "unsatisfiable within bounds";
//! * [`Outcome::BudgetExhausted`] — the node budget ran out first (the
//!   exponential blow-up the paper attributes to complete procedures —
//!   measured by the `patterns_vs_complete` benchmark).
//!
//! # Example
//!
//! ```
//! use orm_model::SchemaBuilder;
//! use orm_reasoner::{strong_satisfiability, Bounds, Outcome};
//!
//! let mut b = SchemaBuilder::new("s");
//! let person = b.entity_type("Person").unwrap();
//! let car = b.entity_type("Car").unwrap();
//! let drives = b.fact_type("drives", person, car).unwrap();
//! let r = b.schema().fact_type(drives).first();
//! b.mandatory(r).unwrap();
//! let schema = b.finish();
//!
//! match strong_satisfiability(&schema, Bounds::default()) {
//!     Outcome::Satisfiable(pop) => assert!(!pop.is_empty()),
//!     other => panic!("expected a model, got {other:?}"),
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod diagnose;
mod search;

pub use diagnose::{
    diagnose, diagnose_cx, diagnose_saturation, diagnose_with, diagnose_with_cx, DiagnosedElement,
    Diagnosis, Repair, SaturationDiagnosis, FAMILY_LIMIT,
};
pub use search::{find_model, Bounds, Outcome, Target};

use orm_dl::{DlOutcome, ExecCx, SearchOutcome, Translation};
use orm_model::{ObjectTypeId, RoleId, Schema};
use orm_population::{CheckOptions, CheckPlan, Population, Violation};

/// Weak (schema) satisfiability: is there any model at all?
///
/// For this constraint language the empty population is always a model —
/// the paper's Fig. 1 observation — so this is mostly a sanity interface;
/// it still runs the search so the invariant is checked rather than
/// assumed.
pub fn weak_satisfiability(schema: &Schema, bounds: Bounds) -> Outcome {
    find_model(schema, &[], bounds)
}

/// Concept satisfiability: find a model populating **all** object types.
pub fn concept_satisfiability(schema: &Schema, bounds: Bounds) -> Outcome {
    let targets: Vec<Target> = schema.object_types().map(|(id, _)| Target::Type(id)).collect();
    find_model(schema, &targets, bounds)
}

/// Strong (role) satisfiability: find a model populating **all** roles —
/// the notion the paper's patterns target.
pub fn strong_satisfiability(schema: &Schema, bounds: Bounds) -> Outcome {
    let targets: Vec<Target> = schema.roles().map(|(id, _)| Target::Role(id)).collect();
    find_model(schema, &targets, bounds)
}

/// Satisfiability of a single role: can `role` ever be populated?
///
/// ```
/// use orm_model::SchemaBuilder;
/// use orm_reasoner::{role_satisfiability, Bounds, Outcome};
///
/// // Pattern 7's contradiction: a uniqueness constraint (≤1) against a
/// // frequency constraint demanding 2–5 occurrences per player.
/// let mut b = SchemaBuilder::new("s");
/// let a = b.entity_type("A").unwrap();
/// let x = b.entity_type("X").unwrap();
/// let f = b.fact_type("f", a, x).unwrap();
/// let r = b.schema().fact_type(f).first();
/// b.unique([r]).unwrap();
/// b.frequency([r], 2, Some(5)).unwrap();
/// let schema = b.finish();
///
/// assert!(matches!(
///     role_satisfiability(&schema, r, Bounds::default()),
///     Outcome::UnsatWithinBounds
/// ));
/// ```
pub fn role_satisfiability(schema: &Schema, role: RoleId, bounds: Bounds) -> Outcome {
    find_model(schema, &[Target::Role(role)], bounds)
}

/// Satisfiability of a single object type.
pub fn type_satisfiability(schema: &Schema, ty: ObjectTypeId, bounds: Bounds) -> Outcome {
    find_model(schema, &[Target::Type(ty)], bounds)
}

/// The per-role battery a whole-schema check runs: one bounded search
/// per role, in `schema.roles()` order. Unlike [`strong_satisfiability`]
/// (one search populating *all* roles at once), the sweep localizes each
/// verdict to its role — the per-element reporting the paper's patterns
/// produce, re-derived by the complete procedure.
pub fn role_sweep(schema: &Schema, bounds: Bounds) -> Vec<(RoleId, Outcome)> {
    schema.roles().map(|(role, _)| (role, role_satisfiability(schema, role, bounds))).collect()
}

/// [`role_sweep`] fanned out over up to `threads` scoped worker threads
/// (via [`orm_dl::par::fan_out`]): the per-role searches are fully
/// independent, each exploring its own population space against the
/// shared read-only schema. Same verdicts, same order.
pub fn role_sweep_par(schema: &Schema, bounds: Bounds, threads: usize) -> Vec<(RoleId, Outcome)> {
    let roles: Vec<RoleId> = schema.roles().map(|(role, _)| role).collect();
    let outcomes =
        orm_dl::par::fan_out(&roles, threads, |_, &role| role_satisfiability(schema, role, bounds));
    roles.into_iter().zip(outcomes).collect()
}

/// The per-type battery, sequentially.
pub fn type_sweep(schema: &Schema, bounds: Bounds) -> Vec<(ObjectTypeId, Outcome)> {
    schema.object_types().map(|(ty, _)| (ty, type_satisfiability(schema, ty, bounds))).collect()
}

/// [`type_sweep`] fanned out over up to `threads` scoped worker threads.
pub fn type_sweep_par(
    schema: &Schema,
    bounds: Bounds,
    threads: usize,
) -> Vec<(ObjectTypeId, Outcome)> {
    let types: Vec<ObjectTypeId> = schema.object_types().map(|(ty, _)| ty).collect();
    let outcomes =
        orm_dl::par::fan_out(&types, threads, |_, &ty| type_satisfiability(schema, ty, bounds));
    types.into_iter().zip(outcomes).collect()
}

/// An editor-in-the-loop checking session — the paper's §4 interactive
/// scenario, where a modeler adds one constraint at a time and expects
/// per-element feedback after each keystroke.
///
/// The session holds one DL [`Translation`] whose **sharded verdict cache
/// survives monotone schema edits**: additions applied through
/// [`InteractiveSession::edit`] are recorded in the TBox's delta log, and
/// the re-run sweeps replay every unaffected verdict from warm shards
/// (`Unsat` entries are monotone-safe; `Sat` entries are revalidated
/// against their stored witness models) instead of re-proving the whole
/// battery — see `orm_dl::cache` for the retention rules.
///
/// ```
/// use orm_model::SchemaBuilder;
/// use orm_reasoner::InteractiveSession;
/// use orm_dl::DlOutcome;
///
/// let mut b = SchemaBuilder::new("s");
/// let a = b.entity_type("A").unwrap();
/// let x = b.entity_type("X").unwrap();
/// let f1 = b.fact_type("f1", a, x).unwrap();
/// let f2 = b.fact_type("f2", a, x).unwrap();
/// let r1 = b.schema().fact_type(f1).first();
/// let r3 = b.schema().fact_type(f2).first();
/// let schema = b.finish();
///
/// let mut session = InteractiveSession::new(&schema);
/// assert!(session.role_sweep(&schema, 100_000).iter().all(|(_, v)| *v == DlOutcome::Sat));
///
/// // One edit, one warm re-sweep: the exclusion dooms r3 only.
/// session.edit().add_role_exclusion(r1, r3);
/// session.edit().add_mandatory(a, &[r1]);
/// let sweep = session.role_sweep(&schema, 100_000);
/// assert!(sweep.iter().any(|(r, v)| *r == r3 && *v == DlOutcome::Unsat));
/// assert_eq!(session.cache_stats().invalidations, 0);
/// ```
#[derive(Debug)]
pub struct InteractiveSession {
    translation: Translation,
}

impl InteractiveSession {
    /// Start a session by translating the schema's current state.
    pub fn new(schema: &Schema) -> InteractiveSession {
        InteractiveSession { translation: orm_dl::translate(schema) }
    }

    /// The underlying translation (TBox, concept maps, unmapped notes).
    pub fn translation(&self) -> &Translation {
        &self.translation
    }

    /// Apply constraint additions for this session (see
    /// [`orm_dl::EditSession`] for the available operations).
    pub fn edit(&mut self) -> orm_dl::EditSession<'_> {
        self.translation.edit()
    }

    /// The per-role DL sweep against the warm shards.
    pub fn role_sweep(&self, schema: &Schema, budget: u64) -> Vec<(RoleId, DlOutcome)> {
        self.translation.role_sweep(schema, budget)
    }

    /// [`InteractiveSession::role_sweep`] under an execution context —
    /// the deadline-and-cancel-aware entry point an editor binds to a
    /// keystroke. Once the context trips, the remaining roles report the
    /// interrupt's [`SearchOutcome`] variant immediately and nothing
    /// half-proved is cached, so the *next* keystroke's sweep re-proves
    /// them against the same warm shards.
    pub fn role_sweep_cx(&self, schema: &Schema, cx: &ExecCx) -> Vec<(RoleId, SearchOutcome)> {
        self.translation.role_sweep_cx(schema, cx)
    }

    /// The per-type DL sweep against the warm shards.
    pub fn type_sweep(&self, schema: &Schema, budget: u64) -> Vec<(ObjectTypeId, DlOutcome)> {
        self.translation.type_sweep(schema, budget)
    }

    /// [`InteractiveSession::type_sweep`] under an execution context
    /// (see [`InteractiveSession::role_sweep_cx`]).
    pub fn type_sweep_cx(
        &self,
        schema: &Schema,
        cx: &ExecCx,
    ) -> Vec<(ObjectTypeId, SearchOutcome)> {
        self.translation.type_sweep_cx(schema, cx)
    }

    /// Aggregated cache counters — `retained`/`revalidated` show how much
    /// of the battery each edit preserved.
    pub fn cache_stats(&self) -> orm_dl::CacheStats {
        self.translation.cache_stats()
    }

    /// Serialize the session's warm verdict cache into the versioned,
    /// checksummed snapshot format (see [`orm_dl::SatShards::snapshot`]).
    /// Persist the bytes beside the schema and hand them to
    /// [`InteractiveSession::restore`] after a restart to skip the cold
    /// re-prove.
    pub fn snapshot(&self) -> Vec<u8> {
        self.translation.snapshot()
    }

    /// Install a snapshot taken by [`InteractiveSession::snapshot`] into
    /// this freshly started session. Corrupt bytes or a snapshot of a
    /// different terminology are rejected with the cache untouched and
    /// the session degrades to a cold start — never a panic or a stale
    /// verdict (see [`orm_dl::SatShards::restore`]).
    pub fn restore(&self, bytes: &[u8]) -> Result<orm_dl::RestoreReport, orm_dl::SnapshotError> {
        self.translation.restore(bytes)
    }
}

/// A reusable bulk-conformance checker: the schema is certified and its
/// constraint set compiled into a [`CheckPlan`] **once**, then arbitrarily
/// many populations stream through the columnar engine with no tableau and
/// no per-row dispatch on the data path.
///
/// The plan is keyed on the schema revision and the TBox cache stamp, so
/// a schema edit (builder mutation or [`BulkChecker::edit`] axiom) makes
/// the next [`BulkChecker::check`] recompile transparently — stale plans
/// are never executed.
///
/// ```
/// use orm_model::SchemaBuilder;
/// use orm_population::Population;
/// use orm_reasoner::BulkChecker;
///
/// let mut b = SchemaBuilder::new("s");
/// let person = b.entity_type("Person").unwrap();
/// let car = b.entity_type("Car").unwrap();
/// let drives = b.fact_type("drives", person, car).unwrap();
/// let r = b.schema().fact_type(drives).first();
/// b.mandatory(r).unwrap();
/// let schema = b.finish();
///
/// let mut pop = Population::new();
/// pop.add_instance(person, "ann");
/// pop.add_instance(car, "c1");
/// pop.add_fact(drives, "ann", "c1");
///
/// let mut checker = BulkChecker::new(&schema, 100_000);
/// assert!(checker.check(&schema, &pop).is_empty());
/// assert!(checker.plan().is_some_and(|p| p.certified_sat()));
///
/// pop.add_instance(person, "idle"); // plays no role: mandatory violated
/// assert_eq!(checker.check(&schema, &pop).len(), 1);
/// ```
#[derive(Debug)]
pub struct BulkChecker {
    translation: Translation,
    plan: Option<CheckPlan>,
    options: CheckOptions,
    cx: ExecCx,
}

impl BulkChecker {
    /// A checker with the default (strict) [`CheckOptions`]; `budget`
    /// bounds the one-time certification sweep's tableau runs.
    pub fn new(schema: &Schema, budget: u64) -> BulkChecker {
        BulkChecker::with_options(schema, budget, CheckOptions::default())
    }

    /// A checker with explicit semantic options.
    pub fn with_options(schema: &Schema, budget: u64, options: CheckOptions) -> BulkChecker {
        BulkChecker::with_context(schema, &ExecCx::with_steps(budget), options)
    }

    /// A checker bound to an execution context: the context's step
    /// budget bounds each certification proof, and its meter aggregates
    /// every (re)compile the checker performs over its lifetime. The
    /// checker keeps a clone — the caller's handle still cancels it.
    pub fn with_context(schema: &Schema, cx: &ExecCx, options: CheckOptions) -> BulkChecker {
        BulkChecker { translation: orm_dl::translate(schema), plan: None, options, cx: cx.clone() }
    }

    /// The execution context the certification sweeps run under.
    pub fn context(&self) -> &ExecCx {
        &self.cx
    }

    /// Validate `pop`, compiling (or recompiling) the plan if the cached
    /// one is missing or stale. Reports exactly the violations
    /// [`orm_population::check`] would.
    pub fn check(&mut self, schema: &Schema, pop: &Population) -> Vec<Violation> {
        self.plan_for(schema).execute(schema, pop)
    }

    /// The current plan, compiling it on demand (amortize compilation
    /// without running a population through it — or pair with
    /// [`CheckPlan::execute_columnar`] to amortize the columnar freeze
    /// too).
    pub fn plan_for(&mut self, schema: &Schema) -> &CheckPlan {
        let stale = !self.plan.as_ref().is_some_and(|p| p.is_current(schema, &self.translation));
        if stale {
            let budget = self.cx.steps().unwrap_or(u64::MAX);
            self.plan = Some(CheckPlan::compile(schema, &self.translation, budget, self.options));
        }
        self.plan.as_ref().expect("plan was just compiled")
    }

    /// The cached plan, if one has been compiled (stale or not).
    pub fn plan(&self) -> Option<&CheckPlan> {
        self.plan.as_ref()
    }

    /// The underlying translation (for inspecting the certification).
    pub fn translation(&self) -> &Translation {
        &self.translation
    }

    /// Apply session-level axiom additions — the next
    /// [`BulkChecker::check`] notices the stamp change and recompiles.
    pub fn edit(&mut self) -> orm_dl::EditSession<'_> {
        self.translation.edit()
    }
}

/// One-shot bulk conformance: compile a certified plan for `schema` and
/// run `pop` through it. For repeated populations against one schema,
/// hold a [`BulkChecker`] instead so the compile is paid once.
pub fn check_bulk(
    schema: &Schema,
    pop: &Population,
    budget: u64,
    options: CheckOptions,
) -> Vec<Violation> {
    BulkChecker::with_options(schema, budget, options).check(schema, pop)
}

#[cfg(test)]
mod tests {
    use super::*;
    use orm_model::{RingKind, SchemaBuilder, ValueConstraint};

    #[test]
    fn weak_satisfiability_always_holds() {
        // Even a schema with a doomed role is weakly satisfiable (Fig. 1).
        let mut b = SchemaBuilder::new("s");
        let a = b.entity_type("A").unwrap();
        let x = b.entity_type("X").unwrap();
        let f = b.fact_type("f", a, x).unwrap();
        let r = b.schema().fact_type(f).first();
        b.unique([r]).unwrap();
        b.frequency([r], 2, Some(5)).unwrap(); // Pattern 7 contradiction
        let s = b.finish();
        assert!(matches!(weak_satisfiability(&s, Bounds::default()), Outcome::Satisfiable(_)));
    }

    #[test]
    fn fig1_weakly_but_not_concept_satisfiable() {
        let mut b = SchemaBuilder::new("fig1");
        let person = b.entity_type("Person").unwrap();
        let student = b.entity_type("Student").unwrap();
        let employee = b.entity_type("Employee").unwrap();
        let phd = b.entity_type("PhdStudent").unwrap();
        b.subtype(student, person).unwrap();
        b.subtype(employee, person).unwrap();
        b.subtype(phd, student).unwrap();
        b.subtype(phd, employee).unwrap();
        b.exclusive_types([student, employee]).unwrap();
        let s = b.finish();
        assert!(matches!(weak_satisfiability(&s, Bounds::default()), Outcome::Satisfiable(_)));
        // PhdStudent alone cannot be populated.
        assert!(matches!(
            type_satisfiability(&s, phd, Bounds::default()),
            Outcome::UnsatWithinBounds
        ));
        // But every *other* type can be.
        for t in [person, student, employee] {
            assert!(matches!(
                type_satisfiability(&s, t, Bounds::default()),
                Outcome::Satisfiable(_)
            ));
        }
    }

    #[test]
    fn pattern7_contradiction_refuted() {
        let mut b = SchemaBuilder::new("s");
        let a = b.entity_type("A").unwrap();
        let x = b.entity_type("X").unwrap();
        let f = b.fact_type("f", a, x).unwrap();
        let r = b.schema().fact_type(f).first();
        b.unique([r]).unwrap();
        b.frequency([r], 2, Some(5)).unwrap();
        let s = b.finish();
        assert!(matches!(
            role_satisfiability(&s, r, Bounds::default()),
            Outcome::UnsatWithinBounds
        ));
    }

    #[test]
    fn pattern4_contradiction_refuted() {
        let mut b = SchemaBuilder::new("s");
        let a = b.entity_type("A").unwrap();
        let x = b.value_type("X", Some(ValueConstraint::enumeration(["x1", "x2"]))).unwrap();
        let f = b.fact_type("f", a, x).unwrap();
        let r = b.schema().fact_type(f).first();
        b.frequency([r], 3, Some(5)).unwrap();
        let s = b.finish();
        assert!(matches!(
            role_satisfiability(&s, r, Bounds::default()),
            Outcome::UnsatWithinBounds
        ));
        // With min = 2 the role becomes satisfiable.
        let mut b = SchemaBuilder::new("s2");
        let a = b.entity_type("A").unwrap();
        let x = b.value_type("X", Some(ValueConstraint::enumeration(["x1", "x2"]))).unwrap();
        let f = b.fact_type("f", a, x).unwrap();
        let r = b.schema().fact_type(f).first();
        b.frequency([r], 2, Some(5)).unwrap();
        let s = b.finish();
        assert!(matches!(role_satisfiability(&s, r, Bounds::default()), Outcome::Satisfiable(_)));
    }

    #[test]
    fn ring_incompatibility_refuted() {
        let mut b = SchemaBuilder::new("s");
        let w = b.entity_type("W").unwrap();
        let f = b.fact_type("rel", w, w).unwrap();
        b.ring(f, [RingKind::Acyclic, RingKind::Symmetric]).unwrap();
        let s = b.finish();
        let r = s.fact_type(f).first();
        assert!(matches!(
            role_satisfiability(&s, r, Bounds::default()),
            Outcome::UnsatWithinBounds
        ));
    }

    #[test]
    fn irreflexive_ring_satisfiable() {
        let mut b = SchemaBuilder::new("s");
        let w = b.entity_type("Woman").unwrap();
        let f = b.fact_type("sister_of", w, w).unwrap();
        b.ring(f, [RingKind::Irreflexive]).unwrap();
        let s = b.finish();
        assert!(matches!(strong_satisfiability(&s, Bounds::default()), Outcome::Satisfiable(_)));
    }

    #[test]
    fn subtype_loop_refuted() {
        let mut b = SchemaBuilder::new("s");
        let a = b.entity_type("A").unwrap();
        let c = b.entity_type("C").unwrap();
        b.subtype(a, c).unwrap();
        b.subtype(c, a).unwrap();
        let s = b.finish();
        assert!(matches!(
            type_satisfiability(&s, a, Bounds::default()),
            Outcome::UnsatWithinBounds
        ));
    }

    #[test]
    fn fig14_strongly_satisfiable() {
        // The formation-rule-6 example must be provably fine.
        let mut b = SchemaBuilder::new("fig14");
        let a = b.entity_type("A").unwrap();
        let bb = b.entity_type("B").unwrap();
        let c = b.entity_type("C").unwrap();
        b.subtype(bb, a).unwrap();
        b.subtype(c, a).unwrap();
        b.total_subtypes(a, [bb, c]).unwrap();
        let x = b.entity_type("X").unwrap();
        let f1 = b.fact_type("f1", bb, x).unwrap();
        let f2 = b.fact_type("f2", c, x).unwrap();
        let f3 = b.fact_type("f3", a, x).unwrap();
        let r1 = b.schema().fact_type(f1).first();
        let r3 = b.schema().fact_type(f2).first();
        let r5 = b.schema().fact_type(f3).first();
        b.mandatory(r1).unwrap();
        b.mandatory(r3).unwrap();
        b.exclusion_roles([r3, r5]).unwrap();
        let s = b.finish();
        let outcome = strong_satisfiability(&s, Bounds::default());
        assert!(matches!(outcome, Outcome::Satisfiable(_)), "got {outcome:?}");
    }

    #[test]
    fn parallel_sweeps_match_sequential() {
        // Fig. 4a shape: r1 mandatory, {r1, r3} exclusive — r3 doomed.
        let mut b = SchemaBuilder::new("s");
        let a = b.entity_type("A").unwrap();
        let x = b.entity_type("X").unwrap();
        let y = b.entity_type("Y").unwrap();
        let f1 = b.fact_type("f1", a, x).unwrap();
        let f2 = b.fact_type("f2", a, y).unwrap();
        let r1 = b.schema().fact_type(f1).first();
        b.mandatory(r1).unwrap();
        b.exclusion_roles([r1, b.schema().fact_type(f2).first()]).unwrap();
        let s = b.finish();
        let bounds = Bounds::small();

        let seq_roles = role_sweep(&s, bounds);
        assert!(seq_roles.iter().any(|(_, o)| o.is_unsat_within_bounds()));
        let seq_types = type_sweep(&s, bounds);
        for threads in [1, 2, 8] {
            let par_roles = role_sweep_par(&s, bounds, threads);
            assert_eq!(par_roles.len(), seq_roles.len());
            for ((r1, o1), (r2, o2)) in seq_roles.iter().zip(&par_roles) {
                assert_eq!(r1, r2, "role order changed at {threads} threads");
                assert_eq!(
                    (o1.is_sat(), o1.is_unsat_within_bounds()),
                    (o2.is_sat(), o2.is_unsat_within_bounds()),
                    "role verdict changed at {threads} threads"
                );
            }
            let par_types = type_sweep_par(&s, bounds, threads);
            for ((t1, o1), (t2, o2)) in seq_types.iter().zip(&par_types) {
                assert_eq!(t1, t2);
                assert_eq!(
                    (o1.is_sat(), o1.is_unsat_within_bounds()),
                    (o2.is_sat(), o2.is_unsat_within_bounds())
                );
            }
        }
    }

    /// The interactive session's warm re-sweep after an edit equals a
    /// cold translation of the edited schema, with the cache visibly
    /// retaining work (nonzero retained+revalidated, zero
    /// invalidations).
    #[test]
    fn interactive_session_matches_cold_translation() {
        const BUDGET: u64 = 200_000;
        let build = |with_exclusion: bool| {
            let mut b = SchemaBuilder::new("s");
            let person = b.entity_type("Person").unwrap();
            let student = b.entity_type("Student").unwrap();
            let employee = b.entity_type("Employee").unwrap();
            let phd = b.entity_type("Phd").unwrap();
            b.subtype(student, person).unwrap();
            b.subtype(employee, person).unwrap();
            b.subtype(phd, student).unwrap();
            b.subtype(phd, employee).unwrap();
            if with_exclusion {
                b.exclusive_types([student, employee]).unwrap();
            }
            (b.finish(), student, employee)
        };
        let (schema, student, employee) = build(false);
        let mut session = InteractiveSession::new(&schema);
        let before = session.type_sweep(&schema, BUDGET);
        assert!(before.iter().all(|(_, v)| *v == DlOutcome::Sat));

        session.edit().add_type_exclusion(student, employee);
        let warm = session.type_sweep(&schema, BUDGET);

        let (edited, ..) = build(true);
        let cold = orm_dl::translate(&edited).type_sweep(&edited, BUDGET);
        assert_eq!(
            warm.iter().map(|(_, v)| *v).collect::<Vec<_>>(),
            cold.iter().map(|(_, v)| *v).collect::<Vec<_>>(),
            "warm session diverged from cold translation"
        );
        let stats = session.cache_stats();
        assert_eq!(stats.invalidations, 0, "the edit thrashed the shards");
        assert!(stats.retained + stats.revalidated > 0, "no entry survived the edit: {stats:?}");
    }

    #[test]
    fn budget_exhaustion_reported() {
        let mut b = SchemaBuilder::new("s");
        let a = b.entity_type("A").unwrap();
        let x = b.entity_type("X").unwrap();
        for i in 0..6 {
            b.fact_type(&format!("f{i}"), a, x).unwrap();
        }
        let s = b.finish();
        let tiny = Bounds { max_nodes: 3, ..Bounds::default() };
        assert!(matches!(strong_satisfiability(&s, tiny), Outcome::BudgetExhausted));
    }
}
