//! Backtracking search for a satisfying population.
//!
//! The search decides, in order:
//!
//! 1. an extent (subset of a candidate pool) for every object type, in a
//!    topological order that visits supertypes before subtypes so that
//!    subset/strictness/exclusion constraints prune immediately;
//! 2. a fact table (subset of the extent product) for every fact type,
//!    with all per-fact constraints (uniqueness, frequency, rings) checked
//!    the moment the table is chosen.
//!
//! Candidate pools are constructed per *subtype component*: types connected
//! through subtyping must be able to share instances, while instances never
//! need to flow between components (ORM's implicit type exclusion). A pool
//! mixes fresh abstract individuals with a clamped prefix of each value
//! constraint's enumeration — constraints only inspect values through
//! membership and equality, so any model is isomorphic to one over these
//! pools (up to the size bounds).
//!
//! Every candidate solution is re-verified with `orm-population::check`
//! before being returned, so a [`Outcome::Satisfiable`] verdict never
//! depends on the pruning logic being right.

use orm_population::{check, CheckOptions, Population};

use orm_model::{Constraint, FactTypeId, ObjectTypeId, RoleId, Schema, SchemaIndex, Value};
use std::collections::{BTreeMap, BTreeSet};

/// Search bounds.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Bounds {
    /// Maximum instances per object-type extent.
    pub max_extent: usize,
    /// Fresh abstract individuals available per subtype component.
    pub fresh_per_component: usize,
    /// Maximum tuples per fact table.
    pub max_tuples: usize,
    /// Maximum number of search nodes (decision points) before giving up.
    pub max_nodes: u64,
}

impl Default for Bounds {
    fn default() -> Self {
        Bounds { max_extent: 3, fresh_per_component: 3, max_tuples: 4, max_nodes: 2_000_000 }
    }
}

impl Bounds {
    /// Small bounds for quick checks in property tests.
    pub fn small() -> Self {
        Bounds { max_extent: 2, fresh_per_component: 2, max_tuples: 3, max_nodes: 200_000 }
    }
}

/// A population element the model must make non-empty.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Target {
    /// Require the role's column to be non-empty.
    Role(RoleId),
    /// Require the type's extent to be non-empty.
    Type(ObjectTypeId),
}

/// Result of a bounded search.
#[derive(Clone, Debug)]
pub enum Outcome {
    /// A verified model populating all targets.
    Satisfiable(Population),
    /// The bounded space contains no such model.
    UnsatWithinBounds,
    /// `max_nodes` was exhausted before the space was covered.
    BudgetExhausted,
}

impl Outcome {
    /// Whether this outcome is a satisfiability witness.
    pub fn is_sat(&self) -> bool {
        matches!(self, Outcome::Satisfiable(_))
    }

    /// Whether the bounded space was fully refuted.
    pub fn is_unsat_within_bounds(&self) -> bool {
        matches!(self, Outcome::UnsatWithinBounds)
    }
}

/// Search for a model of `schema` populating all `targets`.
pub fn find_model(schema: &Schema, targets: &[Target], bounds: Bounds) -> Outcome {
    let idx = schema.index();
    let searcher = Searcher::new(schema, &idx, targets, bounds);
    searcher.run()
}

struct Searcher<'a> {
    schema: &'a Schema,
    idx: &'a SchemaIndex,
    bounds: Bounds,
    type_order: Vec<ObjectTypeId>,
    candidates: Vec<Vec<Value>>,
    target_types: BTreeSet<ObjectTypeId>,
    target_facts: BTreeSet<FactTypeId>,
    options: CheckOptions,
}

impl<'a> Searcher<'a> {
    fn new(schema: &'a Schema, idx: &'a SchemaIndex, targets: &[Target], bounds: Bounds) -> Self {
        let mut target_types = BTreeSet::new();
        let mut target_facts = BTreeSet::new();
        for t in targets {
            match t {
                Target::Type(ty) => {
                    target_types.insert(*ty);
                }
                Target::Role(r) => {
                    target_facts.insert(schema.role(*r).fact_type());
                    // A populated role needs a populated player.
                    target_types.insert(schema.player(*r));
                }
            }
        }
        Searcher {
            schema,
            idx,
            bounds,
            type_order: topological_order(schema, idx),
            candidates: candidate_pools(schema, idx, bounds),
            target_types,
            target_facts,
            options: CheckOptions::default(),
        }
    }

    fn run(&self) -> Outcome {
        let mut pop = Population::new();
        let mut budget = self.bounds.max_nodes;
        match self.assign_types(0, &mut pop, &mut budget) {
            SearchResult::Found(pop) => Outcome::Satisfiable(pop),
            SearchResult::Exhausted => Outcome::UnsatWithinBounds,
            SearchResult::OutOfBudget => Outcome::BudgetExhausted,
        }
    }

    fn assign_types(
        &self,
        position: usize,
        pop: &mut Population,
        budget: &mut u64,
    ) -> SearchResult {
        if *budget == 0 {
            return SearchResult::OutOfBudget;
        }
        *budget -= 1;
        if position == self.type_order.len() {
            let facts: Vec<FactTypeId> = self.schema.fact_types().map(|(id, _)| id).collect();
            return self.assign_facts(&facts, 0, pop, budget);
        }
        let ty = self.type_order[position];
        let pool = &self.candidates[ty.index()];
        let min_size = usize::from(self.target_types.contains(&ty));
        let max_size = self.bounds.max_extent.min(pool.len());

        for size in min_size..=max_size {
            for combo in combinations(pool, size) {
                if !self.extent_consistent(ty, &combo, pop) {
                    continue;
                }
                for v in &combo {
                    pop.add_instance(ty, v.clone());
                }
                match self.assign_types(position + 1, pop, budget) {
                    SearchResult::Exhausted => {}
                    other => return other,
                }
                for v in &combo {
                    pop.remove_instance(ty, v);
                }
            }
        }
        SearchResult::Exhausted
    }

    /// Prune an extent choice against constraints whose other participants
    /// were already decided (supertypes come earlier in `type_order`).
    fn extent_consistent(&self, ty: ObjectTypeId, chosen: &[Value], pop: &Population) -> bool {
        // Subset of every already-decided direct supertype, strictly when
        // proper semantics apply.
        for sup in self.idx.direct_supers(ty) {
            if self.decided_before(*sup, ty) {
                let sup_extent = pop.extent(*sup);
                if !chosen.iter().all(|v| sup_extent.contains(v)) {
                    return false;
                }
                if self.options.proper_subtypes
                    && !chosen.is_empty()
                    && chosen.len() == sup_extent.len()
                {
                    return false; // equal to supertype: not a strict subset
                }
            }
        }
        // Explicit exclusive-types constraints with decided members.
        for (_, c) in self.schema.constraints() {
            if let Constraint::ExclusiveTypes(e) = c {
                if !e.types.contains(&ty) {
                    continue;
                }
                for other in &e.types {
                    if *other != ty && self.decided_before(*other, ty) {
                        let other_extent = pop.extent(*other);
                        if chosen.iter().any(|v| other_extent.contains(v)) {
                            return false;
                        }
                    }
                }
            }
        }
        // Implicit exclusion against decided unrelated types.
        for other in &self.type_order {
            if *other == ty {
                break;
            }
            if !self.idx.may_overlap(ty, *other) {
                let other_extent = pop.extent(*other);
                if chosen.iter().any(|v| other_extent.contains(v)) {
                    return false;
                }
            }
        }
        true
    }

    fn decided_before(&self, a: ObjectTypeId, b: ObjectTypeId) -> bool {
        let pa = self.type_order.iter().position(|t| *t == a);
        let pb = self.type_order.iter().position(|t| *t == b);
        matches!((pa, pb), (Some(x), Some(y)) if x < y)
    }

    fn assign_facts(
        &self,
        facts: &[FactTypeId],
        position: usize,
        pop: &mut Population,
        budget: &mut u64,
    ) -> SearchResult {
        if *budget == 0 {
            return SearchResult::OutOfBudget;
        }
        *budget -= 1;
        if position == facts.len() {
            return self.verify(pop);
        }
        let fact = facts[position];
        let ft = self.schema.fact_type(fact);
        let e0: Vec<Value> = pop.extent(self.schema.player(ft.first())).iter().cloned().collect();
        let e1: Vec<Value> = pop.extent(self.schema.player(ft.second())).iter().cloned().collect();
        let pairs: Vec<(Value, Value)> =
            e0.iter().flat_map(|a| e1.iter().map(move |b| (a.clone(), b.clone()))).collect();
        let min_size = usize::from(self.target_facts.contains(&fact));
        let max_size = self.bounds.max_tuples.min(pairs.len());
        if pairs.len() < min_size {
            return SearchResult::Exhausted;
        }

        for size in min_size..=max_size {
            for combo in combinations(&pairs, size) {
                if !self.fact_consistent(fact, &combo) {
                    continue;
                }
                for (a, b) in &combo {
                    pop.add_fact(fact, a.clone(), b.clone());
                }
                match self.assign_facts(facts, position + 1, pop, budget) {
                    SearchResult::Exhausted => {}
                    other => return other,
                }
                for (a, b) in &combo {
                    pop.remove_fact(fact, a, b);
                }
            }
        }
        SearchResult::Exhausted
    }

    /// Per-fact constraints are fully decidable once the fact's table is
    /// chosen: uniqueness, frequency, and all ring kinds.
    fn fact_consistent(&self, fact: FactTypeId, tuples: &[(Value, Value)]) -> bool {
        for (_, c) in self.schema.constraints() {
            match c {
                Constraint::Uniqueness(u)
                    if self.schema.role(u.roles[0]).fact_type() == fact
                        && !counting_ok(self.schema, tuples, &u.roles, 1, Some(1)) =>
                {
                    return false;
                }
                Constraint::Frequency(f)
                    if self.schema.role(f.roles[0]).fact_type() == fact
                        && !counting_ok(self.schema, tuples, &f.roles, f.min, f.max) =>
                {
                    return false;
                }
                Constraint::Ring(r) if r.fact_type == fact && !ring_ok(r.kinds, tuples) => {
                    return false;
                }
                _ => {}
            }
        }
        true
    }

    /// Authoritative final check through the population semantics, plus the
    /// target conditions.
    fn verify(&self, pop: &Population) -> SearchResult {
        for ty in &self.target_types {
            if !pop.type_populated(*ty) {
                return SearchResult::Exhausted;
            }
        }
        for fact in &self.target_facts {
            if pop.fact_count(*fact) == 0 {
                return SearchResult::Exhausted;
            }
        }
        if check(self.schema, pop, self.options).is_empty() {
            SearchResult::Found(pop.clone())
        } else {
            SearchResult::Exhausted
        }
    }
}

enum SearchResult {
    Found(Population),
    Exhausted,
    OutOfBudget,
}

/// Topological order over the subtype DAG, supertypes first; cycle members
/// are appended in id order (their contradictions surface in verification).
fn topological_order(schema: &Schema, idx: &SchemaIndex) -> Vec<ObjectTypeId> {
    let n = schema.object_type_count();
    let mut order = Vec::with_capacity(n);
    let mut placed = vec![false; n];
    // Repeatedly place types whose direct supertypes are all placed.
    loop {
        let mut progressed = false;
        for (ty, _) in schema.object_types() {
            if placed[ty.index()] {
                continue;
            }
            let ready = idx.direct_supers(ty).iter().all(|s| placed[s.index()] || *s == ty);
            if ready {
                placed[ty.index()] = true;
                order.push(ty);
                progressed = true;
            }
        }
        if !progressed {
            break;
        }
    }
    for (ty, _) in schema.object_types() {
        if !placed[ty.index()] {
            order.push(ty);
        }
    }
    order
}

/// Candidate instance pool per object type. Pools are shared within a
/// subtype component; a type whose (reflexive) supertype chain carries
/// value constraints is limited to values every such constraint admits.
fn candidate_pools(schema: &Schema, idx: &SchemaIndex, bounds: Bounds) -> Vec<Vec<Value>> {
    let n = schema.object_type_count();
    // Union-find-free component labelling via repeated relaxation.
    let mut component: Vec<usize> = (0..n).collect();
    loop {
        let mut changed = false;
        for link in schema.subtype_links() {
            let (a, b) = (link.sub.index(), link.sup.index());
            let m = component[a].min(component[b]);
            if component[a] != m {
                component[a] = m;
                changed = true;
            }
            if component[b] != m {
                component[b] = m;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    // Per component: fresh individuals + clamped value-constraint values of
    // every member.
    let mut component_values: BTreeMap<usize, Vec<Value>> = BTreeMap::new();
    for (ty, ot) in schema.object_types() {
        let comp = component[ty.index()];
        let entry = component_values.entry(comp).or_insert_with(|| {
            (0..bounds.fresh_per_component).map(|j| Value::str(format!("_u{comp}_{j}"))).collect()
        });
        if let Some(vc) = ot.value_constraint() {
            for v in vc.iter_values().take(bounds.max_extent + 1) {
                if !entry.contains(&v) {
                    entry.push(v);
                }
            }
        }
    }

    // Filter per type by the value constraints along the supertype chain.
    (0..n)
        .map(|i| {
            let ty = ObjectTypeId::from_raw(i as u32);
            let pool = &component_values[&component[i]];
            let vcs: Vec<_> = idx
                .supers_refl(ty)
                .into_iter()
                .filter_map(|s| schema.object_type(s).value_constraint().cloned())
                .collect();
            pool.iter().filter(|v| vcs.iter().all(|vc| vc.admits(v))).cloned().collect()
        })
        .collect()
}

/// All size-`k` combinations of `items`, preserving order.
fn combinations<T: Clone>(items: &[T], k: usize) -> Vec<Vec<T>> {
    let mut out = Vec::new();
    let mut indices: Vec<usize> = (0..k).collect();
    if k > items.len() {
        return out;
    }
    loop {
        out.push(indices.iter().map(|i| items[*i].clone()).collect());
        // Advance the combination counter.
        let mut i = k;
        loop {
            if i == 0 {
                return out;
            }
            i -= 1;
            if indices[i] != i + items.len() - k {
                break;
            }
            if i == 0 {
                return out;
            }
        }
        indices[i] += 1;
        for j in (i + 1)..k {
            indices[j] = indices[j - 1] + 1;
        }
    }
}

fn counting_ok(
    schema: &Schema,
    tuples: &[(Value, Value)],
    roles: &[RoleId],
    min: u32,
    max: Option<u32>,
) -> bool {
    let positions: Vec<u8> = roles.iter().map(|r| schema.role(*r).position()).collect();
    let mut groups: BTreeMap<Vec<&Value>, u32> = BTreeMap::new();
    for (a, b) in tuples {
        let key: Vec<&Value> = positions.iter().map(|p| if *p == 0 { a } else { b }).collect();
        *groups.entry(key).or_insert(0) += 1;
    }
    groups.values().all(|count| *count >= min && max.is_none_or(|m| *count <= m))
}

fn ring_ok(kinds: orm_model::RingKinds, tuples: &[(Value, Value)]) -> bool {
    use orm_model::RingKind::*;
    let set: BTreeSet<(&Value, &Value)> = tuples.iter().map(|(a, b)| (a, b)).collect();
    let holds = |x: &Value, y: &Value| set.contains(&(x, y));
    for kind in kinds.iter() {
        let ok = match kind {
            Irreflexive => tuples.iter().all(|(x, y)| x != y),
            Antisymmetric => tuples.iter().all(|(x, y)| x == y || !holds(y, x)),
            Asymmetric => tuples.iter().all(|(x, y)| !holds(y, x)),
            Symmetric => tuples.iter().all(|(x, y)| holds(y, x)),
            Intransitive => {
                tuples.iter().all(|(x, y)| tuples.iter().all(|(y2, z)| y != y2 || !holds(x, z)))
            }
            Acyclic => acyclic(tuples),
        };
        if !ok {
            return false;
        }
    }
    true
}

fn acyclic(tuples: &[(Value, Value)]) -> bool {
    let mut adjacency: BTreeMap<&Value, Vec<&Value>> = BTreeMap::new();
    for (a, b) in tuples {
        adjacency.entry(a).or_default().push(b);
    }
    let mut state: BTreeMap<&Value, u8> = BTreeMap::new();
    fn dfs<'v>(
        node: &'v Value,
        adjacency: &BTreeMap<&'v Value, Vec<&'v Value>>,
        state: &mut BTreeMap<&'v Value, u8>,
    ) -> bool {
        state.insert(node, 1);
        for next in adjacency.get(node).into_iter().flatten() {
            match state.get(next).copied().unwrap_or(0) {
                1 => return false,
                0 if !dfs(next, adjacency, state) => return false,
                _ => {}
            }
        }
        state.insert(node, 2);
        true
    }
    let nodes: Vec<&Value> = adjacency.keys().copied().collect();
    nodes
        .into_iter()
        .all(|n| state.get(n).copied().unwrap_or(0) != 0 || dfs(n, &adjacency, &mut state))
}

#[cfg(test)]
mod tests {
    use super::*;
    use orm_model::{SchemaBuilder, ValueConstraint};

    #[test]
    fn combinations_enumerate_correct_counts() {
        let items = [1, 2, 3, 4];
        assert_eq!(combinations(&items, 0).len(), 1);
        assert_eq!(combinations(&items, 1).len(), 4);
        assert_eq!(combinations(&items, 2).len(), 6);
        assert_eq!(combinations(&items, 4).len(), 1);
        assert_eq!(combinations(&items, 5).len(), 0);
    }

    #[test]
    fn combinations_are_distinct() {
        let items = [1, 2, 3, 4, 5];
        let combos = combinations(&items, 3);
        let set: BTreeSet<Vec<i32>> = combos.iter().cloned().collect();
        assert_eq!(set.len(), combos.len());
    }

    #[test]
    fn topological_order_respects_subtyping() {
        let mut b = SchemaBuilder::new("s");
        let top = b.entity_type("Top").unwrap();
        let mid = b.entity_type("Mid").unwrap();
        let bot = b.entity_type("Bot").unwrap();
        b.subtype(bot, mid).unwrap();
        b.subtype(mid, top).unwrap();
        let s = b.finish();
        let idx = s.index();
        let order = topological_order(&s, &idx);
        let pos = |t: ObjectTypeId| order.iter().position(|x| *x == t).unwrap();
        assert!(pos(top) < pos(mid));
        assert!(pos(mid) < pos(bot));
    }

    #[test]
    fn topological_order_tolerates_cycles() {
        let mut b = SchemaBuilder::new("s");
        let a = b.entity_type("A").unwrap();
        let c = b.entity_type("C").unwrap();
        b.subtype(a, c).unwrap();
        b.subtype(c, a).unwrap();
        let s = b.finish();
        let order = topological_order(&s, &s.index());
        assert_eq!(order.len(), 2);
    }

    #[test]
    fn candidate_pools_respect_value_constraints() {
        let mut b = SchemaBuilder::new("s");
        let sup = b.value_type("Sup", Some(ValueConstraint::enumeration(["x", "y"]))).unwrap();
        let sub = b.entity_type("Sub").unwrap();
        b.subtype(sub, sup).unwrap();
        let free = b.entity_type("Free").unwrap();
        let s = b.finish();
        let pools = candidate_pools(&s, &s.index(), Bounds::default());
        // Sup and Sub only draw from the enumerated values.
        for ty in [sup, sub] {
            assert!(!pools[ty.index()].is_empty());
            assert!(pools[ty.index()]
                .iter()
                .all(|v| matches!(v, Value::Str(x) if x == "x" || x == "y")));
        }
        // Free gets fresh abstract values.
        assert_eq!(pools[free.index()].len(), Bounds::default().fresh_per_component);
    }

    #[test]
    fn shared_pool_within_component() {
        let mut b = SchemaBuilder::new("s");
        let sup = b.entity_type("Sup").unwrap();
        let sub = b.entity_type("Sub").unwrap();
        b.subtype(sub, sup).unwrap();
        let s = b.finish();
        let pools = candidate_pools(&s, &s.index(), Bounds::default());
        assert_eq!(pools[sup.index()], pools[sub.index()]);
    }

    #[test]
    fn ring_ok_agrees_with_examples() {
        use orm_model::{RingKind, RingKinds};
        let a = Value::str("a");
        let b = Value::str("b");
        let loop_rel = [(a.clone(), a.clone())];
        assert!(!ring_ok(RingKinds::only(RingKind::Irreflexive), &loop_rel));
        assert!(ring_ok(RingKinds::only(RingKind::Symmetric), &loop_rel));
        let edge = [(a.clone(), b.clone())];
        assert!(ring_ok(RingKinds::only(RingKind::Asymmetric), &edge));
        assert!(!ring_ok(RingKinds::only(RingKind::Symmetric), &edge));
        let two_cycle = [(a.clone(), b.clone()), (b.clone(), a.clone())];
        assert!(!ring_ok(RingKinds::only(RingKind::Acyclic), &two_cycle));
        assert!(ring_ok(RingKinds::only(RingKind::Symmetric), &two_cycle));
    }

    #[test]
    fn counting_ok_checks_bounds() {
        let mut b = SchemaBuilder::new("s");
        let a = b.entity_type("A").unwrap();
        let x = b.entity_type("X").unwrap();
        let f = b.fact_type("f", a, x).unwrap();
        let s = b.finish();
        let r0 = s.fact_type(f).first();
        let av = Value::str("a");
        let tuples = [(av.clone(), Value::str("x1")), (av.clone(), Value::str("x2"))];
        assert!(counting_ok(&s, &tuples, &[r0], 2, Some(2)));
        assert!(!counting_ok(&s, &tuples, &[r0], 1, Some(1)));
        assert!(!counting_ok(&s, &tuples, &[r0], 3, None));
    }
}
