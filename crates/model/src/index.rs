//! Derived schema index: subtype closures and per-role constraint maps.
//!
//! The paper's pattern algorithms repeatedly need "the set of all supertypes
//! of T", "all subtypes of T", "the mandatory roles of the schema", and so
//! on. [`SchemaIndex`] precomputes these once per schema revision so a
//! validation run does linear work overall instead of recomputing closures
//! inside every pattern (an ablation benchmark quantifies the difference).

use crate::constraint::{Constraint, Frequency, Uniqueness};
use crate::ids::{ConstraintId, FactTypeId, ObjectTypeId, RoleId};
use crate::schema::Schema;
use std::collections::BTreeSet;

/// Precomputed derived data for one schema revision.
#[derive(Clone, Debug)]
pub struct SchemaIndex {
    /// The schema revision this index was computed for.
    pub revision: u64,
    /// Direct supertypes per object type.
    pub supers_direct: Vec<Vec<ObjectTypeId>>,
    /// Direct subtypes per object type.
    pub subs_direct: Vec<Vec<ObjectTypeId>>,
    /// All (proper, transitive) supertypes per object type. A type appears in
    /// its own set exactly when it lies on a subtype cycle (Pattern 9).
    pub supers_all: Vec<BTreeSet<ObjectTypeId>>,
    /// All (proper, transitive) subtypes per object type; same cycle caveat.
    pub subs_all: Vec<BTreeSet<ObjectTypeId>>,
    /// Roles directly played by each object type.
    pub roles_of_type: Vec<Vec<RoleId>>,
    /// Roles covered by a *simple* mandatory constraint, with the
    /// constraint's id.
    pub mandatory_roles: Vec<(RoleId, ConstraintId)>,
    /// Uniqueness constraints, flattened for quick scans.
    pub uniqueness: Vec<(ConstraintId, Uniqueness)>,
    /// Frequency constraints, flattened for quick scans.
    pub frequencies: Vec<(ConstraintId, Frequency)>,
}

impl SchemaIndex {
    /// Build the index for `schema`.
    pub fn build(schema: &Schema) -> SchemaIndex {
        let n = schema.object_type_count();
        let mut supers_direct: Vec<Vec<ObjectTypeId>> = vec![Vec::new(); n];
        let mut subs_direct: Vec<Vec<ObjectTypeId>> = vec![Vec::new(); n];
        for link in schema.subtype_links() {
            supers_direct[link.sub.index()].push(link.sup);
            subs_direct[link.sup.index()].push(link.sub);
        }

        let supers_all = transitive_closure(n, &supers_direct);
        let subs_all = transitive_closure(n, &subs_direct);

        let mut roles_of_type: Vec<Vec<RoleId>> = vec![Vec::new(); n];
        for (rid, role) in schema.roles() {
            roles_of_type[role.player().index()].push(rid);
        }

        let mut mandatory_roles = Vec::new();
        let mut uniqueness = Vec::new();
        let mut frequencies = Vec::new();
        for (cid, c) in schema.constraints() {
            match c {
                Constraint::Mandatory(m) if m.is_simple() => {
                    mandatory_roles.push((m.roles[0], cid));
                }
                Constraint::Uniqueness(u) => uniqueness.push((cid, u.clone())),
                Constraint::Frequency(f) => frequencies.push((cid, f.clone())),
                _ => {}
            }
        }

        SchemaIndex {
            revision: schema.revision(),
            supers_direct,
            subs_direct,
            supers_all,
            subs_all,
            roles_of_type,
            mandatory_roles,
            uniqueness,
            frequencies,
        }
    }

    /// Direct supertypes of `t`.
    pub fn direct_supers(&self, t: ObjectTypeId) -> &[ObjectTypeId] {
        &self.supers_direct[t.index()]
    }

    /// All proper supertypes of `t` (transitive; contains `t` iff `t` is on
    /// a cycle).
    pub fn supers(&self, t: ObjectTypeId) -> &BTreeSet<ObjectTypeId> {
        &self.supers_all[t.index()]
    }

    /// All proper subtypes of `t` (transitive; contains `t` iff `t` is on a
    /// cycle).
    pub fn subs(&self, t: ObjectTypeId) -> &BTreeSet<ObjectTypeId> {
        &self.subs_all[t.index()]
    }

    /// Reflexive supertype closure: `supers(t) ∪ {t}`.
    pub fn supers_refl(&self, t: ObjectTypeId) -> BTreeSet<ObjectTypeId> {
        let mut s = self.supers_all[t.index()].clone();
        s.insert(t);
        s
    }

    /// Reflexive subtype closure: `subs(t) ∪ {t}`.
    pub fn subs_refl(&self, t: ObjectTypeId) -> BTreeSet<ObjectTypeId> {
        let mut s = self.subs_all[t.index()].clone();
        s.insert(t);
        s
    }

    /// Whether `sub` is equal to `sup` or a proper subtype of it.
    pub fn is_subtype_of_or_eq(&self, sub: ObjectTypeId, sup: ObjectTypeId) -> bool {
        sub == sup || self.supers_all[sub.index()].contains(&sup)
    }

    /// Whether two object types may share instances under ORM's implicit
    /// typing discipline: types are mutually exclusive **unless** they are
    /// connected through the subtype graph — one is a (reflexive) ancestor
    /// of the other, or they share a common supertype (paper, Pattern 1).
    pub fn may_overlap(&self, a: ObjectTypeId, b: ObjectTypeId) -> bool {
        if a == b {
            return true;
        }
        let sa = self.supers_refl(a);
        let sb = self.supers_refl(b);
        sa.intersection(&sb).next().is_some()
    }

    /// Whether `t` lies on a subtype cycle (Pattern 9's condition
    /// `T ∈ T.Supers`).
    pub fn on_subtype_cycle(&self, t: ObjectTypeId) -> bool {
        self.supers_all[t.index()].contains(&t)
    }

    /// Simple-mandatory constraint on `role`, if any.
    pub fn mandatory_on(&self, role: RoleId) -> Option<ConstraintId> {
        self.mandatory_roles.iter().find(|(r, _)| *r == role).map(|(_, c)| *c)
    }

    /// Uniqueness constraints whose role set equals `roles` (order
    /// insensitive).
    pub fn uniqueness_on(&self, roles: &[RoleId]) -> Vec<ConstraintId> {
        let want: BTreeSet<_> = roles.iter().copied().collect();
        self.uniqueness
            .iter()
            .filter(|(_, u)| u.roles.iter().copied().collect::<BTreeSet<_>>() == want)
            .map(|(c, _)| *c)
            .collect()
    }

    /// Uniqueness constraints whose role set is a (non-strict) subset of
    /// `roles`.
    pub fn uniqueness_within(&self, roles: &[RoleId]) -> Vec<ConstraintId> {
        let sup: BTreeSet<_> = roles.iter().copied().collect();
        self.uniqueness
            .iter()
            .filter(|(_, u)| u.roles.iter().all(|r| sup.contains(r)))
            .map(|(c, _)| *c)
            .collect()
    }

    /// Minimum frequency bound applying to exactly the single role `role`;
    /// `1` if none (the paper's `fi` default in Pattern 5). Also returns the
    /// constraint id when a frequency constraint is present.
    pub fn min_frequency_of_role(&self, role: RoleId) -> (u32, Option<ConstraintId>) {
        let mut best: Option<(u32, ConstraintId)> = None;
        for (cid, f) in &self.frequencies {
            if f.roles.len() == 1 && f.roles[0] == role {
                // Several FCs on one role: the binding lower bound is the max.
                let candidate = (f.min, *cid);
                best = Some(match best {
                    Some(prev) if prev.0 >= candidate.0 => prev,
                    _ => candidate,
                });
            }
        }
        match best {
            Some((min, cid)) => (min, Some(cid)),
            None => (1, None),
        }
    }

    /// All fact types, with their ring constraints merged per fact type.
    pub fn ring_kinds_by_fact(
        &self,
        schema: &Schema,
    ) -> Vec<(FactTypeId, crate::RingKinds, Vec<ConstraintId>)> {
        let mut out: Vec<(FactTypeId, crate::RingKinds, Vec<ConstraintId>)> = Vec::new();
        for (cid, c) in schema.constraints() {
            if let Constraint::Ring(r) = c {
                if let Some(entry) = out.iter_mut().find(|(f, _, _)| *f == r.fact_type) {
                    entry.1 = entry.1.union(r.kinds);
                    entry.2.push(cid);
                } else {
                    out.push((r.fact_type, r.kinds, vec![cid]));
                }
            }
        }
        out
    }
}

/// Transitive (non-reflexive) closure over an adjacency list, tolerant of
/// cycles: a node reaches itself exactly when it lies on a cycle.
fn transitive_closure(n: usize, direct: &[Vec<ObjectTypeId>]) -> Vec<BTreeSet<ObjectTypeId>> {
    let mut result = Vec::with_capacity(n);
    for start in 0..n {
        let mut seen: BTreeSet<ObjectTypeId> = BTreeSet::new();
        let mut stack: Vec<ObjectTypeId> = direct[start].clone();
        while let Some(node) = stack.pop() {
            if seen.insert(node) {
                stack.extend(direct[node.index()].iter().copied());
            }
        }
        result.push(seen);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::SchemaBuilder;

    /// person <- student <- phd, person <- employee <- phd
    fn diamond() -> (Schema, [ObjectTypeId; 4]) {
        let mut b = SchemaBuilder::new("diamond");
        let person = b.entity_type("Person").unwrap();
        let student = b.entity_type("Student").unwrap();
        let employee = b.entity_type("Employee").unwrap();
        let phd = b.entity_type("Phd").unwrap();
        b.subtype(student, person).unwrap();
        b.subtype(employee, person).unwrap();
        b.subtype(phd, student).unwrap();
        b.subtype(phd, employee).unwrap();
        (b.finish(), [person, student, employee, phd])
    }

    #[test]
    fn closure_on_diamond() {
        let (s, [person, student, employee, phd]) = diamond();
        let idx = s.index();
        assert!(idx.supers(phd).contains(&student));
        assert!(idx.supers(phd).contains(&employee));
        assert!(idx.supers(phd).contains(&person));
        assert!(!idx.supers(phd).contains(&phd));
        assert_eq!(idx.supers(person).len(), 0);
        assert!(idx.subs(person).contains(&phd));
        assert_eq!(idx.subs(phd).len(), 0);
    }

    #[test]
    fn direct_relations() {
        let (s, [person, student, _employee, phd]) = diamond();
        let idx = s.index();
        assert_eq!(idx.direct_supers(student), &[person]);
        assert_eq!(idx.direct_supers(phd).len(), 2);
    }

    #[test]
    fn reflexive_closures_include_self() {
        let (s, [person, _, _, phd]) = diamond();
        let idx = s.index();
        assert!(idx.supers_refl(phd).contains(&phd));
        assert!(idx.subs_refl(person).contains(&person));
    }

    #[test]
    fn cycle_detection() {
        let mut b = SchemaBuilder::new("cycle");
        let a = b.entity_type("A").unwrap();
        let bb = b.entity_type("B").unwrap();
        let c = b.entity_type("C").unwrap();
        b.subtype(a, bb).unwrap();
        b.subtype(bb, c).unwrap();
        b.subtype(c, a).unwrap();
        let s = b.finish();
        let idx = s.index();
        for t in [a, bb, c] {
            assert!(idx.on_subtype_cycle(t), "{t} should be on the cycle");
            assert!(idx.supers(t).contains(&t));
        }
    }

    #[test]
    fn may_overlap_requires_common_supertype() {
        let (s, [person, student, employee, phd]) = diamond();
        let idx = s.index();
        assert!(idx.may_overlap(student, employee)); // common supertype Person
        assert!(idx.may_overlap(person, student)); // ancestor counts
        assert!(idx.may_overlap(phd, person));

        // An unrelated top-level type overlaps nothing else.
        let mut b = SchemaBuilder::new("split");
        let x = b.entity_type("X").unwrap();
        let y = b.entity_type("Y").unwrap();
        let s2 = b.finish();
        let idx2 = s2.index();
        assert!(!idx2.may_overlap(x, y));
        assert!(idx2.may_overlap(x, x));
    }

    #[test]
    fn is_subtype_of_or_eq() {
        let (s, [person, student, _e, phd]) = diamond();
        let idx = s.index();
        assert!(idx.is_subtype_of_or_eq(phd, person));
        assert!(idx.is_subtype_of_or_eq(student, student));
        assert!(!idx.is_subtype_of_or_eq(person, phd));
    }

    #[test]
    fn min_frequency_defaults_to_one() {
        let mut b = SchemaBuilder::new("fc");
        let a = b.entity_type("A").unwrap();
        let c = b.entity_type("B").unwrap();
        let f = b.fact_type("f", a, c).unwrap();
        let r0 = b.schema().fact_type(f).first();
        let r1 = b.schema().fact_type(f).second();
        b.frequency([r0], 3, Some(5)).unwrap();
        let s = b.finish();
        let idx = s.index();
        assert_eq!(idx.min_frequency_of_role(r0).0, 3);
        assert!(idx.min_frequency_of_role(r0).1.is_some());
        assert_eq!(idx.min_frequency_of_role(r1), (1, None));
    }

    #[test]
    fn several_frequency_constraints_take_strictest_min() {
        let mut b = SchemaBuilder::new("fc2");
        let a = b.entity_type("A").unwrap();
        let c = b.entity_type("B").unwrap();
        let f = b.fact_type("f", a, c).unwrap();
        let r0 = b.schema().fact_type(f).first();
        b.frequency([r0], 2, Some(5)).unwrap();
        b.frequency([r0], 4, None).unwrap();
        let s = b.finish();
        assert_eq!(s.index().min_frequency_of_role(r0).0, 4);
    }

    #[test]
    fn mandatory_on_tracks_simple_only() {
        let mut b = SchemaBuilder::new("m");
        let a = b.entity_type("A").unwrap();
        let c = b.entity_type("B").unwrap();
        let f = b.fact_type("f", a, c).unwrap();
        let g = b.fact_type("g", a, c).unwrap();
        let rf = b.schema().fact_type(f).first();
        let rg = b.schema().fact_type(g).first();
        b.mandatory(rf).unwrap();
        b.disjunctive_mandatory([rf, rg]).unwrap();
        let s = b.finish();
        let idx = s.index();
        assert!(idx.mandatory_on(rf).is_some());
        // The disjunctive constraint does not make rg simple-mandatory.
        assert!(idx.mandatory_on(rg).is_none());
    }

    #[test]
    fn index_revision_matches_schema() {
        let (s, _) = diamond();
        assert_eq!(s.index().revision, s.revision());
    }
}
