//! Errors raised while *building* schemas.
//!
//! These are structural errors only. Semantic contradictions (the subject of
//! the paper) are never builder errors — they are findings produced by the
//! `orm-core` validator.

use crate::ids::{FactTypeId, ObjectTypeId, RoleId};
use std::fmt;

/// A structural error encountered while constructing or mutating a schema.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ModelError {
    /// An object type, fact type or role name was declared twice.
    DuplicateName {
        /// The offending name.
        name: String,
    },
    /// A name lookup failed.
    UnknownName {
        /// The name that could not be resolved.
        name: String,
    },
    /// An id does not belong to this schema (or was tombstoned).
    UnknownId {
        /// Rendered id, e.g. `"r7"`.
        id: String,
    },
    /// A constraint argument list was empty where at least one element is
    /// required.
    EmptyArgumentList {
        /// What was being built, e.g. `"uniqueness constraint"`.
        context: &'static str,
    },
    /// A constraint needs at least two distinct arguments.
    NotEnoughArguments {
        /// What was being built.
        context: &'static str,
        /// How many arguments were supplied.
        got: usize,
        /// Minimum required.
        need: usize,
    },
    /// The same element appeared twice in an argument list that requires
    /// distinct elements.
    DuplicateArgument {
        /// What was being built.
        context: &'static str,
        /// Rendered offending id.
        id: String,
    },
    /// Roles of a uniqueness/frequency constraint must belong to one fact
    /// type.
    RolesNotInOneFact {
        /// The roles supplied.
        roles: Vec<RoleId>,
    },
    /// Set-comparison arguments must all have the same length (1 or 2).
    SetComparisonArityMismatch {
        /// The argument lengths supplied.
        lengths: Vec<usize>,
    },
    /// A two-role sequence must consist of both roles of a single fact type
    /// in order.
    InvalidPredicateSequence {
        /// The roles supplied.
        roles: Vec<RoleId>,
    },
    /// Frequency bounds must satisfy `1 ≤ min ≤ max`.
    InvalidFrequencyBounds {
        /// Supplied lower bound.
        min: u32,
        /// Supplied upper bound.
        max: Option<u32>,
    },
    /// All roles of a (disjunctive) mandatory constraint must be played by
    /// the same object type.
    MandatoryPlayersDiffer {
        /// The distinct players found.
        players: Vec<ObjectTypeId>,
    },
    /// A ring constraint needs role players that are identical or connected
    /// via supertypes.
    RingPlayersIncompatible {
        /// The constrained fact type.
        fact: FactTypeId,
        /// First role's player.
        first: ObjectTypeId,
        /// Second role's player.
        second: ObjectTypeId,
    },
    /// A ring constraint with no kinds is meaningless.
    EmptyRingConstraint {
        /// The constrained fact type.
        fact: FactTypeId,
    },
    /// The exact same subtype link already exists.
    DuplicateSubtype {
        /// The subtype.
        sub: ObjectTypeId,
        /// The supertype.
        sup: ObjectTypeId,
    },
    /// An object type cannot be its own direct supertype.
    ///
    /// Longer subtype cycles are representable (Pattern 9 detects them); a
    /// direct self-loop carries no information beyond its own contradiction
    /// and is rejected as a structural slip.
    SelfSubtype {
        /// The offending object type.
        ty: ObjectTypeId,
    },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::DuplicateName { name } => {
                write!(f, "the name `{name}` is already declared")
            }
            ModelError::UnknownName { name } => write!(f, "unknown name `{name}`"),
            ModelError::UnknownId { id } => write!(f, "unknown or removed id `{id}`"),
            ModelError::EmptyArgumentList { context } => {
                write!(f, "{context} requires at least one argument")
            }
            ModelError::NotEnoughArguments { context, got, need } => {
                write!(f, "{context} requires at least {need} distinct arguments, got {got}")
            }
            ModelError::DuplicateArgument { context, id } => {
                write!(f, "duplicate argument `{id}` in {context}")
            }
            ModelError::RolesNotInOneFact { roles } => {
                write!(f, "roles {roles:?} do not all belong to one fact type")
            }
            ModelError::SetComparisonArityMismatch { lengths } => {
                write!(f, "set-comparison arguments have mismatched lengths {lengths:?}")
            }
            ModelError::InvalidPredicateSequence { roles } => {
                write!(
                    f,
                    "role sequence {roles:?} is not a whole predicate (both roles of one \
                     fact type, in order)"
                )
            }
            ModelError::InvalidFrequencyBounds { min, max } => {
                write!(f, "invalid frequency bounds: min={min}, max={max:?} (need 1 ≤ min ≤ max)")
            }
            ModelError::MandatoryPlayersDiffer { players } => {
                write!(f, "disjunctive mandatory roles must share one player, found {players:?}")
            }
            ModelError::RingPlayersIncompatible { fact, first, second } => {
                write!(
                    f,
                    "ring constraint on {fact} needs compatible role players, got {first} \
                     and {second} with no common supertype"
                )
            }
            ModelError::EmptyRingConstraint { fact } => {
                write!(f, "ring constraint on {fact} has no kinds")
            }
            ModelError::DuplicateSubtype { sub, sup } => {
                write!(f, "subtype link {sub} <: {sup} already exists")
            }
            ModelError::SelfSubtype { ty } => {
                write!(f, "object type {ty} cannot be its own direct supertype")
            }
        }
    }
}

impl std::error::Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_human_readable() {
        let e = ModelError::DuplicateName { name: "Person".into() };
        assert!(e.to_string().contains("Person"));
        let e = ModelError::InvalidFrequencyBounds { min: 5, max: Some(2) };
        assert!(e.to_string().contains("min=5"));
    }
}
