//! Checked construction of schemas.

use crate::constraint::{
    Constraint, ExclusiveTypes, Frequency, Mandatory, Ring, RingKind, RingKinds, RoleSeq,
    SetComparison, SetComparisonKind, TotalSubtypes, Uniqueness,
};
use crate::error::ModelError;
use crate::fact_type::{FactType, Role};
use crate::ids::{ConstraintId, FactTypeId, ObjectTypeId, RoleId};
use crate::object_type::{ObjectType, ObjectTypeKind};
use crate::schema::Schema;
use crate::value::ValueConstraint;
use std::collections::{BTreeSet, HashMap};

/// Fluent, checked builder for [`Schema`].
///
/// The builder enforces *structural* well-formedness only — see the crate
/// docs for why semantic contradictions must remain constructible.
#[derive(Debug)]
pub struct SchemaBuilder {
    schema: Schema,
}

impl SchemaBuilder {
    /// Start a new schema with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        SchemaBuilder {
            schema: Schema {
                name: name.into(),
                object_types: Vec::new(),
                fact_types: Vec::new(),
                roles: Vec::new(),
                constraints: Vec::new(),
                subtype_links: Vec::new(),
                type_names: HashMap::new(),
                fact_names: HashMap::new(),
                revision: 0,
            },
        }
    }

    /// Re-open an existing schema for extension. Ids of existing elements
    /// remain valid; used by interactive tools and fault injection.
    pub fn from_schema(schema: Schema) -> Self {
        SchemaBuilder { schema }
    }

    /// Read access to the schema under construction (useful for resolving
    /// role ids mid-build).
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Finish building and return the schema.
    pub fn finish(self) -> Schema {
        self.schema
    }

    // ------------------------------------------------------------------
    // Object types
    // ------------------------------------------------------------------

    fn add_object_type(
        &mut self,
        name: &str,
        kind: ObjectTypeKind,
        vc: Option<ValueConstraint>,
    ) -> Result<ObjectTypeId, ModelError> {
        if self.schema.type_names.contains_key(name) {
            return Err(ModelError::DuplicateName { name: name.to_owned() });
        }
        let id = ObjectTypeId(self.schema.object_types.len() as u32);
        self.schema.object_types.push(ObjectType {
            name: name.to_owned(),
            kind,
            value_constraint: vc,
        });
        self.schema.type_names.insert(name.to_owned(), id);
        Ok(id)
    }

    /// Declare an entity type.
    pub fn entity_type(&mut self, name: &str) -> Result<ObjectTypeId, ModelError> {
        self.add_object_type(name, ObjectTypeKind::Entity, None)
    }

    /// Declare a value type with an optional value constraint.
    pub fn value_type(
        &mut self,
        name: &str,
        vc: Option<ValueConstraint>,
    ) -> Result<ObjectTypeId, ModelError> {
        self.add_object_type(name, ObjectTypeKind::Value, vc)
    }

    /// Attach (or replace) a value constraint on an existing object type.
    pub fn value_constraint(
        &mut self,
        ty: ObjectTypeId,
        vc: ValueConstraint,
    ) -> Result<(), ModelError> {
        self.check_type(ty)?;
        self.schema.object_types[ty.index()].value_constraint = Some(vc);
        Ok(())
    }

    /// Declare `sub` as a subtype of `sup`.
    pub fn subtype(&mut self, sub: ObjectTypeId, sup: ObjectTypeId) -> Result<(), ModelError> {
        self.check_type(sub)?;
        self.check_type(sup)?;
        self.schema.add_subtype(sub, sup)
    }

    // ------------------------------------------------------------------
    // Fact types
    // ------------------------------------------------------------------

    /// Declare a binary fact type with auto-named roles
    /// (`<name>.0`, `<name>.1`).
    pub fn fact_type(
        &mut self,
        name: &str,
        first_player: ObjectTypeId,
        second_player: ObjectTypeId,
    ) -> Result<FactTypeId, ModelError> {
        self.fact_type_full(name, (first_player, None), (second_player, None), None)
    }

    /// Declare a binary fact type with explicit role labels (`r1`, `r3`, …)
    /// and an optional natural-language reading.
    pub fn fact_type_full(
        &mut self,
        name: &str,
        first: (ObjectTypeId, Option<&str>),
        second: (ObjectTypeId, Option<&str>),
        reading: Option<&str>,
    ) -> Result<FactTypeId, ModelError> {
        if self.schema.fact_names.contains_key(name) {
            return Err(ModelError::DuplicateName { name: name.to_owned() });
        }
        self.check_type(first.0)?;
        self.check_type(second.0)?;

        let fact_id = FactTypeId(self.schema.fact_types.len() as u32);
        let r0 = RoleId(self.schema.roles.len() as u32);
        let r1 = RoleId(self.schema.roles.len() as u32 + 1);

        for (pos, (player, label)) in [first, second].into_iter().enumerate() {
            let label = match label {
                Some(l) => {
                    if self.schema.role_by_name(l).is_some() {
                        return Err(ModelError::DuplicateName { name: l.to_owned() });
                    }
                    l.to_owned()
                }
                None => format!("{name}.{pos}"),
            };
            self.schema.roles.push(Role {
                name: label,
                fact_type: fact_id,
                position: pos as u8,
                player,
            });
        }

        self.schema.fact_types.push(FactType {
            name: name.to_owned(),
            roles: [r0, r1],
            reading: reading.map(str::to_owned),
        });
        self.schema.fact_names.insert(name.to_owned(), fact_id);
        Ok(fact_id)
    }

    // ------------------------------------------------------------------
    // Constraints
    // ------------------------------------------------------------------

    /// Mark a single role as mandatory.
    pub fn mandatory(&mut self, role: RoleId) -> Result<ConstraintId, ModelError> {
        self.check_role(role)?;
        Ok(self.schema.push_constraint(Constraint::Mandatory(Mandatory { roles: vec![role] })))
    }

    /// Disjunctive mandatory constraint: every instance of the shared player
    /// must play at least one of `roles`.
    pub fn disjunctive_mandatory(
        &mut self,
        roles: impl IntoIterator<Item = RoleId>,
    ) -> Result<ConstraintId, ModelError> {
        let roles = self.distinct_roles(roles, "disjunctive mandatory constraint", 2)?;
        let players: BTreeSet<ObjectTypeId> =
            roles.iter().map(|r| self.schema.role(*r).player()).collect();
        if players.len() > 1 {
            return Err(ModelError::MandatoryPlayersDiffer {
                players: players.into_iter().collect(),
            });
        }
        Ok(self.schema.push_constraint(Constraint::Mandatory(Mandatory { roles })))
    }

    /// Internal uniqueness constraint over `roles` (one or both roles of a
    /// single fact type).
    pub fn unique(
        &mut self,
        roles: impl IntoIterator<Item = RoleId>,
    ) -> Result<ConstraintId, ModelError> {
        let roles = self.distinct_roles(roles, "uniqueness constraint", 1)?;
        self.check_same_fact(&roles)?;
        Ok(self.schema.push_constraint(Constraint::Uniqueness(Uniqueness { roles })))
    }

    /// Frequency constraint `FC(min..max)` over `roles` of a single fact
    /// type. `max = None` means "min or more".
    pub fn frequency(
        &mut self,
        roles: impl IntoIterator<Item = RoleId>,
        min: u32,
        max: Option<u32>,
    ) -> Result<ConstraintId, ModelError> {
        let roles = self.distinct_roles(roles, "frequency constraint", 1)?;
        self.check_same_fact(&roles)?;
        if min == 0 || max.is_some_and(|m| m < min) {
            return Err(ModelError::InvalidFrequencyBounds { min, max });
        }
        Ok(self.schema.push_constraint(Constraint::Frequency(Frequency { roles, min, max })))
    }

    /// Subset constraint: population of `sub` ⊆ population of `sup`.
    pub fn subset(&mut self, sub: RoleSeq, sup: RoleSeq) -> Result<ConstraintId, ModelError> {
        self.set_comparison(SetComparisonKind::Subset, vec![sub, sup])
    }

    /// Equality constraint between two or more role sequences.
    pub fn equality(
        &mut self,
        args: impl IntoIterator<Item = RoleSeq>,
    ) -> Result<ConstraintId, ModelError> {
        self.set_comparison(SetComparisonKind::Equality, args.into_iter().collect())
    }

    /// Exclusion constraint between two or more role sequences, in the
    /// paper's "most compact form" (pairwise disjoint).
    pub fn exclusion(
        &mut self,
        args: impl IntoIterator<Item = RoleSeq>,
    ) -> Result<ConstraintId, ModelError> {
        self.set_comparison(SetComparisonKind::Exclusion, args.into_iter().collect())
    }

    /// Exclusion constraint between single roles (convenience wrapper).
    pub fn exclusion_roles(
        &mut self,
        roles: impl IntoIterator<Item = RoleId>,
    ) -> Result<ConstraintId, ModelError> {
        self.exclusion(roles.into_iter().map(RoleSeq::single))
    }

    fn set_comparison(
        &mut self,
        kind: SetComparisonKind,
        args: Vec<RoleSeq>,
    ) -> Result<ConstraintId, ModelError> {
        let context: &'static str = match kind {
            SetComparisonKind::Subset => "subset constraint",
            SetComparisonKind::Equality => "equality constraint",
            SetComparisonKind::Exclusion => "exclusion constraint",
        };
        if args.len() < 2 {
            return Err(ModelError::NotEnoughArguments { context, got: args.len(), need: 2 });
        }
        let lengths: Vec<usize> = args.iter().map(RoleSeq::len).collect();
        if lengths.iter().any(|l| *l != lengths[0]) || !(1..=2).contains(&lengths[0]) {
            return Err(ModelError::SetComparisonArityMismatch { lengths });
        }
        let mut seen = BTreeSet::new();
        for seq in &args {
            for r in seq.roles() {
                self.check_role(*r)?;
            }
            if seq.len() == 2 && !self.schema.seq_is_whole_predicate(seq) {
                return Err(ModelError::InvalidPredicateSequence { roles: seq.roles().to_vec() });
            }
            if !seen.insert(seq.clone()) {
                return Err(ModelError::DuplicateArgument { context, id: format!("{seq:?}") });
            }
        }
        Ok(self.schema.push_constraint(Constraint::SetComparison(SetComparison { kind, args })))
    }

    /// Exclusive constraint between object types (pairwise-disjoint
    /// populations).
    pub fn exclusive_types(
        &mut self,
        types: impl IntoIterator<Item = ObjectTypeId>,
    ) -> Result<ConstraintId, ModelError> {
        let types = self.distinct_types(types, "exclusive-types constraint", 2)?;
        Ok(self.schema.push_constraint(Constraint::ExclusiveTypes(ExclusiveTypes { types })))
    }

    /// Totality constraint: `supertype` is covered by the union of
    /// `subtypes`.
    pub fn total_subtypes(
        &mut self,
        supertype: ObjectTypeId,
        subtypes: impl IntoIterator<Item = ObjectTypeId>,
    ) -> Result<ConstraintId, ModelError> {
        self.check_type(supertype)?;
        let subtypes = self.distinct_types(subtypes, "total-subtypes constraint", 1)?;
        Ok(self
            .schema
            .push_constraint(Constraint::TotalSubtypes(TotalSubtypes { supertype, subtypes })))
    }

    /// Ring constraint with one or more kinds on a fact type whose role
    /// players are identical or connected via supertypes.
    pub fn ring(
        &mut self,
        fact: FactTypeId,
        kinds: impl IntoIterator<Item = RingKind>,
    ) -> Result<ConstraintId, ModelError> {
        self.check_fact(fact)?;
        let kinds: RingKinds = kinds.into_iter().collect();
        if kinds.is_empty() {
            return Err(ModelError::EmptyRingConstraint { fact });
        }
        let ft = self.schema.fact_type(fact);
        let p0 = self.schema.role(ft.first()).player();
        let p1 = self.schema.role(ft.second()).player();
        if !players_ring_compatible(&self.schema, p0, p1) {
            return Err(ModelError::RingPlayersIncompatible { fact, first: p0, second: p1 });
        }
        Ok(self.schema.push_constraint(Constraint::Ring(Ring { fact_type: fact, kinds })))
    }

    // ------------------------------------------------------------------
    // Checks
    // ------------------------------------------------------------------

    fn check_type(&self, id: ObjectTypeId) -> Result<(), ModelError> {
        if id.index() < self.schema.object_types.len() {
            Ok(())
        } else {
            Err(ModelError::UnknownId { id: id.to_string() })
        }
    }

    fn check_fact(&self, id: FactTypeId) -> Result<(), ModelError> {
        if id.index() < self.schema.fact_types.len() {
            Ok(())
        } else {
            Err(ModelError::UnknownId { id: id.to_string() })
        }
    }

    fn check_role(&self, id: RoleId) -> Result<(), ModelError> {
        if id.index() < self.schema.roles.len() {
            Ok(())
        } else {
            Err(ModelError::UnknownId { id: id.to_string() })
        }
    }

    fn check_same_fact(&self, roles: &[RoleId]) -> Result<(), ModelError> {
        let first_fact = self.schema.role(roles[0]).fact_type();
        if roles.iter().any(|r| self.schema.role(*r).fact_type() != first_fact) {
            return Err(ModelError::RolesNotInOneFact { roles: roles.to_vec() });
        }
        Ok(())
    }

    fn distinct_roles(
        &self,
        roles: impl IntoIterator<Item = RoleId>,
        context: &'static str,
        need: usize,
    ) -> Result<Vec<RoleId>, ModelError> {
        let roles: Vec<RoleId> = roles.into_iter().collect();
        if roles.is_empty() {
            return Err(ModelError::EmptyArgumentList { context });
        }
        if roles.len() < need {
            return Err(ModelError::NotEnoughArguments { context, got: roles.len(), need });
        }
        let mut seen = BTreeSet::new();
        for r in &roles {
            self.check_role(*r)?;
            if !seen.insert(*r) {
                return Err(ModelError::DuplicateArgument { context, id: r.to_string() });
            }
        }
        Ok(roles)
    }

    fn distinct_types(
        &self,
        types: impl IntoIterator<Item = ObjectTypeId>,
        context: &'static str,
        need: usize,
    ) -> Result<Vec<ObjectTypeId>, ModelError> {
        let types: Vec<ObjectTypeId> = types.into_iter().collect();
        if types.is_empty() {
            return Err(ModelError::EmptyArgumentList { context });
        }
        if types.len() < need {
            return Err(ModelError::NotEnoughArguments { context, got: types.len(), need });
        }
        let mut seen = BTreeSet::new();
        for t in &types {
            self.check_type(*t)?;
            if !seen.insert(*t) {
                return Err(ModelError::DuplicateArgument { context, id: t.to_string() });
            }
        }
        Ok(types)
    }
}

/// Ring-compatibility of two role players: identical, or connected through
/// the subtype graph (common supertype, reflexively).
fn players_ring_compatible(schema: &Schema, a: ObjectTypeId, b: ObjectTypeId) -> bool {
    if a == b {
        return true;
    }
    schema.index().may_overlap(a, b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    #[test]
    fn duplicate_type_name_rejected() {
        let mut b = SchemaBuilder::new("s");
        b.entity_type("A").unwrap();
        assert!(matches!(b.entity_type("A"), Err(ModelError::DuplicateName { .. })));
    }

    #[test]
    fn duplicate_fact_name_rejected() {
        let mut b = SchemaBuilder::new("s");
        let a = b.entity_type("A").unwrap();
        b.fact_type("f", a, a).unwrap();
        assert!(matches!(b.fact_type("f", a, a), Err(ModelError::DuplicateName { .. })));
    }

    #[test]
    fn duplicate_role_label_rejected() {
        let mut b = SchemaBuilder::new("s");
        let a = b.entity_type("A").unwrap();
        b.fact_type_full("f", (a, Some("r1")), (a, Some("r2")), None).unwrap();
        assert!(matches!(
            b.fact_type_full("g", (a, Some("r1")), (a, None), None),
            Err(ModelError::DuplicateName { .. })
        ));
    }

    #[test]
    fn value_type_with_constraint() {
        let mut b = SchemaBuilder::new("s");
        let v = b.value_type("Code", Some(ValueConstraint::enumeration(["x1", "x2"]))).unwrap();
        let s = b.finish();
        assert_eq!(s.object_type(v).value_cardinality(), Some(2));
        assert!(s.object_type(v).value_constraint().unwrap().admits(&Value::str("x1")));
    }

    #[test]
    fn frequency_bounds_validated() {
        let mut b = SchemaBuilder::new("s");
        let a = b.entity_type("A").unwrap();
        let f = b.fact_type("f", a, a).unwrap();
        let r0 = b.schema().fact_type(f).first();
        assert!(matches!(
            b.frequency([r0], 0, None),
            Err(ModelError::InvalidFrequencyBounds { .. })
        ));
        assert!(matches!(
            b.frequency([r0], 5, Some(2)),
            Err(ModelError::InvalidFrequencyBounds { .. })
        ));
        assert!(b.frequency([r0], 2, Some(5)).is_ok());
        assert!(b.frequency([r0], 2, None).is_ok());
    }

    #[test]
    fn uniqueness_requires_roles_of_one_fact() {
        let mut b = SchemaBuilder::new("s");
        let a = b.entity_type("A").unwrap();
        let f = b.fact_type("f", a, a).unwrap();
        let g = b.fact_type("g", a, a).unwrap();
        let rf = b.schema().fact_type(f).first();
        let rg = b.schema().fact_type(g).first();
        assert!(matches!(b.unique([rf, rg]), Err(ModelError::RolesNotInOneFact { .. })));
        assert!(b.unique([rf]).is_ok());
    }

    #[test]
    fn set_comparison_arity_checked() {
        let mut b = SchemaBuilder::new("s");
        let a = b.entity_type("A").unwrap();
        let f = b.fact_type("f", a, a).unwrap();
        let g = b.fact_type("g", a, a).unwrap();
        let [f0, f1] = b.schema().fact_type(f).roles();
        let [g0, _g1] = b.schema().fact_type(g).roles();
        // Mixed single/pair arguments are rejected.
        assert!(matches!(
            b.subset(RoleSeq::single(f0), RoleSeq::pair(g0, b.schema().fact_type(g).second())),
            Err(ModelError::SetComparisonArityMismatch { .. })
        ));
        // A pair that is not a whole predicate is rejected.
        assert!(matches!(
            b.subset(RoleSeq::pair(f0, g0), RoleSeq::pair(f0, f1)),
            Err(ModelError::InvalidPredicateSequence { .. })
        ));
        // Need two distinct arguments.
        assert!(matches!(
            b.exclusion([RoleSeq::single(f0)]),
            Err(ModelError::NotEnoughArguments { .. })
        ));
        assert!(matches!(
            b.exclusion([RoleSeq::single(f0), RoleSeq::single(f0)]),
            Err(ModelError::DuplicateArgument { .. })
        ));
        // Valid forms.
        assert!(b.exclusion_roles([f0, g0]).is_ok());
        let g1 = b.schema().fact_type(g).second();
        assert!(b.subset(RoleSeq::pair(f0, f1), RoleSeq::pair(g0, g1)).is_ok());
    }

    #[test]
    fn disjunctive_mandatory_needs_one_player() {
        let mut b = SchemaBuilder::new("s");
        let a = b.entity_type("A").unwrap();
        let c = b.entity_type("C").unwrap();
        let f = b.fact_type("f", a, c).unwrap();
        let g = b.fact_type("g", c, a).unwrap();
        let fa = b.schema().fact_type(f).first(); // played by A
        let gc = b.schema().fact_type(g).first(); // played by C
        assert!(matches!(
            b.disjunctive_mandatory([fa, gc]),
            Err(ModelError::MandatoryPlayersDiffer { .. })
        ));
        let ga = b.schema().fact_type(g).second(); // played by A
        assert!(b.disjunctive_mandatory([fa, ga]).is_ok());
    }

    #[test]
    fn ring_requires_compatible_players() {
        let mut b = SchemaBuilder::new("s");
        let a = b.entity_type("A").unwrap();
        let c = b.entity_type("C").unwrap();
        let same = b.fact_type("same", a, a).unwrap();
        let cross = b.fact_type("cross", a, c).unwrap();
        assert!(b.ring(same, [RingKind::Irreflexive]).is_ok());
        assert!(matches!(
            b.ring(cross, [RingKind::Irreflexive]),
            Err(ModelError::RingPlayersIncompatible { .. })
        ));
        assert!(matches!(
            b.ring(same, std::iter::empty()),
            Err(ModelError::EmptyRingConstraint { .. })
        ));
    }

    #[test]
    fn ring_allows_supertype_connected_players() {
        let mut b = SchemaBuilder::new("s");
        let person = b.entity_type("Person").unwrap();
        let woman = b.entity_type("Woman").unwrap();
        b.subtype(woman, person).unwrap();
        let f = b.fact_type("sister_of", woman, person).unwrap();
        assert!(b.ring(f, [RingKind::Irreflexive]).is_ok());
    }

    #[test]
    fn unknown_ids_rejected() {
        let mut b = SchemaBuilder::new("s");
        let bogus_role = RoleId::from_raw(99);
        assert!(matches!(b.mandatory(bogus_role), Err(ModelError::UnknownId { .. })));
        let bogus_ty = ObjectTypeId::from_raw(99);
        assert!(matches!(b.subtype(bogus_ty, bogus_ty), Err(ModelError::UnknownId { .. })));
    }

    #[test]
    fn exclusive_types_need_two_distinct() {
        let mut b = SchemaBuilder::new("s");
        let a = b.entity_type("A").unwrap();
        assert!(matches!(b.exclusive_types([a]), Err(ModelError::NotEnoughArguments { .. })));
        assert!(matches!(b.exclusive_types([a, a]), Err(ModelError::DuplicateArgument { .. })));
    }

    #[test]
    fn roles_carry_labels_and_positions() {
        let mut b = SchemaBuilder::new("s");
        let a = b.entity_type("A").unwrap();
        let f = b.fact_type_full("f", (a, Some("r1")), (a, Some("r2")), Some("likes")).unwrap();
        let s = b.finish();
        let ft = s.fact_type(f);
        assert_eq!(s.role(ft.first()).name(), "r1");
        assert_eq!(s.role(ft.second()).name(), "r2");
        assert_eq!(s.role(ft.first()).position(), 0);
        assert_eq!(s.role(ft.second()).position(), 1);
        assert_eq!(ft.reading(), Some("likes"));
        assert_eq!(s.role_by_name("r2"), Some(ft.second()));
    }

    #[test]
    fn auto_role_names() {
        let mut b = SchemaBuilder::new("s");
        let a = b.entity_type("A").unwrap();
        let f = b.fact_type("f", a, a).unwrap();
        let s = b.finish();
        assert_eq!(s.role(s.fact_type(f).first()).name(), "f.0");
        assert_eq!(s.role(s.fact_type(f).second()).name(), "f.1");
    }
}
