//! Values and value constraints.
//!
//! A *value constraint* on an object type enumerates (or bounds) the possible
//! instances of the type, e.g. `{'x1', 'x2'}` in Fig. 5 of the paper. Its
//! *cardinality* — the number of possible values — is what Patterns 4 and 5
//! compare against frequency-constraint lower bounds.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A concrete instance value, used both in value constraints and in
/// populations (`orm-population`).
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Value {
    /// A string value such as `'x1'`.
    Str(String),
    /// An integer value.
    Int(i64),
}

impl Value {
    /// Convenience constructor for string values.
    pub fn str(s: impl Into<String>) -> Self {
        Value::Str(s.into())
    }

    /// Convenience constructor for integer values.
    pub fn int(i: i64) -> Self {
        Value::Int(i)
    }
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Str(s) => write!(f, "'{s}'"),
            Value::Int(i) => write!(f, "{i}"),
        }
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_owned())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s)
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

/// Restricts the possible instances of an object type.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ValueConstraint {
    /// An explicit enumeration, e.g. `{'x1', 'x2'}`.
    Enumeration(Vec<Value>),
    /// An inclusive integer range, e.g. `{1..10}`.
    IntRange {
        /// Lowest admissible value.
        min: i64,
        /// Highest admissible value (inclusive).
        max: i64,
    },
}

impl ValueConstraint {
    /// Build an enumeration constraint, deduplicating values while keeping
    /// first-occurrence order.
    pub fn enumeration<I, V>(values: I) -> Self
    where
        I: IntoIterator<Item = V>,
        V: Into<Value>,
    {
        let mut seen = std::collections::BTreeSet::new();
        let mut out = Vec::new();
        for v in values {
            let v = v.into();
            if seen.insert(v.clone()) {
                out.push(v);
            }
        }
        ValueConstraint::Enumeration(out)
    }

    /// The number of admissible values. This is the quantity `c` used by
    /// Patterns 4 and 5 of the paper.
    ///
    /// Returns `0` for an empty enumeration or an inverted range — such a
    /// constraint makes the type itself unpopulatable.
    pub fn cardinality(&self) -> u64 {
        match self {
            ValueConstraint::Enumeration(vs) => vs.len() as u64,
            ValueConstraint::IntRange { min, max } => {
                if max < min {
                    0
                } else {
                    (max - min) as u64 + 1
                }
            }
        }
    }

    /// Whether `value` is admitted by this constraint.
    pub fn admits(&self, value: &Value) -> bool {
        match self {
            ValueConstraint::Enumeration(vs) => vs.contains(value),
            ValueConstraint::IntRange { min, max } => match value {
                Value::Int(i) => min <= i && i <= max,
                Value::Str(_) => false,
            },
        }
    }

    /// Iterate over all admissible values.
    ///
    /// Used by the bounded model finder to draw candidate instances for
    /// value-constrained types.
    pub fn iter_values(&self) -> Box<dyn Iterator<Item = Value> + '_> {
        match self {
            ValueConstraint::Enumeration(vs) => Box::new(vs.iter().cloned()),
            ValueConstraint::IntRange { min, max } => Box::new((*min..=*max).map(Value::Int)),
        }
    }

    /// The constraint admitting exactly the values both `self` and `other`
    /// admit. A subtype inherits every value constraint along its
    /// supertype chain, so its effective value set is the intersection —
    /// possibly empty, which makes the type unpopulatable.
    pub fn intersect(&self, other: &ValueConstraint) -> ValueConstraint {
        use ValueConstraint::*;
        match (self, other) {
            (Enumeration(xs), o) => {
                Enumeration(xs.iter().filter(|v| o.admits(v)).cloned().collect())
            }
            (r @ IntRange { .. }, Enumeration(ys)) => {
                Enumeration(ys.iter().filter(|v| r.admits(v)).cloned().collect())
            }
            (IntRange { min: a, max: b }, IntRange { min: c, max: d }) => {
                IntRange { min: *a.max(c), max: *b.min(d) }
            }
        }
    }
}

impl fmt::Display for ValueConstraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValueConstraint::Enumeration(vs) => {
                write!(f, "{{")?;
                for (i, v) in vs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "}}")
            }
            ValueConstraint::IntRange { min, max } => write!(f, "{{{min}..{max}}}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enumeration_cardinality_counts_distinct_values() {
        let vc = ValueConstraint::enumeration(["x1", "x2", "x1"]);
        assert_eq!(vc.cardinality(), 2);
    }

    #[test]
    fn empty_enumeration_has_zero_cardinality() {
        let vc = ValueConstraint::enumeration(Vec::<Value>::new());
        assert_eq!(vc.cardinality(), 0);
    }

    #[test]
    fn range_cardinality_is_inclusive() {
        let vc = ValueConstraint::IntRange { min: 1, max: 5 };
        assert_eq!(vc.cardinality(), 5);
    }

    #[test]
    fn inverted_range_is_empty() {
        let vc = ValueConstraint::IntRange { min: 5, max: 1 };
        assert_eq!(vc.cardinality(), 0);
        assert!(!vc.admits(&Value::int(3)));
    }

    #[test]
    fn admits_checks_membership() {
        let vc = ValueConstraint::enumeration(["x1", "x2"]);
        assert!(vc.admits(&Value::str("x1")));
        assert!(!vc.admits(&Value::str("x3")));
        assert!(!vc.admits(&Value::int(1)));

        let range = ValueConstraint::IntRange { min: 0, max: 2 };
        assert!(range.admits(&Value::int(0)));
        assert!(range.admits(&Value::int(2)));
        assert!(!range.admits(&Value::int(3)));
        assert!(!range.admits(&Value::str("0")));
    }

    #[test]
    fn iter_values_matches_cardinality() {
        let vc = ValueConstraint::enumeration(["a", "b", "c"]);
        assert_eq!(vc.iter_values().count() as u64, vc.cardinality());
        let range = ValueConstraint::IntRange { min: -1, max: 1 };
        assert_eq!(
            range.iter_values().collect::<Vec<_>>(),
            vec![Value::int(-1), Value::int(0), Value::int(1)]
        );
    }

    #[test]
    fn intersect_enumerations() {
        let a = ValueConstraint::enumeration(["x", "y", "z"]);
        let b = ValueConstraint::enumeration(["y", "z", "w"]);
        assert_eq!(a.intersect(&b).cardinality(), 2);
        let disjoint = ValueConstraint::enumeration(["p", "q"]);
        assert_eq!(a.intersect(&disjoint).cardinality(), 0);
    }

    #[test]
    fn intersect_ranges() {
        let a = ValueConstraint::IntRange { min: 1, max: 10 };
        let b = ValueConstraint::IntRange { min: 5, max: 20 };
        assert_eq!(a.intersect(&b), ValueConstraint::IntRange { min: 5, max: 10 });
        let disjoint = ValueConstraint::IntRange { min: 11, max: 20 };
        assert_eq!(a.intersect(&disjoint).cardinality(), 0);
    }

    #[test]
    fn intersect_mixed() {
        let e = ValueConstraint::enumeration([Value::int(1), Value::int(5), Value::str("x")]);
        let r = ValueConstraint::IntRange { min: 0, max: 3 };
        let i = e.intersect(&r);
        assert_eq!(i, ValueConstraint::Enumeration(vec![Value::int(1)]));
        let j = r.intersect(&e);
        assert_eq!(j, ValueConstraint::Enumeration(vec![Value::int(1)]));
    }

    #[test]
    fn display_formats() {
        let vc = ValueConstraint::enumeration(["x1"]);
        assert_eq!(vc.to_string(), "{'x1'}");
        let range = ValueConstraint::IntRange { min: 1, max: 3 };
        assert_eq!(range.to_string(), "{1..3}");
    }
}
