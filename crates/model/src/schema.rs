//! The schema: arenas of object types, fact types, roles, constraints and
//! subtype links.

use crate::constraint::{Constraint, RoleSeq};
use crate::error::ModelError;
use crate::fact_type::{FactType, Role};
use crate::ids::{ConstraintId, FactTypeId, ObjectTypeId, RoleId};
use crate::index::SchemaIndex;
use crate::object_type::ObjectType;
use crate::subtype::SubtypeLink;
use crate::value::ValueConstraint;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Any addressable schema element; used as the *subject* of diagnostics.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Element {
    /// An object type.
    ObjectType(ObjectTypeId),
    /// A fact type (predicate).
    FactType(FactTypeId),
    /// A role.
    Role(RoleId),
    /// A constraint.
    Constraint(ConstraintId),
    /// A subtype link.
    Subtype(ObjectTypeId, ObjectTypeId),
}

/// An ORM conceptual schema.
///
/// Schemas are built with [`crate::SchemaBuilder`] and may afterwards be
/// edited through the mutation API ([`Schema::add_constraint`],
/// [`Schema::remove_constraint`], [`Schema::add_subtype`],
/// [`Schema::remove_subtype`], [`Schema::set_value_constraint`]) — this is
/// what makes interactive validation loops (the paper's DogmaModeler
/// scenario) possible. Every mutation bumps [`Schema::revision`], which
/// validators use for cache invalidation.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Schema {
    pub(crate) name: String,
    pub(crate) object_types: Vec<ObjectType>,
    pub(crate) fact_types: Vec<FactType>,
    pub(crate) roles: Vec<Role>,
    pub(crate) constraints: Vec<Option<Constraint>>,
    pub(crate) subtype_links: Vec<Option<SubtypeLink>>,
    pub(crate) type_names: HashMap<String, ObjectTypeId>,
    pub(crate) fact_names: HashMap<String, FactTypeId>,
    pub(crate) revision: u64,
}

impl Schema {
    /// The schema name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Monotonically increasing edit counter; bumped by every mutation.
    pub fn revision(&self) -> u64 {
        self.revision
    }

    // ------------------------------------------------------------------
    // Element access
    // ------------------------------------------------------------------

    /// Look up an object type by id.
    ///
    /// # Panics
    /// Panics if the id does not belong to this schema.
    pub fn object_type(&self, id: ObjectTypeId) -> &ObjectType {
        &self.object_types[id.index()]
    }

    /// Look up a fact type by id.
    ///
    /// # Panics
    /// Panics if the id does not belong to this schema.
    pub fn fact_type(&self, id: FactTypeId) -> &FactType {
        &self.fact_types[id.index()]
    }

    /// Look up a role by id.
    ///
    /// # Panics
    /// Panics if the id does not belong to this schema.
    pub fn role(&self, id: RoleId) -> &Role {
        &self.roles[id.index()]
    }

    /// Look up a live constraint by id; `None` if removed or unknown.
    pub fn constraint(&self, id: ConstraintId) -> Option<&Constraint> {
        self.constraints.get(id.index()).and_then(Option::as_ref)
    }

    /// Iterate over all object types with their ids.
    pub fn object_types(&self) -> impl Iterator<Item = (ObjectTypeId, &ObjectType)> {
        self.object_types.iter().enumerate().map(|(i, t)| (ObjectTypeId(i as u32), t))
    }

    /// Iterate over all fact types with their ids.
    pub fn fact_types(&self) -> impl Iterator<Item = (FactTypeId, &FactType)> {
        self.fact_types.iter().enumerate().map(|(i, t)| (FactTypeId(i as u32), t))
    }

    /// Iterate over all roles with their ids.
    pub fn roles(&self) -> impl Iterator<Item = (RoleId, &Role)> {
        self.roles.iter().enumerate().map(|(i, r)| (RoleId(i as u32), r))
    }

    /// Iterate over all *live* constraints with their ids.
    pub fn constraints(&self) -> impl Iterator<Item = (ConstraintId, &Constraint)> {
        self.constraints
            .iter()
            .enumerate()
            .filter_map(|(i, c)| c.as_ref().map(|c| (ConstraintId(i as u32), c)))
    }

    /// Iterate over all live subtype links.
    pub fn subtype_links(&self) -> impl Iterator<Item = SubtypeLink> + '_ {
        self.subtype_links.iter().filter_map(|l| *l)
    }

    /// Number of object types.
    pub fn object_type_count(&self) -> usize {
        self.object_types.len()
    }

    /// Number of fact types.
    pub fn fact_type_count(&self) -> usize {
        self.fact_types.len()
    }

    /// Number of roles (always twice the fact type count).
    pub fn role_count(&self) -> usize {
        self.roles.len()
    }

    /// Number of live constraints.
    pub fn constraint_count(&self) -> usize {
        self.constraints.iter().filter(|c| c.is_some()).count()
    }

    /// Total number of named elements; a rough "schema size" used by the
    /// scaling benchmarks.
    pub fn size(&self) -> usize {
        self.object_types.len()
            + self.fact_types.len()
            + self.constraint_count()
            + self.subtype_links().count()
    }

    // ------------------------------------------------------------------
    // Name lookup
    // ------------------------------------------------------------------

    /// Resolve an object type by name.
    pub fn object_type_by_name(&self, name: &str) -> Option<ObjectTypeId> {
        self.type_names.get(name).copied()
    }

    /// Resolve a fact type by name.
    pub fn fact_type_by_name(&self, name: &str) -> Option<FactTypeId> {
        self.fact_names.get(name).copied()
    }

    /// Resolve a role by its label (e.g. `"r1"`), scanning all roles.
    pub fn role_by_name(&self, name: &str) -> Option<RoleId> {
        self.roles().find(|(_, r)| r.name == name).map(|(id, _)| id)
    }

    // ------------------------------------------------------------------
    // Derived navigation helpers
    // ------------------------------------------------------------------

    /// The role opposite `role` within its binary fact type. The paper calls
    /// this the *inverse role* (Pattern 5).
    pub fn co_role(&self, role: RoleId) -> RoleId {
        let fact = self.fact_type(self.role(role).fact_type);
        fact.co_role(role).expect("role belongs to its own fact type")
    }

    /// The object type playing `role`.
    pub fn player(&self, role: RoleId) -> ObjectTypeId {
        self.role(role).player
    }

    /// Human-readable label for a role: its explicit name.
    pub fn role_label(&self, role: RoleId) -> &str {
        self.role(role).name()
    }

    /// Render a role sequence like `(r1, r2)` using role labels.
    pub fn seq_label(&self, seq: &RoleSeq) -> String {
        let parts: Vec<&str> = seq.roles().iter().map(|r| self.role_label(*r)).collect();
        format!("({})", parts.join(", "))
    }

    /// Whether `seq` spans the whole predicate of some fact type (both roles
    /// of one fact type).
    pub fn seq_is_whole_predicate(&self, seq: &RoleSeq) -> bool {
        match seq.roles() {
            [a, b] => {
                let fa = self.role(*a).fact_type;
                fa == self.role(*b).fact_type && *a != *b
            }
            _ => false,
        }
    }

    /// Compute the derived index (closures, per-role constraint maps).
    ///
    /// The index is a pure function of the schema contents; validators
    /// compute it once per revision and share it across all pattern checks.
    pub fn index(&self) -> SchemaIndex {
        SchemaIndex::build(self)
    }

    // ------------------------------------------------------------------
    // Mutation (interactive editing)
    // ------------------------------------------------------------------

    fn bump(&mut self) {
        self.revision += 1;
    }

    /// Add a constraint that was validated by [`crate::SchemaBuilder`]
    /// helpers; exposed for interactive tools via the checked wrappers on
    /// the builder. Internal invariant checks are the caller's duty.
    pub(crate) fn push_constraint(&mut self, c: Constraint) -> ConstraintId {
        let id = ConstraintId(self.constraints.len() as u32);
        self.constraints.push(Some(c));
        self.bump();
        id
    }

    /// Add an already-validated constraint. Prefer the checked helpers on
    /// [`crate::SchemaBuilder`]; this exists so interactive tools can re-add
    /// a constraint that was previously removed.
    pub fn add_constraint(&mut self, c: Constraint) -> ConstraintId {
        self.push_constraint(c)
    }

    /// Remove a constraint, leaving a tombstone so other ids stay stable.
    /// Returns the removed constraint, or `None` if the id was unknown or
    /// already removed.
    pub fn remove_constraint(&mut self, id: ConstraintId) -> Option<Constraint> {
        let slot = self.constraints.get_mut(id.index())?;
        let removed = slot.take();
        if removed.is_some() {
            self.bump();
        }
        removed
    }

    /// Add a subtype link `sub <: sup`.
    pub fn add_subtype(&mut self, sub: ObjectTypeId, sup: ObjectTypeId) -> Result<(), ModelError> {
        if sub == sup {
            return Err(ModelError::SelfSubtype { ty: sub });
        }
        if self.subtype_links().any(|l| l.sub == sub && l.sup == sup) {
            return Err(ModelError::DuplicateSubtype { sub, sup });
        }
        self.subtype_links.push(Some(SubtypeLink { sub, sup }));
        self.bump();
        Ok(())
    }

    /// Remove a subtype link; returns whether it existed.
    pub fn remove_subtype(&mut self, sub: ObjectTypeId, sup: ObjectTypeId) -> bool {
        for slot in &mut self.subtype_links {
            if matches!(slot, Some(l) if l.sub == sub && l.sup == sup) {
                *slot = None;
                self.bump();
                return true;
            }
        }
        false
    }

    /// Set or clear the value constraint of an object type.
    pub fn set_value_constraint(&mut self, ty: ObjectTypeId, vc: Option<ValueConstraint>) {
        self.object_types[ty.index()].value_constraint = vc;
        self.bump();
    }

    /// Pretty label for any element, for diagnostics.
    pub fn element_label(&self, e: Element) -> String {
        match e {
            Element::ObjectType(id) => self.object_type(id).name().to_owned(),
            Element::FactType(id) => self.fact_type(id).name().to_owned(),
            Element::Role(id) => self.role_label(id).to_owned(),
            Element::Constraint(id) => match self.constraint(id) {
                Some(c) => format!("{:?} {}", c.kind(), id),
                None => format!("removed {id}"),
            },
            Element::Subtype(sub, sup) => {
                format!("{} <: {}", self.object_type(sub).name(), self.object_type(sup).name())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::SchemaBuilder;
    use crate::constraint::{Constraint, Mandatory};

    fn two_type_schema() -> Schema {
        let mut b = SchemaBuilder::new("s");
        let a = b.entity_type("A").unwrap();
        let bb = b.entity_type("B").unwrap();
        b.fact_type("f", a, bb).unwrap();
        b.finish()
    }

    #[test]
    fn lookup_by_name() {
        let s = two_type_schema();
        let a = s.object_type_by_name("A").unwrap();
        assert_eq!(s.object_type(a).name(), "A");
        assert!(s.object_type_by_name("Z").is_none());
        let f = s.fact_type_by_name("f").unwrap();
        assert_eq!(s.fact_type(f).name(), "f");
    }

    #[test]
    fn co_role_is_involutive() {
        let s = two_type_schema();
        let f = s.fact_type_by_name("f").unwrap();
        let [r0, r1] = s.fact_type(f).roles();
        assert_eq!(s.co_role(r0), r1);
        assert_eq!(s.co_role(s.co_role(r0)), r0);
    }

    #[test]
    fn revision_bumps_on_mutation() {
        let mut s = two_type_schema();
        let r0 = s.fact_type(s.fact_type_by_name("f").unwrap()).first();
        let rev = s.revision();
        let id = s.add_constraint(Constraint::Mandatory(Mandatory { roles: vec![r0] }));
        assert!(s.revision() > rev);
        let rev = s.revision();
        assert!(s.remove_constraint(id).is_some());
        assert!(s.revision() > rev);
        // Removing again is a no-op and does not bump.
        let rev = s.revision();
        assert!(s.remove_constraint(id).is_none());
        assert_eq!(s.revision(), rev);
    }

    #[test]
    fn constraint_tombstones_keep_ids_stable() {
        let mut s = two_type_schema();
        let r0 = s.fact_type(s.fact_type_by_name("f").unwrap()).first();
        let c1 = s.add_constraint(Constraint::Mandatory(Mandatory { roles: vec![r0] }));
        let c2 = s.add_constraint(Constraint::Mandatory(Mandatory { roles: vec![r0] }));
        s.remove_constraint(c1);
        assert!(s.constraint(c1).is_none());
        assert!(s.constraint(c2).is_some());
        assert_eq!(s.constraint_count(), 1);
    }

    #[test]
    fn subtype_add_remove() {
        let mut s = two_type_schema();
        let a = s.object_type_by_name("A").unwrap();
        let b = s.object_type_by_name("B").unwrap();
        s.add_subtype(b, a).unwrap();
        assert_eq!(s.add_subtype(b, a), Err(ModelError::DuplicateSubtype { sub: b, sup: a }));
        assert_eq!(s.add_subtype(a, a), Err(ModelError::SelfSubtype { ty: a }));
        assert!(s.remove_subtype(b, a));
        assert!(!s.remove_subtype(b, a));
    }

    #[test]
    fn whole_predicate_detection() {
        let s = two_type_schema();
        let f = s.fact_type_by_name("f").unwrap();
        let [r0, r1] = s.fact_type(f).roles();
        assert!(s.seq_is_whole_predicate(&RoleSeq::pair(r0, r1)));
        assert!(s.seq_is_whole_predicate(&RoleSeq::pair(r1, r0)));
        assert!(!s.seq_is_whole_predicate(&RoleSeq::single(r0)));
        assert!(!s.seq_is_whole_predicate(&RoleSeq::pair(r0, r0)));
    }

    #[test]
    fn size_counts_live_elements() {
        let mut s = two_type_schema();
        let base = s.size();
        let r0 = s.fact_type(s.fact_type_by_name("f").unwrap()).first();
        let id = s.add_constraint(Constraint::Mandatory(Mandatory { roles: vec![r0] }));
        assert_eq!(s.size(), base + 1);
        s.remove_constraint(id);
        assert_eq!(s.size(), base);
    }
}
