//! ORM constraints.
//!
//! Every constraint kind the nine patterns of the paper reason about is
//! represented here. Constraints are stored in a single arena on the schema
//! and addressed by [`crate::ConstraintId`], so diagnostics can point at the
//! exact constraints that jointly cause an unsatisfiability — mirroring the
//! explanation messages of the paper's appendix algorithms.

use crate::ids::{FactTypeId, ObjectTypeId, RoleId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A sequence of roles used as an argument of a set-comparison constraint.
///
/// In the binary setting of the paper a role sequence is either a **single
/// role** (length 1) or a **whole predicate** (length 2, both roles of one
/// fact type in order).
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct RoleSeq(pub Vec<RoleId>);

impl RoleSeq {
    /// A single-role sequence.
    pub fn single(role: RoleId) -> Self {
        RoleSeq(vec![role])
    }

    /// A two-role (whole predicate) sequence.
    pub fn pair(first: RoleId, second: RoleId) -> Self {
        RoleSeq(vec![first, second])
    }

    /// Number of roles in the sequence.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the sequence is empty (never true for built schemas).
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Whether this argument is a single role.
    pub fn is_single(&self) -> bool {
        self.0.len() == 1
    }

    /// The roles of the sequence.
    pub fn roles(&self) -> &[RoleId] {
        &self.0
    }
}

impl fmt::Debug for RoleSeq {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, r) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{r}")?;
        }
        write!(f, ")")
    }
}

impl From<RoleId> for RoleSeq {
    fn from(r: RoleId) -> Self {
        RoleSeq::single(r)
    }
}

/// Mandatory role constraint.
///
/// With a single role this is the classic "every instance of the player must
/// play this role". With several roles (all played by the same object type)
/// it is a *disjunctive* mandatory constraint: every instance must play at
/// least one of them.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Mandatory {
    /// The roles covered by the constraint; disjunctive when `len() > 1`.
    pub roles: Vec<RoleId>,
}

impl Mandatory {
    /// Whether this is a simple (single-role) mandatory constraint.
    pub fn is_simple(&self) -> bool {
        self.roles.len() == 1
    }
}

/// Internal uniqueness constraint over a subset of the roles of one fact
/// type.
///
/// For a binary fact type the sequence is either one role ("each player
/// appears at most once") or both roles (the implicit spanning uniqueness of
/// set semantics).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Uniqueness {
    /// The covered roles, all belonging to the same fact type.
    pub roles: Vec<RoleId>,
}

/// Frequency constraint `FC(min..max)` over a role sequence of one fact type.
///
/// Semantics (\[H89\]): every instance combination that *does* occur in the
/// covered columns occurs between `min` and `max` times.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Frequency {
    /// The covered roles, all belonging to the same fact type.
    pub roles: Vec<RoleId>,
    /// Lower bound (≥ 1).
    pub min: u32,
    /// Upper bound; `None` means unbounded ("n or more").
    pub max: Option<u32>,
}

impl Frequency {
    /// Render as the paper's `FC(min-max)` notation.
    pub fn notation(&self) -> String {
        match self.max {
            Some(max) => format!("FC({}-{})", self.min, max),
            None => format!("FC({}-)", self.min),
        }
    }
}

/// Which set-comparison relation a [`SetComparison`] asserts.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SetComparisonKind {
    /// `args[0] ⊆ args[1]` (population of the first sequence is included in
    /// the second).
    Subset,
    /// All argument populations are equal.
    Equality,
    /// All argument populations are pairwise disjoint.
    Exclusion,
}

impl fmt::Display for SetComparisonKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SetComparisonKind::Subset => write!(f, "subset"),
            SetComparisonKind::Equality => write!(f, "equality"),
            SetComparisonKind::Exclusion => write!(f, "exclusion"),
        }
    }
}

/// Set-comparison constraint (subset / equality / exclusion) over role
/// sequences.
///
/// All argument sequences have the same length (1 = between roles,
/// 2 = between whole predicates). A subset constraint has exactly two
/// arguments, directed from `args[0]` (sub) to `args[1]` (super); equality
/// and exclusion take two or more.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SetComparison {
    /// The relation asserted between the argument populations.
    pub kind: SetComparisonKind,
    /// The compared role sequences.
    pub args: Vec<RoleSeq>,
}

impl SetComparison {
    /// Whether the arguments are single roles (as opposed to predicates).
    pub fn over_single_roles(&self) -> bool {
        self.args.first().is_some_and(RoleSeq::is_single)
    }
}

/// Exclusive constraint between object types: their populations must be
/// pairwise disjoint (the ⊗ between `Student` and `Employee` in Fig. 1).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExclusiveTypes {
    /// The mutually exclusive object types.
    pub types: Vec<ObjectTypeId>,
}

/// Totality constraint: the population of `supertype` is exactly the union
/// of the populations of `subtypes`.
///
/// Not itself one of the paper's nine pattern triggers, but needed to encode
/// Fig. 14 (every `A` must be a `B` or a `C`) and common in real schemas.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TotalSubtypes {
    /// The partitioned supertype.
    pub supertype: ObjectTypeId,
    /// The subtypes that jointly cover the supertype.
    pub subtypes: Vec<ObjectTypeId>,
}

/// One of the six ring constraint kinds of ORM (\[H01\], Fig. 12 of the paper).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum RingKind {
    /// `¬r(x,x)`.
    Irreflexive,
    /// `r(x,y) ∧ r(y,x) → x = y`.
    Antisymmetric,
    /// `r(x,y) → ¬r(y,x)` (= antisymmetric ∧ irreflexive).
    Asymmetric,
    /// No directed cycles (implies asymmetric, hence irreflexive).
    Acyclic,
    /// `r(x,y) ∧ r(y,z) → ¬r(x,z)` (implies irreflexive).
    Intransitive,
    /// `r(x,y) → r(y,x)`.
    Symmetric,
}

impl RingKind {
    /// All six kinds, in the paper's order.
    pub const ALL: [RingKind; 6] = [
        RingKind::Antisymmetric,
        RingKind::Asymmetric,
        RingKind::Acyclic,
        RingKind::Irreflexive,
        RingKind::Intransitive,
        RingKind::Symmetric,
    ];

    /// The paper's two-letter abbreviation (`ans`, `as`, `ac`, `ir`, `it`,
    /// `sym`).
    pub fn abbrev(self) -> &'static str {
        match self {
            RingKind::Antisymmetric => "ans",
            RingKind::Asymmetric => "as",
            RingKind::Acyclic => "ac",
            RingKind::Irreflexive => "ir",
            RingKind::Intransitive => "it",
            RingKind::Symmetric => "sym",
        }
    }
}

impl fmt::Display for RingKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.abbrev())
    }
}

/// A set of [`RingKind`]s, stored as a tiny bitset.
#[derive(Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct RingKinds(u8);

impl RingKinds {
    /// The empty set.
    pub const EMPTY: RingKinds = RingKinds(0);

    fn bit(kind: RingKind) -> u8 {
        match kind {
            RingKind::Antisymmetric => 1 << 0,
            RingKind::Asymmetric => 1 << 1,
            RingKind::Acyclic => 1 << 2,
            RingKind::Irreflexive => 1 << 3,
            RingKind::Intransitive => 1 << 4,
            RingKind::Symmetric => 1 << 5,
        }
    }

    /// Set of a single kind.
    pub fn only(kind: RingKind) -> Self {
        RingKinds(Self::bit(kind))
    }

    /// Build from an iterator of kinds (also available through the
    /// `FromIterator` impl; this inherent form keeps call sites short).
    #[allow(clippy::should_implement_trait)]
    pub fn from_iter<I: IntoIterator<Item = RingKind>>(kinds: I) -> Self {
        let mut s = RingKinds::EMPTY;
        for k in kinds {
            s.insert(k);
        }
        s
    }

    /// Insert a kind.
    pub fn insert(&mut self, kind: RingKind) {
        self.0 |= Self::bit(kind);
    }

    /// Remove a kind.
    pub fn remove(&mut self, kind: RingKind) {
        self.0 &= !Self::bit(kind);
    }

    /// Membership test.
    pub fn contains(self, kind: RingKind) -> bool {
        self.0 & Self::bit(kind) != 0
    }

    /// Whether no kinds are present.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Number of kinds present.
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Whether `self` is a subset of `other`.
    pub fn is_subset(self, other: RingKinds) -> bool {
        self.0 & !other.0 == 0
    }

    /// Set union.
    pub fn union(self, other: RingKinds) -> RingKinds {
        RingKinds(self.0 | other.0)
    }

    /// Iterate over the contained kinds in [`RingKind::ALL`] order.
    pub fn iter(self) -> impl Iterator<Item = RingKind> {
        RingKind::ALL.into_iter().filter(move |k| self.contains(*k))
    }

    /// Enumerate all 64 possible kind sets (for table generation).
    pub fn all_subsets() -> impl Iterator<Item = RingKinds> {
        (0u8..64).map(RingKinds)
    }
}

impl fmt::Debug for RingKinds {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, k) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{k}")?;
        }
        write!(f, "}}")
    }
}

impl fmt::Display for RingKinds {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl FromIterator<RingKind> for RingKinds {
    fn from_iter<I: IntoIterator<Item = RingKind>>(iter: I) -> Self {
        RingKinds::from_iter(iter)
    }
}

/// Ring constraint: a set of [`RingKind`]s applied to the two roles of a
/// binary fact type whose players are compatible (same type or connected via
/// supertypes).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Ring {
    /// The constrained fact type (its two roles form the ring pair).
    pub fact_type: FactTypeId,
    /// The applied ring constraint kinds.
    pub kinds: RingKinds,
}

/// Any ORM constraint, as stored in the schema's constraint arena.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Constraint {
    /// Mandatory (possibly disjunctive) role constraint.
    Mandatory(Mandatory),
    /// Internal uniqueness constraint.
    Uniqueness(Uniqueness),
    /// Frequency constraint `FC(min..max)`.
    Frequency(Frequency),
    /// Subset / equality / exclusion between role sequences.
    SetComparison(SetComparison),
    /// Pairwise-disjoint object types.
    ExclusiveTypes(ExclusiveTypes),
    /// Supertype covered by the union of subtypes.
    TotalSubtypes(TotalSubtypes),
    /// Ring constraints on a fact type.
    Ring(Ring),
}

/// Discriminant-only view of [`Constraint`], useful for filtering.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum ConstraintKind {
    Mandatory,
    Uniqueness,
    Frequency,
    SetComparison,
    ExclusiveTypes,
    TotalSubtypes,
    Ring,
}

impl Constraint {
    /// The discriminant of this constraint.
    pub fn kind(&self) -> ConstraintKind {
        match self {
            Constraint::Mandatory(_) => ConstraintKind::Mandatory,
            Constraint::Uniqueness(_) => ConstraintKind::Uniqueness,
            Constraint::Frequency(_) => ConstraintKind::Frequency,
            Constraint::SetComparison(_) => ConstraintKind::SetComparison,
            Constraint::ExclusiveTypes(_) => ConstraintKind::ExclusiveTypes,
            Constraint::TotalSubtypes(_) => ConstraintKind::TotalSubtypes,
            Constraint::Ring(_) => ConstraintKind::Ring,
        }
    }

    /// All roles mentioned by this constraint (empty for type-level
    /// constraints).
    pub fn mentioned_roles(&self) -> Vec<RoleId> {
        match self {
            Constraint::Mandatory(m) => m.roles.clone(),
            Constraint::Uniqueness(u) => u.roles.clone(),
            Constraint::Frequency(f) => f.roles.clone(),
            Constraint::SetComparison(s) => {
                s.args.iter().flat_map(|seq| seq.roles().iter().copied()).collect()
            }
            Constraint::ExclusiveTypes(_) | Constraint::TotalSubtypes(_) => Vec::new(),
            Constraint::Ring(_) => Vec::new(),
        }
    }

    /// All object types mentioned directly by this constraint (empty for
    /// role-level constraints).
    pub fn mentioned_types(&self) -> Vec<ObjectTypeId> {
        match self {
            Constraint::ExclusiveTypes(e) => e.types.clone(),
            Constraint::TotalSubtypes(t) => {
                let mut v = vec![t.supertype];
                v.extend(&t.subtypes);
                v
            }
            _ => Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn role_seq_constructors() {
        let s = RoleSeq::single(RoleId::from_raw(1));
        assert!(s.is_single());
        assert_eq!(s.len(), 1);
        let p = RoleSeq::pair(RoleId::from_raw(1), RoleId::from_raw(2));
        assert!(!p.is_single());
        assert_eq!(p.len(), 2);
        assert!(!p.is_empty());
    }

    #[test]
    fn frequency_notation_matches_paper() {
        let f = Frequency { roles: vec![RoleId::from_raw(0)], min: 3, max: Some(5) };
        assert_eq!(f.notation(), "FC(3-5)");
        let open = Frequency { roles: vec![RoleId::from_raw(0)], min: 2, max: None };
        assert_eq!(open.notation(), "FC(2-)");
    }

    #[test]
    fn ring_kinds_set_operations() {
        let mut s = RingKinds::EMPTY;
        assert!(s.is_empty());
        s.insert(RingKind::Acyclic);
        s.insert(RingKind::Symmetric);
        assert_eq!(s.len(), 2);
        assert!(s.contains(RingKind::Acyclic));
        assert!(!s.contains(RingKind::Irreflexive));
        s.remove(RingKind::Acyclic);
        assert!(!s.contains(RingKind::Acyclic));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn ring_kinds_subset_and_union() {
        let a = RingKinds::from_iter([RingKind::Acyclic]);
        let b = RingKinds::from_iter([RingKind::Acyclic, RingKind::Intransitive]);
        assert!(a.is_subset(b));
        assert!(!b.is_subset(a));
        assert_eq!(a.union(b), b);
    }

    #[test]
    fn ring_kinds_enumeration_is_complete() {
        assert_eq!(RingKinds::all_subsets().count(), 64);
        let full: RingKinds = RingKind::ALL.into_iter().collect();
        assert_eq!(full.len(), 6);
        assert_eq!(full.iter().count(), 6);
    }

    #[test]
    fn ring_kinds_display() {
        let s = RingKinds::from_iter([RingKind::Symmetric, RingKind::Intransitive]);
        assert_eq!(s.to_string(), "{it, sym}");
    }

    #[test]
    fn constraint_kind_discriminants() {
        let c = Constraint::Mandatory(Mandatory { roles: vec![RoleId::from_raw(0)] });
        assert_eq!(c.kind(), ConstraintKind::Mandatory);
        assert_eq!(c.mentioned_roles(), vec![RoleId::from_raw(0)]);
        assert!(c.mentioned_types().is_empty());

        let e = Constraint::ExclusiveTypes(ExclusiveTypes {
            types: vec![ObjectTypeId::from_raw(0), ObjectTypeId::from_raw(1)],
        });
        assert_eq!(e.kind(), ConstraintKind::ExclusiveTypes);
        assert!(e.mentioned_roles().is_empty());
        assert_eq!(e.mentioned_types().len(), 2);
    }

    #[test]
    fn set_comparison_over_single_roles() {
        let s = SetComparison {
            kind: SetComparisonKind::Exclusion,
            args: vec![RoleSeq::single(RoleId::from_raw(0)), RoleSeq::single(RoleId::from_raw(2))],
        };
        assert!(s.over_single_roles());
        let p = SetComparison {
            kind: SetComparisonKind::Subset,
            args: vec![
                RoleSeq::pair(RoleId::from_raw(0), RoleId::from_raw(1)),
                RoleSeq::pair(RoleId::from_raw(2), RoleId::from_raw(3)),
            ],
        };
        assert!(!p.over_single_roles());
    }

    #[test]
    fn mandatory_simple_vs_disjunctive() {
        let simple = Mandatory { roles: vec![RoleId::from_raw(0)] };
        assert!(simple.is_simple());
        let disj = Mandatory { roles: vec![RoleId::from_raw(0), RoleId::from_raw(2)] };
        assert!(!disj.is_simple());
    }
}
