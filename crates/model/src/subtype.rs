//! Subtype links.
//!
//! Subtyping is structural in ORM diagrams (the arrow between object types),
//! so it is stored separately from the constraint arena. Links are kept in a
//! tombstoned arena like constraints so interactive tools can retract them.
//!
//! ORM subtype populations are **strict** subsets of their supertype
//! populations ([H01]); this is what makes subtype cycles unsatisfiable
//! (Pattern 9). Cycles are therefore representable here and rejected nowhere
//! below the validator.

use crate::ids::ObjectTypeId;
use serde::{Deserialize, Serialize};

/// A single subtype edge: `sub` is a (strict) subtype of `sup`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SubtypeLink {
    /// The subtype.
    pub sub: ObjectTypeId,
    /// The supertype.
    pub sup: ObjectTypeId,
}

impl std::fmt::Display for SubtypeLink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} <: {}", self.sub, self.sup)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_shows_direction() {
        let l = SubtypeLink { sub: ObjectTypeId::from_raw(1), sup: ObjectTypeId::from_raw(0) };
        assert_eq!(l.to_string(), "ot1 <: ot0");
    }
}
