//! Binary fact types and their roles.

use crate::ids::{FactTypeId, ObjectTypeId, RoleId};
use serde::{Deserialize, Serialize};

/// A role: one "column" of a binary fact type, played by an object type.
///
/// Roles are the unit the paper's patterns reason about — "the role r1 cannot
/// be populated" — so they carry their own ids and optional diagram labels
/// (`r1`, `r3`, …).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Role {
    pub(crate) name: String,
    pub(crate) fact_type: FactTypeId,
    pub(crate) position: u8,
    pub(crate) player: ObjectTypeId,
}

impl Role {
    /// The label of this role (diagram labels like `r1`; auto-generated as
    /// `<fact>.<position>` when not provided).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The fact type this role belongs to.
    pub fn fact_type(&self) -> FactTypeId {
        self.fact_type
    }

    /// Position within the fact type: `0` (first) or `1` (second).
    pub fn position(&self) -> u8 {
        self.position
    }

    /// The object type playing this role.
    pub fn player(&self) -> ObjectTypeId {
        self.player
    }
}

/// A binary fact type (predicate) relating two object types through two
/// [`Role`]s.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct FactType {
    pub(crate) name: String,
    pub(crate) roles: [RoleId; 2],
    pub(crate) reading: Option<String>,
}

impl FactType {
    /// The unique name of the predicate within its schema.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The two roles, in order.
    pub fn roles(&self) -> [RoleId; 2] {
        self.roles
    }

    /// The first role.
    pub fn first(&self) -> RoleId {
        self.roles[0]
    }

    /// The second role.
    pub fn second(&self) -> RoleId {
        self.roles[1]
    }

    /// The role at `position` (0 or 1).
    ///
    /// # Panics
    /// Panics if `position > 1`; fact types are binary by construction.
    pub fn role_at(&self, position: u8) -> RoleId {
        self.roles[usize::from(position)]
    }

    /// The role opposite to `role`, or `None` if `role` does not belong to
    /// this fact type. The paper calls this the *inverse role* (Pattern 5).
    pub fn co_role(&self, role: RoleId) -> Option<RoleId> {
        if role == self.roles[0] {
            Some(self.roles[1])
        } else if role == self.roles[1] {
            Some(self.roles[0])
        } else {
            None
        }
    }

    /// An optional natural-language reading such as `"works for"`, used by
    /// the verbalizer.
    pub fn reading(&self) -> Option<&str> {
        self.reading.as_deref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_fact() -> FactType {
        FactType {
            name: "works_for".into(),
            roles: [RoleId::from_raw(0), RoleId::from_raw(1)],
            reading: Some("works for".into()),
        }
    }

    #[test]
    fn role_accessors() {
        let ft = sample_fact();
        assert_eq!(ft.first(), RoleId::from_raw(0));
        assert_eq!(ft.second(), RoleId::from_raw(1));
        assert_eq!(ft.role_at(0), ft.first());
        assert_eq!(ft.role_at(1), ft.second());
        assert_eq!(ft.reading(), Some("works for"));
    }

    #[test]
    fn co_role_flips_position() {
        let ft = sample_fact();
        assert_eq!(ft.co_role(RoleId::from_raw(0)), Some(RoleId::from_raw(1)));
        assert_eq!(ft.co_role(RoleId::from_raw(1)), Some(RoleId::from_raw(0)));
        assert_eq!(ft.co_role(RoleId::from_raw(9)), None);
    }
}
