//! # orm-model — the ORM metamodel
//!
//! This crate implements the Object-Role Modeling (ORM) metamodel used by the
//! unsatisfiability-pattern reproduction of *Jarrar & Heymans,
//! "Unsatisfiability Reasoning in ORM Conceptual Schemes" (EDBT 2006)*.
//!
//! Following the paper (§2), the model is restricted to **binary** fact types,
//! without objectification (nested fact types) and without derivation rules.
//! Everything else the nine patterns touch is represented:
//!
//! * object types (entity and value types) with optional **value constraints**
//!   (enumerations or integer ranges),
//! * **subtyping** with the strict-subset semantics of \[H01\] (cycles are
//!   representable so that Pattern 9 can detect them),
//! * binary **fact types** with two named roles,
//! * **mandatory** role constraints (simple and disjunctive),
//! * internal **uniqueness** constraints over role sequences,
//! * **frequency** constraints `FC(min..max)`,
//! * **set-comparison** constraints (subset / equality / exclusion) over
//!   single roles or whole predicates,
//! * **exclusive** and **total** constraints between object types,
//! * the six **ring** constraints (irreflexive, antisymmetric, asymmetric,
//!   acyclic, intransitive, symmetric).
//!
//! The central type is [`Schema`]; build one with [`SchemaBuilder`]:
//!
//! ```
//! use orm_model::SchemaBuilder;
//!
//! let mut b = SchemaBuilder::new("university");
//! let person = b.entity_type("Person").unwrap();
//! let student = b.entity_type("Student").unwrap();
//! let employee = b.entity_type("Employee").unwrap();
//! let phd = b.entity_type("PhdStudent").unwrap();
//! b.subtype(student, person).unwrap();
//! b.subtype(employee, person).unwrap();
//! b.subtype(phd, student).unwrap();
//! b.subtype(phd, employee).unwrap();
//! b.exclusive_types([student, employee]).unwrap();
//! let schema = b.finish();
//! assert_eq!(schema.object_types().count(), 4);
//! ```
//!
//! The builder rejects *structurally* invalid input (unknown ids, wrong
//! arities, empty constraint argument lists). It deliberately **accepts
//! semantically contradictory schemas** — detecting those is the job of the
//! `orm-core` validator, exactly as in the paper's DogmaModeler setting.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod builder;
mod constraint;
mod error;
mod fact_type;
mod ids;
mod index;
mod object_type;
mod schema;
mod subtype;
mod value;

pub use builder::SchemaBuilder;
pub use constraint::{
    Constraint, ConstraintKind, ExclusiveTypes, Frequency, Mandatory, Ring, RingKind, RingKinds,
    RoleSeq, SetComparison, SetComparisonKind, TotalSubtypes, Uniqueness,
};
pub use error::ModelError;
pub use fact_type::{FactType, Role};
pub use ids::{ConstraintId, FactTypeId, ObjectTypeId, RoleId};
pub use index::SchemaIndex;
pub use object_type::{ObjectType, ObjectTypeKind};
pub use schema::{Element, Schema};
pub use subtype::SubtypeLink;
pub use value::{Value, ValueConstraint};
