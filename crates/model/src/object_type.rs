//! Object types (entity types and value types).

use crate::value::ValueConstraint;
use serde::{Deserialize, Serialize};

/// Whether an object type is an entity type or a (lexical) value type.
///
/// The distinction does not affect the unsatisfiability patterns themselves —
/// the paper treats both uniformly — but it matters for verbalization and for
/// which types may carry value constraints in idiomatic ORM diagrams.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ObjectTypeKind {
    /// A non-lexical entity type such as `Person`.
    Entity,
    /// A lexical value type such as `EmpNr`; typically carries a value
    /// constraint.
    Value,
}

/// An object type: a named concept that can play roles in fact types.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ObjectType {
    pub(crate) name: String,
    pub(crate) kind: ObjectTypeKind,
    pub(crate) value_constraint: Option<ValueConstraint>,
}

impl ObjectType {
    /// The unique name of the type within its schema.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Entity or value type.
    pub fn kind(&self) -> ObjectTypeKind {
        self.kind
    }

    /// The value constraint restricting this type's population, if any.
    pub fn value_constraint(&self) -> Option<&ValueConstraint> {
        self.value_constraint.as_ref()
    }

    /// The number of possible instances as bounded by the value constraint:
    /// `None` means unbounded (no value constraint).
    pub fn value_cardinality(&self) -> Option<u64> {
        self.value_constraint.as_ref().map(ValueConstraint::cardinality)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::ValueConstraint;

    #[test]
    fn accessors() {
        let ot = ObjectType {
            name: "EmpNr".into(),
            kind: ObjectTypeKind::Value,
            value_constraint: Some(ValueConstraint::enumeration(["x1", "x2"])),
        };
        assert_eq!(ot.name(), "EmpNr");
        assert_eq!(ot.kind(), ObjectTypeKind::Value);
        assert_eq!(ot.value_cardinality(), Some(2));
    }

    #[test]
    fn unconstrained_type_has_no_cardinality() {
        let ot = ObjectType {
            name: "Person".into(),
            kind: ObjectTypeKind::Entity,
            value_constraint: None,
        };
        assert_eq!(ot.value_cardinality(), None);
        assert!(ot.value_constraint().is_none());
    }
}
