//! Typed arena indices for schema elements.
//!
//! All schema elements live in arenas owned by [`crate::Schema`] and are
//! referenced by cheap `u32` newtype ids. Ids are stable for the lifetime of
//! a schema: removing a constraint leaves a tombstone rather than shifting
//! later ids, which lets diagnostics and interactive tools hold on to ids
//! across edits.

use serde::{Deserialize, Serialize};
use std::fmt;

macro_rules! id_type {
    ($(#[$meta:meta])* $name:ident, $prefix:literal) => {
        $(#[$meta])*
        #[derive(
            Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
        )]
        pub struct $name(pub(crate) u32);

        impl $name {
            /// Construct an id from a raw index.
            ///
            /// Intended for deserialization and test fixtures; ids minted this
            /// way are only meaningful against the schema they came from.
            pub fn from_raw(raw: u32) -> Self {
                Self(raw)
            }

            /// The raw arena index.
            pub fn raw(self) -> u32 {
                self.0
            }

            /// The raw arena index as `usize`, for direct slice indexing.
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

id_type!(
    /// Identifies an [`crate::ObjectType`] within a [`crate::Schema`].
    ObjectTypeId,
    "ot"
);
id_type!(
    /// Identifies a [`crate::FactType`] within a [`crate::Schema`].
    FactTypeId,
    "ft"
);
id_type!(
    /// Identifies a [`crate::Role`] within a [`crate::Schema`].
    ///
    /// Roles are globally indexed (not per fact type) so that constraint
    /// argument lists can mix roles of different fact types, as the paper's
    /// exclusion constraints do.
    RoleId,
    "r"
);
id_type!(
    /// Identifies a [`crate::Constraint`] within a [`crate::Schema`].
    ConstraintId,
    "c"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn raw_round_trip() {
        let id = RoleId::from_raw(7);
        assert_eq!(id.raw(), 7);
        assert_eq!(id.index(), 7);
    }

    #[test]
    fn display_uses_prefix() {
        assert_eq!(ObjectTypeId::from_raw(3).to_string(), "ot3");
        assert_eq!(FactTypeId::from_raw(0).to_string(), "ft0");
        assert_eq!(RoleId::from_raw(12).to_string(), "r12");
        assert_eq!(ConstraintId::from_raw(5).to_string(), "c5");
    }

    #[test]
    fn ordering_follows_raw_index() {
        assert!(RoleId::from_raw(1) < RoleId::from_raw(2));
        assert_eq!(RoleId::from_raw(4), RoleId::from_raw(4));
    }
}
