//! Property tests for the metamodel's derived structures.

use orm_model::{ObjectTypeId, Schema, SchemaBuilder};
use proptest::prelude::*;

/// Build a schema with `n` types and random subtype edges (cycles allowed).
fn subtype_schema(n: usize, edges: &[(usize, usize)]) -> Schema {
    let mut b = SchemaBuilder::new("prop");
    let types: Vec<ObjectTypeId> =
        (0..n).map(|i| b.entity_type(&format!("T{i}")).expect("fresh")).collect();
    for (sub, sup) in edges {
        let (sub, sup) = (types[sub % n], types[sup % n]);
        if sub != sup {
            let _ = b.subtype(sub, sup);
        }
    }
    b.finish()
}

fn edges_strategy(n: usize) -> impl Strategy<Value = Vec<(usize, usize)>> {
    prop::collection::vec((0..n, 0..n), 0..(2 * n))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// supers/subs closures are mutually inverse: S ∈ supers(T) ⟺ T ∈ subs(S).
    #[test]
    fn closures_are_inverse(edges in edges_strategy(6)) {
        let schema = subtype_schema(6, &edges);
        let idx = schema.index();
        for (a, _) in schema.object_types() {
            for (b, _) in schema.object_types() {
                prop_assert_eq!(
                    idx.supers(a).contains(&b),
                    idx.subs(b).contains(&a),
                    "asymmetry between supers({}) and subs({})",
                    a,
                    b
                );
            }
        }
    }

    /// The transitive closure is transitive.
    #[test]
    fn closure_is_transitive(edges in edges_strategy(6)) {
        let schema = subtype_schema(6, &edges);
        let idx = schema.index();
        for (a, _) in schema.object_types() {
            for &b in idx.supers(a) {
                for &c in idx.supers(b) {
                    prop_assert!(
                        idx.supers(a).contains(&c),
                        "{} reaches {} reaches {}, but the closure misses it",
                        a,
                        b,
                        c
                    );
                }
            }
        }
    }

    /// may_overlap is reflexive and symmetric.
    #[test]
    fn may_overlap_is_reflexive_and_symmetric(edges in edges_strategy(6)) {
        let schema = subtype_schema(6, &edges);
        let idx = schema.index();
        for (a, _) in schema.object_types() {
            prop_assert!(idx.may_overlap(a, a));
            for (b, _) in schema.object_types() {
                prop_assert_eq!(idx.may_overlap(a, b), idx.may_overlap(b, a));
            }
        }
    }

    /// A type is on a cycle exactly when one of its direct supertypes
    /// reaches back to it.
    #[test]
    fn cycle_detection_is_consistent(edges in edges_strategy(6)) {
        let schema = subtype_schema(6, &edges);
        let idx = schema.index();
        for (t, _) in schema.object_types() {
            let via_direct = idx
                .direct_supers(t)
                .iter()
                .any(|s| *s == t || idx.supers(*s).contains(&t));
            prop_assert_eq!(idx.on_subtype_cycle(t), via_direct);
        }
    }

    /// Revision strictly increases across any sequence of successful edits.
    #[test]
    fn revision_is_monotone(edits in prop::collection::vec(0u8..3, 1..20)) {
        let mut b = SchemaBuilder::new("rev");
        let a = b.entity_type("A").expect("fresh");
        let x = b.entity_type("X").expect("fresh");
        let f = b.fact_type("f", a, x).expect("fresh");
        let role = b.schema().fact_type(f).first();
        let mut schema = b.finish();
        let mut last = schema.revision();
        let mut constraints = Vec::new();
        for e in edits {
            match e {
                0 => {
                    let id = schema.add_constraint(orm_model::Constraint::Mandatory(
                        orm_model::Mandatory { roles: vec![role] },
                    ));
                    constraints.push(id);
                }
                1 => {
                    if let Some(id) = constraints.pop() {
                        schema.remove_constraint(id);
                    } else {
                        continue;
                    }
                }
                _ => {
                    schema.set_value_constraint(x, None);
                }
            }
            prop_assert!(schema.revision() > last);
            last = schema.revision();
        }
    }

    /// Serde round trip: a schema survives JSON-free serialization via the
    /// Debug-stable bincode-style format (here: serde_json is not a dep, so
    /// use the `serde` impls through a Vec<u8> writer — postcard-style not
    /// available; use serde's derive via `serde_test`-less manual check).
    ///
    /// We settle for: Clone produces an equal-by-structure schema whose
    /// index behaves identically (serde wire-format testing lives in the
    /// populations of the crates that persist schemas).
    #[test]
    fn clone_preserves_index_semantics(edges in edges_strategy(5)) {
        let schema = subtype_schema(5, &edges);
        let clone = schema.clone();
        let (i1, i2) = (schema.index(), clone.index());
        for (t, _) in schema.object_types() {
            prop_assert_eq!(i1.supers(t), i2.supers(t));
            prop_assert_eq!(i1.subs(t), i2.subs(t));
        }
    }
}
