//! Regenerates every table and figure of the paper in one run; the output
//! is the source for EXPERIMENTS.md.
//!
//! Run with `cargo run --release -p orm-bench --bin experiments`.
//!
//! `experiments tableau [out.json] [budget]` runs only the tableau-engine
//! comparison (trail-based vs classic clone-based, the cached
//! classification sweep, the parallel battery and the incremental-edit
//! workload) and **appends** the measurements as a new entry in
//! `BENCH_tableau.json`'s `runs` array — the perf trajectory grows run
//! over run rather than being overwritten (a legacy single-object file
//! is migrated into `runs[0]` on the first append). The optional third
//! argument reduces the per-query rule budget (the CI smoke setting);
//! trajectory runs use the default. The file format and the acceptance
//! thresholds are documented in `docs/BENCH.md`.

use orm_core::ring::euler::implies;
use orm_core::ring::table::{all_compatible, compatible, maximal_compatible, render_table};
use orm_core::{fixtures, validate, CheckCode, Validator, ValidatorSettings};
use orm_dl::translate;
use orm_gen::{faults, generate_clean, GenConfig};
use orm_model::{RingKind, RingKinds};
use orm_reasoner::{concept_satisfiability, strong_satisfiability, Bounds, Outcome};
use std::collections::BTreeSet;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.get(1).map(String::as_str) == Some("tableau") {
        let out = args.get(2).map(String::as_str).unwrap_or("BENCH_tableau.json");
        // Optional third argument: the rule budget per query. CI smoke
        // runs pass a reduced budget; the default is the ample
        // `tableau_scenarios::BUDGET` every recorded trajectory run uses.
        let budget = args
            .get(3)
            .map(|s| s.parse().expect("budget must be an integer"))
            .unwrap_or(orm_bench::tableau_scenarios::BUDGET);
        tableau_bench(out, budget);
        return;
    }

    heading("FIG1-FIG14 — the paper's worked examples");
    figures();

    heading("FIG9 — set-comparison implications");
    fig9();

    heading("FIG12 — ring-constraint Euler diagram, executable");
    fig12();

    heading("TAB1 — compatible ring-constraint combinations");
    tab1();

    heading("SEC3 — unsat-relevance of formation rules and RIDL rules");
    sec3();

    heading("FIG15 — validator settings (DogmaModeler toggles)");
    fig15();

    heading("PERF — patterns vs complete reasoning (paper §4)");
    perf();

    heading("CCFORM — interactive-detection case study (paper §4)");
    println!(
        "Simulated by `cargo run -p orm-examples --example customer_complaints`: three\n\
         lawyer-style mistakes are introduced and caught interactively (Patterns 1, 3/6\n\
         and 4/7), then fixed, mirroring the paper's reported experience."
    );

    heading("BEYOND — incompleteness instances found by cross-validation");
    beyond();
}

/// The first recorded `trail_ms` of `scenario` in an existing bench file
/// (i.e. the value from the oldest run — the PR 1 baseline once the file
/// has history). The file format is ours, so a substring scan suffices.
fn first_trail_ms(content: &str, scenario: &str) -> Option<f64> {
    let pos = content.find(&format!("\"name\": \"{scenario}\""))?;
    let rest = &content[pos..];
    let tpos = rest.find("\"trail_ms\": ")?;
    let rest = &rest[tpos + "\"trail_ms\": ".len()..];
    let end = rest.find([',', '}'])?;
    rest[..end].trim().parse().ok()
}

/// Splice `new_run` into `previous` (the current bench file contents, if
/// any), producing the whole new file: a `runs` array that grows by one
/// entry per invocation. A legacy single-object file (the PR 1 format)
/// becomes `runs[0]`.
fn append_run(previous: Option<&str>, new_run: &str) -> String {
    match previous {
        Some(old) if old.contains("\"runs\"") => {
            let cut = old.rfind(']').expect("runs array closes");
            let head = old[..cut].trim_end();
            format!("{head},\n{new_run}\n  ]\n}}\n")
        }
        Some(old) if !old.trim().is_empty() => {
            let legacy = old.trim();
            format!(
                "{{\n  \"bench\": \"tableau_hotpath\",\n  \"runs\": [\n{legacy},\n{new_run}\n  ]\n}}\n"
            )
        }
        _ => format!("{{\n  \"bench\": \"tableau_hotpath\",\n  \"runs\": [\n{new_run}\n  ]\n}}\n"),
    }
}

/// Best-of-`reps` wall-clock comparison of the two tableau engines on the
/// hotpath scenarios plus the cached classification sweep, **appended**
/// as a new run to the JSON perf trajectory (see `docs/BENCH.md`).
///
/// Acceptance bars recorded per run: ≥5× trail-vs-classic on the
/// `⊔`-heavy family, ≥5× cached-vs-uncached on the classification sweep,
/// ≥5× delta-aware-vs-wholesale on the incremental-edit workload, and —
/// once the file has history — the merge-heavy trail times against the
/// oldest run's (the backjumping gain; threshold 2×).
fn tableau_bench(out_path: &str, budget: u64) {
    use orm_bench::tableau_scenarios::{
        all, classify_battery, classify_sweep, explain_battery, incremental_edit,
    };

    fn best_secs<F: FnMut() -> orm_dl::DlOutcome>(reps: u32, mut f: F) -> (f64, orm_dl::DlOutcome) {
        let mut best = f64::MAX;
        let mut verdict = orm_dl::DlOutcome::ResourceLimit;
        for _ in 0..reps {
            let t0 = Instant::now();
            verdict = f();
            best = best.min(t0.elapsed().as_secs_f64());
        }
        (best, verdict)
    }

    let previous = std::fs::read_to_string(out_path).ok();

    heading("TABLEAU — trail-based engine vs classic clone-based baseline");
    println!(
        "{:<18} {:>12} {:>12} {:>9}  verdicts agree",
        "scenario", "classic_ms", "trail_ms", "speedup"
    );
    let mut rows = String::new();
    let mut or_heavy_min_speedup = f64::MAX;
    let mut merge_gain_min: Option<f64> = None;
    let mut all_agree = true;
    for s in all() {
        let (trail, v_new) = best_secs(5, || orm_dl::satisfiable(&s.tbox, &s.query, budget));
        let (classic, v_old) =
            best_secs(5, || orm_dl::classic::satisfiable(&s.tbox, &s.query, budget));
        let speedup = classic / trail.max(1e-9);
        // Budget accounting differs between the engines, so on *reduced*
        // budgets (the CI smoke argument) a one-sided `ResourceLimit` is
        // inconclusive rather than a disagreement — the same rule the
        // differential suites apply. At the default ample budget the
        // scenarios are sized to finish, so an engine hitting the limit
        // there *is* a regression and the strict check stays in force.
        let reduced_budget = budget < orm_bench::tableau_scenarios::BUDGET;
        let agree = v_new == v_old
            || (reduced_budget
                && (v_new == orm_dl::DlOutcome::ResourceLimit
                    || v_old == orm_dl::DlOutcome::ResourceLimit));
        all_agree &= agree;
        if s.kind == "or_fanout" {
            or_heavy_min_speedup = or_heavy_min_speedup.min(speedup);
        }
        if s.kind == "merge_heavy" {
            if let Some(baseline) = previous.as_deref().and_then(|c| first_trail_ms(c, &s.name)) {
                let gain = baseline / (trail * 1e3).max(1e-9);
                merge_gain_min = Some(merge_gain_min.map_or(gain, |g: f64| g.min(gain)));
            }
        }
        println!(
            "{:<18} {:>12.3} {:>12.3} {:>8.1}x  {}",
            s.name,
            classic * 1e3,
            trail * 1e3,
            speedup,
            if agree { "yes" } else { "NO" }
        );
        if !rows.is_empty() {
            rows.push_str(",\n");
        }
        rows.push_str(&format!(
            "        {{\"name\": \"{}\", \"kind\": \"{}\", \"classic_ms\": {:.4}, \
             \"trail_ms\": {:.4}, \"speedup\": {:.2}, \"verdict\": \"{:?}\", \
             \"verdicts_agree\": {}}}",
            s.name,
            s.kind,
            classic * 1e3,
            trail * 1e3,
            speedup,
            v_new,
            agree
        ));
    }

    // Classification sweep: the same query battery answered by re-proving
    // everything vs through one SatCache.
    let sweep = classify_sweep(12, 8);
    let run_uncached = || {
        let mut verdicts = Vec::new();
        for _ in 0..sweep.passes {
            for q in &sweep.queries {
                verdicts.push(orm_dl::satisfiable(&sweep.tbox, q, budget));
            }
        }
        verdicts
    };
    let run_cached = || {
        let mut cache = orm_dl::SatCache::new();
        let mut verdicts = Vec::new();
        for _ in 0..sweep.passes {
            for q in &sweep.queries {
                verdicts.push(cache.satisfiable(&sweep.tbox, q, budget));
            }
        }
        (verdicts, cache.stats())
    };
    let mut uncached = f64::MAX;
    let mut cached = f64::MAX;
    let mut verdicts_uncached = Vec::new();
    let mut verdicts_cached = Vec::new();
    let mut sweep_stats = orm_dl::CacheStats::default();
    for _ in 0..3 {
        let t0 = Instant::now();
        verdicts_uncached = run_uncached();
        uncached = uncached.min(t0.elapsed().as_secs_f64());
        let t0 = Instant::now();
        let (v, stats) = run_cached();
        cached = cached.min(t0.elapsed().as_secs_f64());
        verdicts_cached = v;
        sweep_stats = stats;
    }
    let sweep_agree = verdicts_uncached == verdicts_cached;
    all_agree &= sweep_agree;
    let sweep_speedup = uncached / cached.max(1e-9);
    println!(
        "\n{}: {} queries × {} passes — uncached {:.3} ms, cached {:.3} ms \
         ({:.1}x; {sweep_stats}), verdicts agree: {}",
        sweep.name,
        sweep.queries.len(),
        sweep.passes,
        uncached * 1e3,
        cached * 1e3,
        sweep_speedup,
        if sweep_agree { "yes" } else { "NO" }
    );
    if let Some(gain) = merge_gain_min {
        println!(
            "merge-heavy trail gain vs oldest recorded run: {gain:.1}x (backjumping threshold 2.0x)"
        );
    }

    // Parallel classification battery: the full Translation-level
    // classify matrix, sequential vs fanned out over a scoped pool.
    // Every rep runs on a *fresh clone* (cold sharded cache) so both
    // drivers prove every pair rather than replaying hits.
    let battery = classify_battery(14, 6);
    let translation = translate(&battery.schema);
    // At least 4 workers (the acceptance bar's thread count), more when
    // the machine offers them (clamped by `default_threads`).
    let par_threads = orm_dl::par::default_threads().max(4);
    let hardware_threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut seq_secs = f64::MAX;
    let mut par_secs = f64::MAX;
    let mut seq_pairs = Vec::new();
    let mut par_pairs = Vec::new();
    for _ in 0..3 {
        let cold = translation.clone();
        let t0 = Instant::now();
        seq_pairs = cold.classify(&battery.schema, budget);
        seq_secs = seq_secs.min(t0.elapsed().as_secs_f64());
        let cold = translation.clone();
        let t0 = Instant::now();
        par_pairs = cold.classify_par(&battery.schema, budget, par_threads);
        par_secs = par_secs.min(t0.elapsed().as_secs_f64());
    }
    let pairs_agree = seq_pairs == par_pairs;
    all_agree &= pairs_agree;
    let par_speedup = seq_secs / par_secs.max(1e-9);
    let pair_count = battery.types * (battery.types - 1);
    println!(
        "\n{}: {} types, {} subsumption pairs — sequential {:.3} ms, parallel({} threads) \
         {:.3} ms ({:.2}x on {} hardware thread(s)), pair sets agree: {}",
        battery.name,
        battery.types,
        pair_count,
        seq_secs * 1e3,
        par_threads,
        par_secs * 1e3,
        par_speedup,
        hardware_threads,
        if pairs_agree { "yes" } else { "NO" }
    );

    // Work-stealing scheduler battery (PR 7): the same classification
    // matrix driven through the ExecCx-aware entry points. Measures the
    // seq-vs-par bar through the new scheduler, steal traffic under the
    // striped deques, deterministic cancellation latency (the shared
    // meter trips the token at an exact step count — no wall-clock
    // racing), and the expired-deadline no-op guarantee. Cache and
    // scheduler counters are emitted in their stable serialized form.
    let sched_cx = orm_dl::ExecCx::with_steps(budget);
    let mut sched_seq_secs = f64::MAX;
    let mut sched_par_secs = f64::MAX;
    let mut sched_seq_pairs = Vec::new();
    let mut sched_par_pairs = Vec::new();
    let mut sched_stats = orm_dl::par::SchedStats::default();
    let mut sched_cache_json = String::new();
    for _ in 0..3 {
        let cold = translation.clone();
        let t0 = Instant::now();
        sched_seq_pairs = cold.classify_cx(&battery.schema, &sched_cx);
        sched_seq_secs = sched_seq_secs.min(t0.elapsed().as_secs_f64());
        let cold = translation.clone();
        let t0 = Instant::now();
        let (pairs, stats) = cold.classify_par_cx(&battery.schema, &sched_cx, par_threads);
        sched_par_secs = sched_par_secs.min(t0.elapsed().as_secs_f64());
        sched_par_pairs = pairs;
        sched_stats = stats;
        sched_cache_json = cold.cache_stats().to_json();
    }
    let sched_pairs_agree = sched_seq_pairs == seq_pairs && sched_par_pairs == seq_pairs;
    all_agree &= sched_pairs_agree;
    let sched_speedup = sched_seq_secs / sched_par_secs.max(1e-9);
    let sched_seq_ms = sched_seq_secs * 1e3;
    let sched_par_ms = sched_par_secs * 1e3;
    let sched_stats_json = sched_stats.to_json();
    let sched_types = battery.types;

    // Deterministic cancellation: trip the token mid-matrix and time the
    // full unwind of the cancelled call. Interrupted proofs record
    // nothing, so the same warm shards must then converge to the
    // sequential truth on an uncancelled rerun.
    let cancel_translation = translation.clone();
    let cancelling = orm_dl::ExecCx::with_steps(budget).cancel_after_steps(2_000);
    let t0 = Instant::now();
    let (_, cancel_stats) =
        cancel_translation.classify_par_cx(&battery.schema, &cancelling, par_threads);
    let cancel_latency_ms = t0.elapsed().as_secs_f64() * 1e3;
    let cancel_executed = cancel_stats.executed;
    let cancel_skipped = cancel_stats.skipped;
    let (after_cancel, _) =
        cancel_translation.classify_par_cx(&battery.schema, &sched_cx, par_threads);
    let cancel_agrees = after_cancel == seq_pairs;
    all_agree &= cancel_agrees;

    // A context whose deadline already passed must execute nothing: the
    // upfront check fires before any proof is attempted.
    let expired = orm_dl::ExecCx::with_steps(budget)
        .with_deadline(Instant::now() - std::time::Duration::from_millis(1));
    let (_, deadline_stats) =
        translation.clone().classify_par_cx(&battery.schema, &expired, par_threads);
    let deadline_noop = deadline_stats.executed == 0;
    all_agree &= deadline_noop;
    println!(
        "\nscheduler_battery: {} types, {} pairs — cx sequential {:.3} ms, \
         work-stealing({} workers) {:.3} ms ({:.2}x), {} stolen of {} executed; \
         cancel latency {:.3} ms ({} executed / {} skipped, warm rerun agrees: {}), \
         expired deadline no-op: {}",
        sched_types,
        pair_count,
        sched_seq_ms,
        sched_stats.workers,
        sched_par_ms,
        sched_speedup,
        sched_stats.stolen,
        sched_stats.executed,
        cancel_latency_ms,
        cancel_executed,
        cancel_skipped,
        if cancel_agrees { "yes" } else { "NO" },
        if deadline_noop { "yes" } else { "NO" }
    );
    println!("  sched_stats: {sched_stats_json}");
    println!("  cache_stats: {sched_cache_json}");

    // Incremental TBox revalidation (PR 4): the classification battery
    // replayed after each of a series of single-GCI edits. "Wholesale"
    // empties the cache after every edit (the pre-PR 4 stamp-mismatch
    // behavior, emulated by an explicit clear); "delta-aware" keeps one
    // persistent cache whose entries survive via the retention rules.
    // Both modes share an untimed population round, then the post-edit
    // rounds are timed; verdict streams must match round for round.
    let inc = incremental_edit(10, 6);
    let run_rounds = |delta_aware: bool| {
        let mut run = inc.populate(budget);
        let t0 = Instant::now();
        let verdicts = run.edit_rounds(&inc, delta_aware, budget);
        (t0.elapsed().as_secs_f64(), verdicts, run.stats())
    };
    let mut wholesale_secs = f64::MAX;
    let mut delta_secs = f64::MAX;
    let mut wholesale_verdicts = Vec::new();
    let mut delta_verdicts = Vec::new();
    let mut inc_stats = orm_dl::CacheStats::default();
    for _ in 0..3 {
        let (secs, verdicts, _) = run_rounds(false);
        wholesale_secs = wholesale_secs.min(secs);
        wholesale_verdicts = verdicts;
        let (secs, verdicts, stats) = run_rounds(true);
        delta_secs = delta_secs.min(secs);
        delta_verdicts = verdicts;
        inc_stats = stats;
    }
    let inc_agree = wholesale_verdicts == delta_verdicts;
    all_agree &= inc_agree;
    let inc_speedup = wholesale_secs / delta_secs.max(1e-9);
    // The workload is pointless unless the retention rules actually
    // engaged: both monotone-kept Unsat entries and witness-revalidated
    // Sat entries must appear.
    let inc_retention_engaged = inc_stats.retained > 0 && inc_stats.revalidated > 0;
    println!(
        "\n{}: {} queries × {} edit rounds — wholesale {:.3} ms, delta-aware {:.3} ms \
         ({:.1}x; {inc_stats}), verdicts agree: {}",
        inc.name,
        inc.queries.len(),
        inc.edits.len(),
        wholesale_secs * 1e3,
        delta_secs * 1e3,
        inc_speedup,
        if inc_agree { "yes" } else { "NO" }
    );

    // Unsat-core diagnosis (PR 5): the plain sweep finds the doomed
    // elements, then each gets a minimal unsat core extracted and mapped
    // to ORM origins. Extraction is timed cold (fresh shards) and warm
    // (cores cached beside verdicts); the acceptance checks — every core
    // sound, minimal and fully attributed — are verified untimed.
    //
    // This section always runs at the full default budget, ignoring the
    // smoke reduction: minimality certification needs every probe to
    // reach a definitive verdict (a probe dying on a reduced budget
    // honestly clears `minimal`, which would make the smoke gate flap on
    // a knob that exists only to shrink the engine-comparison scenarios).
    let explain_budget = orm_bench::tableau_scenarios::BUDGET;
    let exp = explain_battery(8);
    let exp_translation = translate(&exp.schema);
    let unsat_types: Vec<_> = exp
        .schema
        .object_types()
        .map(|(ty, _)| ty)
        .filter(|&ty| {
            exp_translation.type_satisfiable(ty, explain_budget) == orm_dl::DlOutcome::Unsat
        })
        .collect();
    let unsat_roles: Vec<_> = exp
        .schema
        .roles()
        .map(|(r, _)| r)
        .filter(|&r| {
            exp_translation.role_satisfiable(r, explain_budget) == orm_dl::DlOutcome::Unsat
        })
        .collect();
    let unsat_elements = unsat_types.len() + unsat_roles.len();
    let extract = |t: &orm_dl::Translation| -> Vec<(orm_dl::Concept, orm_dl::Explanation)> {
        let mut out = Vec::new();
        for &ty in &unsat_types {
            out.push((t.type_concept(ty), t.explain_type(ty, explain_budget)));
        }
        for &r in &unsat_roles {
            out.push((t.role_concept(r), t.explain_role(r, explain_budget)));
        }
        out
    };
    let mut explain_cold = f64::MAX;
    let mut explain_warm = f64::MAX;
    let mut explained = Vec::new();
    for _ in 0..3 {
        let cold = exp_translation.clone();
        let t0 = Instant::now();
        explained = extract(&cold);
        explain_cold = explain_cold.min(t0.elapsed().as_secs_f64());
        let t0 = Instant::now();
        let replay = extract(&cold);
        explain_warm = explain_warm.min(t0.elapsed().as_secs_f64());
        assert_eq!(
            explained.iter().map(|(_, e)| e.core().map(|c| c.axioms.clone())).collect::<Vec<_>>(),
            replay.iter().map(|(_, e)| e.core().map(|c| c.axioms.clone())).collect::<Vec<_>>(),
            "warm explanation replay diverged from cold extraction"
        );
    }
    // Warm-start delta (PR 6): the cold extraction above routes through
    // the sharded cache, whose seed pool lets each element's extraction
    // probe the previous elements' certified cores first. The fully
    // *unseeded* baseline runs the same extractions directly against the
    // engine, pool-less — the delta is what cross-element seeding buys.
    // Verdict shape must agree (every element yields a core both ways);
    // core *contents* may legitimately differ, minimal cores aren't
    // unique.
    let mut explain_unseeded = f64::MAX;
    let mut unseeded_cores = 0usize;
    for _ in 0..3 {
        let t0 = Instant::now();
        let tbox = &exp_translation.tbox;
        unseeded_cores = unsat_types
            .iter()
            .map(|&ty| exp_translation.type_concept(ty))
            .chain(unsat_roles.iter().map(|&r| exp_translation.role_concept(r)))
            .filter(|q| {
                matches!(
                    orm_dl::explain_unsat(tbox, q, explain_budget),
                    orm_dl::Explanation::Unsat(_)
                )
            })
            .count();
        explain_unseeded = explain_unseeded.min(t0.elapsed().as_secs_f64());
    }
    let seeding_agrees = unseeded_cores == unsat_elements;
    // Verification (untimed; on the engine's deep-stack helper —
    // minimality probes search weakened TBoxes whose refutations can
    // recurse thousands of levels).
    let tbox = &exp_translation.tbox;
    let (cores_extracted, cores_sound, cores_minimal, origins_mapped, mean_core) =
        orm_dl::explain::with_deep_stack(|| {
            let mut sound = true;
            let mut minimal = true;
            let mut mapped = true;
            let mut sizes = Vec::new();
            let mut extracted = explained.len() == unsat_elements && !explained.is_empty();
            for (query, explanation) in &explained {
                let Some(core) = explanation.core() else {
                    extracted = false;
                    continue;
                };
                sizes.push(core.len());
                sound &= orm_dl::explain::core_refutes(tbox, core, query, explain_budget);
                minimal &= core.minimal;
                for i in 0..core.len() {
                    let mut weakened = core.axioms.clone();
                    weakened.remove(i);
                    minimal &=
                        orm_dl::satisfiable(&tbox.restrict_to(&weakened), query, explain_budget)
                            == orm_dl::DlOutcome::Sat;
                }
                mapped &= !exp_translation.core_origins(core).is_empty();
            }
            let mean = sizes.iter().sum::<usize>() as f64 / sizes.len().max(1) as f64;
            (extracted, sound, minimal, mapped, mean)
        });
    let explain_ok =
        cores_extracted && cores_sound && cores_minimal && origins_mapped && seeding_agrees;
    all_agree &= explain_ok;
    println!(
        "\n{}: {} unsat elements ({} types, {} roles) — extraction {:.3} ms unseeded, \
         {:.3} ms cold (pool-seeded), {:.3} ms warm; mean core size {:.1}; \
         sound {} / minimal {} / ORM-attributed {} / seeding agrees {}",
        exp.name,
        unsat_elements,
        unsat_types.len(),
        unsat_roles.len(),
        explain_unseeded * 1e3,
        explain_cold * 1e3,
        explain_warm * 1e3,
        mean_core,
        if cores_sound { "yes" } else { "NO" },
        if cores_minimal { "yes" } else { "NO" },
        if origins_mapped { "yes" } else { "NO" },
        if seeding_agrees { "yes" } else { "NO" }
    );

    // MUS enumeration (this PR): the same doomed battery, but every
    // element now gets its WHOLE family of minimal unsat cores
    // (MARCO-style worklist over `restrict_to` probes) plus the verified
    // hitting-set repairs over the family. Cold routes through the
    // sharded cache so cross-element seed-pool reuse keeps the all-MUS
    // sweep within the 2×-of-single-core bar; warm replays the cached
    // families. Runs at the full budget for the same reason as the
    // explain section above.
    let enum_limit = 8usize;
    let enumerate_all =
        |t: &orm_dl::Translation| -> Vec<(orm_dl::Concept, orm_dl::MusEnumeration)> {
            let mut out = Vec::new();
            for &ty in &unsat_types {
                out.push((t.type_concept(ty), t.enumerate_type(ty, explain_budget, enum_limit)));
            }
            for &r in &unsat_roles {
                out.push((t.role_concept(r), t.enumerate_role(r, explain_budget, enum_limit)));
            }
            out
        };
    let family_shape = |runs: &[(orm_dl::Concept, orm_dl::MusEnumeration)]| -> Vec<Option<Vec<Vec<orm_dl::AxiomId>>>> {
        runs.iter()
            .map(|(_, e)| e.family().map(|f| f.cores.iter().map(|c| c.axioms.clone()).collect()))
            .collect()
    };
    let mut enum_cold = f64::MAX;
    let mut enum_warm = f64::MAX;
    let mut enumerated = Vec::new();
    for _ in 0..3 {
        let cold = exp_translation.clone();
        let t0 = Instant::now();
        enumerated = enumerate_all(&cold);
        enum_cold = enum_cold.min(t0.elapsed().as_secs_f64());
        let t0 = Instant::now();
        let replay = enumerate_all(&cold);
        enum_warm = enum_warm.min(t0.elapsed().as_secs_f64());
        assert_eq!(
            family_shape(&enumerated),
            family_shape(&replay),
            "warm family replay diverged from cold enumeration"
        );
    }
    // Verification (untimed, on the deep-stack helper): every family
    // found, every core certified sound + minimal and pairwise
    // ⊆-incomparable, every family provably complete on this battery,
    // every ranked repair independently re-proved to restore Sat, and
    // the cached route agreeing with a direct engine enumeration.
    let (
        families_found,
        family_cores_certified,
        families_complete,
        repairs_verified,
        uncached_agrees,
        mean_family,
        total_cores,
        total_repairs,
    ) = orm_dl::explain::with_deep_stack(|| {
        let subset = |a: &[orm_dl::AxiomId], b: &[orm_dl::AxiomId]| a.iter().all(|x| b.contains(x));
        let mut certified = true;
        let mut complete = true;
        let mut repairs_ok = true;
        let mut uncached = true;
        let mut sizes = Vec::new();
        let mut n_repairs = 0usize;
        let mut found = enumerated.len() == unsat_elements && !enumerated.is_empty();
        for (query, enumeration) in &enumerated {
            let Some(family) = enumeration.family() else {
                found = false;
                continue;
            };
            sizes.push(family.len());
            complete &= family.complete && !family.truncated;
            for (i, core) in family.cores.iter().enumerate() {
                certified &= core.minimal
                    && orm_dl::explain::core_refutes(tbox, core, query, explain_budget);
                for j in 0..core.len() {
                    let mut weakened = core.axioms.clone();
                    weakened.remove(j);
                    certified &=
                        orm_dl::satisfiable(&tbox.restrict_to(&weakened), query, explain_budget)
                            == orm_dl::DlOutcome::Sat;
                }
                for other in &family.cores[i + 1..] {
                    certified &= !subset(&core.axioms, &other.axioms)
                        && !subset(&other.axioms, &core.axioms);
                }
            }
            let repairs = exp_translation.repairs_for(query, explain_budget, family);
            repairs_ok &= !repairs.is_empty();
            n_repairs += repairs.len();
            for repair in &repairs {
                repairs_ok &= repair.verified
                    && family
                        .cores
                        .iter()
                        .all(|c| c.axioms.iter().any(|a| repair.axioms.contains(a)));
                let keep: Vec<orm_dl::AxiomId> =
                    tbox.axiom_ids().filter(|a| !repair.axioms.contains(a)).collect();
                repairs_ok &= orm_dl::satisfiable(&tbox.restrict_to(&keep), query, explain_budget)
                    == orm_dl::DlOutcome::Sat;
            }
            // Cached-vs-uncached: a direct engine enumeration of the
            // same query yields the same family as a set.
            if let orm_dl::MusEnumeration::Unsat(direct) =
                orm_dl::enumerate_mus(tbox, query, explain_budget, enum_limit)
            {
                let canon = |f: &orm_dl::MusFamily| {
                    let mut cores: Vec<Vec<orm_dl::AxiomId>> =
                        f.cores.iter().map(|c| c.axioms.clone()).collect();
                    cores.sort();
                    cores
                };
                uncached &= canon(family) == canon(&direct);
            } else {
                uncached = false;
            }
        }
        let total: usize = sizes.iter().sum();
        let mean = total as f64 / sizes.len().max(1) as f64;
        (found, certified, complete, repairs_ok, uncached, mean, total, n_repairs)
    });
    // Deterministic two-MUS pin: the compact two-contradiction scenario
    // has exactly-known ground truth — one doomed type, two independent
    // 3-axiom cores, nine verified 2-axiom repairs. The enumerator must
    // reproduce it exactly (family complete, never truncated at this
    // limit).
    let pin = orm_bench::tableau_scenarios::enumeration_battery();
    let pin_translation = translate(&pin.schema);
    let mut two_mus_pinned = false;
    for (ty, _) in pin.schema.object_types() {
        if pin_translation.type_satisfiable(ty, explain_budget) != orm_dl::DlOutcome::Unsat {
            continue;
        }
        if let orm_dl::MusEnumeration::Unsat(family) =
            pin_translation.enumerate_type(ty, explain_budget, enum_limit)
        {
            let repairs = pin_translation.repairs_for(
                &pin_translation.type_concept(ty),
                explain_budget,
                &family,
            );
            two_mus_pinned = family.len() == 2
                && family.complete
                && !family.truncated
                && family.cores.iter().all(|c| c.minimal && c.len() == 3)
                && repairs.len() == 9
                && repairs.iter().all(|r| r.verified && r.len() == 2);
        }
    }

    let any_truncated = enumerated.iter().any(|(_, e)| e.family().is_some_and(|f| f.truncated));
    let enum_within_2x = enum_cold <= 2.0 * explain_cold;
    let enum_warm_fast = enum_warm <= 1e-3;
    let enumeration_ok = families_found
        && family_cores_certified
        && families_complete
        && repairs_verified
        && uncached_agrees
        && two_mus_pinned;
    all_agree &= enumeration_ok;
    println!(
        "{} (enumeration): {} cores across {} families (mean {:.1}), {} verified repairs — \
         {:.3} ms cold (limit {enum_limit}, ≤2× single-core: {}), {:.3} ms warm (≤1 ms: {}); \
         certified {} / complete {} / repairs re-proved {} / cached=uncached {}",
        exp.name,
        total_cores,
        unsat_elements,
        mean_family,
        total_repairs,
        enum_cold * 1e3,
        if enum_within_2x { "yes" } else { "NO" },
        enum_warm * 1e3,
        if enum_warm_fast { "yes" } else { "NO" },
        if family_cores_certified { "yes" } else { "NO" },
        if families_complete { "yes" } else { "NO" },
        if repairs_verified { "yes" } else { "NO" },
        if uncached_agrees { "yes" } else { "NO" }
    );
    println!(
        "{}: two independent contradictions, one doomed type — exact family + \
         nine verified repairs reproduced: {}",
        pin.name,
        if two_mus_pinned { "yes" } else { "NO" }
    );

    // Bulk conformance (PR 6): a large, almost-clean population of the
    // order-processing schema, checked by the per-violation validator vs
    // a compiled `CheckPlan` over the columnar population. The violation
    // multisets must be identical; the compiled run carries a 20× bar at
    // the comparison size, and the large compiled-only run a wall budget.
    // The smoke setting shrinks the populations the same way it shrinks
    // the engine scenarios; the trajectory file records the sizes used.
    // The smoke comparison size stays large enough that the validator's
    // quadratic mandatory scan dominates — below ~20k rows the measured
    // ratio collapses toward fixed costs and the 2× exit gate would sit
    // within runner noise.
    let reduced_budget = budget < orm_bench::tableau_scenarios::BUDGET;
    let (bulk_rows, large_rows) =
        if reduced_budget { (20_000, 100_000) } else { (100_000, 1_000_000) };
    let bulk = orm_bench::tableau_scenarios::bulk_conformance(bulk_rows, 24);
    let bulk_options = orm_population::CheckOptions::default();
    let t0 = Instant::now();
    let per_violation =
        orm_population::check(&bulk.workload.schema, &bulk.workload.population, bulk_options);
    let bulk_interp_secs = t0.elapsed().as_secs_f64();
    let t0 = Instant::now();
    let bulk_translation = translate(&bulk.workload.schema);
    let bulk_plan = orm_population::CheckPlan::compile(
        &bulk.workload.schema,
        &bulk_translation,
        explain_budget,
        bulk_options,
    );
    let bulk_compile_secs = t0.elapsed().as_secs_f64();
    let mut bulk_exec_secs = f64::MAX;
    let mut compiled = Vec::new();
    for _ in 0..3 {
        let t0 = Instant::now();
        compiled = bulk_plan.execute(&bulk.workload.schema, &bulk.workload.population);
        bulk_exec_secs = bulk_exec_secs.min(t0.elapsed().as_secs_f64());
    }
    let multiset = |vs: &[orm_population::Violation]| {
        let mut keys: Vec<String> = vs.iter().map(|v| format!("{v:?}")).collect();
        keys.sort();
        keys
    };
    let bulk_agree = multiset(&per_violation) == multiset(&compiled);
    all_agree &= bulk_agree;
    let bulk_speedup = bulk_interp_secs / bulk_exec_secs.max(1e-9);
    println!(
        "\n{}: {} tuples, {} faults injected, {} violations found — per-violation \
         {:.1} ms, compile {:.1} ms + execute {:.1} ms ({:.1}x, bar 20x), \
         plan certified Sat: {}, violation multisets agree: {}",
        bulk.name,
        bulk.rows,
        bulk.workload.faults_injected,
        compiled.len(),
        bulk_interp_secs * 1e3,
        bulk_compile_secs * 1e3,
        bulk_exec_secs * 1e3,
        bulk_speedup,
        if bulk_plan.certified_sat() { "yes" } else { "NO" },
        if bulk_agree { "yes" } else { "NO" }
    );
    // The large population runs compiled-only (the per-violation
    // validator's mandatory scan is quadratic — the very cost the plan
    // removes) against a wall budget.
    const LARGE_BUDGET_SECS: f64 = 60.0;
    let large = orm_bench::tableau_scenarios::bulk_conformance(large_rows, 48);
    let t0 = Instant::now();
    let large_plan = orm_population::CheckPlan::compile(
        &large.workload.schema,
        &translate(&large.workload.schema),
        explain_budget,
        bulk_options,
    );
    let large_violations = large_plan.execute(&large.workload.schema, &large.workload.population);
    let large_secs = t0.elapsed().as_secs_f64();
    let large_within_budget = large_secs <= LARGE_BUDGET_SECS;
    let large_found_faults = large_violations.len() >= large.workload.faults_injected;
    all_agree &= large_found_faults;
    println!(
        "{}: {} tuples compiled-only — {:.1} ms, {} violations from {} faults, \
         within {:.0} s budget: {}",
        large.name,
        large.rows,
        large_secs * 1e3,
        large_violations.len(),
        large.workload.faults_injected,
        LARGE_BUDGET_SECS,
        if large_within_budget { "yes" } else { "NO" }
    );

    // Fault-tolerant service battery (PR 9): the chaos harness storms a
    // `ReasonerService` with concurrent sessions mixing full-budget
    // queries, deadline storms, starved budgets, metered cancellations
    // and mid-storm edits, then injects worker panics, sabotages
    // snapshot blobs and performs a clean warm restart — every decided
    // verdict checked against a fresh sequential reference. The
    // contract gates are deterministic (the harness forces each fault
    // class to fire); only the warm-restart timing bar lives outside
    // the exit gate.
    let chaos_cfg = orm_gen::chaos::ChaosConfig {
        sessions: if reduced_budget { 16 } else { 64 },
        steps_per_session: if reduced_budget { 3 } else { 6 },
        gen: if reduced_budget { GenConfig::small(0xC0A5) } else { GenConfig::medium(0xC0A5) },
        ..Default::default()
    };
    let t0 = Instant::now();
    let chaos = orm_gen::chaos::run_chaos(&chaos_cfg);
    let chaos_secs = t0.elapsed().as_secs_f64();
    let chaos_throughput = chaos.served as f64 / chaos_secs.max(1e-9);
    let chaos_shed_rate = chaos.shed as f64 / (chaos.queries.max(1)) as f64;
    let chaos_stats_json = chaos.stats.to_json();
    let service_contract = chaos.disagreements == 0
        && chaos.shed >= 1
        && chaos.stats.downgrades >= 1
        && chaos.panics_isolated >= 1
        && chaos.corrupt_rejected >= 1
        && chaos.restores >= 1
        && chaos.restored_entries >= 1
        && chaos.post_restore_checked >= 1;

    // Warm restart vs cold re-prove, measured on the diagnosis
    // battery (always at the full budget, like the explain section):
    // the expensive part of a restart is re-deriving the doomed
    // elements' minimal unsat cores — each cold extraction re-runs the
    // deletion-minimization probes, while the snapshot stores the
    // certified cores beside the Unsat verdicts and replays them as
    // hits. "Cold" is a fresh translation proving the type + role
    // sweeps and extracting every core from scratch; "warm" restores
    // the snapshot first and must answer the same workload from hits
    // alone (zero misses), verdict for verdict and core for core.
    let persist = translate(&exp.schema);
    persist.type_sweep(&exp.schema, explain_budget);
    persist.role_sweep(&exp.schema, explain_budget);
    extract(&persist);
    let blob = persist.snapshot();
    let snapshot_bytes = blob.len();
    let core_shape =
        |runs: &[(orm_dl::Concept, orm_dl::Explanation)]| -> Vec<Option<Vec<orm_dl::AxiomId>>> {
            runs.iter().map(|(_, e)| e.core().map(|c| c.axioms.clone())).collect()
        };
    let mut cold_reprove_secs = f64::MAX;
    let mut warm_restart_secs = f64::MAX;
    let mut warm_misses = u64::MAX;
    let mut restored_entries = 0usize;
    let mut restart_agrees = true;
    for _ in 0..3 {
        let cold = translate(&exp.schema);
        let t0 = Instant::now();
        let cold_types = cold.type_sweep(&exp.schema, explain_budget);
        let cold_roles = cold.role_sweep(&exp.schema, explain_budget);
        let cold_cores = extract(&cold);
        cold_reprove_secs = cold_reprove_secs.min(t0.elapsed().as_secs_f64());
        let warm = translate(&exp.schema);
        let t0 = Instant::now();
        let report = warm.restore(&blob).expect("clean snapshot restores");
        let warm_types = warm.type_sweep(&exp.schema, explain_budget);
        let warm_roles = warm.role_sweep(&exp.schema, explain_budget);
        let warm_cores = extract(&warm);
        warm_restart_secs = warm_restart_secs.min(t0.elapsed().as_secs_f64());
        restored_entries = report.entries;
        warm_misses = warm.cache_stats().misses;
        restart_agrees &= warm_types == cold_types
            && warm_roles == cold_roles
            && core_shape(&warm_cores) == core_shape(&cold_cores);
    }
    let warm_no_misses = warm_misses == 0;
    let warm_restart_gain = cold_reprove_secs / warm_restart_secs.max(1e-9);
    let warm_restart_met = warm_restart_gain >= 5.0;
    let service_ok = service_contract && restart_agrees && warm_no_misses && restored_entries > 0;
    all_agree &= service_ok;
    println!(
        "\nservice_battery: {} sessions × {} steps — {} queries ({} served / {} shed, \
         shed rate {:.2}), {} downgraded, {} decided vs reference with {} disagreements; \
         {} panics isolated, {} corrupt snapshots rejected, {} restores \
         ({} entries, {} verdicts re-checked); {:.0} served/s over {:.1} s",
        chaos.sessions,
        chaos_cfg.steps_per_session,
        chaos.queries,
        chaos.served,
        chaos.shed,
        chaos_shed_rate,
        chaos.downgraded,
        chaos.decided,
        chaos.disagreements,
        chaos.panics_isolated,
        chaos.corrupt_rejected,
        chaos.restores,
        chaos.restored_entries,
        chaos.post_restore_checked,
        chaos_throughput,
        chaos_secs
    );
    println!(
        "  warm restart: snapshot {} bytes, {} entries restored — cold re-prove {:.3} ms, \
         warm restart {:.3} ms ({:.1}x, bar 5x: {}), warm misses {} (none: {}), \
         verdicts agree: {}",
        snapshot_bytes,
        restored_entries,
        cold_reprove_secs * 1e3,
        warm_restart_secs * 1e3,
        warm_restart_gain,
        if warm_restart_met { "yes" } else { "NO" },
        warm_misses,
        if warm_no_misses { "yes" } else { "NO" },
        if restart_agrees { "yes" } else { "NO" }
    );
    println!("  service_stats: {chaos_stats_json}");

    // Saturation battery (PR 10): the graph-saturation model finder — the
    // third engine — swept over a fault-injected schema whose dooms lie
    // beyond the DL translation. Records sequential vs fan-out sweep
    // times, cold extraction vs cache-served replay, tableau agreement on
    // the shared fragment, external certification of every Sat witness
    // through `orm_population::check`, and the pinned ring scenarios only
    // the saturation engine can refute (the tableau's translation drops
    // the rings). Always at full strength: the saturation engine carries
    // its own internal caps, so the smoke budget knob does not apply.
    use orm_dl::{SaturationEngine, SaturationOutcome};
    let sat_base = generate_clean(&GenConfig::sized(0x5A70, 8));
    let sat_schema = faults::inject_all(&sat_base, &faults::FaultKind::BEYOND_DL);
    let sat_cx = orm_dl::ExecCx::unlimited();
    let sat_translation = translate(&sat_schema);
    let verdicts_match = |a: &[SaturationOutcome], b: &[SaturationOutcome]| {
        a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.verdict() == y.verdict())
    };
    let mut sat_seq_secs = f64::MAX;
    let mut sat_cached_secs = f64::MAX;
    let mut sat_cached_agree = true;
    let mut seq_type_outcomes: Vec<(orm_model::ObjectTypeId, SaturationOutcome)> = Vec::new();
    let mut seq_role_outcomes: Vec<(orm_model::RoleId, SaturationOutcome)> = Vec::new();
    for _ in 0..3 {
        let cold = SaturationEngine::new(&sat_schema);
        let t0 = Instant::now();
        let t_sweep = cold.type_sweep(&sat_cx);
        let r_sweep = cold.role_sweep(&sat_cx);
        sat_seq_secs = sat_seq_secs.min(t0.elapsed().as_secs_f64());
        let t0 = Instant::now();
        let t_replay = cold.type_sweep(&sat_cx);
        let r_replay = cold.role_sweep(&sat_cx);
        sat_cached_secs = sat_cached_secs.min(t0.elapsed().as_secs_f64());
        let outcomes =
            |v: &[(orm_model::ObjectTypeId, SaturationOutcome)]| -> Vec<SaturationOutcome> {
                v.iter().map(|(_, o)| o.clone()).collect()
            };
        let role_outcomes =
            |v: &[(orm_model::RoleId, SaturationOutcome)]| -> Vec<SaturationOutcome> {
                v.iter().map(|(_, o)| o.clone()).collect()
            };
        sat_cached_agree &= verdicts_match(&outcomes(&t_sweep), &outcomes(&t_replay))
            && verdicts_match(&role_outcomes(&r_sweep), &role_outcomes(&r_replay));
        seq_type_outcomes = t_sweep;
        seq_role_outcomes = r_sweep;
    }
    let mut sat_par_secs = f64::MAX;
    let mut sat_par_agree = true;
    for _ in 0..3 {
        let par = SaturationEngine::new(&sat_schema);
        let t0 = Instant::now();
        let t_batch = par.type_sweep_par(par_threads, &sat_cx);
        let r_batch = par.role_sweep_par(par_threads, &sat_cx);
        sat_par_secs = sat_par_secs.min(t0.elapsed().as_secs_f64());
        sat_par_agree &= t_batch.is_complete()
            && r_batch.is_complete()
            && t_batch.results.iter().zip(&seq_type_outcomes).all(|(got, (_, want))| {
                got.as_ref().is_some_and(|g| g.verdict() == want.verdict())
            })
            && r_batch.results.iter().zip(&seq_role_outcomes).all(|(got, (_, want))| {
                got.as_ref().is_some_and(|g| g.verdict() == want.verdict())
            });
    }
    // Judge the sequential outcomes: tableau agreement on the shared
    // fragment, external witness certification, coverage closure.
    let certify_witness = |model: &orm_dl::ModelGraph| -> bool {
        let mut pop = orm_population::Population::new();
        for (ty, values) in &model.extents {
            for v in values {
                pop.add_instance(*ty, v.clone());
            }
        }
        for (fact, tuples) in &model.facts {
            for (a, b) in tuples {
                pop.add_fact(*fact, a.clone(), b.clone());
            }
        }
        orm_population::check(&sat_schema, &pop, orm_population::CheckOptions::default()).is_empty()
    };
    let (mut sat_sat, mut sat_unsat, mut sat_unknown, mut sat_beyond) = (0usize, 0, 0, 0);
    let mut sat_certified = true;
    let mut sat_tableau_agree = true;
    for (ty, outcome) in &seq_type_outcomes {
        match outcome {
            SaturationOutcome::Sat(model) => {
                sat_sat += 1;
                sat_certified &= certify_witness(model);
                sat_tableau_agree &= sat_translation.type_satisfiable(*ty, explain_budget)
                    != orm_dl::DlOutcome::Unsat;
            }
            SaturationOutcome::Unsat(refutation) => {
                sat_unsat += 1;
                if refutation.beyond_dl {
                    sat_beyond += 1;
                } else {
                    sat_tableau_agree &= sat_translation.type_satisfiable(*ty, explain_budget)
                        != orm_dl::DlOutcome::Sat;
                }
            }
            _ => sat_unknown += 1,
        }
    }
    for (role, outcome) in &seq_role_outcomes {
        match outcome {
            SaturationOutcome::Sat(model) => {
                sat_sat += 1;
                sat_certified &= certify_witness(model);
                sat_tableau_agree &= sat_translation.role_satisfiable(*role, explain_budget)
                    != orm_dl::DlOutcome::Unsat;
            }
            SaturationOutcome::Unsat(refutation) => {
                sat_unsat += 1;
                if refutation.beyond_dl {
                    sat_beyond += 1;
                } else {
                    sat_tableau_agree &= sat_translation.role_satisfiable(*role, explain_budget)
                        != orm_dl::DlOutcome::Sat;
                }
            }
            _ => sat_unknown += 1,
        }
    }
    // The pinned ring scenarios: each must be refuted beyond the DL while
    // the tableau cannot refute the same roles (its translation drops the
    // ring). Three incompatible-kind combinations plus the
    // acyclic+mandatory trap.
    let ring_pin_schemas: Vec<orm_model::Schema> = {
        use RingKind::*;
        let mut pins = vec![
            orm_gen::ring_scenario(&[Acyclic, Symmetric]),
            orm_gen::ring_scenario(&[Asymmetric, Symmetric]),
            orm_gen::ring_scenario(&[Antisymmetric, Symmetric, Intransitive]),
        ];
        let mut trap = orm_gen::ring_scenario(&[Acyclic]);
        let r1 = trap.fact_types().next().map(|(_, ft)| ft.first()).expect("one fact");
        trap.add_constraint(orm_model::Constraint::Mandatory(orm_model::Mandatory {
            roles: vec![r1],
        }));
        pins.push(trap);
        pins
    };
    let mut ring_unsat_beyond_dl = 0usize;
    for pin_schema in &ring_pin_schemas {
        let engine = SaturationEngine::new(pin_schema);
        let pin_translation = translate(pin_schema);
        let mut ok = !pin_translation.unmapped.is_empty();
        let mut refuted = false;
        for (role, _) in pin_schema.roles() {
            match engine.check_role(role, &sat_cx) {
                SaturationOutcome::Unsat(refutation) => {
                    refuted = true;
                    ok &= refutation.beyond_dl
                        && pin_translation.role_satisfiable(role, explain_budget)
                            != orm_dl::DlOutcome::Unsat;
                }
                _ => ok = false,
            }
        }
        ring_unsat_beyond_dl += usize::from(ok && refuted);
    }
    let sat_elements = seq_type_outcomes.len() + seq_role_outcomes.len();
    let sat_decided = sat_sat + sat_unsat;
    let sat_agreement = sat_tableau_agree && sat_par_agree && sat_cached_agree;
    let sat_coverage_closed = sat_unknown == 0;
    let saturation_ok = sat_agreement
        && sat_coverage_closed
        && sat_certified
        && sat_beyond >= 1
        && ring_unsat_beyond_dl >= 3;
    all_agree &= saturation_ok;
    let sat_seq_ms = sat_seq_secs * 1e3;
    let sat_par_ms = sat_par_secs * 1e3;
    let sat_cached_ms = sat_cached_secs * 1e3;
    println!(
        "\nsaturation_battery: {} elements — {} Sat / {} Unsat ({} beyond DL) / {} unknown; \
         sequential {:.3} ms, fan-out({} threads) {:.3} ms, cache-served replay {:.3} ms; \
         ring pins beyond the DL: {} of {} (bar 3); \
         agreement {} / coverage closed {} / witnesses certified {}",
        sat_elements,
        sat_sat,
        sat_unsat,
        sat_beyond,
        sat_unknown,
        sat_seq_ms,
        par_threads,
        sat_par_ms,
        sat_cached_ms,
        ring_unsat_beyond_dl,
        ring_pin_schemas.len(),
        if sat_agreement { "yes" } else { "NO" },
        if sat_coverage_closed { "yes" } else { "NO" },
        if sat_certified { "yes" } else { "NO" }
    );

    // The parallel-speedup bar (2× at 4 threads) is only *applicable* on
    // hardware that can actually run 2+ threads at once; on a single-core
    // machine the honest measurement is ≈1× and says nothing about the
    // fan-out. The measured figure is recorded either way.
    let par_bar_applicable = hardware_threads >= 2;
    let acceptance_met = or_heavy_min_speedup >= 5.0
        && sweep_speedup >= 5.0
        && inc_speedup >= 5.0
        && inc_retention_engaged
        && merge_gain_min.is_none_or(|g| g >= 2.0)
        && (!par_bar_applicable || par_speedup >= 2.0)
        && (!par_bar_applicable || sched_speedup >= 2.0)
        && bulk_speedup >= 20.0
        && large_within_budget
        && enum_within_2x
        && enum_warm_fast
        && warm_restart_met
        && all_agree;
    let unix_time = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.as_secs());
    let merge_gain_json = merge_gain_min.map_or("null".to_owned(), |g| format!("{g:.2}"));
    // Field accesses can't interpolate inline; bind the chaos report's
    // numbers to locals for the JSON block below.
    let chaos_sessions = chaos.sessions;
    let chaos_steps = chaos_cfg.steps_per_session;
    let chaos_queries = chaos.queries;
    let chaos_served = chaos.served;
    let chaos_shed = chaos.shed;
    let chaos_downgrades = chaos.stats.downgrades;
    let chaos_decided = chaos.decided;
    let chaos_interrupted = chaos.interrupted;
    let chaos_edits = chaos.edits;
    let chaos_disagreements = chaos.disagreements;
    let chaos_zero_disagreements = chaos.disagreements == 0;
    let chaos_panics = chaos.panics_isolated;
    let chaos_corrupt = chaos.corrupt_rejected;
    let chaos_restores = chaos.restores;
    let chaos_restored = chaos.restored_entries;
    let chaos_post_restore = chaos.post_restore_checked;
    let chaos_sat_runs = chaos.saturation_runs;
    let chaos_sat_interrupted = chaos.saturation_interrupted;
    let chaos_sat_disagreements = chaos.saturation_disagreements;
    let chaos_ms = chaos_secs * 1e3;
    let cold_reprove_ms = cold_reprove_secs * 1e3;
    let warm_restart_ms = warm_restart_secs * 1e3;
    let new_run = format!(
        "    {{\n      \"unix_time\": {unix_time},\n      \"budget\": {budget},\n      \
         \"scenarios\": [\n{rows}\n      ],\n      \
         \"classify_sweep\": {{\"name\": \"{}\", \"queries\": {}, \"passes\": {}, \
         \"uncached_ms\": {:.4}, \"cached_ms\": {:.4}, \"speedup\": {:.2}, \
         \"cache_hits\": {}, \"cache_misses\": {}, \"verdicts_agree\": {}}},\n      \
         \"classify_par\": {{\"name\": \"{}\", \"types\": {}, \"pairs\": {}, \
         \"threads\": {par_threads}, \"hardware_threads\": {hardware_threads}, \
         \"seq_ms\": {:.4}, \"par_ms\": {:.4}, \"speedup\": {par_speedup:.2}, \
         \"par_bar_applicable\": {par_bar_applicable}, \
         \"pairs_agree\": {pairs_agree}}},\n      \
         \"incremental_edit\": {{\"name\": \"{}\", \"queries\": {}, \"rounds\": {}, \
         \"wholesale_ms\": {:.4}, \"delta_ms\": {:.4}, \"speedup\": {inc_speedup:.2}, \
         \"retained\": {}, \"revalidated\": {}, \"evicted\": {}, \
         \"verdicts_agree\": {inc_agree}}},\n      \
         \"explain\": {{\"name\": \"{}\", \"unsat_elements\": {unsat_elements}, \
         \"unsat_types\": {}, \"unsat_roles\": {}, \
         \"cold_unseeded_ms\": {:.4}, \"seeding_agrees\": {seeding_agrees}, \
         \"cold_ms\": {:.4}, \"warm_ms\": {:.4}, \"mean_core_size\": {mean_core:.2}, \
         \"cores_extracted\": {cores_extracted}, \"cores_sound\": {cores_sound}, \
         \"cores_minimal\": {cores_minimal}, \"origins_mapped\": {origins_mapped}}},\n      \
         \"enumeration\": {{\"name\": \"{}\", \"limit\": {enum_limit}, \
         \"unsat_elements\": {unsat_elements}, \"total_cores\": {total_cores}, \
         \"mean_family_size\": {mean_family:.2}, \"total_repairs\": {total_repairs}, \
         \"cold_ms\": {:.4}, \"warm_ms\": {:.4}, \
         \"single_core_cold_ms\": {:.4}, \
         \"cold_within_2x_single\": {enum_within_2x}, \"warm_under_1ms\": {enum_warm_fast}, \
         \"families_found\": {families_found}, \"families_complete\": {families_complete}, \
         \"any_truncated\": {}, \
         \"cores_certified\": {family_cores_certified}, \
         \"repairs_verified\": {repairs_verified}, \
         \"cached_uncached_agree\": {uncached_agrees}, \
         \"two_mus_pinned\": {two_mus_pinned}}},\n      \
         \"bulk_conformance\": {{\"name\": \"{}\", \"rows\": {}, \
         \"faults_injected\": {}, \"violations_found\": {}, \
         \"per_violation_ms\": {:.4}, \"compile_ms\": {:.4}, \"execute_ms\": {:.4}, \
         \"speedup\": {bulk_speedup:.2}, \"bulk_speedup_threshold\": 20.0, \
         \"certified_sat\": {}, \"verdicts_agree\": {bulk_agree}, \
         \"large_rows\": {}, \"large_faults\": {}, \"large_violations\": {}, \
         \"large_execute_ms\": {:.4}, \"large_budget_ms\": {:.0}, \
         \"large_within_budget\": {large_within_budget}}},\n      \
         \"scheduler_battery\": {{\"name\": \"scheduler_battery\", \
         \"types\": {sched_types}, \"pairs\": {pair_count}, \
         \"threads\": {par_threads}, \"hardware_threads\": {hardware_threads}, \
         \"seq_ms\": {sched_seq_ms:.4}, \"par_ms\": {sched_par_ms:.4}, \
         \"speedup\": {sched_speedup:.2}, \
         \"par_bar_applicable\": {par_bar_applicable}, \
         \"sched_stats\": {sched_stats_json}, \
         \"cache_stats\": {sched_cache_json}, \
         \"cancel_latency_ms\": {cancel_latency_ms:.4}, \
         \"cancel_executed\": {cancel_executed}, \
         \"cancel_skipped\": {cancel_skipped}, \
         \"cancel_agrees\": {cancel_agrees}, \
         \"deadline_noop\": {deadline_noop}, \
         \"pairs_agree\": {sched_pairs_agree}}},\n      \
         \"service_battery\": {{\"name\": \"service_battery\", \
         \"sessions\": {chaos_sessions}, \"steps_per_session\": {chaos_steps}, \
         \"queries\": {chaos_queries}, \"served\": {chaos_served}, \
         \"shed\": {chaos_shed}, \"shed_rate\": {chaos_shed_rate:.4}, \
         \"downgrades\": {chaos_downgrades}, \"decided\": {chaos_decided}, \
         \"interrupted\": {chaos_interrupted}, \"edits\": {chaos_edits}, \
         \"disagreements\": {chaos_disagreements}, \
         \"zero_disagreements\": {chaos_zero_disagreements}, \
         \"panics_isolated\": {chaos_panics}, \
         \"corrupt_rejected\": {chaos_corrupt}, \
         \"restores\": {chaos_restores}, \
         \"restored_entries\": {chaos_restored}, \
         \"post_restore_checked\": {chaos_post_restore}, \
         \"throughput_per_s\": {chaos_throughput:.1}, \
         \"elapsed_ms\": {chaos_ms:.1}, \
         \"service_contract_met\": {service_contract}, \
         \"snapshot_bytes\": {snapshot_bytes}, \
         \"restart_restored_entries\": {restored_entries}, \
         \"cold_reprove_ms\": {cold_reprove_ms:.4}, \
         \"warm_restart_ms\": {warm_restart_ms:.4}, \
         \"warm_restart_speedup\": {warm_restart_gain:.2}, \
         \"warm_restart_threshold\": 5.0, \
         \"warm_restart_met\": {warm_restart_met}, \
         \"warm_misses\": {warm_misses}, \"warm_no_misses\": {warm_no_misses}, \
         \"restart_agrees\": {restart_agrees}, \
         \"saturation_runs\": {chaos_sat_runs}, \
         \"saturation_interrupted\": {chaos_sat_interrupted}, \
         \"saturation_disagreements\": {chaos_sat_disagreements}, \
         \"service_stats\": {chaos_stats_json}}},\n      \
         \"saturation_battery\": {{\"name\": \"saturation_battery\", \
         \"elements\": {sat_elements}, \"decided\": {sat_decided}, \
         \"sat\": {sat_sat}, \"unsat\": {sat_unsat}, \"unknown\": {sat_unknown}, \
         \"beyond_dl_unsat\": {sat_beyond}, \
         \"ring_unsat_beyond_dl\": {ring_unsat_beyond_dl}, \
         \"ring_unsat_beyond_dl_bar\": 3, \
         \"threads\": {par_threads}, \
         \"seq_ms\": {sat_seq_ms:.4}, \"par_ms\": {sat_par_ms:.4}, \
         \"uncached_ms\": {sat_seq_ms:.4}, \"cached_ms\": {sat_cached_ms:.4}, \
         \"agreement\": {sat_agreement}, \
         \"coverage_closed\": {sat_coverage_closed}, \
         \"certified\": {sat_certified}, \
         \"saturation_ok\": {saturation_ok}}},\n      \
         \"or_heavy_speedup_min\": {or_heavy_min_speedup:.2},\n      \
         \"merge_heavy_trail_gain_min\": {merge_gain_json},\n      \
         \"acceptance_threshold\": 5.0,\n      \
         \"merge_gain_threshold\": 2.0,\n      \
         \"par_speedup_threshold\": 2.0,\n      \
         \"incremental_speedup_threshold\": 5.0,\n      \
         \"acceptance_met\": {acceptance_met}\n    }}",
        sweep.name,
        sweep.queries.len(),
        sweep.passes,
        uncached * 1e3,
        cached * 1e3,
        sweep_speedup,
        sweep_stats.hits,
        sweep_stats.misses,
        sweep_agree,
        battery.name,
        battery.types,
        pair_count,
        seq_secs * 1e3,
        par_secs * 1e3,
        inc.name,
        inc.queries.len(),
        inc.edits.len(),
        wholesale_secs * 1e3,
        delta_secs * 1e3,
        inc_stats.retained,
        inc_stats.revalidated,
        inc_stats.evicted,
        exp.name,
        unsat_types.len(),
        unsat_roles.len(),
        explain_unseeded * 1e3,
        explain_cold * 1e3,
        explain_warm * 1e3,
        exp.name,
        enum_cold * 1e3,
        enum_warm * 1e3,
        explain_cold * 1e3,
        any_truncated,
        bulk.name,
        bulk.rows,
        bulk.workload.faults_injected,
        compiled.len(),
        bulk_interp_secs * 1e3,
        bulk_compile_secs * 1e3,
        bulk_exec_secs * 1e3,
        bulk_plan.certified_sat(),
        large.rows,
        large.workload.faults_injected,
        large_violations.len(),
        large_secs * 1e3,
        LARGE_BUDGET_SECS * 1e3,
    );
    let json = append_run(previous.as_deref(), &new_run);
    std::fs::write(out_path, &json).expect("write bench json");
    println!(
        "\n⊔-heavy minimum speedup: {or_heavy_min_speedup:.1}x, sweep speedup: \
         {sweep_speedup:.1}x, incremental speedup: {inc_speedup:.1}x (thresholds 5.0x) \
         — acceptance {}; appended run to {out_path}",
        if acceptance_met { "MET" } else { "NOT MET" }
    );
    // Non-zero exit so the CI smoke step actually gates — but only on
    // signals robust to noisy shared runners: verdict disagreement
    // (including a sequential/parallel classification mismatch, a
    // delta-aware/wholesale stream mismatch, and any diagnosis core that
    // fails its soundness/minimality/attribution verification — all
    // folded into `all_agree`) is deterministic, as is a
    // retention machinery that never engages; a collapse below 2× on the
    // ⊔-heavy engine speedup, the sweep's cached-vs-uncached ratio or the
    // incremental-edit ratio means the engine or a cache regressed
    // catastrophically. The full 5×/2× acceptance figures — the parallel
    // speedup among them, which depends on the runner's core count —
    // live in the JSON, not the exit code, so timing jitter or a small
    // machine cannot turn mainline CI red.
    if !all_agree
        || !inc_retention_engaged
        || or_heavy_min_speedup < 2.0
        || sweep_speedup < 2.0
        || inc_speedup < 2.0
        || bulk_speedup < 2.0
    {
        std::process::exit(1);
    }
}

fn heading(title: &str) {
    println!("\n================================================================");
    println!("{title}");
    println!("================================================================");
}

fn figures() {
    println!(
        "{:<8} {:<12} {:<26} {:<20} match",
        "figure", "patterns", "unsat roles", "unsat types"
    );
    let mut all_match = true;
    for fixture in fixtures::all() {
        let report = validate(&fixture.schema);
        let fired: Vec<String> = report.findings.iter().map(|f| format!("{:?}", f.code)).collect();
        let expected: BTreeSet<CheckCode> = fixture.expect_codes.iter().copied().collect();
        let got: BTreeSet<CheckCode> = report.findings.iter().map(|f| f.code).collect();

        let roles: Vec<&str> =
            report.unsat_roles().iter().map(|r| fixture.schema.role_label(*r)).collect();
        let mut role_str = roles.join(",");
        let joint: Vec<&str> = report
            .joint_unsat_groups()
            .iter()
            .flat_map(|g| g.iter().map(|r| fixture.schema.role_label(*r)))
            .collect();
        if !joint.is_empty() {
            role_str = format!("joint:{}", joint.join(","));
        }
        let types: Vec<&str> =
            report.unsat_types().iter().map(|t| fixture.schema.object_type(*t).name()).collect();

        let roles_match = {
            let want: BTreeSet<&str> = fixture.expect_unsat_roles.iter().copied().collect();
            let got: BTreeSet<&str> = roles.iter().copied().collect();
            let want_joint: BTreeSet<&str> =
                fixture.expect_joint_unsat_roles.iter().copied().collect();
            let got_joint: BTreeSet<&str> = joint.iter().copied().collect();
            want == got && want_joint == got_joint
        };
        let ok = got == expected && roles_match;
        all_match &= ok;
        println!(
            "{:<8} {:<12} {:<26} {:<20} {}",
            fixture.id,
            if fired.is_empty() { "-".to_owned() } else { fired.join(",") },
            if role_str.is_empty() { "-".to_owned() } else { role_str },
            if types.is_empty() { "-".to_owned() } else { types.join(",") },
            if ok { "yes" } else { "NO" }
        );
    }
    println!("\nall figures match the paper's claims: {}", if all_match { "YES" } else { "NO" });
}

fn fig9() {
    println!(
        "Implications encoded in the set-path graph and verified against the\n\
         population semantics by the orm-core test suite:\n\
         - subset/equality between predicates  =>  positionwise subset between roles\n\
         - equality                            =>  subset in both directions\n\
         - exclusion between single roles      =>  exclusion between their predicates\n\
         - role-level subsets do NOT imply predicate-level subsets\n\
         (tests: orm-core setpath::tests, patterns::p6 tests `projection_*`)"
    );
}

fn fig12() {
    use RingKind::*;
    println!("semantic implication matrix over domains of size <= 3 (row => column):\n");
    print!("{:>5}", "");
    for col in RingKind::ALL {
        print!("{:>5}", col.abbrev());
    }
    println!();
    for row in RingKind::ALL {
        print!("{:>5}", row.abbrev());
        for col in RingKind::ALL {
            let holds = implies(RingKinds::only(row), RingKinds::only(col), 3);
            print!("{:>5}", if holds { "yes" } else { "." });
        }
        println!();
    }
    println!(
        "\npaper's Fig. 12 claims verified semantically:\n\
         - acyclic => asymmetric => antisymmetric & irreflexive : {}\n\
         - intransitive => irreflexive                          : {}\n\
         - antisymmetric & irreflexive == asymmetric            : {}\n\
         - acyclic and symmetric are incompatible               : {}",
        implies(
            RingKinds::only(Acyclic),
            RingKinds::from_iter([Asymmetric, Antisymmetric, Irreflexive]),
            3
        ),
        implies(RingKinds::only(Intransitive), RingKinds::only(Irreflexive), 3),
        implies(RingKinds::from_iter([Antisymmetric, Irreflexive]), RingKinds::only(Asymmetric), 3)
            && implies(
                RingKinds::only(Asymmetric),
                RingKinds::from_iter([Antisymmetric, Irreflexive]),
                3
            ),
        !compatible(RingKinds::from_iter([Acyclic, Symmetric])),
    );
}

fn tab1() {
    let compatible_count = all_compatible().iter().filter(|k| !k.is_empty()).count();
    println!("{}", render_table());
    println!(
        "{compatible_count} of 63 non-empty combinations are compatible; the maximal ones are:"
    );
    for m in maximal_compatible() {
        println!("  {m}");
    }
    println!(
        "\npaper's example incompatible unions, re-derived: (sym,it)+(ans) -> {}, \
         (sym,it)+(it,ac) -> {}, (ans,it)+(ir,sym) -> {}",
        compatible(RingKinds::from_iter([
            RingKind::Symmetric,
            RingKind::Intransitive,
            RingKind::Antisymmetric
        ])),
        compatible(RingKinds::from_iter([
            RingKind::Symmetric,
            RingKind::Intransitive,
            RingKind::Acyclic
        ])),
        compatible(RingKinds::from_iter([
            RingKind::Antisymmetric,
            RingKind::Intransitive,
            RingKind::Irreflexive,
            RingKind::Symmetric
        ])),
    );
    println!(
        "cross-check: verdicts equal brute-force relation enumeration over domains of \
         size 2 and 3, and equal strong satisfiability of one-fact probe schemas \
         (tests: ring::table, tests/cross_validation.rs)."
    );
}

fn sec3() {
    println!("{:<6} {:<55} relevant", "rule", "statement");
    let rows: Vec<(CheckCode, &str)> = vec![
        (CheckCode::Fr1, "never use FC(1-1); use uniqueness"),
        (CheckCode::Fr2, "no FC spanning a whole predicate"),
        (CheckCode::Fr3, "no FC on a sequence exactly spanned by a UC"),
        (CheckCode::Fr4, "no UC spanned by a longer UC"),
        (CheckCode::Fr5, "no exclusion on mandatory roles (= Pattern 3)"),
        (CheckCode::Fr6, "no exclusion across subtype-related players"),
        (CheckCode::Fr7, "FC bound vs other-role cardinalities (=> Pattern 4)"),
        (CheckCode::V1, "RIDL validity: isolated object type"),
        (CheckCode::V2, "RIDL validity: fact type without uniqueness"),
        (CheckCode::V3, "RIDL validity: value type playing no role"),
        (CheckCode::S1, "subset constraint may not be superfluous"),
        (CheckCode::S2, "subset constraints may not loop"),
        (CheckCode::S3, "equality constraint may not be superfluous"),
        (CheckCode::S4, "exclusion arguments may not share a subset"),
    ];
    for (code, statement) in rows {
        println!(
            "{:<6} {:<55} {}",
            format!("{code:?}"),
            statement,
            if code.is_unsat_relevant() { "yes" } else { "no (guideline)" }
        );
    }
    println!(
        "\nmatches the paper's §3 analysis: only rule 5 and S4 detect unsatisfiability;\n\
         Fig. 14 (violates rule 6, satisfiable) is verified by the model finder."
    );
}

fn fig15() {
    let fixture = fixtures::fig3();
    let with = Validator::new().validate(&fixture.schema);
    let without =
        Validator::with_settings(ValidatorSettings::patterns_only().without(CheckCode::P2))
            .validate(&fixture.schema);
    println!(
        "FIG3 with all patterns: {} finding(s); with Pattern 2 unticked: {} finding(s)",
        with.findings.len(),
        without.findings.len()
    );
    println!(
        "available toggles: {}",
        CheckCode::all().map(|c| format!("{c:?}")).collect::<Vec<_>>().join(", ")
    );
}

fn perf() {
    println!("{:<14} {:>12} {:>14} {:>14}", "schema", "patterns", "dl_tableau", "model_finder");
    for size in [6usize, 9, 12] {
        let clean = generate_clean(&GenConfig::sized(5, size));
        let faulty = faults::inject(&clean, faults::FaultKind::P7, 0);
        for (label, schema) in [("clean", &clean), ("faulty", &faulty)] {
            let t0 = Instant::now();
            let validator = Validator::new();
            let _ = validator.validate(schema);
            let patterns = t0.elapsed();

            let t0 = Instant::now();
            let translation = translate(schema);
            for (role, _) in schema.roles() {
                let _ = translation.role_satisfiable(role, 100_000);
            }
            let dl = t0.elapsed();

            let t0 = Instant::now();
            let _ = if schema.fact_type_count() > 0 {
                strong_satisfiability(schema, Bounds::small())
            } else {
                concept_satisfiability(schema, Bounds::small())
            };
            let finder = t0.elapsed();

            println!(
                "{:<14} {:>12.2?} {:>14.2?} {:>14.2?}",
                format!("{label}_{size}"),
                patterns,
                dl,
                finder
            );
        }
    }
    println!(
        "\nshape check (paper §4): patterns stay in microseconds; the complete\n\
         procedures grow by orders of magnitude within a dozen schema elements.\n\
         criterion benches: figures, scaling, patterns_vs_complete, finder_bounds."
    );
}

fn beyond() {
    // E4: subset between roles of unrelated players.
    let mut b = orm_model::SchemaBuilder::new("e4_demo");
    let a = b.entity_type("A").expect("fresh");
    let c = b.entity_type("C").expect("fresh");
    let x = b.entity_type("X").expect("fresh");
    let f1 = b.fact_type("f1", a, x).expect("fresh");
    let f2 = b.fact_type("f2", c, x).expect("fresh");
    let r1 = b.schema().fact_type(f1).first();
    let r3 = b.schema().fact_type(f2).first();
    b.subset(orm_model::RoleSeq::single(r1), orm_model::RoleSeq::single(r3)).expect("valid");
    let schema = b.finish();
    let patterns_only = validate(&schema);
    let with_extensions = Validator::with_settings(ValidatorSettings::all()).validate(&schema);
    let finder = strong_satisfiability(&schema, Bounds::small());
    println!(
        "E4 demo (subset across unrelated players): nine patterns fire: {}; finder \
         verdict: {:?}; extension E4 fires: {}",
        patterns_only.has_unsat(),
        matches!(finder, Outcome::Satisfiable(_)),
        with_extensions.by_code(CheckCode::E4).count() == 1
    );

    // E5: mandatory + acyclic ring.
    let mut b = orm_model::SchemaBuilder::new("e5_demo");
    let t = b.entity_type("T").expect("fresh");
    let f = b.fact_type("precedes", t, t).expect("fresh");
    let r = b.schema().fact_type(f).first();
    b.mandatory(r).expect("valid");
    b.ring(f, [RingKind::Acyclic]).expect("valid");
    let schema = b.finish();
    let patterns_only = validate(&schema);
    let with_extensions = Validator::with_settings(ValidatorSettings::all()).validate(&schema);
    let finder = strong_satisfiability(&schema, Bounds::small());
    println!(
        "E5 demo (mandatory role on acyclic fact): nine patterns fire: {}; finder \
         verdict: {:?}; extension E5 fires: {}",
        patterns_only.has_unsat(),
        matches!(finder, Outcome::Satisfiable(_)),
        with_extensions.by_code(CheckCode::E5).count() == 1
    );
    println!(
        "\nBoth contradiction classes pass all nine patterns yet are refuted by the\n\
         complete reasoners — concrete confirmations of the paper's incompleteness\n\
         caveat, and implemented here as extension checks E4/E5 (paper §5's \"devise\n\
         more patterns\")."
    );
}
