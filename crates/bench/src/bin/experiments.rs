//! Regenerates every table and figure of the paper in one run; the output
//! is the source for EXPERIMENTS.md.
//!
//! Run with `cargo run --release -p orm-bench --bin experiments`.
//!
//! `experiments tableau [out.json]` runs only the tableau-engine
//! comparison (trail-based vs classic clone-based) and writes the
//! measurements to `BENCH_tableau.json`, seeding the perf trajectory.

use orm_core::ring::euler::implies;
use orm_core::ring::table::{all_compatible, compatible, maximal_compatible, render_table};
use orm_core::{fixtures, validate, CheckCode, Validator, ValidatorSettings};
use orm_dl::translate;
use orm_gen::{faults, generate_clean, GenConfig};
use orm_model::{RingKind, RingKinds};
use orm_reasoner::{concept_satisfiability, strong_satisfiability, Bounds, Outcome};
use std::collections::BTreeSet;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.get(1).map(String::as_str) == Some("tableau") {
        let out = args.get(2).map(String::as_str).unwrap_or("BENCH_tableau.json");
        tableau_bench(out);
        return;
    }

    heading("FIG1-FIG14 — the paper's worked examples");
    figures();

    heading("FIG9 — set-comparison implications");
    fig9();

    heading("FIG12 — ring-constraint Euler diagram, executable");
    fig12();

    heading("TAB1 — compatible ring-constraint combinations");
    tab1();

    heading("SEC3 — unsat-relevance of formation rules and RIDL rules");
    sec3();

    heading("FIG15 — validator settings (DogmaModeler toggles)");
    fig15();

    heading("PERF — patterns vs complete reasoning (paper §4)");
    perf();

    heading("CCFORM — interactive-detection case study (paper §4)");
    println!(
        "Simulated by `cargo run -p orm-examples --example customer_complaints`: three\n\
         lawyer-style mistakes are introduced and caught interactively (Patterns 1, 3/6\n\
         and 4/7), then fixed, mirroring the paper's reported experience."
    );

    heading("BEYOND — incompleteness instances found by cross-validation");
    beyond();
}

/// Best-of-`reps` wall-clock comparison of the two tableau engines on the
/// hotpath scenarios, written as JSON for the perf trajectory. The
/// acceptance bar of the engine rewrite is a ≥5× speedup on the `⊔`-heavy
/// family; the JSON records whether the current build clears it.
fn tableau_bench(out_path: &str) {
    use orm_bench::tableau_scenarios::{all, BUDGET};

    fn best_secs<F: FnMut() -> orm_dl::DlOutcome>(reps: u32, mut f: F) -> (f64, orm_dl::DlOutcome) {
        let mut best = f64::MAX;
        let mut verdict = orm_dl::DlOutcome::ResourceLimit;
        for _ in 0..reps {
            let t0 = Instant::now();
            verdict = f();
            best = best.min(t0.elapsed().as_secs_f64());
        }
        (best, verdict)
    }

    heading("TABLEAU — trail-based engine vs classic clone-based baseline");
    println!(
        "{:<18} {:>12} {:>12} {:>9}  verdicts agree",
        "scenario", "classic_ms", "trail_ms", "speedup"
    );
    let mut rows = String::new();
    let mut or_heavy_min_speedup = f64::MAX;
    let mut all_agree = true;
    for s in all() {
        let (trail, v_new) = best_secs(5, || orm_dl::satisfiable(&s.tbox, &s.query, BUDGET));
        let (classic, v_old) =
            best_secs(5, || orm_dl::classic::satisfiable(&s.tbox, &s.query, BUDGET));
        let speedup = classic / trail.max(1e-9);
        let agree = v_new == v_old;
        all_agree &= agree;
        if s.kind == "or_fanout" {
            or_heavy_min_speedup = or_heavy_min_speedup.min(speedup);
        }
        println!(
            "{:<18} {:>12.3} {:>12.3} {:>8.1}x  {}",
            s.name,
            classic * 1e3,
            trail * 1e3,
            speedup,
            if agree { "yes" } else { "NO" }
        );
        if !rows.is_empty() {
            rows.push_str(",\n");
        }
        rows.push_str(&format!(
            "    {{\"name\": \"{}\", \"kind\": \"{}\", \"classic_ms\": {:.4}, \
             \"trail_ms\": {:.4}, \"speedup\": {:.2}, \"verdict\": \"{:?}\", \
             \"verdicts_agree\": {}}}",
            s.name,
            s.kind,
            classic * 1e3,
            trail * 1e3,
            speedup,
            v_new,
            agree
        ));
    }
    let acceptance_met = or_heavy_min_speedup >= 5.0 && all_agree;
    let json = format!(
        "{{\n  \"bench\": \"tableau_hotpath\",\n  \"budget\": {BUDGET},\n  \"scenarios\": [\n\
         {rows}\n  ],\n  \"or_heavy_speedup_min\": {or_heavy_min_speedup:.2},\n  \
         \"acceptance_threshold\": 5.0,\n  \"acceptance_met\": {acceptance_met}\n}}\n"
    );
    std::fs::write(out_path, &json).expect("write bench json");
    println!(
        "\n⊔-heavy minimum speedup: {or_heavy_min_speedup:.1}x (threshold 5.0x) — \
         acceptance {}; wrote {out_path}",
        if acceptance_met { "MET" } else { "NOT MET" }
    );
    // Non-zero exit so the CI smoke step actually gates — but only on
    // signals robust to noisy shared runners: verdict disagreement is
    // deterministic, and a ⊔-heavy speedup collapse below 2× means the
    // trail engine regressed catastrophically. The full 5× acceptance
    // figure lives in the JSON, not the exit code, so timing jitter on a
    // loaded machine cannot turn mainline CI red.
    if !all_agree || or_heavy_min_speedup < 2.0 {
        std::process::exit(1);
    }
}

fn heading(title: &str) {
    println!("\n================================================================");
    println!("{title}");
    println!("================================================================");
}

fn figures() {
    println!(
        "{:<8} {:<12} {:<26} {:<20} match",
        "figure", "patterns", "unsat roles", "unsat types"
    );
    let mut all_match = true;
    for fixture in fixtures::all() {
        let report = validate(&fixture.schema);
        let fired: Vec<String> = report.findings.iter().map(|f| format!("{:?}", f.code)).collect();
        let expected: BTreeSet<CheckCode> = fixture.expect_codes.iter().copied().collect();
        let got: BTreeSet<CheckCode> = report.findings.iter().map(|f| f.code).collect();

        let roles: Vec<&str> =
            report.unsat_roles().iter().map(|r| fixture.schema.role_label(*r)).collect();
        let mut role_str = roles.join(",");
        let joint: Vec<&str> = report
            .joint_unsat_groups()
            .iter()
            .flat_map(|g| g.iter().map(|r| fixture.schema.role_label(*r)))
            .collect();
        if !joint.is_empty() {
            role_str = format!("joint:{}", joint.join(","));
        }
        let types: Vec<&str> =
            report.unsat_types().iter().map(|t| fixture.schema.object_type(*t).name()).collect();

        let roles_match = {
            let want: BTreeSet<&str> = fixture.expect_unsat_roles.iter().copied().collect();
            let got: BTreeSet<&str> = roles.iter().copied().collect();
            let want_joint: BTreeSet<&str> =
                fixture.expect_joint_unsat_roles.iter().copied().collect();
            let got_joint: BTreeSet<&str> = joint.iter().copied().collect();
            want == got && want_joint == got_joint
        };
        let ok = got == expected && roles_match;
        all_match &= ok;
        println!(
            "{:<8} {:<12} {:<26} {:<20} {}",
            fixture.id,
            if fired.is_empty() { "-".to_owned() } else { fired.join(",") },
            if role_str.is_empty() { "-".to_owned() } else { role_str },
            if types.is_empty() { "-".to_owned() } else { types.join(",") },
            if ok { "yes" } else { "NO" }
        );
    }
    println!("\nall figures match the paper's claims: {}", if all_match { "YES" } else { "NO" });
}

fn fig9() {
    println!(
        "Implications encoded in the set-path graph and verified against the\n\
         population semantics by the orm-core test suite:\n\
         - subset/equality between predicates  =>  positionwise subset between roles\n\
         - equality                            =>  subset in both directions\n\
         - exclusion between single roles      =>  exclusion between their predicates\n\
         - role-level subsets do NOT imply predicate-level subsets\n\
         (tests: orm-core setpath::tests, patterns::p6 tests `projection_*`)"
    );
}

fn fig12() {
    use RingKind::*;
    println!("semantic implication matrix over domains of size <= 3 (row => column):\n");
    print!("{:>5}", "");
    for col in RingKind::ALL {
        print!("{:>5}", col.abbrev());
    }
    println!();
    for row in RingKind::ALL {
        print!("{:>5}", row.abbrev());
        for col in RingKind::ALL {
            let holds = implies(RingKinds::only(row), RingKinds::only(col), 3);
            print!("{:>5}", if holds { "yes" } else { "." });
        }
        println!();
    }
    println!(
        "\npaper's Fig. 12 claims verified semantically:\n\
         - acyclic => asymmetric => antisymmetric & irreflexive : {}\n\
         - intransitive => irreflexive                          : {}\n\
         - antisymmetric & irreflexive == asymmetric            : {}\n\
         - acyclic and symmetric are incompatible               : {}",
        implies(
            RingKinds::only(Acyclic),
            RingKinds::from_iter([Asymmetric, Antisymmetric, Irreflexive]),
            3
        ),
        implies(RingKinds::only(Intransitive), RingKinds::only(Irreflexive), 3),
        implies(RingKinds::from_iter([Antisymmetric, Irreflexive]), RingKinds::only(Asymmetric), 3)
            && implies(
                RingKinds::only(Asymmetric),
                RingKinds::from_iter([Antisymmetric, Irreflexive]),
                3
            ),
        !compatible(RingKinds::from_iter([Acyclic, Symmetric])),
    );
}

fn tab1() {
    let compatible_count = all_compatible().iter().filter(|k| !k.is_empty()).count();
    println!("{}", render_table());
    println!(
        "{compatible_count} of 63 non-empty combinations are compatible; the maximal ones are:"
    );
    for m in maximal_compatible() {
        println!("  {m}");
    }
    println!(
        "\npaper's example incompatible unions, re-derived: (sym,it)+(ans) -> {}, \
         (sym,it)+(it,ac) -> {}, (ans,it)+(ir,sym) -> {}",
        compatible(RingKinds::from_iter([
            RingKind::Symmetric,
            RingKind::Intransitive,
            RingKind::Antisymmetric
        ])),
        compatible(RingKinds::from_iter([
            RingKind::Symmetric,
            RingKind::Intransitive,
            RingKind::Acyclic
        ])),
        compatible(RingKinds::from_iter([
            RingKind::Antisymmetric,
            RingKind::Intransitive,
            RingKind::Irreflexive,
            RingKind::Symmetric
        ])),
    );
    println!(
        "cross-check: verdicts equal brute-force relation enumeration over domains of \
         size 2 and 3, and equal strong satisfiability of one-fact probe schemas \
         (tests: ring::table, tests/cross_validation.rs)."
    );
}

fn sec3() {
    println!("{:<6} {:<55} relevant", "rule", "statement");
    let rows: Vec<(CheckCode, &str)> = vec![
        (CheckCode::Fr1, "never use FC(1-1); use uniqueness"),
        (CheckCode::Fr2, "no FC spanning a whole predicate"),
        (CheckCode::Fr3, "no FC on a sequence exactly spanned by a UC"),
        (CheckCode::Fr4, "no UC spanned by a longer UC"),
        (CheckCode::Fr5, "no exclusion on mandatory roles (= Pattern 3)"),
        (CheckCode::Fr6, "no exclusion across subtype-related players"),
        (CheckCode::Fr7, "FC bound vs other-role cardinalities (=> Pattern 4)"),
        (CheckCode::V1, "RIDL validity: isolated object type"),
        (CheckCode::V2, "RIDL validity: fact type without uniqueness"),
        (CheckCode::V3, "RIDL validity: value type playing no role"),
        (CheckCode::S1, "subset constraint may not be superfluous"),
        (CheckCode::S2, "subset constraints may not loop"),
        (CheckCode::S3, "equality constraint may not be superfluous"),
        (CheckCode::S4, "exclusion arguments may not share a subset"),
    ];
    for (code, statement) in rows {
        println!(
            "{:<6} {:<55} {}",
            format!("{code:?}"),
            statement,
            if code.is_unsat_relevant() { "yes" } else { "no (guideline)" }
        );
    }
    println!(
        "\nmatches the paper's §3 analysis: only rule 5 and S4 detect unsatisfiability;\n\
         Fig. 14 (violates rule 6, satisfiable) is verified by the model finder."
    );
}

fn fig15() {
    let fixture = fixtures::fig3();
    let with = Validator::new().validate(&fixture.schema);
    let without =
        Validator::with_settings(ValidatorSettings::patterns_only().without(CheckCode::P2))
            .validate(&fixture.schema);
    println!(
        "FIG3 with all patterns: {} finding(s); with Pattern 2 unticked: {} finding(s)",
        with.findings.len(),
        without.findings.len()
    );
    println!(
        "available toggles: {}",
        CheckCode::all().map(|c| format!("{c:?}")).collect::<Vec<_>>().join(", ")
    );
}

fn perf() {
    println!("{:<14} {:>12} {:>14} {:>14}", "schema", "patterns", "dl_tableau", "model_finder");
    for size in [6usize, 9, 12] {
        let clean = generate_clean(&GenConfig::sized(5, size));
        let faulty = faults::inject(&clean, faults::FaultKind::P7, 0);
        for (label, schema) in [("clean", &clean), ("faulty", &faulty)] {
            let t0 = Instant::now();
            let validator = Validator::new();
            let _ = validator.validate(schema);
            let patterns = t0.elapsed();

            let t0 = Instant::now();
            let translation = translate(schema);
            for (role, _) in schema.roles() {
                let _ = translation.role_satisfiable(role, 100_000);
            }
            let dl = t0.elapsed();

            let t0 = Instant::now();
            let _ = if schema.fact_type_count() > 0 {
                strong_satisfiability(schema, Bounds::small())
            } else {
                concept_satisfiability(schema, Bounds::small())
            };
            let finder = t0.elapsed();

            println!(
                "{:<14} {:>12.2?} {:>14.2?} {:>14.2?}",
                format!("{label}_{size}"),
                patterns,
                dl,
                finder
            );
        }
    }
    println!(
        "\nshape check (paper §4): patterns stay in microseconds; the complete\n\
         procedures grow by orders of magnitude within a dozen schema elements.\n\
         criterion benches: figures, scaling, patterns_vs_complete, finder_bounds."
    );
}

fn beyond() {
    // E4: subset between roles of unrelated players.
    let mut b = orm_model::SchemaBuilder::new("e4_demo");
    let a = b.entity_type("A").expect("fresh");
    let c = b.entity_type("C").expect("fresh");
    let x = b.entity_type("X").expect("fresh");
    let f1 = b.fact_type("f1", a, x).expect("fresh");
    let f2 = b.fact_type("f2", c, x).expect("fresh");
    let r1 = b.schema().fact_type(f1).first();
    let r3 = b.schema().fact_type(f2).first();
    b.subset(orm_model::RoleSeq::single(r1), orm_model::RoleSeq::single(r3)).expect("valid");
    let schema = b.finish();
    let patterns_only = validate(&schema);
    let with_extensions = Validator::with_settings(ValidatorSettings::all()).validate(&schema);
    let finder = strong_satisfiability(&schema, Bounds::small());
    println!(
        "E4 demo (subset across unrelated players): nine patterns fire: {}; finder \
         verdict: {:?}; extension E4 fires: {}",
        patterns_only.has_unsat(),
        matches!(finder, Outcome::Satisfiable(_)),
        with_extensions.by_code(CheckCode::E4).count() == 1
    );

    // E5: mandatory + acyclic ring.
    let mut b = orm_model::SchemaBuilder::new("e5_demo");
    let t = b.entity_type("T").expect("fresh");
    let f = b.fact_type("precedes", t, t).expect("fresh");
    let r = b.schema().fact_type(f).first();
    b.mandatory(r).expect("valid");
    b.ring(f, [RingKind::Acyclic]).expect("valid");
    let schema = b.finish();
    let patterns_only = validate(&schema);
    let with_extensions = Validator::with_settings(ValidatorSettings::all()).validate(&schema);
    let finder = strong_satisfiability(&schema, Bounds::small());
    println!(
        "E5 demo (mandatory role on acyclic fact): nine patterns fire: {}; finder \
         verdict: {:?}; extension E5 fires: {}",
        patterns_only.has_unsat(),
        matches!(finder, Outcome::Satisfiable(_)),
        with_extensions.by_code(CheckCode::E5).count() == 1
    );
    println!(
        "\nBoth contradiction classes pass all nine patterns yet are refuted by the\n\
         complete reasoners — concrete confirmations of the paper's incompleteness\n\
         caveat, and implemented here as extension checks E4/E5 (paper §5's \"devise\n\
         more patterns\")."
    );
}
