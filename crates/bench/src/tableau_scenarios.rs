//! Workloads stressing the DL tableau's hot paths, shared by the
//! `tableau_hotpath` criterion bench and `experiments tableau` (which
//! records the trail-vs-classic speedup in `BENCH_tableau.json`).
//!
//! Three engine families, mirroring where ORM translations actually
//! spend time:
//!
//! * **`⊔` fan-out** ([`or_fanout`]) — an exclusive, total subtype family:
//!   every pair of subtypes contributes a `¬Sᵢ ⊔ ¬Sⱼ` disjunction to the
//!   internalized TBox, so every node of the forest carries O(k²)
//!   disjunctions. This is the scenario the clone-based engine pays for
//!   hardest: each branch deep-copied the whole forest.
//! * **Deep subtype chains** ([`subtype_chain`]) — a linear hierarchy of
//!   depth `d` plus one existential to keep generating successors; labels
//!   grow to O(d), stressing label insertion, clash checks and the
//!   pairwise-blocking comparisons.
//! * **`≤`-merge pressure** ([`merge_heavy`]) — a frequency-style
//!   contradiction (`∃R.⊤ ⊑ ≥k R`, `⊤ ⊑ ≤1 R`): the engine must try the
//!   merge choices among `k` fresh successors before refuting. This is
//!   also the family where dependency-directed backjumping bites: the
//!   internalized disjunctions opened at each fresh successor are
//!   irrelevant to the eventual `≤`-clash, and the conflict's dependency
//!   set lets the engine skip their sibling branches wholesale.
//!
//! Plus one *query-stream* family:
//!
//! * **Classification sweep** ([`classify_sweep`]) — the pattern the
//!   paper's tooling actually runs: one TBox, then a battery of
//!   overlapping satisfiability/subsumption queries (per-type sweep plus
//!   all `O(k²)` classification pairs), repeated over several passes the
//!   way interactive checking re-asks them. The
//!   [`orm_dl::SatCache`] answers repeat passes from memory; the bench
//!   compares the cached stream against re-proving every query.

use orm_dl::concept::{Concept as C, RoleExpr};
use orm_dl::tbox::TBox;
use orm_dl::{CacheStats, DlOutcome, SatCache};

/// A named tableau workload: TBox, query, and the budget it needs.
pub struct Scenario {
    /// Stable scenario id (used in bench names and the JSON report).
    pub name: String,
    /// Workload family (`or_fanout`, `subtype_chain`, `merge_heavy`).
    pub kind: &'static str,
    /// The terminology.
    pub tbox: TBox,
    /// The satisfiability query.
    pub query: C,
}

/// `k` pairwise-exclusive subtypes totalizing one supertype, plus a
/// self-existential so the forest has depth. The query denies all but one
/// subtype: a single branch survives, but every node re-opens the O(k²)
/// exclusion disjunctions.
pub fn or_fanout(k: u32) -> Scenario {
    let mut t = TBox::new();
    let sup = C::Atomic(t.atom("Sup"));
    let subs: Vec<C> = (0..k).map(|i| C::Atomic(t.atom(format!("S{i}")))).collect();
    for (i, a) in subs.iter().enumerate() {
        t.gci(a.clone(), sup.clone());
        for b in subs.iter().skip(i + 1) {
            t.gci(C::and([a.clone(), b.clone()]), C::Bottom);
        }
    }
    t.gci(sup.clone(), C::or(subs.clone()));
    let r = RoleExpr::direct(t.role("R"));
    t.gci(sup.clone(), C::Exists(r, Box::new(sup.clone())));
    let negs: Vec<C> = subs.iter().take(k as usize - 1).map(|s| C::not(s.clone())).collect();
    let query = C::and([sup].into_iter().chain(negs));
    Scenario { name: format!("or_fanout_{k}"), kind: "or_fanout", tbox: t, query }
}

/// A subtype chain of depth `d` with a generating existential at the
/// bottom type; the query asks for the deepest type, whose label closure
/// spans the whole chain.
pub fn subtype_chain(d: u32) -> Scenario {
    let mut t = TBox::new();
    let atoms: Vec<C> = (0..d).map(|i| C::Atomic(t.atom(format!("A{i}")))).collect();
    for w in atoms.windows(2) {
        t.gci(w[0].clone(), w[1].clone());
    }
    let r = RoleExpr::direct(t.role("R"));
    t.gci(C::Top, C::Exists(r, Box::new(atoms[0].clone())));
    Scenario {
        name: format!("subtype_chain_{d}"),
        kind: "subtype_chain",
        tbox: t,
        query: atoms[0].clone(),
    }
}

/// The frequency contradiction of the paper's Fig. 10 family scaled to
/// `k`: playing `R` demands `≥k` successors while `≤1` forces merging
/// them; refutation visits the merge choices.
pub fn merge_heavy(k: u32) -> Scenario {
    let mut t = TBox::new();
    let r = RoleExpr::direct(t.role("R"));
    let a = C::Atomic(t.atom("A"));
    t.gci(C::some(r), C::AtLeast(k, r));
    t.gci(C::Top, C::AtMost(1, r));
    t.gci(C::some(r.inverse()), a.clone());
    Scenario { name: format!("merge_heavy_{k}"), kind: "merge_heavy", tbox: t, query: C::some(r) }
}

/// The benchmark suite: all three families at sizes where the classic
/// engine takes milliseconds to tens of milliseconds.
pub fn all() -> Vec<Scenario> {
    vec![
        or_fanout(12),
        or_fanout(16),
        or_fanout(20),
        subtype_chain(80),
        subtype_chain(160),
        merge_heavy(5),
        merge_heavy(7),
    ]
}

/// A classification-sweep workload: one TBox, one pass worth of
/// overlapping queries, and the number of passes a checking session runs.
pub struct SweepScenario {
    /// Stable scenario id (used in bench names and the JSON report).
    pub name: String,
    /// The shared terminology.
    pub tbox: TBox,
    /// The queries of a single pass (all distinct).
    pub queries: Vec<C>,
    /// How many times the pass is replayed (interactive re-checks).
    pub passes: u32,
}

/// The query battery a schema check runs against one TBox: a satisfiability
/// sweep over all `k` types plus the full `k·(k-1)` classification matrix
/// (`Aᵢ ⊓ ¬Aⱼ` per ordered pair), replayed for `passes` rounds. The TBox is
/// a subtype chain with an exclusive pair near the top, so the battery
/// mixes Sat verdicts, derived-subsumption Unsats and an unsatisfiable
/// type — the shape `Translation::classify` plus per-role sweeps produce.
pub fn classify_sweep(k: u32, passes: u32) -> SweepScenario {
    let mut t = TBox::new();
    let atoms: Vec<C> = (0..k).map(|i| C::Atomic(t.atom(format!("A{i}")))).collect();
    for w in atoms.windows(2) {
        t.gci(w[0].clone(), w[1].clone());
    }
    // Two exclusive siblings under the top of the chain, and one doomed
    // type below both: classification finds derived subsumptions.
    let left = C::Atomic(t.atom("Left"));
    let right = C::Atomic(t.atom("Right"));
    let doomed = C::Atomic(t.atom("Doomed"));
    let top = atoms.last().expect("k >= 1").clone();
    t.gci(left.clone(), top.clone());
    t.gci(right.clone(), top.clone());
    t.gci(C::and([left.clone(), right.clone()]), C::Bottom);
    t.gci(doomed.clone(), left.clone());
    t.gci(doomed.clone(), right.clone());
    let r = RoleExpr::direct(t.role("R"));
    t.gci(top.clone(), C::Exists(r, Box::new(top.clone())));

    let all: Vec<C> = atoms.iter().chain([&left, &right, &doomed]).cloned().collect();
    let mut queries = Vec::new();
    for a in &all {
        queries.push(a.clone());
    }
    for a in &all {
        for b in &all {
            if a != b {
                queries.push(C::and([a.clone(), C::not(b.clone())]));
            }
        }
    }
    SweepScenario { name: format!("classify_sweep_{k}x{passes}"), tbox: t, queries, passes }
}

/// A whole-schema classification battery driven through `Translation`:
/// the workload `classify` / `classify_par` actually run, end to end
/// (ORM schema → TBox → `O(n²)` cached subsumption queries).
pub struct ClassifyBattery {
    /// Stable scenario id (used in bench names and the JSON report).
    pub name: String,
    /// The ORM schema whose type matrix is classified.
    pub schema: orm_model::Schema,
    /// Number of object types (the matrix asks `types · (types - 1)`
    /// ordered pairs).
    pub types: usize,
}

/// An ORM schema shaped like the paper's running examples scaled up: a
/// subtype chain of `k` entity types topped by an exclusive + total
/// subtype family (every classification query re-opens its O(m²)
/// exclusion disjunctions — real per-query tableau work), one doomed
/// type under two exclusive siblings (derived subsumptions to find), and
/// mandatory binary facts hanging off the chain so role typing axioms
/// join the internalized TBox.
///
/// Requires `k ≥ 1` (the chain needs a top) and `siblings ≥ 2` (the
/// doomed type sits under two exclusive siblings).
pub fn classify_battery(k: u32, siblings: u32) -> ClassifyBattery {
    assert!(k >= 1 && siblings >= 2, "classify_battery needs k >= 1 and siblings >= 2");
    let mut b = orm_model::SchemaBuilder::new("classify_battery");
    let chain: Vec<_> =
        (0..k).map(|i| b.entity_type(&format!("C{i}")).expect("fresh name")).collect();
    for w in chain.windows(2) {
        b.subtype(w[1], w[0]).expect("acyclic");
    }
    let top = chain[0];
    let subs: Vec<_> =
        (0..siblings).map(|i| b.entity_type(&format!("S{i}")).expect("fresh name")).collect();
    for &s in &subs {
        b.subtype(s, top).expect("acyclic");
    }
    b.exclusive_types(subs.clone()).expect("distinct");
    b.total_subtypes(top, subs.clone()).expect("subtypes of top");
    // One doomed type below two exclusive siblings: classification must
    // derive that it is subsumed by everything.
    let doomed = b.entity_type("Doomed").expect("fresh name");
    b.subtype(doomed, subs[0]).expect("acyclic");
    b.subtype(doomed, subs[1]).expect("acyclic");
    // Mandatory facts along the chain: role typing + mandatory axioms.
    let partner = b.entity_type("Partner").expect("fresh name");
    for (i, &ty) in chain.iter().enumerate().take(4) {
        let f = b.fact_type(&format!("f{i}"), ty, partner).expect("fresh name");
        let r = b.schema().fact_type(f).first();
        b.mandatory(r).expect("valid");
    }
    let schema = b.finish();
    let types = schema.object_type_count();
    ClassifyBattery { name: format!("classify_battery_{k}x{siblings}"), schema, types }
}

/// A diagnosis workload: an ORM schema seeded with several *distinct*
/// contradictions buried under satisfiable noise, end to end through
/// `Translation::explain_{type,role}` (PR 5). The interesting measurement
/// is core extraction on top of the plain sweep — and the acceptance
/// checks that every extracted core is sound (refutes alone), minimal
/// (loses refutation power with any single axiom removed) and fully
/// attributed to named ORM constructs.
pub struct ExplainScenario {
    /// Stable scenario id (used in bench names and the JSON report).
    pub name: String,
    /// The schema whose unsat elements get diagnosed.
    pub schema: orm_model::Schema,
}

/// Build the diagnosis workload: three contradiction families from the
/// paper (Fig. 1 exclusive-subtypes, Fig. 4a mandatory+exclusion,
/// Fig. 10 uniqueness+frequency) buried in `noise` satisfiable chain
/// types with mandatory facts — the noise is what makes minimization do
/// real work, since the seed conflict must be shrunk *past* it.
pub fn explain_battery(noise: u32) -> ExplainScenario {
    let mut b = orm_model::SchemaBuilder::new("explain_battery");
    // Satisfiable noise: a subtype chain with mandatory facts.
    let chain: Vec<_> =
        (0..noise.max(1)).map(|i| b.entity_type(&format!("N{i}")).expect("fresh name")).collect();
    for w in chain.windows(2) {
        b.subtype(w[1], w[0]).expect("acyclic");
    }
    let partner = b.entity_type("Partner").expect("fresh name");
    for (i, &ty) in chain.iter().enumerate().take(3) {
        let f = b.fact_type(&format!("n{i}"), ty, partner).expect("fresh name");
        let r = b.schema().fact_type(f).first();
        b.mandatory(r).expect("valid");
    }
    // Fig. 1: a doomed type under two exclusive supertypes.
    let student = b.entity_type("Student").expect("fresh name");
    let employee = b.entity_type("Employee").expect("fresh name");
    let phd = b.entity_type("Phd").expect("fresh name");
    b.subtype(student, chain[0]).expect("acyclic");
    b.subtype(employee, chain[0]).expect("acyclic");
    b.subtype(phd, student).expect("acyclic");
    b.subtype(phd, employee).expect("acyclic");
    b.exclusive_types([student, employee]).expect("distinct");
    // Fig. 4a: mandatory + exclusion dooms a role.
    let x = b.entity_type("X").expect("fresh name");
    let y = b.entity_type("Y").expect("fresh name");
    let f1 = b.fact_type("f1", student, x).expect("fresh name");
    let f2 = b.fact_type("f2", student, y).expect("fresh name");
    let r1 = b.schema().fact_type(f1).first();
    let r3 = b.schema().fact_type(f2).first();
    b.mandatory(r1).expect("valid");
    b.exclusion_roles([r1, r3]).expect("valid");
    // Fig. 10: uniqueness against frequency on one role.
    let f3 = b.fact_type("f3", employee, x).expect("fresh name");
    let r5 = b.schema().fact_type(f3).first();
    b.unique([r5]).expect("valid");
    b.frequency([r5], 2, Some(5)).expect("valid");
    ExplainScenario { name: format!("explain_battery_{noise}"), schema: b.finish() }
}

/// The compact two-contradiction workload for the MUS-enumeration bench:
/// [`orm_gen::multi_contradiction`] with `k = 2` — Fig. 1's doomed-type
/// shape merged with a second, independent exclusion cycle over the same
/// type. Ground truth is known exactly (two 3-axiom cores, nine 2-axiom
/// repairs), so the bench pins the enumerator's output against it rather
/// than merely timing it. Kept separate from [`explain_battery`]: adding
/// even unconstrained types there shifts the implicit-exclusion axiom
/// set and destabilizes the single-core minimization timings that
/// section gates on.
pub fn enumeration_battery() -> ExplainScenario {
    let (schema, _) = orm_gen::multi_contradiction(2);
    ExplainScenario { name: "enumeration_two_mus".to_owned(), schema }
}

/// An interactive-editing workload: one large TBox, a classification
/// battery re-run after each of a series of single-GCI additions — the
/// per-keystroke loop of the paper's §4 editor scenario. The comparison
/// is **wholesale invalidation** (the cache emptied after every edit, as
/// before PR 4) against **delta-aware survival** (one persistent cache
/// whose entries are retained/revalidated across the additions).
pub struct IncrementalEditScenario {
    /// Stable scenario id (used in bench names and the JSON report).
    pub name: String,
    /// The base terminology (the battery queries never change).
    pub tbox: TBox,
    /// The per-round query battery (type sweep + classification matrix).
    pub queries: Vec<C>,
    /// One GCI per editing round, added to the TBox in order. Each
    /// `Extra_i ⊑ A0` mentions an atom no battery witness contains, so a
    /// delta-aware cache can confirm every stored model in one scan —
    /// exactly the "unrelated constraint added" case an editor produces.
    pub edits: Vec<(C, C)>,
}

/// Build the incremental-edit workload: the `classify_sweep(k, 1)` TBox
/// and battery, plus `rounds` pre-built single-GCI edits.
pub fn incremental_edit(k: u32, rounds: u32) -> IncrementalEditScenario {
    let sweep = classify_sweep(k, 1);
    let mut tbox = sweep.tbox;
    let anchor = C::Atomic(tbox.atom("A0"));
    let edits =
        (0..rounds).map(|i| (C::Atomic(tbox.atom(format!("Extra{i}"))), anchor.clone())).collect();
    IncrementalEditScenario {
        name: format!("incremental_edit_{k}x{rounds}"),
        tbox,
        queries: sweep.queries,
        edits,
    }
}

/// One editing session in flight: the scenario's TBox clone plus the
/// cache that lives (or dies) across its edits. Shared by `experiments
/// tableau` and the `tableau_hotpath/incremental_edit` criterion group so
/// the JSON trajectory and the criterion numbers measure the identical
/// workload.
pub struct IncrementalEditRun {
    tbox: TBox,
    cache: SatCache,
}

impl IncrementalEditScenario {
    /// Start a session: clone the base TBox and populate a fresh cache
    /// with one full battery pass — the untimed warmup both comparison
    /// modes share.
    pub fn populate(&self, budget: u64) -> IncrementalEditRun {
        let tbox = self.tbox.clone();
        let mut cache = SatCache::new();
        for q in &self.queries {
            cache.satisfiable(&tbox, q, budget);
        }
        IncrementalEditRun { tbox, cache }
    }
}

impl IncrementalEditRun {
    /// Apply every edit of `scenario` in order, replaying the battery
    /// after each; the returned verdict stream is what the comparison
    /// modes must agree on. `delta_aware = false` emulates the pre-delta
    /// wholesale invalidation by explicitly clearing the cache per edit.
    pub fn edit_rounds(
        &mut self,
        scenario: &IncrementalEditScenario,
        delta_aware: bool,
        budget: u64,
    ) -> Vec<DlOutcome> {
        let mut verdicts = Vec::with_capacity(scenario.edits.len() * scenario.queries.len());
        for (c, d) in &scenario.edits {
            self.tbox.gci(c.clone(), d.clone());
            if !delta_aware {
                self.cache.clear();
            }
            for q in &scenario.queries {
                verdicts.push(self.cache.satisfiable(&self.tbox, q, budget));
            }
        }
        verdicts
    }

    /// The session cache's counters (read `retained`/`revalidated` to see
    /// the retention rules engage).
    pub fn stats(&self) -> CacheStats {
        self.cache.stats()
    }
}

/// A bulk-conformance workload (PR 6): the fixed order-processing schema
/// of [`orm_gen::populate::bulk_workload`] populated to `rows` fact
/// tuples with a known number of injected violation faults. The
/// comparison is the per-violation validator (`orm_population::check`)
/// against a compiled [`orm_population::CheckPlan`] executing over the
/// columnar population — same schema, same population, identical
/// violation multiset required.
pub struct BulkScenario {
    /// Stable scenario id (used in bench names and the JSON report).
    pub name: String,
    /// Schema + population + injected-fault count.
    pub workload: orm_gen::populate::BulkWorkload,
    /// The requested tuple count (4 per order; the generator rounds).
    pub rows: usize,
}

/// Build the bulk-conformance scenario at `rows` tuples with `faults`
/// injected violations (deterministic in the fixed seed).
pub fn bulk_conformance(rows: usize, faults: usize) -> BulkScenario {
    BulkScenario {
        name: format!("bulk_conformance_{rows}"),
        workload: orm_gen::populate::bulk_workload(rows, faults, 0xB011),
        rows,
    }
}

/// Budget ample enough that every scenario reaches a definitive verdict.
pub const BUDGET: u64 = 5_000_000;
