//! Shared helpers for the benchmark suite and the `experiments` binary.

#![forbid(unsafe_code)]

use orm_gen::{generate_clean, GenConfig};
use orm_model::Schema;

pub mod tableau_scenarios;

/// Clean schemas of increasing size for the scaling benchmarks.
pub fn scaling_schemas() -> Vec<(usize, Schema)> {
    [100usize, 300, 1000, 3000]
        .into_iter()
        .map(|n| (n, generate_clean(&GenConfig::sized(42, n))))
        .collect()
}

/// A clean schema plus a variant with one fault of every pattern kind, for
/// detection benchmarks.
pub fn faulty_pair(size: usize) -> (Schema, Schema) {
    let clean = generate_clean(&GenConfig::sized(7, size));
    let faulty = orm_gen::faults::inject_all(&clean, &orm_gen::faults::FaultKind::ALL);
    (clean, faulty)
}
