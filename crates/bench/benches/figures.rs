//! FIG1–FIG14: validation cost of every paper figure. The paper's
//! motivation for the patterns is interactive-speed checking; each figure
//! must validate in microseconds.

use criterion::{criterion_group, criterion_main, Criterion};
use orm_core::{fixtures, Validator};
use std::hint::black_box;

fn bench_figures(c: &mut Criterion) {
    let mut group = c.benchmark_group("figures");
    for fixture in fixtures::all() {
        group.bench_function(fixture.id, |b| {
            b.iter(|| {
                // A fresh validator per iteration defeats the revision
                // cache: we measure the actual pattern scan.
                let validator = Validator::new();
                black_box(validator.validate(black_box(&fixture.schema)))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
