//! PERF: the paper's §4 comparison — pattern detection vs complete
//! reasoning. Pattern cost stays flat in the microsecond range while both
//! complete procedures (DL tableau, bounded model finder) grow
//! exponentially with schema size; the crossover is at trivially small
//! inputs, which is why "the patterns can be used to quickly detect any
//! trivial inconsistencies before calling the more expensive (but
//! complete) procedure".

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use orm_core::Validator;
use orm_dl::translate;
use orm_gen::{faults, generate_clean, GenConfig};
use orm_model::Schema;
use orm_reasoner::{strong_satisfiability, Bounds};
use std::hint::black_box;

fn schema_set() -> Vec<(String, Schema)> {
    let mut out = Vec::new();
    for size in [6usize, 9, 12] {
        let clean = generate_clean(&GenConfig::sized(5, size));
        let faulty = faults::inject(&clean, faults::FaultKind::P7, 0);
        out.push((format!("clean_{size}"), clean));
        out.push((format!("faulty_{size}"), faulty));
    }
    out
}

fn bench_patterns(c: &mut Criterion) {
    let mut group = c.benchmark_group("complete/patterns");
    for (name, schema) in schema_set() {
        group.bench_with_input(BenchmarkId::from_parameter(name), &schema, |b, schema| {
            b.iter(|| {
                let validator = Validator::new();
                black_box(validator.validate(black_box(schema)))
            })
        });
    }
    group.finish();
}

fn bench_dl(c: &mut Criterion) {
    let mut group = c.benchmark_group("complete/dl_tableau");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(8));
    for (name, schema) in schema_set() {
        group.bench_with_input(BenchmarkId::from_parameter(name), &schema, |b, schema| {
            b.iter(|| {
                let translation = translate(schema);
                for (role, _) in schema.roles() {
                    black_box(translation.role_satisfiable(role, 100_000));
                }
            })
        });
    }
    group.finish();
}

fn bench_finder(c: &mut Criterion) {
    let mut group = c.benchmark_group("complete/model_finder");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(5));
    for (name, schema) in schema_set() {
        group.bench_with_input(BenchmarkId::from_parameter(name), &schema, |b, schema| {
            b.iter(|| black_box(strong_satisfiability(black_box(schema), Bounds::small())))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_patterns, bench_dl, bench_finder);
criterion_main!(benches);
