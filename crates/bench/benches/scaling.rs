//! PERF: pattern validation scales ~linearly with schema size — the paper's
//! premise that the patterns are cheap enough for interactive modeling.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use orm_bench::scaling_schemas;
use orm_core::{Validator, ValidatorSettings};
use std::hint::black_box;

fn bench_scaling(c: &mut Criterion) {
    let schemas = scaling_schemas();

    let mut group = c.benchmark_group("scaling/patterns");
    for (size, schema) in &schemas {
        group.throughput(Throughput::Elements(*size as u64));
        group.bench_with_input(BenchmarkId::from_parameter(size), schema, |b, schema| {
            b.iter(|| {
                let validator = Validator::new();
                black_box(validator.validate(black_box(schema)))
            })
        });
    }
    group.finish();

    let mut group = c.benchmark_group("scaling/all_checks");
    for (size, schema) in &schemas {
        group.throughput(Throughput::Elements(*size as u64));
        group.bench_with_input(BenchmarkId::from_parameter(size), schema, |b, schema| {
            b.iter(|| {
                let validator = Validator::with_settings(ValidatorSettings::all());
                black_box(validator.validate(black_box(schema)))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_scaling);
criterion_main!(benches);
