//! Ablation (DESIGN.md §7.1): Pattern 6 builds one set-path graph per
//! validation run and reuses it across every exclusion pair. The naive
//! alternative rebuilds the graph per query, as the paper's appendix
//! pseudocode (`GetSetPathsBetween`) suggests.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use orm_core::setpath::{Node, SetPathGraph};
use orm_model::{RoleSeq, Schema, SchemaBuilder};
use std::hint::black_box;

/// A subset chain f0 ⊆ f1 ⊆ … ⊆ fn over single roles plus exclusions
/// between the chain ends — a set-path-heavy workload.
fn chain_schema(n: usize) -> (Schema, Vec<(Node, Node)>) {
    let mut b = SchemaBuilder::new("chain");
    let a = b.entity_type("A").expect("fresh");
    let x = b.entity_type("X").expect("fresh");
    let mut firsts = Vec::new();
    for i in 0..n {
        let f = b.fact_type(&format!("f{i}"), a, x).expect("fresh");
        firsts.push(b.schema().fact_type(f).first());
    }
    for w in firsts.windows(2) {
        b.subset(RoleSeq::single(w[0]), RoleSeq::single(w[1])).expect("valid");
    }
    let mut queries: Vec<(Node, Node)> = Vec::new();
    for i in 0..n {
        for j in 0..n {
            if i != j {
                queries.push((Node::Role(firsts[i]), Node::Role(firsts[j])));
            }
        }
    }
    (b.finish(), queries)
}

fn bench_setpath(c: &mut Criterion) {
    for n in [8usize, 16, 32] {
        let (schema, queries) = chain_schema(n);

        let mut group = c.benchmark_group(format!("ablation_setpath/{n}"));
        group.bench_function(BenchmarkId::from_parameter("shared_graph"), |b| {
            b.iter(|| {
                let graph = SetPathGraph::build(&schema, None);
                let mut hits = 0usize;
                for (from, to) in &queries {
                    if graph.path(black_box(from), black_box(to)).is_some() {
                        hits += 1;
                    }
                }
                black_box(hits)
            })
        });
        group.bench_function(BenchmarkId::from_parameter("rebuild_per_query"), |b| {
            b.iter(|| {
                let mut hits = 0usize;
                for (from, to) in &queries {
                    let graph = SetPathGraph::build(&schema, None);
                    if graph.path(black_box(from), black_box(to)).is_some() {
                        hits += 1;
                    }
                }
                black_box(hits)
            })
        });
        group.finish();
    }
}

criterion_group!(benches, bench_setpath);
criterion_main!(benches);
