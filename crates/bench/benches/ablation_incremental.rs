//! Ablation (DESIGN.md §7.3): interactive re-validation after an edit —
//! the full re-run versus the trigger-filtered incremental mode. This is
//! the DogmaModeler loop: the modeler adds one constraint and the tool
//! revalidates on the spot.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use orm_core::{EditHint, Validator};
use orm_gen::{generate_clean, GenConfig};
use orm_model::{Constraint, ConstraintKind, Frequency};
use std::hint::black_box;

fn bench_incremental(c: &mut Criterion) {
    for size in [100usize, 1000] {
        let base = generate_clean(&GenConfig::sized(42, size));
        let some_role = base.roles().next().map(|(id, _)| id).expect("has roles");
        let mut group = c.benchmark_group(format!("ablation_incremental/{size}"));

        group.bench_function(BenchmarkId::from_parameter("full_revalidation"), |b| {
            b.iter(|| {
                let mut schema = base.clone();
                let validator = Validator::new();
                validator.validate(&schema); // initial validation
                let cid = schema.add_constraint(Constraint::Frequency(Frequency {
                    roles: vec![some_role],
                    min: 1,
                    max: Some(5),
                }));
                let report = validator.validate(&schema);
                schema.remove_constraint(cid);
                black_box(report)
            })
        });

        group.bench_function(BenchmarkId::from_parameter("incremental"), |b| {
            b.iter(|| {
                let mut schema = base.clone();
                let validator = Validator::new();
                validator.validate(&schema); // prime the cache
                let cid = schema.add_constraint(Constraint::Frequency(Frequency {
                    roles: vec![some_role],
                    min: 1,
                    max: Some(5),
                }));
                let report = validator.validate_incremental(
                    &schema,
                    &EditHint::Constraint(ConstraintKind::Frequency),
                );
                schema.remove_constraint(cid);
                black_box(report)
            })
        });

        group.finish();
    }
}

criterion_group!(benches, bench_incremental);
criterion_main!(benches);
