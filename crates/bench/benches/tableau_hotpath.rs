//! PERF: the DL tableau's hot paths — trail-based engine vs the classic
//! clone-per-branch baseline it replaced, plus the cached classification
//! sweep.
//!
//! Three scenario families (see `orm_bench::tableau_scenarios`): wide `⊔`
//! fan-out from exclusive supertypes, deep subtype chains, and
//! `≤`-merge-heavy frequency contradictions. The `trail/*` and
//! `classic/*` groups run identical queries, so the ratio per scenario is
//! the engine speedup. The `sweep/*` group replays one classification
//! battery with and without a `SatCache`, so its internal ratio is the
//! cache win. `experiments tableau` records the same comparisons in
//! `BENCH_tableau.json` for the perf trajectory.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use orm_bench::tableau_scenarios::{
    all, classify_battery, classify_sweep, incremental_edit, BUDGET,
};
use std::hint::black_box;

fn bench_trail(c: &mut Criterion) {
    let mut group = c.benchmark_group("tableau_hotpath/trail");
    for scenario in all() {
        group.bench_with_input(BenchmarkId::from_parameter(&scenario.name), &scenario, |b, s| {
            b.iter(|| black_box(orm_dl::satisfiable(&s.tbox, &s.query, BUDGET)))
        });
    }
    group.finish();
}

fn bench_classic(c: &mut Criterion) {
    let mut group = c.benchmark_group("tableau_hotpath/classic");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(4));
    for scenario in all() {
        group.bench_with_input(BenchmarkId::from_parameter(&scenario.name), &scenario, |b, s| {
            b.iter(|| black_box(orm_dl::classic::satisfiable(&s.tbox, &s.query, BUDGET)))
        });
    }
    group.finish();
}

fn bench_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("tableau_hotpath/sweep");
    let s = classify_sweep(12, 8);
    group.bench_function(BenchmarkId::from_parameter(format!("{}_uncached", s.name)), |b| {
        b.iter(|| {
            for _ in 0..s.passes {
                for q in &s.queries {
                    black_box(orm_dl::satisfiable(&s.tbox, q, BUDGET));
                }
            }
        })
    });
    group.bench_function(BenchmarkId::from_parameter(format!("{}_cached", s.name)), |b| {
        b.iter(|| {
            let mut cache = orm_dl::SatCache::new();
            for _ in 0..s.passes {
                for q in &s.queries {
                    black_box(cache.satisfiable(&s.tbox, q, BUDGET));
                }
            }
        })
    });
    group.finish();
}

fn bench_classify_par(c: &mut Criterion) {
    let mut group = c.benchmark_group("tableau_hotpath/classify_par");
    let battery = classify_battery(14, 6);
    let translation = orm_dl::translate(&battery.schema);
    group.bench_function(BenchmarkId::from_parameter(format!("{}_seq", battery.name)), |b| {
        // A fresh clone per iteration: cold sharded cache, every pair
        // actually proved.
        b.iter(|| black_box(translation.clone().classify(&battery.schema, BUDGET)))
    });
    for threads in [2usize, 4, 8] {
        group.bench_function(
            BenchmarkId::from_parameter(format!("{}_par{threads}", battery.name)),
            |b| {
                b.iter(|| {
                    black_box(translation.clone().classify_par(&battery.schema, BUDGET, threads))
                })
            },
        );
    }
    group.finish();
}

fn bench_incremental_edit(c: &mut Criterion) {
    let mut group = c.benchmark_group("tableau_hotpath/incremental_edit");
    let inc = incremental_edit(10, 6);
    // One battery population plus the post-edit rounds (the same shared
    // driver `experiments tableau` times, so the criterion numbers and
    // the JSON trajectory measure the identical workload); `wholesale`
    // clears the cache after every edit (the pre-delta-log behavior),
    // `delta` lets the retention rules keep it warm. The internal ratio
    // is the incremental-revalidation win.
    for (label, delta_aware) in [("wholesale", false), ("delta", true)] {
        group.bench_function(BenchmarkId::from_parameter(format!("{}_{label}", inc.name)), |b| {
            b.iter(|| {
                let mut run = inc.populate(BUDGET);
                black_box(run.edit_rounds(&inc, delta_aware, BUDGET))
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_trail,
    bench_classic,
    bench_sweep,
    bench_classify_par,
    bench_incremental_edit
);
criterion_main!(benches);
