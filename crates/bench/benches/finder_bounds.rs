//! Ablation (DESIGN.md §7.4): the bounded model finder's cost as a
//! function of its domain bounds — the concrete face of "a complete
//! procedure typically is exponential" (§4). Strong satisfiability of one
//! small satisfiable schema, swept over extent/tuple bounds.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use orm_gen::{generate_clean, GenConfig};
use orm_reasoner::{strong_satisfiability, Bounds};
use std::hint::black_box;

fn bench_bounds(c: &mut Criterion) {
    let schema = generate_clean(&GenConfig::sized(5, 9));
    let mut group = c.benchmark_group("finder_bounds");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(5));
    for (label, bounds) in [
        (
            "extent2_tuples3",
            Bounds { max_extent: 2, fresh_per_component: 2, max_tuples: 3, max_nodes: 5_000_000 },
        ),
        (
            "extent3_tuples4",
            Bounds { max_extent: 3, fresh_per_component: 3, max_tuples: 4, max_nodes: 5_000_000 },
        ),
        (
            "extent4_tuples5",
            Bounds { max_extent: 4, fresh_per_component: 4, max_tuples: 5, max_nodes: 5_000_000 },
        ),
    ] {
        group.bench_function(BenchmarkId::from_parameter(label), |b| {
            b.iter(|| black_box(strong_satisfiability(black_box(&schema), bounds)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_bounds);
criterion_main!(benches);
