//! Ablation (DESIGN.md §7.2): the validator computes the schema index
//! (subtype closures, constraint maps) once and shares it across all nine
//! patterns. The alternative recomputes it inside every pattern, as the
//! paper's per-pattern appendix algorithms would.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use orm_core::paper_patterns;
use orm_gen::{generate_clean, GenConfig};
use std::hint::black_box;

fn bench_closure(c: &mut Criterion) {
    for size in [100usize, 1000] {
        let schema = generate_clean(&GenConfig::sized(42, size));
        let mut group = c.benchmark_group(format!("ablation_closure/{size}"));

        group.bench_function(BenchmarkId::from_parameter("shared_index"), |b| {
            b.iter(|| {
                let idx = schema.index();
                let mut findings = Vec::new();
                for check in paper_patterns() {
                    check.run(&schema, &idx, &mut findings);
                }
                black_box(findings)
            })
        });

        group.bench_function(BenchmarkId::from_parameter("index_per_pattern"), |b| {
            b.iter(|| {
                let mut findings = Vec::new();
                for check in paper_patterns() {
                    let idx = schema.index();
                    check.run(&schema, &idx, &mut findings);
                }
                black_box(findings)
            })
        });

        group.finish();
    }
}

criterion_group!(benches, bench_closure);
criterion_main!(benches);
