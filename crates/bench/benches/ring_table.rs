//! TAB1 / FIG12: cost of the ring-constraint machinery — regenerating the
//! compatibility table by brute force, querying the memoized table (what
//! Pattern 8 actually pays), and the implied-closure computation behind the
//! Euler diagram.

use criterion::{criterion_group, criterion_main, Criterion};
use orm_core::ring::euler::{implied_closure, Relation};
use orm_core::ring::table::{all_compatible, compatible};
use orm_model::RingKinds;
use std::hint::black_box;

fn bench_ring(c: &mut Criterion) {
    let mut group = c.benchmark_group("ring");

    group.bench_function("regenerate_table_brute_force", |b| {
        b.iter(|| {
            // The full Table 1 from first principles: 64 combinations × 15
            // non-empty relations over two elements.
            let relations: Vec<Relation> =
                Relation::enumerate(2).filter(|r| !r.is_empty()).collect();
            let mut verdicts = Vec::with_capacity(64);
            for kinds in RingKinds::all_subsets() {
                verdicts.push(relations.iter().any(|r| r.satisfies_all(kinds)));
            }
            black_box(verdicts)
        })
    });

    group.bench_function("memoized_lookup_all_64", |b| {
        // Warm the table once; Pattern 8 sees only the lookup cost.
        let _ = all_compatible();
        b.iter(|| {
            let mut n = 0usize;
            for kinds in RingKinds::all_subsets() {
                if compatible(black_box(kinds)) {
                    n += 1;
                }
            }
            black_box(n)
        })
    });

    group.bench_function("implied_closure_all_64", |b| {
        b.iter(|| {
            for kinds in RingKinds::all_subsets() {
                black_box(implied_closure(black_box(kinds)));
            }
        })
    });

    group.finish();
}

criterion_group!(benches, bench_ring);
criterion_main!(benches);
