//! Crash-safe snapshot/restore for [`SatShards`]: a versioned,
//! checksummed byte format over every cached verdict (witnesses, unsat
//! cores, MUS families and the cross-shard seed pool included), keyed on
//! the TBox revision it was proved against.
//!
//! # Why this is sound
//!
//! A snapshot is only ever **installed** ([`SatShards::restore`]) when
//! three independent gates pass:
//!
//! 1. **Integrity** — magic, version, length and an FNV-1a checksum over
//!    the payload. Truncated or bit-flipped bytes are rejected before a
//!    single entry is decoded; a decode error mid-payload rejects the
//!    whole blob (two-phase: decode fully, then commit — a malformed
//!    snapshot can never leave partial state behind).
//! 2. **Provenance** — the target TBox must reach the snapshot's
//!    revision by **pure additions only** (its delta log is consulted via
//!    [`TBox::delta_since`]), its per-kind axiom counts at that revision
//!    must equal the snapshot's, and a content fingerprint over the
//!    name-table and axiom-store *prefixes* must match. TBox uids are
//!    process-unique, so a restarted process holds a different uid for
//!    "the same" terminology — the fingerprint is what proves the
//!    terminologies are really the same up to the snapshot revision.
//! 3. **Staleness** — entries are installed stamped `(current_uid,
//!    snapshot_revision)`. If the TBox has grown since the snapshot, the
//!    first query runs the ordinary delta-retention machinery
//!    ([`super::SatCache`]'s `validate`): `Unsat` entries are retained,
//!    `Sat` witnesses are revalidated against the added axioms, and
//!    `Unknown`s are evicted — the restored process *revalidates against
//!    the log instead of re-proving*, and a verdict that does not
//!    provably transfer is dropped, never replayed.
//!
//! Every rejection (corrupt bytes *or* provenance mismatch) counts one
//! [`CacheStats::corrupt_rejected`] and leaves the cache exactly as it
//! was — a cold shard set degrades to re-proving, never to a panic or a
//! stale verdict.
//!
//! # Format (version 1)
//!
//! ```text
//! magic    b"ORMSNAP"          7 bytes
//! version  0x01                1 byte
//! len      payload length      u64 LE
//! payload  see below           len bytes
//! checksum FNV-1a-64(payload)  u64 LE
//! ```
//!
//! Payload: revision `u64`; atom/role/gci/role-inclusion/disjointness
//! counts (`u32` each); prefix fingerprint `u64`; entry list (count +
//! per-entry key concepts and verdict body); seed-pool axiom ids. All
//! integers little-endian; concepts as a tagged preorder walk; roles as
//! the global `RoleExprId` (`2·name + inverse` — arena-independent).
//! Extend the format by bumping the version byte; readers reject
//! unknown versions outright.

use super::{fold_root, shape_hash, Entry, SatShards};
use crate::arena::{role_expr_of, ConceptId, RoleExprId};
use crate::concept::{Concept, RoleExpr};
use crate::explain::{MusFamily, UnsatCore};
use crate::tableau::Witness;
use crate::tbox::{AxiomId, AxiomKind, Delta, TBox};
use std::fmt;

#[cfg(doc)]
use super::CacheStats;

const MAGIC: [u8; 7] = *b"ORMSNAP";
const VERSION: u8 = 1;
/// Nesting cap for decoded concepts — honest snapshots hold shallow
/// trees; the cap keeps a malicious blob from recursing the stack away.
const MAX_CONCEPT_DEPTH: u32 = 256;

/// Why [`SatShards::restore`] refused a snapshot blob. Every variant
/// leaves the cache untouched (cold-start semantics); each rejection is
/// counted in [`CacheStats::corrupt_rejected`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SnapshotError {
    /// The blob is shorter (or longer) than its header claims.
    Truncated,
    /// The magic bytes are not `b"ORMSNAP"`.
    BadMagic,
    /// A version this build does not read.
    BadVersion(u8),
    /// The payload checksum does not match — bit rot or a torn write.
    ChecksumMismatch,
    /// The target TBox is not an addition-only descendant of the
    /// snapshot's TBox (destructive edits, diverged content, or counts
    /// that do not line up).
    StampMismatch,
    /// The cache already holds entries; restore only installs into a
    /// cold (empty) shard set.
    WarmCache,
    /// The payload decoded inconsistently (out-of-range ids, unknown
    /// tags, trailing bytes, …).
    Malformed(&'static str),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Truncated => write!(f, "snapshot truncated"),
            SnapshotError::BadMagic => write!(f, "not a snapshot (bad magic)"),
            SnapshotError::BadVersion(v) => write!(f, "unsupported snapshot version {v}"),
            SnapshotError::ChecksumMismatch => write!(f, "snapshot checksum mismatch"),
            SnapshotError::StampMismatch => write!(f, "snapshot does not match the TBox"),
            SnapshotError::WarmCache => write!(f, "cache is not cold"),
            SnapshotError::Malformed(what) => write!(f, "malformed snapshot: {what}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

/// What a successful [`SatShards::restore`] installed.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RestoreReport {
    /// Verdict entries installed across all shards.
    pub entries: usize,
    /// `Sat` entries that came with a stored witness model.
    pub witnesses: usize,
    /// `Unsat` entries that came with a certified core.
    pub cores: usize,
    /// `Unsat` entries that came with a MUS family.
    pub families: usize,
    /// Axiom ids restored into the cross-shard seed pool.
    pub seeds: usize,
}

// ---------------------------------------------------------------------------
// Checksum

fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

// ---------------------------------------------------------------------------
// Encoding

#[derive(Default)]
struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }

    fn role(&mut self, r: RoleExpr) {
        self.u32(crate::arena::role_expr_id(r));
    }

    fn concept(&mut self, c: &Concept) {
        match c {
            Concept::Top => self.u8(0),
            Concept::Bottom => self.u8(1),
            Concept::Atomic(a) => {
                self.u8(2);
                self.u32(*a);
            }
            Concept::NotAtomic(a) => {
                self.u8(3);
                self.u32(*a);
            }
            Concept::And(cs) | Concept::Or(cs) => {
                self.u8(if matches!(c, Concept::And(_)) { 4 } else { 5 });
                self.u32(cs.len() as u32);
                for x in cs {
                    self.concept(x);
                }
            }
            Concept::Exists(r, body) | Concept::ForAll(r, body) => {
                self.u8(if matches!(c, Concept::Exists(..)) { 6 } else { 7 });
                self.role(*r);
                self.concept(body);
            }
            Concept::AtLeast(n, r) => {
                self.u8(8);
                self.u32(*n);
                self.role(*r);
            }
            Concept::AtMost(n, r) => {
                self.u8(9);
                self.u32(*n);
                self.role(*r);
            }
        }
    }

    fn axiom_id(&mut self, id: AxiomId) {
        self.u8(match id.kind {
            AxiomKind::Gci => 0,
            AxiomKind::RoleInclusion => 1,
            AxiomKind::Disjointness => 2,
        });
        self.u32(id.index);
    }

    fn core(&mut self, core: &UnsatCore) {
        self.u32(core.axioms.len() as u32);
        for &id in &core.axioms {
            self.axiom_id(id);
        }
        self.u8(u8::from(core.minimal));
    }
}

// ---------------------------------------------------------------------------
// Decoding

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

/// Per-kind sizes everything in the payload is validated against:
/// interned-name counts for concept/role ids, axiom-store prefix lengths
/// for core/seed axiom ids.
#[derive(Clone, Copy)]
struct Bounds {
    atoms: u32,
    roles: u32,
    gcis: u32,
    ris: u32,
    djs: u32,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        let end = self.pos.checked_add(n).ok_or(SnapshotError::Malformed("length overflow"))?;
        if end > self.buf.len() {
            return Err(SnapshotError::Malformed("payload ran out"));
        }
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    fn u64(&mut self) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    fn flag(&mut self) -> Result<bool, SnapshotError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(SnapshotError::Malformed("flag byte not 0/1")),
        }
    }

    fn done(&self) -> bool {
        self.pos == self.buf.len()
    }

    fn role(&mut self, b: Bounds) -> Result<RoleExpr, SnapshotError> {
        let id: RoleExprId = self.u32()?;
        if id >> 1 >= b.roles {
            return Err(SnapshotError::Malformed("role id out of range"));
        }
        Ok(role_expr_of(id))
    }

    fn edge_role(&mut self, b: Bounds) -> Result<RoleExprId, SnapshotError> {
        let id: RoleExprId = self.u32()?;
        if id >> 1 >= b.roles {
            return Err(SnapshotError::Malformed("edge role id out of range"));
        }
        Ok(id)
    }

    fn concept(&mut self, b: Bounds, depth: u32) -> Result<Concept, SnapshotError> {
        if depth > MAX_CONCEPT_DEPTH {
            return Err(SnapshotError::Malformed("concept nesting too deep"));
        }
        Ok(match self.u8()? {
            0 => Concept::Top,
            1 => Concept::Bottom,
            tag @ (2 | 3) => {
                let a = self.u32()?;
                if a >= b.atoms {
                    return Err(SnapshotError::Malformed("atom id out of range"));
                }
                if tag == 2 {
                    Concept::Atomic(a)
                } else {
                    Concept::NotAtomic(a)
                }
            }
            tag @ (4 | 5) => {
                let n = self.u32()?;
                let mut cs = Vec::new();
                for _ in 0..n {
                    cs.push(self.concept(b, depth + 1)?);
                }
                if tag == 4 {
                    Concept::And(cs)
                } else {
                    Concept::Or(cs)
                }
            }
            tag @ (6 | 7) => {
                let r = self.role(b)?;
                let body = Box::new(self.concept(b, depth + 1)?);
                if tag == 6 {
                    Concept::Exists(r, body)
                } else {
                    Concept::ForAll(r, body)
                }
            }
            tag @ (8 | 9) => {
                let n = self.u32()?;
                let r = self.role(b)?;
                if tag == 8 {
                    Concept::AtLeast(n, r)
                } else {
                    Concept::AtMost(n, r)
                }
            }
            _ => return Err(SnapshotError::Malformed("unknown concept tag")),
        })
    }

    fn axiom_id(&mut self, b: Bounds) -> Result<AxiomId, SnapshotError> {
        let (kind, limit) = match self.u8()? {
            0 => (AxiomKind::Gci, b.gcis),
            1 => (AxiomKind::RoleInclusion, b.ris),
            2 => (AxiomKind::Disjointness, b.djs),
            _ => return Err(SnapshotError::Malformed("unknown axiom kind")),
        };
        let index = self.u32()?;
        if index >= limit {
            return Err(SnapshotError::Malformed("axiom index out of range"));
        }
        Ok(AxiomId { kind, index })
    }

    fn core(&mut self, b: Bounds) -> Result<UnsatCore, SnapshotError> {
        let n = self.u32()?;
        let mut axioms = Vec::new();
        for _ in 0..n {
            axioms.push(self.axiom_id(b)?);
        }
        let minimal = self.flag()?;
        Ok(UnsatCore { axioms, minimal })
    }
}

/// A fully decoded payload — nothing is installed until every byte of it
/// has parsed and validated.
struct Decoded {
    revision: u64,
    bounds: Bounds,
    fingerprint: u64,
    entries: Vec<(Vec<Concept>, DecodedEntry)>,
    seeds: Vec<AxiomId>,
}

/// The two per-node columns of a decoded [`Witness`]: concept labels and
/// role successors, in node order (the shape `Tableau::snapshot_parts`
/// produces).
type WitnessParts = (Vec<Vec<Concept>>, Vec<Vec<RoleExprId>>);

enum DecodedEntry {
    Sat { witness: Option<WitnessParts> },
    Unsat { core: Option<UnsatCore>, family: Option<MusFamily> },
    Unknown { budget: u64 },
}

fn decode(payload: &[u8]) -> Result<Decoded, SnapshotError> {
    let mut r = Reader::new(payload);
    let revision = r.u64()?;
    let bounds =
        Bounds { atoms: r.u32()?, roles: r.u32()?, gcis: r.u32()?, ris: r.u32()?, djs: r.u32()? };
    let fingerprint = r.u64()?;
    let entry_count = r.u32()?;
    let mut entries = Vec::new();
    for _ in 0..entry_count {
        let key_len = r.u32()?;
        let mut key = Vec::new();
        for _ in 0..key_len {
            key.push(r.concept(bounds, 0)?);
        }
        let entry = match r.u8()? {
            0 => {
                let witness = if r.flag()? {
                    let node_count = r.u32()?;
                    let mut labels = Vec::new();
                    for _ in 0..node_count {
                        let n = r.u32()?;
                        let mut label = Vec::new();
                        for _ in 0..n {
                            label.push(r.concept(bounds, 0)?);
                        }
                        labels.push(label);
                    }
                    let edge_count = r.u32()?;
                    let mut edges = Vec::new();
                    for _ in 0..edge_count {
                        let n = r.u32()?;
                        let mut roles = Vec::new();
                        for _ in 0..n {
                            roles.push(r.edge_role(bounds)?);
                        }
                        edges.push(roles);
                    }
                    Some((labels, edges))
                } else {
                    None
                };
                DecodedEntry::Sat { witness }
            }
            1 => {
                let core = if r.flag()? { Some(r.core(bounds)?) } else { None };
                let family = if r.flag()? {
                    let n = r.u32()?;
                    let mut cores = Vec::new();
                    for _ in 0..n {
                        cores.push(r.core(bounds)?);
                    }
                    let truncated = r.flag()?;
                    let complete = r.flag()?;
                    Some(MusFamily { cores, truncated, complete })
                } else {
                    None
                };
                DecodedEntry::Unsat { core, family }
            }
            2 => DecodedEntry::Unknown { budget: r.u64()? },
            _ => return Err(SnapshotError::Malformed("unknown entry tag")),
        };
        entries.push((key, entry));
    }
    let seed_count = r.u32()?;
    let mut seeds = Vec::new();
    for _ in 0..seed_count {
        seeds.push(r.axiom_id(bounds)?);
    }
    if !r.done() {
        return Err(SnapshotError::Malformed("trailing bytes"));
    }
    Ok(Decoded { revision, bounds, fingerprint, entries, seeds })
}

/// Content fingerprint of the TBox's name tables and axiom stores, cut
/// to the given prefix lengths — the proof that a freshly built TBox
/// (whose process-unique uid necessarily differs from the snapshotting
/// process's) really is the same terminology up to the snapshot
/// revision. Names are append-only and axiom stores append-only under
/// pure additions, so the prefix at restore time is byte-identical to
/// the full state at snapshot time.
fn prefix_fingerprint(
    tbox: &TBox,
    atoms: usize,
    roles: usize,
    gcis: usize,
    ris: usize,
    djs: usize,
) -> u64 {
    let mut w = Writer::default();
    for i in 0..atoms {
        w.str(tbox.atom_name(i as u32));
    }
    for i in 0..roles {
        w.str(tbox.role_name(i as u32));
    }
    for (c, d) in &tbox.gcis()[..gcis] {
        w.concept(c);
        w.concept(d);
    }
    for &(sub, sup) in &tbox.role_inclusion_axioms()[..ris] {
        w.role(sub);
        w.role(sup);
    }
    for &(a, b) in &tbox.disjoint_role_axioms()[..djs] {
        w.role(a);
        w.role(b);
    }
    fnv1a64(&w.buf)
}

impl SatShards {
    /// Serialize every cached entry (and the seed pool) into the
    /// versioned, checksummed snapshot format, keyed on `tbox`'s current
    /// revision. Each shard is first reconciled with `tbox` (the same
    /// validation a query performs), so the blob only ever contains
    /// entries provable against the recorded revision. Counted in
    /// [`CacheStats::snapshots`].
    ///
    /// Shard locks are taken one at a time: concurrent queries stay
    /// live, and a query that lands after its shard was serialized is
    /// simply absent from this snapshot — fine for a cache, where a
    /// snapshot is a warm-start hint, never an obligation.
    pub fn snapshot(&self, tbox: &TBox) -> Vec<u8> {
        let mut payload = Writer::default();
        payload.u64(tbox.revision());
        payload.u32(tbox.atom_count() as u32);
        payload.u32(tbox.role_count() as u32);
        payload.u32(tbox.gcis().len() as u32);
        payload.u32(tbox.role_inclusion_axioms().len() as u32);
        payload.u32(tbox.disjoint_role_axioms().len() as u32);
        payload.u64(prefix_fingerprint(
            tbox,
            tbox.atom_count(),
            tbox.role_count(),
            tbox.gcis().len(),
            tbox.role_inclusion_axioms().len(),
            tbox.disjoint_role_axioms().len(),
        ));
        let mut entries = Writer::default();
        let mut entry_count = 0u32;
        for shard in self.shards.iter() {
            let mut cache = shard.lock();
            cache.validate(tbox);
            for (key, entry) in &cache.entries {
                entries.u32(key.len() as u32);
                for &id in key.iter() {
                    let concept = cache.arena.resolve(id);
                    entries.concept(&concept);
                }
                match entry {
                    Entry::Sat { witness } => {
                        entries.u8(0);
                        match witness {
                            Some(witness) => {
                                entries.u8(1);
                                let (labels, edges) = witness.snapshot_parts();
                                entries.u32(labels.len() as u32);
                                for label in &labels {
                                    entries.u32(label.len() as u32);
                                    for concept in label {
                                        entries.concept(concept);
                                    }
                                }
                                entries.u32(edges.len() as u32);
                                for roles in &edges {
                                    entries.u32(roles.len() as u32);
                                    for &role in roles {
                                        entries.u32(role);
                                    }
                                }
                            }
                            None => entries.u8(0),
                        }
                    }
                    Entry::Unsat { core, family } => {
                        entries.u8(1);
                        match core {
                            Some(core) => {
                                entries.u8(1);
                                entries.core(core);
                            }
                            None => entries.u8(0),
                        }
                        match family {
                            Some(family) => {
                                entries.u8(1);
                                entries.u32(family.cores.len() as u32);
                                for core in &family.cores {
                                    entries.core(core);
                                }
                                entries.u8(u8::from(family.truncated));
                                entries.u8(u8::from(family.complete));
                            }
                            None => entries.u8(0),
                        }
                    }
                    Entry::Unknown { budget } => {
                        entries.u8(2);
                        entries.u64(*budget);
                    }
                }
                entry_count += 1;
            }
        }
        payload.u32(entry_count);
        payload.buf.extend_from_slice(&entries.buf);
        {
            let pool = self.seed_pool.lock();
            if pool.stamp == tbox.cache_stamp() {
                payload.u32(pool.axioms.len() as u32);
                for &id in &pool.axioms {
                    payload.axiom_id(id);
                }
            } else {
                payload.u32(0);
            }
        }
        self.shards[0].lock().stats.snapshots += 1;

        let mut out = Vec::with_capacity(payload.buf.len() + 24);
        out.extend_from_slice(&MAGIC);
        out.push(VERSION);
        out.extend_from_slice(&(payload.buf.len() as u64).to_le_bytes());
        out.extend_from_slice(&payload.buf);
        out.extend_from_slice(&fnv1a64(&payload.buf).to_le_bytes());
        out
    }

    /// Install a snapshot produced by [`SatShards::snapshot`] into this
    /// (cold) shard set, re-keying every entry against `tbox`. See the
    /// `cache::snapshot` module docs for the three validation gates; any
    /// rejection
    /// returns the cache untouched and counts one
    /// [`CacheStats::corrupt_rejected`]; success counts one
    /// [`CacheStats::restores`].
    ///
    /// Entries are installed stamped at the snapshot's revision, so a
    /// `tbox` that has *grown* (pure additions) since the snapshot still
    /// restores: the first queries run the ordinary delta-retention
    /// rules against the addition log instead of re-proving. Intended
    /// for process startup — callers must not run queries against these
    /// shards concurrently with a restore.
    pub fn restore(&self, tbox: &TBox, bytes: &[u8]) -> Result<RestoreReport, SnapshotError> {
        match self.restore_inner(tbox, bytes) {
            Ok(report) => {
                self.shards[0].lock().stats.restores += 1;
                Ok(report)
            }
            Err(err) => {
                self.shards[0].lock().stats.corrupt_rejected += 1;
                Err(err)
            }
        }
    }

    fn restore_inner(&self, tbox: &TBox, bytes: &[u8]) -> Result<RestoreReport, SnapshotError> {
        // Gate 1: integrity.
        if bytes.len() < MAGIC.len() + 1 + 8 + 8 {
            return Err(SnapshotError::Truncated);
        }
        if bytes[..MAGIC.len()] != MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        let version = bytes[MAGIC.len()];
        if version != VERSION {
            return Err(SnapshotError::BadVersion(version));
        }
        let header = MAGIC.len() + 1;
        let payload_len =
            u64::from_le_bytes(bytes[header..header + 8].try_into().expect("8 bytes")) as usize;
        let payload_start = header + 8;
        if bytes.len() != payload_start + payload_len + 8 {
            return Err(SnapshotError::Truncated);
        }
        let payload = &bytes[payload_start..payload_start + payload_len];
        let stored =
            u64::from_le_bytes(bytes[payload_start + payload_len..].try_into().expect("8"));
        if fnv1a64(payload) != stored {
            return Err(SnapshotError::ChecksumMismatch);
        }
        let decoded = decode(payload)?;

        // Gate 2: provenance — `tbox` must be an addition-only
        // descendant of the snapshotted terminology.
        let b = decoded.bounds;
        let (prefix_gcis, prefix_ris, prefix_djs) = match tbox.delta_since(decoded.revision) {
            Delta::Unchanged => (
                tbox.gcis().len(),
                tbox.role_inclusion_axioms().len(),
                tbox.disjoint_role_axioms().len(),
            ),
            Delta::Additions(delta) => (
                tbox.gcis().len() - delta.gcis.len(),
                tbox.role_inclusion_axioms().len() - delta.role_inclusions.len(),
                tbox.disjoint_role_axioms().len() - delta.disjoint_roles.len(),
            ),
            Delta::Destructive => return Err(SnapshotError::StampMismatch),
        };
        if (b.gcis as usize, b.ris as usize, b.djs as usize)
            != (prefix_gcis, prefix_ris, prefix_djs)
        {
            return Err(SnapshotError::StampMismatch);
        }
        if b.atoms as usize > tbox.atom_count() || b.roles as usize > tbox.role_count() {
            return Err(SnapshotError::StampMismatch);
        }
        let expected = prefix_fingerprint(
            tbox,
            b.atoms as usize,
            b.roles as usize,
            prefix_gcis,
            prefix_ris,
            prefix_djs,
        );
        if expected != decoded.fingerprint {
            return Err(SnapshotError::StampMismatch);
        }

        // Gate 3: cold start only — mixing restored entries into shards
        // already proving against a live TBox would blur which stamp an
        // entry was actually proved at.
        if !self.is_empty() {
            return Err(SnapshotError::WarmCache);
        }

        // Commit. The stamp is (current uid, snapshot revision): the
        // uid binds the entries to *this* TBox value, the revision makes
        // the next query replay any additions through delta retention.
        let stamp = (tbox.cache_stamp().0, decoded.revision);
        for shard in self.shards.iter() {
            shard.lock().stamp = Some(stamp);
        }
        let mut report = RestoreReport::default();
        for (key_concepts, entry) in decoded.entries {
            let route = fold_root(key_concepts.iter().map(|c| shape_hash(c, false)).collect());
            let mut cache = self.shard(route).lock();
            let mut key: Vec<ConceptId> =
                key_concepts.iter().map(|c| cache.arena.intern(c)).collect();
            key.sort_unstable();
            key.dedup();
            let entry = match entry {
                DecodedEntry::Sat { witness } => {
                    let witness = witness.map(|(labels, edges)| {
                        report.witnesses += 1;
                        Witness::from_snapshot_parts(labels, edges)
                    });
                    Entry::Sat { witness }
                }
                DecodedEntry::Unsat { core, family } => {
                    report.cores += usize::from(core.is_some());
                    report.families += usize::from(family.is_some());
                    Entry::Unsat { core, family }
                }
                DecodedEntry::Unknown { budget } => Entry::Unknown { budget },
            };
            cache.entries.insert(key.into_boxed_slice(), entry);
            report.entries += 1;
        }
        {
            let mut pool = self.seed_pool.lock();
            pool.stamp = stamp;
            pool.axioms = decoded.seeds;
            pool.axioms.sort_unstable();
            pool.axioms.dedup();
            pool.axioms.truncate(super::SEED_POOL_CAP);
            report.seeds = pool.axioms.len();
        }
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::SatShards;
    use crate::explain::Explanation;
    use crate::tableau::DlOutcome;

    /// A TBox with a satisfiable atom (witnessed, with role edges), a
    /// doomed atom (core + family), and a starving query (Unknown).
    fn rich_fixture() -> (TBox, Vec<Concept>) {
        let mut t = TBox::new();
        let r = RoleExpr::direct(t.role("R"));
        let a = Concept::Atomic(t.atom("A"));
        let b = Concept::Atomic(t.atom("B"));
        let c = Concept::Atomic(t.atom("C"));
        let loops = Concept::Atomic(t.atom("Loop"));
        t.gci(a.clone(), Concept::some(r));
        t.gci(b.clone(), Concept::Bottom);
        t.gci(b.clone(), c.clone());
        t.gci(c.clone(), Concept::Bottom);
        t.gci(loops.clone(), Concept::Exists(r, Box::new(loops.clone())));
        (t, vec![a, b, c, loops])
    }

    fn warm(shards: &SatShards, t: &TBox, qs: &[Concept]) -> Vec<DlOutcome> {
        let (a, b, _c, loops) = (&qs[0], &qs[1], &qs[2], &qs[3]);
        let mut verdicts =
            vec![shards.satisfiable(t, a, 100_000), shards.satisfiable(t, b, 100_000)];
        assert!(matches!(shards.explain(t, b, 100_000), Explanation::Unsat(_)));
        let _ = shards.enumerate(t, b, 100_000, usize::MAX);
        verdicts.push(shards.satisfiable(t, loops, 5));
        verdicts
    }

    #[test]
    fn round_trip_restores_every_entry_kind() {
        let (t, qs) = rich_fixture();
        let shards = SatShards::new();
        let verdicts = warm(&shards, &t, &qs);
        assert_eq!(verdicts, vec![DlOutcome::Sat, DlOutcome::Unsat, DlOutcome::ResourceLimit]);
        let blob = shards.snapshot(&t);
        assert_eq!(shards.stats().snapshots, 1);

        // A restarted process: same terminology rebuilt from scratch
        // (fresh uid), cold shards.
        let t2 = t.clone();
        let cold = SatShards::new();
        let report = cold.restore(&t2, &blob).expect("round trip");
        assert_eq!(report.entries, shards.len());
        assert!(report.witnesses >= 1, "Sat entry lost its witness");
        assert!(report.cores >= 1);
        assert!(report.families >= 1);
        assert_eq!(cold.stats().restores, 1);

        // Every warm query is a pure hit — verdicts agree, zero misses.
        assert_eq!(cold.satisfiable(&t2, &qs[0], 100_000), DlOutcome::Sat);
        assert_eq!(cold.satisfiable(&t2, &qs[1], 100_000), DlOutcome::Unsat);
        assert!(matches!(cold.explain(&t2, &qs[1], 100_000), Explanation::Unsat(_)));
        assert_eq!(cold.satisfiable(&t2, &qs[3], 5), DlOutcome::ResourceLimit);
        let stats = cold.stats();
        assert_eq!(stats.misses, 0, "restore failed to pre-warm: {stats}");
        assert_eq!(stats.hits, 4);
    }

    #[test]
    fn restored_witnesses_drive_delta_retention() {
        let (t, qs) = rich_fixture();
        let shards = SatShards::new();
        warm(&shards, &t, &qs);
        let blob = shards.snapshot(&t);

        let mut t2 = t.clone();
        let cold = SatShards::new();
        cold.restore(&t2, &blob).expect("round trip");
        // Additions since the snapshot: the restored entries revalidate
        // against the delta log instead of re-proving.
        let d = Concept::Atomic(t2.atom("D"));
        t2.gci(d.clone(), Concept::Bottom);
        assert_eq!(cold.satisfiable(&t2, &qs[0], 100_000), DlOutcome::Sat);
        assert_eq!(cold.satisfiable(&t2, &qs[1], 100_000), DlOutcome::Unsat);
        let stats = cold.stats();
        assert_eq!(stats.invalidations, 0, "additions cleared restored shards");
        assert!(stats.retained >= 1, "Unsat not retained: {stats}");
        assert!(stats.revalidated >= 1, "witness not revalidated: {stats}");
        // And a genuinely conflicting addition evicts the witness and
        // re-proves with the *new* verdict — no staleness.
        t2.gci(qs[0].clone(), Concept::Bottom);
        assert_eq!(cold.satisfiable(&t2, &qs[0], 100_000), DlOutcome::Unsat);
    }

    #[test]
    fn corruption_in_any_byte_is_rejected() {
        let (t, qs) = rich_fixture();
        let shards = SatShards::new();
        warm(&shards, &t, &qs);
        let blob = shards.snapshot(&t);
        let t2 = t.clone();

        // Truncation at several cut points.
        for cut in [0, 7, 8, 15, 16, blob.len() / 2, blob.len() - 1] {
            let cold = SatShards::new();
            let err = cold.restore(&t2, &blob[..cut]).expect_err("truncated blob accepted");
            assert!(
                matches!(err, SnapshotError::Truncated | SnapshotError::BadMagic),
                "cut at {cut}: {err:?}"
            );
            assert!(cold.is_empty(), "rejected restore left entries behind");
            assert_eq!(cold.stats().corrupt_rejected, 1);
        }

        // A bit flip anywhere in the payload trips the checksum; in the
        // header it trips magic/version/length.
        for pos in [0, 7, 20, blob.len() / 2, blob.len() - 9] {
            let mut bad = blob.clone();
            bad[pos] ^= 0x40;
            let cold = SatShards::new();
            let err = cold.restore(&t2, &bad).expect_err("bit-flipped blob accepted");
            assert!(cold.is_empty(), "bit flip at {pos} half-installed: {err:?}");
        }
    }

    #[test]
    fn checksum_catches_payload_tampering() {
        let (t, qs) = rich_fixture();
        let shards = SatShards::new();
        warm(&shards, &t, &qs);
        let mut blob = shards.snapshot(&t);
        // Flip a bit squarely inside the payload.
        let mid = 16 + (blob.len() - 24) / 2;
        blob[mid] ^= 0x01;
        let cold = SatShards::new();
        assert_eq!(cold.restore(&t.clone(), &blob), Err(SnapshotError::ChecksumMismatch));
    }

    #[test]
    fn diverged_or_destructive_tboxes_are_rejected() {
        let (t, qs) = rich_fixture();
        let shards = SatShards::new();
        warm(&shards, &t, &qs);
        let blob = shards.snapshot(&t);

        // A terminology with different content at the same revision.
        let mut other = TBox::new();
        let x = Concept::Atomic(other.atom("X"));
        other.role("R");
        for _ in 0..t.revision() {
            other.gci(x.clone(), Concept::Top);
        }
        let cold = SatShards::new();
        assert_eq!(cold.restore(&other, &blob), Err(SnapshotError::StampMismatch));
        assert_eq!(cold.stats().corrupt_rejected, 1);

        // A destructive edit after the snapshot revision.
        let mut retracted = t.clone();
        retracted.retract_gci(0);
        let cold = SatShards::new();
        assert_eq!(cold.restore(&retracted, &blob), Err(SnapshotError::StampMismatch));

        // A TBox that never reached the snapshot revision.
        let behind = TBox::new();
        let cold = SatShards::new();
        assert_eq!(cold.restore(&behind, &blob), Err(SnapshotError::StampMismatch));
    }

    #[test]
    fn warm_cache_refuses_restore() {
        let (t, qs) = rich_fixture();
        let shards = SatShards::new();
        warm(&shards, &t, &qs);
        let blob = shards.snapshot(&t);
        let t2 = t.clone();
        let target = SatShards::new();
        assert_eq!(target.satisfiable(&t2, &qs[0], 100_000), DlOutcome::Sat);
        assert_eq!(target.restore(&t2, &blob), Err(SnapshotError::WarmCache));
        // The warm entry is untouched.
        assert_eq!(target.len(), 1);
    }

    #[test]
    fn empty_snapshot_round_trips() {
        let (t, _) = rich_fixture();
        let shards = SatShards::new();
        let blob = shards.snapshot(&t);
        let cold = SatShards::new();
        let report = cold.restore(&t.clone(), &blob).expect("empty round trip");
        assert_eq!(report, RestoreReport::default());
    }

    #[test]
    fn seed_pool_survives_the_round_trip() {
        let (t, qs) = rich_fixture();
        let shards = SatShards::new();
        warm(&shards, &t, &qs);
        let blob = shards.snapshot(&t);
        let t2 = t.clone();
        let cold = SatShards::new();
        let report = cold.restore(&t2, &blob).expect("round trip");
        assert!(report.seeds >= 1, "certified core axioms lost from the pool");
    }
}
