//! Translation of ORM schemas into the DL fragment, following the shape of
//! the DLR mapping of \[JF05\] specialized to binary predicates.
//!
//! | ORM construct | DL axiom(s) |
//! |---|---|
//! | object type `A` | atomic concept `CA` |
//! | subtype `A <: B` | `CA ⊑ CB` (non-strict; see below) |
//! | implicit type exclusion | `CA ⊓ CB ⊑ ⊥` for unrelated top families |
//! | exclusive types | pairwise `CA ⊓ CB ⊑ ⊥` |
//! | total subtypes | `CSup ⊑ C1 ⊔ … ⊔ Cn` |
//! | fact `f(r1: A, r2: B)` | role `Rf`, `∃Rf.⊤ ⊑ CA`, `∃Rf⁻.⊤ ⊑ CB` |
//! | mandatory `r` | `player(r) ⊑ ∃dir(r).⊤` (disjunctive: a ⊔ of those) |
//! | uniqueness on role `r` | `⊤ ⊑ ≤1 dir(r)` |
//! | frequency `FC(min..max)` on `r` | `∃dir(r).⊤ ⊑ ≥min dir(r) ⊓ ≤max dir(r)` |
//! | exclusion of single roles | pairwise `∃dir(ri).⊤ ⊓ ∃dir(rj).⊤ ⊑ ⊥` |
//! | subset of single roles | `∃dir(sub).⊤ ⊑ ∃dir(sup).⊤` |
//! | subset of predicates | role inclusion `Rf ⊑ Rg` (inverted when cross-oriented) |
//! | exclusion of predicates | role disjointness |
//! | equality | both subset directions |
//!
//! `dir(r)` is `Rf` when `r` is the first role of its fact type and `Rf⁻`
//! when it is the second.
//!
//! **Unmapped constructs** (collected in [`Translation::unmapped`], exactly
//! the gaps the paper concedes for DLR in footnote 10): ring constraints,
//! value constraints, spanning uniqueness (inherent in DL role semantics,
//! harmless) and spanning frequency constraints. The *strictness* of
//! subtype populations is also approximated as plain inclusion — a DL
//! cannot see the difference, which is why Pattern 9's subtype loops are
//! invisible to the DL comparator and need the patterns or the bounded
//! model finder.

use crate::cache::{CacheStats, RestoreReport, SatShards, SnapshotError};
use crate::concept::{Concept, RoleExpr};
use crate::exec::{ExecCx, Interrupt};
use crate::explain::{
    ranked_repairs, ranked_repairs_cx, Explanation, MusEnumeration, MusFamily, RepairSet, UnsatCore,
};
use crate::par::{fan_out, fan_out_cx, SchedStats};
use crate::tableau::{DlOutcome, SearchOutcome};
use crate::tbox::{AxiomId, TBox};
use orm_model::{
    Constraint, ConstraintId, FactTypeId, ObjectTypeId, RoleId, Schema, SetComparisonKind,
};
use std::collections::HashMap;
use std::sync::Arc;

/// The ORM-level construct one TBox axiom was translated from — the
/// provenance table [`translate`] records for every axiom it emits (and
/// [`EditSession`] for every axiom it adds), keyed by [`AxiomId`]. An
/// unsat core mapped through this table ([`Translation::core_origins`])
/// names the *schema constraints* that doom a type or role, which is what
/// a modeler can actually act on.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AxiomOrigin {
    /// A declared subtype link `sub <: sup` (or a session `add_subtype`).
    Subtype {
        /// The subtype.
        sub: ObjectTypeId,
        /// The supertype.
        sup: ObjectTypeId,
    },
    /// ORM's implicit mutual exclusion of types without a common
    /// supertype.
    ImplicitExclusion {
        /// One of the two implicitly exclusive types.
        a: ObjectTypeId,
        /// The other.
        b: ObjectTypeId,
    },
    /// The typing axiom of one role of a fact type (`∃dir(r).⊤ ⊑ C`).
    FactTyping {
        /// The fact type.
        fact: FactTypeId,
        /// The role whose player the axiom types.
        role: RoleId,
    },
    /// A declared schema constraint (mandatory, uniqueness, frequency,
    /// set comparison, exclusive/total subtypes).
    Constraint(ConstraintId),
    /// A session-added type exclusion ([`EditSession::add_type_exclusion`]).
    TypeExclusion {
        /// One excluded type.
        a: ObjectTypeId,
        /// The other.
        b: ObjectTypeId,
    },
    /// A session-added (disjunctive) mandatory constraint
    /// ([`EditSession::add_mandatory`]).
    Mandatory {
        /// The constrained player type.
        player: ObjectTypeId,
        /// The roles of which at least one must be played.
        roles: Vec<RoleId>,
    },
    /// A session-added role subset ([`EditSession::add_role_subset`]).
    RoleSubset {
        /// The subset role.
        sub: RoleId,
        /// The superset role.
        sup: RoleId,
    },
    /// A session-added role exclusion ([`EditSession::add_role_exclusion`]).
    RoleExclusion {
        /// One excluded role.
        a: RoleId,
        /// The other.
        b: RoleId,
    },
}

/// The result of translating an ORM schema.
///
/// All satisfiability helpers ([`Translation::type_satisfiable`],
/// [`Translation::role_satisfiable`], [`Translation::type_subsumed_by`],
/// [`Translation::classify`]) answer through one sharded verdict cache
/// ([`SatShards`]), so the per-role sweeps and `O(n²)` classification
/// batteries a schema check runs pay for each distinct root label set
/// once — and the parallel batteries ([`Translation::classify_par`],
/// [`Translation::role_sweep_par`]) fan the same queries out across
/// worker threads without funneling through one lock. The cache
/// self-invalidates if `tbox` is ever mutated.
#[derive(Debug)]
pub struct Translation {
    /// The generated TBox.
    pub tbox: TBox,
    /// Concept id per object type.
    pub concept_of_type: HashMap<ObjectTypeId, Concept>,
    /// Role direction per ORM role: `Rf` or `Rf⁻`.
    pub role_dir: HashMap<RoleId, RoleExpr>,
    /// Human-readable notes about constructs the DL fragment cannot
    /// express.
    pub unmapped: Vec<String>,
    /// ORM provenance per emitted axiom (see [`AxiomOrigin`]).
    axiom_origins: HashMap<AxiomId, AxiomOrigin>,
    /// Sharded verdict cache behind all satisfiability helpers.
    cache: Arc<SatShards>,
}

impl Clone for Translation {
    /// Clones start with an *empty* verdict cache of their own:
    /// [`TBox::clone`] mints a fresh cache identity (clones may diverge),
    /// so sharing the `Arc` would make the original and the clone
    /// wholesale-invalidate each other's entries on every query.
    fn clone(&self) -> Translation {
        Translation {
            tbox: self.tbox.clone(),
            concept_of_type: self.concept_of_type.clone(),
            role_dir: self.role_dir.clone(),
            unmapped: self.unmapped.clone(),
            axiom_origins: self.axiom_origins.clone(),
            cache: Arc::new(SatShards::new()),
        }
    }
}

impl Translation {
    /// The concept "plays `role`" — `∃dir(role).⊤`.
    pub fn role_concept(&self, role: RoleId) -> Concept {
        Concept::some(self.role_dir[&role])
    }

    /// The concept of an object type.
    pub fn type_concept(&self, ty: ObjectTypeId) -> Concept {
        self.concept_of_type[&ty].clone()
    }

    /// Hit/miss counters of the shared verdict cache, aggregated across
    /// its shards.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// The sharded verdict cache itself — for layers above the
    /// translation (the reasoning service) that meter it directly, e.g.
    /// to book admission-control sheds and downgrades against its stats.
    pub fn shards(&self) -> &SatShards {
        &self.cache
    }

    /// Serialize the warm verdict cache into the versioned, checksummed
    /// snapshot format, keyed on this translation's current TBox
    /// revision — see [`SatShards::snapshot`].
    pub fn snapshot(&self) -> Vec<u8> {
        self.cache.snapshot(&self.tbox)
    }

    /// Install a snapshot taken by [`Translation::snapshot`] into this
    /// translation's (cold) cache. Corrupt bytes or a snapshot of a
    /// different/destructively-edited terminology are rejected with the
    /// cache untouched — see [`SatShards::restore`] for the gates.
    pub fn restore(&self, bytes: &[u8]) -> Result<RestoreReport, SnapshotError> {
        self.cache.restore(&self.tbox, bytes)
    }

    /// The ORM construct an emitted axiom came from, or `None` for axioms
    /// added behind the translation's back (raw [`EditSession::tbox`]
    /// mutations).
    pub fn axiom_origin(&self, id: AxiomId) -> Option<&AxiomOrigin> {
        self.axiom_origins.get(&id)
    }

    /// Explain why `query` is unsatisfiable under the translated TBox: a
    /// minimal unsat core of DL axioms (see [`crate::explain`]), or the
    /// `Satisfiable`/`ResourceLimit` outcome. Cores are cached beside
    /// verdicts in the sharded cache, so re-asking is free; map a core to
    /// its schema-level culprits with [`Translation::core_origins`].
    ///
    /// ```
    /// use orm_dl::{translate, AxiomOrigin, Explanation};
    /// use orm_model::SchemaBuilder;
    ///
    /// // Fig. 1: a PhD student must be both Student and Employee, but the
    /// // two are declared exclusive.
    /// let mut b = SchemaBuilder::new("fig1");
    /// let person = b.entity_type("Person").unwrap();
    /// let student = b.entity_type("Student").unwrap();
    /// let employee = b.entity_type("Employee").unwrap();
    /// let phd = b.entity_type("PhdStudent").unwrap();
    /// b.subtype(student, person).unwrap();
    /// b.subtype(employee, person).unwrap();
    /// b.subtype(phd, student).unwrap();
    /// b.subtype(phd, employee).unwrap();
    /// b.exclusive_types([student, employee]).unwrap();
    /// let schema = b.finish();
    ///
    /// let t = translate(&schema);
    /// let Explanation::Unsat(core) = t.explain_type(phd, 100_000) else {
    ///     panic!("PhdStudent must be unsatisfiable");
    /// };
    /// let origins = t.core_origins(&core);
    /// // The diagnosis names the two subtype links and the exclusion —
    /// // and nothing else.
    /// assert_eq!(origins.len(), 3);
    /// assert!(origins.iter().any(|o| matches!(o, AxiomOrigin::Constraint(_))));
    /// assert!(origins
    ///     .iter()
    ///     .any(|o| matches!(o, AxiomOrigin::Subtype { sub, .. } if *sub == phd)));
    /// ```
    pub fn explain_unsat(&self, query: &Concept, budget: u64) -> Explanation {
        self.cache.explain(&self.tbox, query, budget)
    }

    /// [`Translation::explain_unsat`] under an execution context: the
    /// extraction's probes inherit `cx`'s budget/deadline/token, and an
    /// interrupted run surfaces as `ResourceLimit` *without* caching
    /// anything (distinguish via `cx.check()`).
    pub fn explain_unsat_cx(&self, query: &Concept, cx: &ExecCx) -> Explanation {
        self.cache.explain_cx(&self.tbox, query, cx)
    }

    /// [`Translation::explain_unsat`] for an object type's concept.
    pub fn explain_type(&self, ty: ObjectTypeId, budget: u64) -> Explanation {
        self.explain_unsat(&self.type_concept(ty), budget)
    }

    /// [`Translation::explain_unsat_cx`] for an object type's concept.
    pub fn explain_type_cx(&self, ty: ObjectTypeId, cx: &ExecCx) -> Explanation {
        self.explain_unsat_cx(&self.type_concept(ty), cx)
    }

    /// [`Translation::explain_unsat`] for a role's `∃dir(r).⊤` concept.
    pub fn explain_role(&self, role: RoleId, budget: u64) -> Explanation {
        self.explain_unsat(&self.role_concept(role), budget)
    }

    /// [`Translation::explain_unsat_cx`] for a role's `∃dir(r).⊤` concept.
    pub fn explain_role_cx(&self, role: RoleId, cx: &ExecCx) -> Explanation {
        self.explain_unsat_cx(&self.role_concept(role), cx)
    }

    /// Enumerate the whole **family** of minimal unsat cores of `query` —
    /// every independent contradiction at once, up to `limit` (see
    /// [`crate::explain::enumerate_mus`]). Families are cached beside the
    /// `Unsat` verdicts in the sharded cache and warm-started across
    /// elements through its seed pool; map each core to schema-level
    /// culprits with [`Translation::core_origins`] and compute candidate
    /// fixes with [`Translation::repairs_for`].
    pub fn enumerate_unsat(&self, query: &Concept, budget: u64, limit: usize) -> MusEnumeration {
        self.cache.enumerate(&self.tbox, query, budget, limit)
    }

    /// [`Translation::enumerate_unsat`] under an execution context:
    /// enumeration stops cleanly mid-family on an interrupt, keeping the
    /// certified cores found so far (truncated, never uncertified).
    pub fn enumerate_unsat_cx(&self, query: &Concept, cx: &ExecCx, limit: usize) -> MusEnumeration {
        self.cache.enumerate_cx(&self.tbox, query, cx, limit)
    }

    /// [`Translation::enumerate_unsat`] for an object type's concept.
    pub fn enumerate_type(&self, ty: ObjectTypeId, budget: u64, limit: usize) -> MusEnumeration {
        self.enumerate_unsat(&self.type_concept(ty), budget, limit)
    }

    /// [`Translation::enumerate_unsat_cx`] for an object type's concept.
    pub fn enumerate_type_cx(&self, ty: ObjectTypeId, cx: &ExecCx, limit: usize) -> MusEnumeration {
        self.enumerate_unsat_cx(&self.type_concept(ty), cx, limit)
    }

    /// [`Translation::enumerate_unsat`] for a role's `∃dir(r).⊤` concept.
    pub fn enumerate_role(&self, role: RoleId, budget: u64, limit: usize) -> MusEnumeration {
        self.enumerate_unsat(&self.role_concept(role), budget, limit)
    }

    /// [`Translation::enumerate_unsat_cx`] for a role's `∃dir(r).⊤` concept.
    pub fn enumerate_role_cx(&self, role: RoleId, cx: &ExecCx, limit: usize) -> MusEnumeration {
        self.enumerate_unsat_cx(&self.role_concept(role), cx, limit)
    }

    /// The verified, recency-ranked repairs of an enumerated family for
    /// `query` ([`crate::explain::ranked_repairs`]): each ⊆-minimal
    /// hitting set over the family's cores, kept only when removing its
    /// axioms is re-proved to make `query` satisfiable, ranked most
    /// recent edit first. Map each repair's axioms to the ORM constructs
    /// a modeler would actually drop with
    /// [`Translation::repair_origins`].
    pub fn repairs_for(&self, query: &Concept, budget: u64, family: &MusFamily) -> Vec<RepairSet> {
        ranked_repairs(&self.tbox, query, budget, family)
    }

    /// [`Translation::repairs_for`] under an execution context: an
    /// interrupt drops the unverified candidate repairs; every returned
    /// repair is still individually re-proved to restore satisfiability.
    pub fn repairs_for_cx(
        &self,
        query: &Concept,
        cx: &ExecCx,
        family: &MusFamily,
    ) -> Vec<RepairSet> {
        ranked_repairs_cx(&self.tbox, query, cx, family)
    }

    /// The distinct ORM origins of a repair's axioms, in axiom order
    /// (deduplicated, like [`Translation::core_origins`]); axioms with no
    /// recorded origin are skipped.
    pub fn repair_origins(&self, repair: &RepairSet) -> Vec<&AxiomOrigin> {
        let mut out: Vec<&AxiomOrigin> = Vec::new();
        for id in &repair.axioms {
            if let Some(origin) = self.axiom_origins.get(id) {
                if !out.contains(&origin) {
                    out.push(origin);
                }
            }
        }
        out
    }

    /// The distinct ORM origins of a core's axioms, in core order
    /// (deduplicated — several axioms of one constraint collapse to one
    /// origin). Axioms with no recorded origin are skipped; count them via
    /// [`Translation::axiom_origin`] if exactness matters.
    pub fn core_origins(&self, core: &UnsatCore) -> Vec<&AxiomOrigin> {
        let mut out: Vec<&AxiomOrigin> = Vec::new();
        for id in &core.axioms {
            if let Some(origin) = self.axiom_origins.get(id) {
                if !out.contains(&origin) {
                    out.push(origin);
                }
            }
        }
        out
    }

    /// Satisfiability of an object type under the translation (cached).
    pub fn type_satisfiable(&self, ty: ObjectTypeId, budget: u64) -> DlOutcome {
        let query = self.type_concept(ty);
        self.cache.satisfiable(&self.tbox, &query, budget)
    }

    /// [`Translation::type_satisfiable`] under an execution context —
    /// interrupted runs surface as the distinct [`SearchOutcome`]
    /// variants and leave no cache entry behind.
    pub fn type_satisfiable_cx(&self, ty: ObjectTypeId, cx: &ExecCx) -> SearchOutcome {
        let query = self.type_concept(ty);
        self.cache.satisfiable_cx(&self.tbox, &query, cx)
    }

    /// Satisfiability of a role under the translation (cached).
    pub fn role_satisfiable(&self, role: RoleId, budget: u64) -> DlOutcome {
        let query = self.role_concept(role);
        self.cache.satisfiable(&self.tbox, &query, budget)
    }

    /// [`Translation::role_satisfiable`] under an execution context.
    pub fn role_satisfiable_cx(&self, role: RoleId, cx: &ExecCx) -> SearchOutcome {
        let query = self.role_concept(role);
        self.cache.satisfiable_cx(&self.tbox, &query, cx)
    }

    /// Whether the constraints force every `sub` instance to be a `sup`
    /// instance — *derived* subsumption, beyond the declared subtype links.
    /// `None` when the budget ran out. Cached: re-asking any pair is free.
    pub fn type_subsumed_by(
        &self,
        sub: ObjectTypeId,
        sup: ObjectTypeId,
        budget: u64,
    ) -> Option<bool> {
        let (sup_c, sub_c) = (self.type_concept(sup), self.type_concept(sub));
        self.cache.subsumes(&self.tbox, &sup_c, &sub_c, budget)
    }

    /// [`Translation::type_subsumed_by`] under an execution context:
    /// `Ok(None)` when the per-proof step budget ran out, `Err` when the
    /// context was cancelled or hit its deadline mid-proof.
    pub fn type_subsumed_by_cx(
        &self,
        sub: ObjectTypeId,
        sup: ObjectTypeId,
        cx: &ExecCx,
    ) -> Result<Option<bool>, Interrupt> {
        let (sup_c, sub_c) = (self.type_concept(sup), self.type_concept(sub));
        self.cache.subsumes_cx(&self.tbox, &sup_c, &sub_c, cx)
    }

    /// All ordered type pairs `(sub, sup)` with `sub ≠ sup`, in the order
    /// both classification drivers ask them.
    fn classify_pairs(&self, schema: &Schema) -> Vec<(ObjectTypeId, ObjectTypeId)> {
        let types: Vec<ObjectTypeId> = schema.object_types().map(|(t, _)| t).collect();
        let mut pairs =
            Vec::with_capacity(types.len().saturating_mul(types.len().saturating_sub(1)));
        for &sub in &types {
            for &sup in &types {
                if sub != sup {
                    pairs.push((sub, sup));
                }
            }
        }
        pairs
    }

    /// Classify the schema's object types: all derived subsumption pairs
    /// `(sub, sup)` with `sub ≠ sup`, including ones no subtype link
    /// declares (e.g. forced by mandatory/typing interplay). Inconclusive
    /// pairs (budget) are omitted.
    pub fn classify(&self, schema: &Schema, budget: u64) -> Vec<(ObjectTypeId, ObjectTypeId)> {
        self.classify_pairs(schema)
            .into_iter()
            .filter(|&(sub, sup)| self.type_subsumed_by(sub, sup, budget) == Some(true))
            .collect()
    }

    /// [`Translation::classify`] under an execution context: pairs whose
    /// proofs were interrupted or starved are omitted (like inconclusive
    /// pairs in the legacy API); once the context trips, the remaining
    /// pairs fail fast without recording cache entries.
    pub fn classify_cx(&self, schema: &Schema, cx: &ExecCx) -> Vec<(ObjectTypeId, ObjectTypeId)> {
        self.classify_pairs(schema)
            .into_iter()
            .filter(|&(sub, sup)| self.type_subsumed_by_cx(sub, sup, cx) == Ok(Some(true)))
            .collect()
    }

    /// [`Translation::classify`] fanned out over up to `threads` scoped
    /// worker threads (see [`crate::par::fan_out`]): the `O(n²)`
    /// subsumption queries are independent, and the sharded cache lets
    /// workers answer them without funneling through one lock. Returns
    /// the identical pair set in the identical order — the differential
    /// suites compare the two verdict for verdict.
    pub fn classify_par(
        &self,
        schema: &Schema,
        budget: u64,
        threads: usize,
    ) -> Vec<(ObjectTypeId, ObjectTypeId)> {
        let pairs = self.classify_pairs(schema);
        let verdicts = fan_out(&pairs, threads, |_, &(sub, sup)| {
            self.type_subsumed_by(sub, sup, budget) == Some(true)
        });
        pairs.into_iter().zip(verdicts).filter_map(|(pair, keep)| keep.then_some(pair)).collect()
    }

    /// [`Translation::classify_cx`] fanned out through the work-stealing
    /// scheduler ([`crate::par::fan_out_cx`]). Returns the derived pairs
    /// (identical set and order to the sequential run when uninterrupted)
    /// plus the scheduler's counters; pairs skipped after an interrupt
    /// are simply omitted, and no shard records an entry for them.
    pub fn classify_par_cx(
        &self,
        schema: &Schema,
        cx: &ExecCx,
        threads: usize,
    ) -> (Vec<(ObjectTypeId, ObjectTypeId)>, SchedStats) {
        let pairs = self.classify_pairs(schema);
        let batch = fan_out_cx(&pairs, threads, cx, |_, &(sub, sup)| {
            self.type_subsumed_by_cx(sub, sup, cx) == Ok(Some(true))
        });
        let derived = pairs
            .into_iter()
            .zip(batch.results)
            .filter_map(|(pair, keep)| (keep == Some(true)).then_some(pair))
            .collect();
        (derived, batch.stats)
    }

    /// The per-role satisfiability sweep: `∃dir(r).⊤` proved for every
    /// role of the schema, in `schema.roles()` order — the battery a
    /// whole-schema check runs.
    pub fn role_sweep(&self, schema: &Schema, budget: u64) -> Vec<(RoleId, DlOutcome)> {
        schema.roles().map(|(role, _)| (role, self.role_satisfiable(role, budget))).collect()
    }

    /// [`Translation::role_sweep`] under an execution context. Once the
    /// context trips, the remaining roles report the interrupt variant
    /// immediately (no proof attempted, nothing cached) — the sweep
    /// stays full-length so callers can see exactly which roles got a
    /// verdict.
    pub fn role_sweep_cx(&self, schema: &Schema, cx: &ExecCx) -> Vec<(RoleId, SearchOutcome)> {
        schema.roles().map(|(role, _)| (role, self.role_satisfiable_cx(role, cx))).collect()
    }

    /// The per-type satisfiability sweep, in `schema.object_types()`
    /// order — the sibling battery to [`Translation::role_sweep`].
    pub fn type_sweep(&self, schema: &Schema, budget: u64) -> Vec<(ObjectTypeId, DlOutcome)> {
        schema.object_types().map(|(ty, _)| (ty, self.type_satisfiable(ty, budget))).collect()
    }

    /// [`Translation::type_sweep`] under an execution context (see
    /// [`Translation::role_sweep_cx`] for interrupt semantics).
    pub fn type_sweep_cx(
        &self,
        schema: &Schema,
        cx: &ExecCx,
    ) -> Vec<(ObjectTypeId, SearchOutcome)> {
        schema.object_types().map(|(ty, _)| (ty, self.type_satisfiable_cx(ty, cx))).collect()
    }

    /// [`Translation::role_sweep`] fanned out over up to `threads` scoped
    /// worker threads. Same verdicts, same order.
    pub fn role_sweep_par(
        &self,
        schema: &Schema,
        budget: u64,
        threads: usize,
    ) -> Vec<(RoleId, DlOutcome)> {
        let roles: Vec<RoleId> = schema.roles().map(|(role, _)| role).collect();
        let verdicts = fan_out(&roles, threads, |_, &role| self.role_satisfiable(role, budget));
        roles.into_iter().zip(verdicts).collect()
    }

    /// [`Translation::role_sweep_cx`] fanned out through the
    /// work-stealing scheduler. Roles skipped after an interrupt report
    /// the interrupt's [`SearchOutcome`] variant (the same one a
    /// sequential sweep would give them), keeping the sweep full-length;
    /// the returned [`SchedStats`] says how many were skipped vs stolen.
    pub fn role_sweep_par_cx(
        &self,
        schema: &Schema,
        cx: &ExecCx,
        threads: usize,
    ) -> (Vec<(RoleId, SearchOutcome)>, SchedStats) {
        let roles: Vec<RoleId> = schema.roles().map(|(role, _)| role).collect();
        let batch = fan_out_cx(&roles, threads, cx, |_, &role| self.role_satisfiable_cx(role, cx));
        let skipped_as = match batch.interrupt {
            Some(Interrupt::Cancelled) | None => SearchOutcome::Cancelled,
            Some(Interrupt::DeadlineExceeded) => SearchOutcome::DeadlineExceeded,
        };
        let sweep = roles
            .into_iter()
            .zip(batch.results)
            .map(|(role, verdict)| (role, verdict.unwrap_or(skipped_as)))
            .collect();
        (sweep, batch.stats)
    }

    /// Begin an interactive edit session: constraint additions applied
    /// through the returned handle mutate the TBox **in place**, so the
    /// sharded verdict cache stays live and applies the delta retention
    /// rules (see [`crate::cache`]) instead of dying wholesale — the
    /// editor-in-the-loop flow re-runs its sweeps against warm shards.
    ///
    /// ```
    /// use orm_dl::{translate, DlOutcome};
    /// use orm_model::SchemaBuilder;
    ///
    /// let mut b = SchemaBuilder::new("s");
    /// let person = b.entity_type("Person").unwrap();
    /// let student = b.entity_type("Student").unwrap();
    /// let employee = b.entity_type("Employee").unwrap();
    /// b.subtype(student, person).unwrap();
    /// b.subtype(employee, person).unwrap();
    /// let schema = b.finish();
    ///
    /// let mut t = translate(&schema);
    /// let sweep = t.type_sweep(&schema, 100_000);
    /// assert!(sweep.iter().all(|(_, v)| *v == DlOutcome::Sat));
    ///
    /// // The modeler adds one exclusion; the re-run sweep replays the
    /// // unaffected verdicts from the surviving cache entries.
    /// t.edit().add_type_exclusion(student, employee);
    /// assert_eq!(t.type_satisfiable(person, 100_000), DlOutcome::Sat);
    /// let stats = t.cache_stats();
    /// assert_eq!(stats.invalidations, 0);
    /// assert!(stats.revalidated > 0);
    /// ```
    pub fn edit(&mut self) -> EditSession<'_> {
        EditSession { t: self }
    }
}

/// An interactive edit session over a [`Translation`] (see
/// [`Translation::edit`]): ORM-level constraint additions translated to
/// their DL axioms on the fly, against the live TBox. Each method mirrors
/// one row of the [module-level](self) translation table; all of them are
/// **pure additions**, so the verdict cache retains or revalidates its
/// entries instead of clearing. For anything the conveniences do not
/// cover, [`EditSession::tbox`] exposes the TBox directly — including the
/// destructive [`TBox::retract_gci`], which the cache answers with a
/// wholesale clear.
///
/// # Panics
/// The ORM-level methods panic when handed an [`ObjectTypeId`]/[`RoleId`]
/// the translation has never seen (they index the translation maps), and
/// on the degenerate inputs `SchemaBuilder` rejects as errors — an empty
/// mandatory role list (`⊔ ∅ = ⊥` would silently doom the player) and a
/// self-exclusion. The session has no error channel, so loud beats
/// silently-unsatisfiable.
pub struct EditSession<'a> {
    t: &'a mut Translation,
}

impl EditSession<'_> {
    /// Direct access to the TBox for edits the conveniences do not cover.
    pub fn tbox(&mut self) -> &mut TBox {
        &mut self.t.tbox
    }

    /// Add a subtype link `sub <: B` — `C_sub ⊑ C_sup`.
    pub fn add_subtype(&mut self, sub: ObjectTypeId, sup: ObjectTypeId) {
        let (c, d) = (self.t.type_concept(sub), self.t.type_concept(sup));
        let id = self.t.tbox.gci(c, d);
        self.t.axiom_origins.insert(id, AxiomOrigin::Subtype { sub, sup });
    }

    /// Declare two object types mutually exclusive — `C_a ⊓ C_b ⊑ ⊥`.
    pub fn add_type_exclusion(&mut self, a: ObjectTypeId, b: ObjectTypeId) {
        assert_ne!(a, b, "a type cannot be declared exclusive with itself");
        let pair = Concept::and([self.t.type_concept(a), self.t.type_concept(b)]);
        let id = self.t.tbox.gci(pair, Concept::Bottom);
        self.t.axiom_origins.insert(id, AxiomOrigin::TypeExclusion { a, b });
    }

    /// Make `roles` (disjunctively) mandatory for `player` —
    /// `C_player ⊑ ⊔ ∃dir(rᵢ).⊤`.
    pub fn add_mandatory(&mut self, player: ObjectTypeId, roles: &[RoleId]) {
        assert!(!roles.is_empty(), "a mandatory constraint needs at least one role");
        let plays = Concept::or(roles.iter().map(|r| self.t.role_concept(*r)).collect::<Vec<_>>());
        let player_c = self.t.type_concept(player);
        let id = self.t.tbox.gci(player_c, plays);
        self.t.axiom_origins.insert(id, AxiomOrigin::Mandatory { player, roles: roles.to_vec() });
    }

    /// Add a subset constraint between two single roles —
    /// `∃dir(sub).⊤ ⊑ ∃dir(sup).⊤`.
    pub fn add_role_subset(&mut self, sub: RoleId, sup: RoleId) {
        let (c, d) = (self.t.role_concept(sub), self.t.role_concept(sup));
        let id = self.t.tbox.gci(c, d);
        self.t.axiom_origins.insert(id, AxiomOrigin::RoleSubset { sub, sup });
    }

    /// Add an exclusion constraint between two single roles —
    /// `∃dir(a).⊤ ⊓ ∃dir(b).⊤ ⊑ ⊥`.
    pub fn add_role_exclusion(&mut self, a: RoleId, b: RoleId) {
        let pair = Concept::and([self.t.role_concept(a), self.t.role_concept(b)]);
        let id = self.t.tbox.gci(pair, Concept::Bottom);
        self.t.axiom_origins.insert(id, AxiomOrigin::RoleExclusion { a, b });
    }
}

/// Translate `schema` into a DL TBox, recording the ORM origin of every
/// emitted axiom (the provenance table diagnosis runs on).
pub fn translate(schema: &Schema) -> Translation {
    let mut tbox = TBox::new();
    let mut concept_of_type = HashMap::new();
    let mut role_dir = HashMap::new();
    let mut unmapped = Vec::new();
    let mut origins: HashMap<AxiomId, AxiomOrigin> = HashMap::new();
    let idx = schema.index();

    for (ty, ot) in schema.object_types() {
        let atom = tbox.atom(ot.name());
        concept_of_type.insert(ty, Concept::Atomic(atom));
        if ot.value_constraint().is_some() {
            unmapped
                .push(format!("value constraint on `{}` (DLR needs concrete domains)", ot.name()));
        }
    }

    // Subtyping (non-strict inclusion). Strictness is not expressible in a
    // DL: a subtype loop merely forces concept equivalence here, while ORM
    // semantics make loop members unsatisfiable (Pattern 9).
    for link in schema.subtype_links() {
        let id = tbox.gci(concept_of_type[&link.sub].clone(), concept_of_type[&link.sup].clone());
        origins.insert(id, AxiomOrigin::Subtype { sub: link.sub, sup: link.sup });
    }
    if schema.object_types().any(|(ty, _)| idx.on_subtype_cycle(ty)) {
        unmapped.push(
            "subtype loop present: strict-subset subtype semantics is not expressible \
             in the DL fragment"
                .to_owned(),
        );
    }

    // ORM's implicit mutual exclusion of types without a common supertype.
    let types: Vec<ObjectTypeId> = schema.object_types().map(|(id, _)| id).collect();
    for (i, &a) in types.iter().enumerate() {
        for &b in types.iter().skip(i + 1) {
            if !idx.may_overlap(a, b) {
                let id = tbox.gci(
                    Concept::and([concept_of_type[&a].clone(), concept_of_type[&b].clone()]),
                    Concept::Bottom,
                );
                origins.insert(id, AxiomOrigin::ImplicitExclusion { a, b });
            }
        }
    }

    // Fact types: roles + typing axioms.
    for (fid, ft) in schema.fact_types() {
        let role = tbox.role(ft.name());
        let first = ft.first();
        let second = ft.second();
        role_dir.insert(first, RoleExpr::direct(role));
        role_dir.insert(second, RoleExpr::inv_of(role));
        let id = tbox.gci(
            Concept::some(RoleExpr::direct(role)),
            concept_of_type[&schema.player(first)].clone(),
        );
        origins.insert(id, AxiomOrigin::FactTyping { fact: fid, role: first });
        let id = tbox.gci(
            Concept::some(RoleExpr::inv_of(role)),
            concept_of_type[&schema.player(second)].clone(),
        );
        origins.insert(id, AxiomOrigin::FactTyping { fact: fid, role: second });
    }

    for (cid, c) in schema.constraints() {
        let from = AxiomOrigin::Constraint(cid);
        match c {
            Constraint::Mandatory(m) => {
                let player = concept_of_type[&schema.player(m.roles[0])].clone();
                let plays = Concept::or(
                    m.roles.iter().map(|r| Concept::some(role_dir[r])).collect::<Vec<_>>(),
                );
                origins.insert(tbox.gci(player, plays), from);
            }
            Constraint::Uniqueness(u) => {
                if u.roles.len() == 1 {
                    let id = tbox.gci(Concept::Top, Concept::AtMost(1, role_dir[&u.roles[0]]));
                    origins.insert(id, from);
                }
                // A spanning uniqueness constraint is inherent: DL roles are
                // sets of pairs. Nothing to emit.
            }
            Constraint::Frequency(f) => {
                if f.roles.len() != 1 {
                    unmapped.push(format!(
                        "frequency constraint {} over several roles (DLR gap, paper \
                         footnote 10)",
                        f.notation()
                    ));
                    continue;
                }
                let dir = role_dir[&f.roles[0]];
                let mut bounds = vec![Concept::AtLeast(f.min, dir)];
                if let Some(max) = f.max {
                    bounds.push(Concept::AtMost(max, dir));
                }
                origins.insert(tbox.gci(Concept::some(dir), Concept::and(bounds)), from);
            }
            Constraint::SetComparison(sc) => {
                translate_set_comparison(&mut tbox, &role_dir, sc, cid, &mut origins)
            }
            Constraint::ExclusiveTypes(e) => {
                for (i, &a) in e.types.iter().enumerate() {
                    for &b in e.types.iter().skip(i + 1) {
                        let id = tbox.gci(
                            Concept::and([
                                concept_of_type[&a].clone(),
                                concept_of_type[&b].clone(),
                            ]),
                            Concept::Bottom,
                        );
                        origins.insert(id, from.clone());
                    }
                }
            }
            Constraint::TotalSubtypes(t) => {
                let id = tbox.gci(
                    concept_of_type[&t.supertype].clone(),
                    Concept::or(
                        t.subtypes.iter().map(|s| concept_of_type[s].clone()).collect::<Vec<_>>(),
                    ),
                );
                origins.insert(id, from);
            }
            Constraint::Ring(r) => {
                unmapped.push(format!(
                    "ring constraints {} on `{}` (DLR gap, paper footnote 10)",
                    r.kinds,
                    schema.fact_type(r.fact_type).name()
                ));
            }
        }
    }

    Translation {
        tbox,
        concept_of_type,
        role_dir,
        unmapped,
        axiom_origins: origins,
        cache: Arc::new(SatShards::new()),
    }
}

fn translate_set_comparison(
    tbox: &mut TBox,
    role_dir: &HashMap<RoleId, RoleExpr>,
    sc: &orm_model::SetComparison,
    cid: ConstraintId,
    origins: &mut HashMap<AxiomId, AxiomOrigin>,
) {
    let single = sc.over_single_roles();
    let record = |id: AxiomId, origins: &mut HashMap<AxiomId, AxiomOrigin>| {
        origins.insert(id, AxiomOrigin::Constraint(cid));
    };
    match sc.kind {
        SetComparisonKind::Subset => {
            if single {
                let sub = role_dir[&sc.args[0].roles()[0]];
                let sup = role_dir[&sc.args[1].roles()[0]];
                let id = tbox.gci(Concept::some(sub), Concept::some(sup));
                record(id, origins);
            } else {
                let id = emit_role_inclusion(tbox, role_dir, &sc.args[0], &sc.args[1]);
                record(id, origins);
            }
        }
        SetComparisonKind::Equality => {
            for i in 0..sc.args.len() {
                for j in 0..sc.args.len() {
                    if i == j {
                        continue;
                    }
                    if single {
                        let a = role_dir[&sc.args[i].roles()[0]];
                        let b = role_dir[&sc.args[j].roles()[0]];
                        let id = tbox.gci(Concept::some(a), Concept::some(b));
                        record(id, origins);
                    } else {
                        let id = emit_role_inclusion(tbox, role_dir, &sc.args[i], &sc.args[j]);
                        record(id, origins);
                    }
                }
            }
        }
        SetComparisonKind::Exclusion => {
            for (i, a) in sc.args.iter().enumerate() {
                for b in sc.args.iter().skip(i + 1) {
                    if single {
                        let ra = role_dir[&a.roles()[0]];
                        let rb = role_dir[&b.roles()[0]];
                        let id = tbox.gci(
                            Concept::and([Concept::some(ra), Concept::some(rb)]),
                            Concept::Bottom,
                        );
                        record(id, origins);
                    } else {
                        let (ra, rb) = (pair_expr(role_dir, a), pair_expr(role_dir, b));
                        let id = tbox.disjoint(ra, rb);
                        record(id, origins);
                    }
                }
            }
        }
    }
}

/// The role expression representing a whole-predicate sequence: `Rf` when
/// the sequence lists the fact's roles in order, `Rf⁻` when reversed.
fn pair_expr(role_dir: &HashMap<RoleId, RoleExpr>, seq: &orm_model::RoleSeq) -> RoleExpr {
    let first = seq.roles()[0];
    role_dir[&first]
}

fn emit_role_inclusion(
    tbox: &mut TBox,
    role_dir: &HashMap<RoleId, RoleExpr>,
    sub: &orm_model::RoleSeq,
    sup: &orm_model::RoleSeq,
) -> AxiomId {
    // (a, b) ⊆ (c, d): tuples of the sub predicate, read in the sequence's
    // orientation, are tuples of the super predicate in ITS orientation.
    // dir(first role) gives exactly that orientation.
    let sub_expr = pair_expr(role_dir, sub);
    let sup_expr = pair_expr(role_dir, sup);
    tbox.role_inclusion(sub_expr, sup_expr)
}

#[cfg(test)]
mod tests {
    use super::*;
    use orm_model::{RingKind, RoleSeq, SchemaBuilder, ValueConstraint};

    const BUDGET: u64 = 500_000;

    #[test]
    fn fig1_phd_student_unsat_in_dl() {
        let mut b = SchemaBuilder::new("fig1");
        let person = b.entity_type("Person").unwrap();
        let student = b.entity_type("Student").unwrap();
        let employee = b.entity_type("Employee").unwrap();
        let phd = b.entity_type("PhdStudent").unwrap();
        b.subtype(student, person).unwrap();
        b.subtype(employee, person).unwrap();
        b.subtype(phd, student).unwrap();
        b.subtype(phd, employee).unwrap();
        b.exclusive_types([student, employee]).unwrap();
        let s = b.finish();
        let t = translate(&s);
        assert_eq!(t.type_satisfiable(phd, BUDGET), DlOutcome::Unsat);
        for ty in [person, student, employee] {
            assert_eq!(t.type_satisfiable(ty, BUDGET), DlOutcome::Sat);
        }
    }

    #[test]
    fn implicit_exclusion_translated() {
        // Fig. 2: C under two unrelated tops.
        let mut b = SchemaBuilder::new("fig2");
        let a = b.entity_type("A").unwrap();
        let bb = b.entity_type("B").unwrap();
        let c = b.entity_type("C").unwrap();
        b.subtype(c, a).unwrap();
        b.subtype(c, bb).unwrap();
        let s = b.finish();
        let t = translate(&s);
        assert_eq!(t.type_satisfiable(c, BUDGET), DlOutcome::Unsat);
        assert_eq!(t.type_satisfiable(a, BUDGET), DlOutcome::Sat);
    }

    #[test]
    fn exclusion_mandatory_unsat_in_dl() {
        // Fig. 4a: mandatory r1, exclusion {r1, r3}: r3 unsatisfiable.
        let mut b = SchemaBuilder::new("fig4a");
        let a = b.entity_type("A").unwrap();
        let x = b.entity_type("X").unwrap();
        let y = b.entity_type("Y").unwrap();
        let f1 = b.fact_type("f1", a, x).unwrap();
        let f2 = b.fact_type("f2", a, y).unwrap();
        let r1 = b.schema().fact_type(f1).first();
        let r3 = b.schema().fact_type(f2).first();
        b.mandatory(r1).unwrap();
        b.exclusion_roles([r1, r3]).unwrap();
        let s = b.finish();
        let t = translate(&s);
        assert_eq!(t.role_satisfiable(r3, BUDGET), DlOutcome::Unsat);
        assert_eq!(t.role_satisfiable(r1, BUDGET), DlOutcome::Sat);
    }

    #[test]
    fn uniqueness_frequency_unsat_in_dl() {
        // Fig. 10: UC + FC(2-5) on r1.
        let mut b = SchemaBuilder::new("fig10");
        let a = b.entity_type("A").unwrap();
        let x = b.entity_type("X").unwrap();
        let f = b.fact_type("f", a, x).unwrap();
        let r1 = b.schema().fact_type(f).first();
        b.unique([r1]).unwrap();
        b.frequency([r1], 2, Some(5)).unwrap();
        let s = b.finish();
        let t = translate(&s);
        assert_eq!(t.role_satisfiable(r1, BUDGET), DlOutcome::Unsat);
    }

    #[test]
    fn subset_exclusion_conflict_in_dl() {
        // Fig. 8 variant on single roles.
        let mut b = SchemaBuilder::new("fig8");
        let a = b.entity_type("A").unwrap();
        let x = b.entity_type("X").unwrap();
        let f1 = b.fact_type("f1", a, x).unwrap();
        let f2 = b.fact_type("f2", a, x).unwrap();
        let r1 = b.schema().fact_type(f1).first();
        let r3 = b.schema().fact_type(f2).first();
        b.exclusion_roles([r1, r3]).unwrap();
        b.subset(RoleSeq::single(r1), RoleSeq::single(r3)).unwrap();
        let s = b.finish();
        let t = translate(&s);
        assert_eq!(t.role_satisfiable(r1, BUDGET), DlOutcome::Unsat);
        assert_eq!(t.role_satisfiable(r3, BUDGET), DlOutcome::Sat);
    }

    #[test]
    fn predicate_subset_becomes_role_inclusion() {
        let mut b = SchemaBuilder::new("s");
        let a = b.entity_type("A").unwrap();
        let x = b.entity_type("X").unwrap();
        let f1 = b.fact_type("f1", a, x).unwrap();
        let f2 = b.fact_type("f2", a, x).unwrap();
        let [r1, r2] = b.schema().fact_type(f1).roles();
        let [r3, r4] = b.schema().fact_type(f2).roles();
        b.subset(RoleSeq::pair(r1, r2), RoleSeq::pair(r3, r4)).unwrap();
        b.exclusion_roles([r1, r3]).unwrap();
        let s = b.finish();
        let t = translate(&s);
        // Pattern 6's Fig. 8 through the DL: populating f1 forces an f2
        // tuple with a shared r1/r3 player.
        assert_eq!(t.role_satisfiable(r1, BUDGET), DlOutcome::Unsat);
        let _ = r4;
    }

    #[test]
    fn rings_and_values_reported_unmapped() {
        let mut b = SchemaBuilder::new("s");
        let w = b.value_type("W", Some(ValueConstraint::enumeration(["a"]))).unwrap();
        let f = b.fact_type("rel", w, w).unwrap();
        b.ring(f, [RingKind::Acyclic, RingKind::Symmetric]).unwrap();
        let s = b.finish();
        let t = translate(&s);
        assert_eq!(t.unmapped.len(), 2);
        assert!(t.unmapped.iter().any(|m| m.contains("ring")));
        assert!(t.unmapped.iter().any(|m| m.contains("value constraint")));
        // And — illustrating the gap — the DL side considers the ring-doomed
        // fact satisfiable.
        let r = s.fact_type(f).first();
        assert_eq!(t.role_satisfiable(r, BUDGET), DlOutcome::Sat);
    }

    #[test]
    fn satisfiable_schema_stays_satisfiable() {
        // Fig. 14 (minus totality nuances): every role satisfiable in DL.
        let mut b = SchemaBuilder::new("fig14");
        let a = b.entity_type("A").unwrap();
        let bb = b.entity_type("B").unwrap();
        let c = b.entity_type("C").unwrap();
        b.subtype(bb, a).unwrap();
        b.subtype(c, a).unwrap();
        b.total_subtypes(a, [bb, c]).unwrap();
        let x = b.entity_type("X").unwrap();
        let f1 = b.fact_type("f1", bb, x).unwrap();
        let f2 = b.fact_type("f2", c, x).unwrap();
        let f3 = b.fact_type("f3", a, x).unwrap();
        let r1 = b.schema().fact_type(f1).first();
        let r3 = b.schema().fact_type(f2).first();
        let r5 = b.schema().fact_type(f3).first();
        b.mandatory(r1).unwrap();
        b.mandatory(r3).unwrap();
        b.exclusion_roles([r3, r5]).unwrap();
        let s = b.finish();
        let t = translate(&s);
        for r in [r1, r3, r5] {
            assert_eq!(t.role_satisfiable(r, BUDGET), DlOutcome::Sat, "role {r}");
        }
    }

    #[test]
    fn classification_recovers_declared_subtyping() {
        let mut b = SchemaBuilder::new("s");
        let person = b.entity_type("Person").unwrap();
        let student = b.entity_type("Student").unwrap();
        b.subtype(student, person).unwrap();
        let s = b.finish();
        let t = translate(&s);
        assert_eq!(t.type_subsumed_by(student, person, BUDGET), Some(true));
        assert_eq!(t.type_subsumed_by(person, student, BUDGET), Some(false));
        assert_eq!(t.classify(&s, BUDGET), vec![(student, person)]);
    }

    #[test]
    fn classification_finds_derived_subsumption() {
        // An unsatisfiable type is subsumed by everything — derived, not
        // declared: PhdStudent ⊑ Person but also ⊑ any other type.
        let mut b = SchemaBuilder::new("s");
        let person = b.entity_type("Person").unwrap();
        let student = b.entity_type("Student").unwrap();
        let employee = b.entity_type("Employee").unwrap();
        let phd = b.entity_type("Phd").unwrap();
        b.subtype(student, person).unwrap();
        b.subtype(employee, person).unwrap();
        b.subtype(phd, student).unwrap();
        b.subtype(phd, employee).unwrap();
        b.exclusive_types([student, employee]).unwrap();
        let s = b.finish();
        let t = translate(&s);
        // phd is unsatisfiable ⇒ subsumed by every type.
        for sup in [person, student, employee] {
            assert_eq!(t.type_subsumed_by(phd, sup, BUDGET), Some(true));
        }
        // But student is NOT subsumed by employee.
        assert_eq!(t.type_subsumed_by(student, employee, BUDGET), Some(false));
    }

    #[test]
    fn cloned_translation_keeps_an_independent_cache() {
        let mut b = SchemaBuilder::new("s");
        let person = b.entity_type("Person").unwrap();
        let student = b.entity_type("Student").unwrap();
        b.subtype(student, person).unwrap();
        let s = b.finish();
        let t = translate(&s);
        assert_eq!(t.type_satisfiable(person, BUDGET), DlOutcome::Sat);
        let clone = t.clone();
        // The clone starts cold; its queries must not disturb the
        // original's entries (the clone's TBox has a fresh cache uid).
        assert_eq!(clone.cache_stats(), crate::cache::CacheStats::default());
        assert_eq!(clone.type_satisfiable(person, BUDGET), DlOutcome::Sat);
        assert_eq!(t.type_satisfiable(person, BUDGET), DlOutcome::Sat);
        let stats = t.cache_stats();
        assert_eq!(stats.invalidations, 0, "clone thrashed the original's cache");
        assert_eq!(stats.hits, 1);
    }

    #[test]
    fn classify_par_matches_sequential_on_fig1() {
        let mut b = SchemaBuilder::new("s");
        let person = b.entity_type("Person").unwrap();
        let student = b.entity_type("Student").unwrap();
        let employee = b.entity_type("Employee").unwrap();
        let phd = b.entity_type("Phd").unwrap();
        b.subtype(student, person).unwrap();
        b.subtype(employee, person).unwrap();
        b.subtype(phd, student).unwrap();
        b.subtype(phd, employee).unwrap();
        b.exclusive_types([student, employee]).unwrap();
        let s = b.finish();
        let t = translate(&s);
        let sequential = t.classify(&s, BUDGET);
        for threads in [1, 2, 4, 8] {
            // Cold cache per run (clone mints a fresh one), then a warm
            // replay on the same translation.
            let fresh = t.clone();
            assert_eq!(fresh.classify_par(&s, BUDGET, threads), sequential, "{threads} cold");
            assert_eq!(fresh.classify_par(&s, BUDGET, threads), sequential, "{threads} warm");
        }
    }

    #[test]
    fn role_sweep_par_matches_sequential() {
        let mut b = SchemaBuilder::new("s");
        let a = b.entity_type("A").unwrap();
        let x = b.entity_type("X").unwrap();
        let f1 = b.fact_type("f1", a, x).unwrap();
        let f2 = b.fact_type("f2", a, x).unwrap();
        let r1 = b.schema().fact_type(f1).first();
        let r3 = b.schema().fact_type(f2).first();
        b.mandatory(r1).unwrap();
        b.exclusion_roles([r1, r3]).unwrap();
        let s = b.finish();
        let t = translate(&s);
        let sequential = t.role_sweep(&s, BUDGET);
        assert!(sequential.iter().any(|(_, v)| *v == DlOutcome::Unsat));
        for threads in [1, 2, 8] {
            let fresh = t.clone();
            assert_eq!(fresh.role_sweep_par(&s, BUDGET, threads), sequential);
        }
    }

    /// The sharded cache dedups parallel work exactly like the sequential
    /// cache: same miss count (one per distinct root label set), same
    /// hit+miss total for the same battery.
    #[test]
    fn parallel_battery_stats_match_sequential() {
        let mut b = SchemaBuilder::new("s");
        let tys: Vec<_> = (0..6).map(|i| b.entity_type(&format!("T{i}")).unwrap()).collect();
        for w in tys.windows(2) {
            b.subtype(w[1], w[0]).unwrap();
        }
        let s = b.finish();
        let t = translate(&s);
        t.classify(&s, BUDGET);
        let seq = t.cache_stats();
        let par = t.clone();
        par.classify_par(&s, BUDGET, 8);
        let stats = par.cache_stats();
        assert_eq!(stats.misses, seq.misses, "parallel battery re-proved a key");
        assert_eq!(stats.hits + stats.misses, seq.hits + seq.misses);
    }

    /// The edit-session flow: constraint additions keep the sharded
    /// cache live (no wholesale invalidation) and the re-run sweeps agree
    /// with a from-scratch translation of the edited schema.
    #[test]
    fn edit_session_keeps_shards_warm_and_correct() {
        let mut b = SchemaBuilder::new("s");
        let person = b.entity_type("Person").unwrap();
        let student = b.entity_type("Student").unwrap();
        let employee = b.entity_type("Employee").unwrap();
        let phd = b.entity_type("Phd").unwrap();
        b.subtype(student, person).unwrap();
        b.subtype(employee, person).unwrap();
        b.subtype(phd, student).unwrap();
        b.subtype(phd, employee).unwrap();
        let s = b.finish();
        let mut t = translate(&s);
        // Warm pass: everything satisfiable before the exclusion lands.
        for (_, v) in t.type_sweep(&s, BUDGET) {
            assert_eq!(v, DlOutcome::Sat);
        }
        // The modeler adds the Fig. 1 exclusion through the session.
        t.edit().add_type_exclusion(student, employee);
        let resweep = t.type_sweep(&s, BUDGET);
        assert_eq!(t.cache_stats().invalidations, 0, "addition thrashed the shards");
        assert!(t.cache_stats().retained + t.cache_stats().revalidated > 0);
        // Verdict-for-verdict agreement with a cold translation of the
        // same edited state.
        let mut fresh_schema = SchemaBuilder::new("s2");
        let p2 = fresh_schema.entity_type("Person").unwrap();
        let s2 = fresh_schema.entity_type("Student").unwrap();
        let e2 = fresh_schema.entity_type("Employee").unwrap();
        let phd2 = fresh_schema.entity_type("Phd").unwrap();
        fresh_schema.subtype(s2, p2).unwrap();
        fresh_schema.subtype(e2, p2).unwrap();
        fresh_schema.subtype(phd2, s2).unwrap();
        fresh_schema.subtype(phd2, e2).unwrap();
        fresh_schema.exclusive_types([s2, e2]).unwrap();
        let edited = fresh_schema.finish();
        let cold = translate(&edited);
        let cold_sweep = cold.type_sweep(&edited, BUDGET);
        for ((_, warm), (_, coldv)) in resweep.iter().zip(&cold_sweep) {
            assert_eq!(warm, coldv, "warm-shard verdict diverged from cold translation");
        }
        // And the edit actually bit: Phd is now unsatisfiable.
        assert_eq!(t.type_satisfiable(phd, BUDGET), DlOutcome::Unsat);
    }

    #[test]
    fn edit_session_role_ops_match_builder_translation() {
        // Fig. 4a built interactively: mandatory + exclusion added
        // through the session instead of the schema builder.
        let mut b = SchemaBuilder::new("s");
        let a = b.entity_type("A").unwrap();
        let x = b.entity_type("X").unwrap();
        let y = b.entity_type("Y").unwrap();
        let f1 = b.fact_type("f1", a, x).unwrap();
        let f2 = b.fact_type("f2", a, y).unwrap();
        let r1 = b.schema().fact_type(f1).first();
        let r3 = b.schema().fact_type(f2).first();
        let s = b.finish();
        let mut t = translate(&s);
        assert_eq!(t.role_satisfiable(r3, BUDGET), DlOutcome::Sat);
        {
            let mut session = t.edit();
            session.add_mandatory(a, &[r1]);
            session.add_role_exclusion(r1, r3);
        }
        assert_eq!(t.role_satisfiable(r3, BUDGET), DlOutcome::Unsat);
        assert_eq!(t.role_satisfiable(r1, BUDGET), DlOutcome::Sat);
        assert_eq!(t.cache_stats().invalidations, 0);
    }

    /// The Fig. 1 diagnosis end to end at the translation level: the
    /// minimal core maps to exactly the two guilty subtype links plus the
    /// exclusion constraint — the unrelated links stay out.
    #[test]
    fn fig1_core_maps_to_guilty_constraints() {
        let mut b = SchemaBuilder::new("fig1");
        let person = b.entity_type("Person").unwrap();
        let student = b.entity_type("Student").unwrap();
        let employee = b.entity_type("Employee").unwrap();
        let phd = b.entity_type("PhdStudent").unwrap();
        b.subtype(student, person).unwrap();
        b.subtype(employee, person).unwrap();
        b.subtype(phd, student).unwrap();
        b.subtype(phd, employee).unwrap();
        let exclusion = b.exclusive_types([student, employee]).unwrap();
        let s = b.finish();
        let t = translate(&s);
        let crate::explain::Explanation::Unsat(core) = t.explain_type(phd, BUDGET) else {
            panic!("PhdStudent must be unsatisfiable");
        };
        assert!(core.minimal);
        // Every core axiom has a recorded origin …
        for id in &core.axioms {
            assert!(t.axiom_origin(*id).is_some(), "axiom {id} lost its provenance");
        }
        // … and the distinct origins are exactly the two phd subtype
        // links and the exclusion.
        let origins = t.core_origins(&core);
        assert_eq!(origins.len(), 3, "unexpected origins: {origins:?}");
        assert!(origins.contains(&&AxiomOrigin::Subtype { sub: phd, sup: student }));
        assert!(origins.contains(&&AxiomOrigin::Subtype { sub: phd, sup: employee }));
        assert!(origins.contains(&&AxiomOrigin::Constraint(exclusion)));
        // Re-explaining is a cache hit, not a re-extraction.
        let before = t.cache_stats();
        let again = t.explain_type(phd, BUDGET);
        assert_eq!(again.core().map(|c| &c.axioms), Some(&core.axioms));
        assert_eq!(t.cache_stats().hits, before.hits + 1);
        assert_eq!(t.cache_stats().misses, before.misses);
    }

    /// Explanations agree with the plain verdicts on every element, and
    /// session-added constraints carry provenance into cores too.
    #[test]
    fn explanations_agree_with_verdicts_and_session_edits_attributed() {
        let mut b = SchemaBuilder::new("s");
        let a = b.entity_type("A").unwrap();
        let x = b.entity_type("X").unwrap();
        let y = b.entity_type("Y").unwrap();
        let f1 = b.fact_type("f1", a, x).unwrap();
        let f2 = b.fact_type("f2", a, y).unwrap();
        let r1 = b.schema().fact_type(f1).first();
        let r3 = b.schema().fact_type(f2).first();
        let s = b.finish();
        let mut t = translate(&s);
        {
            let mut session = t.edit();
            session.add_mandatory(a, &[r1]);
            session.add_role_exclusion(r1, r3);
        }
        for (role, _) in s.roles() {
            let verdict = t.role_satisfiable(role, BUDGET);
            assert_eq!(t.explain_role(role, BUDGET).verdict(), verdict, "role {role}");
        }
        let crate::explain::Explanation::Unsat(core) = t.explain_role(r3, BUDGET) else {
            panic!("r3 must be unsatisfiable");
        };
        let origins = t.core_origins(&core);
        assert!(origins.contains(&&AxiomOrigin::Mandatory { player: a, roles: vec![r1] }));
        assert!(origins.contains(&&AxiomOrigin::RoleExclusion { a: r1, b: r3 }));
    }

    #[test]
    fn disjunctive_mandatory_translates_as_union() {
        let mut b = SchemaBuilder::new("s");
        let a = b.entity_type("A").unwrap();
        let x = b.entity_type("X").unwrap();
        let f1 = b.fact_type("f1", a, x).unwrap();
        let f2 = b.fact_type("f2", a, x).unwrap();
        let r1 = b.schema().fact_type(f1).first();
        let r3 = b.schema().fact_type(f2).first();
        b.disjunctive_mandatory([r1, r3]).unwrap();
        b.exclusion_roles([r1, r3]).unwrap();
        let s = b.finish();
        let t = translate(&s);
        // "Exactly one of" is satisfiable (unlike double simple mandatory).
        assert_eq!(t.type_satisfiable(a, BUDGET), DlOutcome::Sat);
        assert_eq!(t.role_satisfiable(r1, BUDGET), DlOutcome::Sat);
    }
}
