//! Tableau-based concept satisfiability with respect to a TBox.
//!
//! The procedure is the standard completion-forest tableau for ALC with
//! inverse roles, a role hierarchy and unqualified number restrictions:
//!
//! * GCIs are *internalized*: every node carries `⊓(¬Cᵢ ⊔ Dᵢ)`;
//! * **pairwise (double) blocking** over ancestors guarantees termination
//!   in the presence of inverse roles and GCIs;
//! * the `≤`-rule merges mergeable neighbours (child into child, or child
//!   into the parent when inverse edges make the parent a neighbour) and
//!   clashes when more than `n` pairwise-distinct neighbours remain;
//! * non-deterministic rules (`⊔`, the merge choice) branch by cloning the
//!   completion forest — simple, and cheap at the sizes ORM schemas induce.
//!
//! A rule-application budget bounds runtime; exceeding it yields
//! [`DlOutcome::ResourceLimit`] rather than a wrong verdict. The
//! exponential behaviour this budget guards against is precisely the cost
//! the paper attributes to complete DL reasoning (§4).

use crate::concept::{Concept, RoleExpr};
use crate::tbox::TBox;
use std::collections::BTreeSet;

/// Verdict of a satisfiability check.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DlOutcome {
    /// A clash-free, fully expanded completion forest exists.
    Sat,
    /// Every branch clashes.
    Unsat,
    /// The rule budget was exhausted before an answer was certain.
    ResourceLimit,
}

/// Whether `sub ⊑ sup` follows from the TBox: the standard reduction to
/// unsatisfiability of `sub ⊓ ¬sup`.
///
/// Returns `Some(true/false)` on a definitive answer and `None` when the
/// budget ran out.
pub fn subsumes(tbox: &TBox, sup: &Concept, sub: &Concept, budget: u64) -> Option<bool> {
    let query = Concept::and([sub.clone(), Concept::not(sup.clone())]);
    match satisfiable(tbox, &query, budget) {
        DlOutcome::Unsat => Some(true),
        DlOutcome::Sat => Some(false),
        DlOutcome::ResourceLimit => None,
    }
}

/// Check satisfiability of `query` with respect to `tbox`, spending at most
/// `budget` rule applications.
pub fn satisfiable(tbox: &TBox, query: &Concept, budget: u64) -> DlOutcome {
    let internal = tbox.internalized();
    let mut root_label = BTreeSet::new();
    add_concept(&mut root_label, query.clone());
    add_concept(&mut root_label, internal.clone());
    let graph = Forest {
        nodes: vec![Node {
            alive: true,
            label: root_label,
            parent: None,
            edge: BTreeSet::new(),
            children: Vec::new(),
            distinct: BTreeSet::new(),
        }],
    };
    let mut budget = budget;
    expand(tbox, &internal, graph, &mut budget)
}

#[derive(Clone, Debug)]
struct Node {
    alive: bool,
    label: BTreeSet<Concept>,
    parent: Option<usize>,
    /// Role labels of the edge from `parent` to this node.
    edge: BTreeSet<RoleExpr>,
    children: Vec<usize>,
    /// Nodes asserted pairwise-distinct from this one.
    distinct: BTreeSet<usize>,
}

#[derive(Clone, Debug)]
struct Forest {
    nodes: Vec<Node>,
}

/// Flatten conjunctions eagerly when inserting (the ⊓-rule, fused).
fn add_concept(label: &mut BTreeSet<Concept>, c: Concept) {
    match c {
        Concept::Top => {}
        Concept::And(cs) => {
            for c in cs {
                add_concept(label, c);
            }
        }
        other => {
            label.insert(other);
        }
    }
}

impl Forest {
    fn alive(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.nodes.len()).filter(|i| self.nodes[*i].alive)
    }

    /// R-neighbours of `x`: children via a sub-role edge, plus the parent
    /// when the inverted edge label is a sub-role of `R`.
    fn neighbors(&self, tbox: &TBox, x: usize, role: RoleExpr) -> Vec<usize> {
        let mut out = Vec::new();
        for &child in &self.nodes[x].children {
            if !self.nodes[child].alive {
                continue;
            }
            if self.nodes[child].edge.iter().any(|s| tbox.is_subrole(*s, role)) {
                out.push(child);
            }
        }
        if let Some(parent) = self.nodes[x].parent {
            if self.nodes[parent].alive
                && self.nodes[x].edge.iter().any(|s| tbox.is_subrole(s.inverse(), role))
            {
                out.push(parent);
            }
        }
        out
    }

    fn has_clash(&self, tbox: &TBox) -> bool {
        for i in self.alive() {
            let node = &self.nodes[i];
            if node.label.contains(&Concept::Bottom) {
                return true;
            }
            for c in &node.label {
                if let Concept::Atomic(a) = c {
                    if node.label.contains(&Concept::NotAtomic(*a)) {
                        return true;
                    }
                }
            }
            if !node.edge.is_empty() && tbox.edge_violates_disjointness(&node.edge) {
                return true;
            }
            // ≤n R with > n pairwise-distinct R-neighbours.
            for c in &node.label {
                if let Concept::AtMost(n, r) = c {
                    let neighbors = self.neighbors(tbox, i, *r);
                    if neighbors.len() > *n as usize
                        && all_pairwise_distinct(self, &neighbors)
                    {
                        return true;
                    }
                }
            }
        }
        false
    }

    /// Ancestor chain of `x`, excluding `x`.
    fn ancestors(&self, x: usize) -> Vec<usize> {
        let mut out = Vec::new();
        let mut cur = self.nodes[x].parent;
        while let Some(p) = cur {
            out.push(p);
            cur = self.nodes[p].parent;
        }
        out
    }

    /// Pairwise blocking: `x` is blocked when some ancestor pair mirrors
    /// `x` and its parent exactly.
    fn blocked(&self, x: usize) -> bool {
        let Some(xp) = self.nodes[x].parent else { return false };
        for y in self.ancestors(x) {
            let Some(yp) = self.nodes[y].parent else { continue };
            if self.nodes[x].label == self.nodes[y].label
                && self.nodes[xp].label == self.nodes[yp].label
                && self.nodes[x].edge == self.nodes[y].edge
            {
                return true;
            }
            // A node below a blocked ancestor is indirectly blocked.
            if self.blocked_directly(y) {
                return true;
            }
        }
        false
    }

    fn blocked_directly(&self, x: usize) -> bool {
        let Some(xp) = self.nodes[x].parent else { return false };
        for y in self.ancestors(x) {
            let Some(yp) = self.nodes[y].parent else { continue };
            if self.nodes[x].label == self.nodes[y].label
                && self.nodes[xp].label == self.nodes[yp].label
                && self.nodes[x].edge == self.nodes[y].edge
            {
                return true;
            }
        }
        false
    }

    fn add_child(
        &mut self,
        parent: usize,
        edge: BTreeSet<RoleExpr>,
        label: BTreeSet<Concept>,
    ) -> usize {
        let id = self.nodes.len();
        self.nodes.push(Node {
            alive: true,
            label,
            parent: Some(parent),
            edge,
            children: Vec::new(),
            distinct: BTreeSet::new(),
        });
        self.nodes[parent].children.push(id);
        id
    }

    /// Merge node `from` into node `to`; both must be R-neighbours of the
    /// same node `via`, with `from` a child of `via`.
    fn merge(&mut self, via: usize, from: usize, to: usize) {
        debug_assert_eq!(self.nodes[from].parent, Some(via));
        let from_node = std::mem::replace(
            &mut self.nodes[from],
            Node {
                alive: false,
                label: BTreeSet::new(),
                parent: None,
                edge: BTreeSet::new(),
                children: Vec::new(),
                distinct: BTreeSet::new(),
            },
        );
        // Labels and distinctness accumulate on the survivor.
        let label = from_node.label;
        for c in label {
            self.nodes[to].label.insert(c);
        }
        let distinct = from_node.distinct;
        self.nodes[to].distinct.extend(distinct.iter().copied());
        for d in distinct {
            if self.nodes[d].alive {
                self.nodes[d].distinct.insert(to);
            }
        }
        // Edges: `from` was a child of `via`.
        if self.nodes[to].parent == Some(via) {
            // Sibling merge: fold edge labels.
            let edge = from_node.edge;
            for e in edge {
                self.nodes[to].edge.insert(e);
            }
        } else if Some(to) == self.nodes[via].parent {
            // Child-into-parent merge: `via —S→ from` becomes
            // `to —S⁻→ via` folded into via's existing up-edge.
            let inverted: Vec<RoleExpr> =
                from_node.edge.iter().map(|s| s.inverse()).collect();
            for e in inverted {
                self.nodes[via].edge.insert(e);
            }
        }
        // Reparent from's children under the survivor.
        let children = from_node.children;
        for child in &children {
            self.nodes[*child].parent = Some(to);
        }
        self.nodes[to].children.extend(children);
        self.nodes[via].children.retain(|c| *c != from);
    }
}

fn all_pairwise_distinct(forest: &Forest, nodes: &[usize]) -> bool {
    for (i, &a) in nodes.iter().enumerate() {
        for &b in nodes.iter().skip(i + 1) {
            if !forest.nodes[a].distinct.contains(&b) {
                return false;
            }
        }
    }
    true
}

fn expand(tbox: &TBox, internal: &Concept, mut forest: Forest, budget: &mut u64) -> DlOutcome {
    loop {
        if *budget == 0 {
            return DlOutcome::ResourceLimit;
        }
        *budget -= 1;

        if forest.has_clash(tbox) {
            return DlOutcome::Unsat;
        }

        // Deterministic ∀-rule to fixpoint.
        let mut changed = false;
        let alive: Vec<usize> = forest.alive().collect();
        for x in alive {
            let foralls: Vec<(RoleExpr, Concept)> = forest.nodes[x]
                .label
                .iter()
                .filter_map(|c| match c {
                    Concept::ForAll(r, body) => Some((*r, (**body).clone())),
                    _ => None,
                })
                .collect();
            for (r, body) in foralls {
                for y in forest.neighbors(tbox, x, r) {
                    if !label_subsumes(&forest.nodes[y].label, &body) {
                        add_concept(&mut forest.nodes[y].label, body.clone());
                        changed = true;
                    }
                }
            }
        }
        if changed {
            continue;
        }

        // ⊔-rule: first node with an unresolved disjunction.
        let alive: Vec<usize> = forest.alive().collect();
        for &x in &alive {
            let disjunction = forest.nodes[x].label.iter().find_map(|c| match c {
                Concept::Or(cs) if !cs.iter().any(|d| label_subsumes(&forest.nodes[x].label, d)) => {
                    Some(cs.clone())
                }
                _ => None,
            });
            if let Some(cs) = disjunction {
                let mut limited = false;
                for d in cs {
                    let mut branch = forest.clone();
                    add_concept(&mut branch.nodes[x].label, d);
                    match expand(tbox, internal, branch, budget) {
                        DlOutcome::Sat => return DlOutcome::Sat,
                        DlOutcome::Unsat => {}
                        DlOutcome::ResourceLimit => limited = true,
                    }
                }
                return if limited { DlOutcome::ResourceLimit } else { DlOutcome::Unsat };
            }
        }

        // ≤-rule: merge surplus neighbours.
        for &x in &alive {
            let at_mosts: Vec<(u32, RoleExpr)> = forest.nodes[x]
                .label
                .iter()
                .filter_map(|c| match c {
                    Concept::AtMost(n, r) => Some((*n, *r)),
                    _ => None,
                })
                .collect();
            for (n, r) in at_mosts {
                let neighbors = forest.neighbors(tbox, x, r);
                if neighbors.len() <= n as usize {
                    continue;
                }
                // Try every mergeable pair; merge the child of the pair.
                // At least one pair is mergeable here: were all pairs
                // asserted distinct, the clash check above would have
                // fired.
                let mut limited = false;
                let mut tried = false;
                for (i, &a) in neighbors.iter().enumerate() {
                    for &b in neighbors.iter().skip(i + 1) {
                        if forest.nodes[a].distinct.contains(&b) {
                            continue;
                        }
                        // At most one of a, b is x's parent; merge the
                        // child into the other node.
                        let (from, to) = if forest.nodes[x].parent == Some(a) {
                            (b, a)
                        } else {
                            (a, b)
                        };
                        tried = true;
                        let mut branch = forest.clone();
                        branch.merge(x, from, to);
                        match expand(tbox, internal, branch, budget) {
                            DlOutcome::Sat => return DlOutcome::Sat,
                            DlOutcome::Unsat => {}
                            DlOutcome::ResourceLimit => limited = true,
                        }
                    }
                }
                if !tried {
                    // Defensive: all pairs distinct yet uncaught above.
                    return DlOutcome::Unsat;
                }
                return if limited { DlOutcome::ResourceLimit } else { DlOutcome::Unsat };
            }
        }

        // Generating rules on unblocked nodes.
        let mut generated = false;
        for &x in &alive {
            if !forest.nodes[x].alive || forest.blocked(x) {
                continue;
            }
            let label = forest.nodes[x].label.clone();
            for c in &label {
                match c {
                    Concept::Exists(r, body) => {
                        let satisfied = forest
                            .neighbors(tbox, x, *r)
                            .into_iter()
                            .any(|y| label_subsumes(&forest.nodes[y].label, body));
                        if !satisfied {
                            let mut child_label = BTreeSet::new();
                            add_concept(&mut child_label, (**body).clone());
                            add_concept(&mut child_label, internal.clone());
                            forest.add_child(x, BTreeSet::from([*r]), child_label);
                            generated = true;
                        }
                    }
                    Concept::AtLeast(n, r) => {
                        let neighbors = forest.neighbors(tbox, x, *r);
                        let enough = neighbors.len() >= *n as usize
                            && has_n_pairwise_distinct(&forest, &neighbors, *n as usize);
                        if !enough {
                            let mut fresh = Vec::new();
                            for _ in 0..*n {
                                let mut child_label = BTreeSet::new();
                                add_concept(&mut child_label, internal.clone());
                                let id =
                                    forest.add_child(x, BTreeSet::from([*r]), child_label);
                                fresh.push(id);
                            }
                            for (i, &a) in fresh.iter().enumerate() {
                                for &b in fresh.iter().skip(i + 1) {
                                    forest.nodes[a].distinct.insert(b);
                                    forest.nodes[b].distinct.insert(a);
                                }
                            }
                            generated = true;
                        }
                    }
                    _ => {}
                }
                if generated {
                    break;
                }
            }
            if generated {
                break;
            }
        }
        if generated {
            continue;
        }

        // No rule applies: complete and clash-free.
        return DlOutcome::Sat;
    }
}

/// Whether `label` already makes `c` true syntactically (membership, with
/// conjunctions split).
fn label_subsumes(label: &BTreeSet<Concept>, c: &Concept) -> bool {
    match c {
        Concept::Top => true,
        Concept::And(cs) => cs.iter().all(|d| label_subsumes(label, d)),
        other => label.contains(other),
    }
}

/// Whether `nodes` contains `n` mutually-distinct members.
fn has_n_pairwise_distinct(forest: &Forest, nodes: &[usize], n: usize) -> bool {
    if n <= 1 {
        return !nodes.is_empty();
    }
    // Greedy clique search over the distinctness graph; n is tiny (≤ a few)
    // in ORM-generated workloads, so exhaustive search over subsets is fine.
    subsets_of_size(nodes, n).into_iter().any(|combo| {
        combo.iter().enumerate().all(|(i, &a)| {
            combo.iter().skip(i + 1).all(|&b| forest.nodes[a].distinct.contains(&b))
        })
    })
}

fn subsets_of_size(items: &[usize], k: usize) -> Vec<Vec<usize>> {
    if k > items.len() {
        return Vec::new();
    }
    if k == 0 {
        return vec![Vec::new()];
    }
    let mut out = Vec::new();
    for (i, &first) in items.iter().enumerate() {
        for mut rest in subsets_of_size(&items[i + 1..], k - 1) {
            rest.insert(0, first);
            out.push(rest);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::concept::Concept as C;

    const BUDGET: u64 = 500_000;

    fn atom(t: &mut TBox, name: &str) -> C {
        C::Atomic(t.atom(name))
    }

    #[test]
    fn top_is_satisfiable_and_bottom_is_not() {
        let t = TBox::new();
        assert_eq!(satisfiable(&t, &C::Top, BUDGET), DlOutcome::Sat);
        assert_eq!(satisfiable(&t, &C::Bottom, BUDGET), DlOutcome::Unsat);
    }

    #[test]
    fn atomic_clash() {
        let mut t = TBox::new();
        let a = atom(&mut t, "A");
        let query = C::and([a.clone(), C::not(a)]);
        assert_eq!(satisfiable(&t, &query, BUDGET), DlOutcome::Unsat);
    }

    #[test]
    fn subsumption_via_tbox() {
        let mut t = TBox::new();
        let a = atom(&mut t, "A");
        let b = atom(&mut t, "B");
        t.gci(a.clone(), b.clone());
        // A ⊓ ¬B unsatisfiable; A alone satisfiable.
        assert_eq!(
            satisfiable(&t, &C::and([a.clone(), C::not(b)]), BUDGET),
            DlOutcome::Unsat
        );
        assert_eq!(satisfiable(&t, &a, BUDGET), DlOutcome::Sat);
    }

    #[test]
    fn disjunction_branches() {
        let mut t = TBox::new();
        let a = atom(&mut t, "A");
        let b = atom(&mut t, "B");
        // (A ⊔ B) ⊓ ¬A is satisfiable through the B branch.
        let query = C::and([C::or([a.clone(), b.clone()]), C::not(a.clone())]);
        assert_eq!(satisfiable(&t, &query, BUDGET), DlOutcome::Sat);
        // (A ⊔ B) ⊓ ¬A ⊓ ¬B clashes on both branches.
        let query = C::and([C::or([a.clone(), b.clone()]), C::not(a), C::not(b)]);
        assert_eq!(satisfiable(&t, &query, BUDGET), DlOutcome::Unsat);
    }

    #[test]
    fn exists_and_forall_interact() {
        let mut t = TBox::new();
        let a = atom(&mut t, "A");
        let r = RoleExpr::direct(t.role("R"));
        // ∃R.A ⊓ ∀R.¬A is unsatisfiable.
        let query = C::and([
            C::Exists(r, Box::new(a.clone())),
            C::ForAll(r, Box::new(C::not(a.clone()))),
        ]);
        assert_eq!(satisfiable(&t, &query, BUDGET), DlOutcome::Unsat);
        // ∃R.A ⊓ ∀R.A is fine.
        let query = C::and([
            C::Exists(r, Box::new(a.clone())),
            C::ForAll(r, Box::new(a)),
        ]);
        assert_eq!(satisfiable(&t, &query, BUDGET), DlOutcome::Sat);
    }

    #[test]
    fn inverse_roles_propagate_back() {
        let mut t = TBox::new();
        let a = atom(&mut t, "A");
        let r = RoleExpr::direct(t.role("R"));
        // ¬A ⊓ ∃R.(∀R⁻.A): the successor forces A back onto the root.
        let query = C::and([
            C::not(a.clone()),
            C::Exists(r, Box::new(C::ForAll(r.inverse(), Box::new(a)))),
        ]);
        assert_eq!(satisfiable(&t, &query, BUDGET), DlOutcome::Unsat);
    }

    #[test]
    fn at_least_vs_at_most() {
        let mut t = TBox::new();
        let r = RoleExpr::direct(t.role("R"));
        // ≥2 R ⊓ ≤1 R unsatisfiable.
        let query = C::and([C::AtLeast(2, r), C::AtMost(1, r)]);
        assert_eq!(satisfiable(&t, &query, BUDGET), DlOutcome::Unsat);
        // ≥2 R ⊓ ≤2 R fine.
        let query = C::and([C::AtLeast(2, r), C::AtMost(2, r)]);
        assert_eq!(satisfiable(&t, &query, BUDGET), DlOutcome::Sat);
    }

    #[test]
    fn merge_resolves_surplus_neighbors() {
        let mut t = TBox::new();
        let a = atom(&mut t, "A");
        let b = atom(&mut t, "B");
        let r = RoleExpr::direct(t.role("R"));
        // ∃R.A ⊓ ∃R.B ⊓ ≤1 R: the two successors merge into one node that
        // is both A and B — satisfiable.
        let query = C::and([
            C::Exists(r, Box::new(a.clone())),
            C::Exists(r, Box::new(b.clone())),
            C::AtMost(1, r),
        ]);
        assert_eq!(satisfiable(&t, &query, BUDGET), DlOutcome::Sat);
        // Making A and B disjoint turns the merge into a clash.
        let mut t2 = TBox::new();
        let a2 = atom(&mut t2, "A");
        let b2 = atom(&mut t2, "B");
        let r2 = RoleExpr::direct(t2.role("R"));
        t2.gci(C::and([a2.clone(), b2.clone()]), C::Bottom);
        let query = C::and([
            C::Exists(r2, Box::new(a2)),
            C::Exists(r2, Box::new(b2)),
            C::AtMost(1, r2),
        ]);
        assert_eq!(satisfiable(&t2, &query, BUDGET), DlOutcome::Unsat);
    }

    #[test]
    fn role_hierarchy_counts_subroles() {
        let mut t = TBox::new();
        let r = t.role("R");
        let s = t.role("S");
        t.role_inclusion(RoleExpr::direct(s), RoleExpr::direct(r));
        // ∃S.⊤ ⊓ ≤0 R: the S-successor is also an R-neighbour.
        let query = C::and([
            C::some(RoleExpr::direct(s)),
            C::AtMost(0, RoleExpr::direct(r)),
        ]);
        assert_eq!(satisfiable(&t, &query, BUDGET), DlOutcome::Unsat);
    }

    #[test]
    fn role_disjointness_clashes() {
        let mut t = TBox::new();
        let r = t.role("R");
        let s = t.role("S");
        t.disjoint(RoleExpr::direct(r), RoleExpr::direct(s));
        // ∃R.⊤ ⊓ ∃S.⊤ ⊓ ≤1 R ⊓ ≤1 S — fine, two separate successors…
        let fine = C::and([
            C::some(RoleExpr::direct(r)),
            C::some(RoleExpr::direct(s)),
        ]);
        assert_eq!(satisfiable(&t, &fine, BUDGET), DlOutcome::Sat);
        // …but forcing them onto one successor clashes. With ≤1 over a
        // common super-role Q of both R and S, the successors must merge.
        let mut t2 = TBox::new();
        let r2 = t2.role("R");
        let s2 = t2.role("S");
        let q2 = t2.role("Q");
        t2.role_inclusion(RoleExpr::direct(r2), RoleExpr::direct(q2));
        t2.role_inclusion(RoleExpr::direct(s2), RoleExpr::direct(q2));
        t2.disjoint(RoleExpr::direct(r2), RoleExpr::direct(s2));
        let clash = C::and([
            C::some(RoleExpr::direct(r2)),
            C::some(RoleExpr::direct(s2)),
            C::AtMost(1, RoleExpr::direct(q2)),
        ]);
        assert_eq!(satisfiable(&t2, &clash, BUDGET), DlOutcome::Unsat);
    }

    #[test]
    fn infinite_model_requires_blocking() {
        // ⊤ ⊑ ∃R.⊤ has only infinite (or cyclic) models; blocking must
        // terminate with Sat.
        let mut t = TBox::new();
        let r = RoleExpr::direct(t.role("R"));
        t.gci(C::Top, C::some(r));
        assert_eq!(satisfiable(&t, &C::Top, BUDGET), DlOutcome::Sat);
    }

    #[test]
    fn blocking_with_inverse_cycles() {
        // A ⊑ ∃R.A with ∀R⁻ constraints — classic pairwise-blocking
        // exercise; must terminate.
        let mut t = TBox::new();
        let a = atom(&mut t, "A");
        let r = RoleExpr::direct(t.role("R"));
        t.gci(a.clone(), C::Exists(r, Box::new(a.clone())));
        t.gci(C::Top, C::ForAll(r.inverse(), Box::new(a.clone())));
        assert_eq!(satisfiable(&t, &a, BUDGET), DlOutcome::Sat);
    }

    #[test]
    fn budget_exhaustion_is_reported() {
        let mut t = TBox::new();
        let r = RoleExpr::direct(t.role("R"));
        t.gci(C::Top, C::some(r));
        assert_eq!(satisfiable(&t, &C::Top, 2), DlOutcome::ResourceLimit);
    }

    #[test]
    fn functionality_with_inverse_mandatory() {
        // The ORM idiom: ∃R.⊤ ⊑ A, A ⊑ ∃R.⊤, ⊤ ⊑ ≤1 R — satisfiable.
        let mut t = TBox::new();
        let a = atom(&mut t, "A");
        let r = RoleExpr::direct(t.role("R"));
        t.gci(C::some(r), a.clone());
        t.gci(a.clone(), C::some(r));
        t.gci(C::Top, C::AtMost(1, r));
        assert_eq!(satisfiable(&t, &a, BUDGET), DlOutcome::Sat);
    }

    #[test]
    fn frequency_style_contradiction() {
        // ∃R.⊤ ⊑ ≥2 R and ⊤ ⊑ ≤1 R: playing R at all is impossible.
        let mut t = TBox::new();
        let r = RoleExpr::direct(t.role("R"));
        t.gci(C::some(r), C::AtLeast(2, r));
        t.gci(C::Top, C::AtMost(1, r));
        assert_eq!(satisfiable(&t, &C::some(r), BUDGET), DlOutcome::Unsat);
        // But the TBox itself (⊤) is satisfiable — weak satisfiability.
        assert_eq!(satisfiable(&t, &C::Top, BUDGET), DlOutcome::Sat);
    }
}
