//! Tableau-based concept satisfiability with respect to a TBox.
//!
//! The procedure is the standard completion-forest tableau for ALC with
//! inverse roles, a role hierarchy and unqualified number restrictions
//! (GCIs internalized, pairwise blocking for termination, `≤`-merging) —
//! but engineered around three structural decisions that replace the
//! original clone-per-branch design (kept in [`crate::classic`] as the
//! differential baseline):
//!
//! * **Hash-consed labels** — every concept is interned once into an
//!   [`crate::arena::Arena`]; node labels are sorted `Vec<ConceptId>`, so
//!   membership is a `u32` binary search, the `A ⊓ ¬A` clash test is one
//!   lookup via the precomputed atom complement, and the label equalities
//!   of pairwise blocking compare ids (after an incrementally maintained
//!   XOR fingerprint rules out almost all candidates).
//! * **Trail-based backtracking** — non-deterministic choices (`⊔`
//!   disjuncts, `≤`-merge pairs) no longer clone the forest. Every
//!   mutation (label/edge/distinctness insert, node creation, kill,
//!   reparent) pushes an undo record on a trail; a branch point is a trail
//!   mark, and abandoning a branch pops records back to the mark.
//! * **Incremental scheduling** — a dirty-node worklist drives the
//!   deterministic rules (`∀`-propagation, clash detection) instead of a
//!   full-forest rescan per iteration; `⊔`/`∃`/`≥` candidates live on
//!   agendas written at label-insert time, consumed through
//!   rollback-aware cursors; and role-hierarchy queries go through the
//!   [`crate::tbox::RoleClosure`] bitsets (per-edge upward closures
//!   maintained on the nodes) rather than per-call `is_subrole` walks.
//! * **Dependency-directed backjumping** — every derived fact (label
//!   member, edge role, distinctness pair, node creation) carries a
//!   *dependency set*: the set of open choice points (`⊔` disjunct and
//!   `≤`-merge decisions) it transitively rests on, encoded as a `u64`
//!   bitmask over decision levels. A clash reports the union of its
//!   culprits' dependency sets; when a choice point's alternatives are
//!   refuted by a conflict that does not mention the choice's own level,
//!   the remaining alternatives are skipped and the conflict propagates
//!   to the deepest relevant choice point directly — the DPLL→CDCL
//!   non-chronological jump, threaded through the trail. Levels beyond 63
//!   share the saturation bit 63 and never skip (strictly conservative,
//!   so verdicts are unaffected).
//! * **Axiom-usage tracking** — alongside each fact's decision-level
//!   dependency set rides an *axiom set*: a bitmask over the TBox's
//!   axioms (in [`TBox::axiom_id_at_flat`] order, saturating at bit 63
//!   like the decision bits) naming which axioms the fact transitively
//!   rests on. Internalized GCI conjuncts seed their own axiom's bit;
//!   edge facts carry the role-inclusion axioms (conservatively, all of
//!   them — the role closure may have used any); disjointness clashes add
//!   the disjointness declarations. A clash's conflict therefore reports
//!   not just *which choices* but *which axioms* it used — the seed
//!   [`crate::explain`] shrinks into a minimal unsat core. The sets are
//!   over-approximations by construction; only [`satisfiable_with_conflict`]
//!   pays for building them (the plain entry points run with empty masks).
//!
//! # Budget semantics
//!
//! `budget` counts **rule applications**, exactly as in the original
//! engine: one unit per scheduler step — processing one dirty node
//! (`∀`-propagation plus that node's clash checks), opening one
//! non-deterministic choice point (`⊔` or `≤`), applying one generating
//! rule (`∃`/`≥`), or certifying completeness at quiescence. The count is
//! global across all branches of the search, not per branch. When the
//! budget reaches zero before the search concludes, the verdict is
//! [`DlOutcome::ResourceLimit`] — never a wrong answer. This is the knob
//! callers (e.g. `Translation::type_satisfiable`) use to bound the
//! exponential worst case the paper attributes to complete DL reasoning
//! (§4).

use crate::arena::{invert_role_expr, Arena, CKind, ConceptId, RoleExprId};
use crate::concept::Concept;
use crate::exec::{ExecCx, Interrupt, CHECK_INTERVAL};
use crate::tbox::{AxiomId, AxiomKind, RoleClosure, TBox};

/// Verdict of a satisfiability check.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DlOutcome {
    /// A clash-free, fully expanded completion forest exists.
    Sat,
    /// Every branch clashes.
    Unsat,
    /// The rule budget was exhausted before an answer was certain.
    ResourceLimit,
}

/// Verdict of a context-driven search ([`satisfiable_cx`] and friends):
/// the two certain answers plus the three *distinct* ways a run can stop
/// without one. The legacy [`DlOutcome`] collapses all three resource
/// variants into `ResourceLimit`; context-aware callers need to tell
/// them apart — a `BudgetExhausted` is a per-proof policy outcome worth
/// caching (stamped with the budget it starved at), while `Cancelled`
/// and `DeadlineExceeded` are external interruptions that say nothing
/// about the proof and must never produce a cache entry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SearchOutcome {
    /// A clash-free, fully expanded completion forest exists.
    Sat,
    /// Every branch clashes.
    Unsat,
    /// The context's per-proof step budget ran out mid-search.
    BudgetExhausted,
    /// The context's wall-clock deadline passed mid-search.
    DeadlineExceeded,
    /// The context's cancellation token was tripped mid-search.
    Cancelled,
}

impl SearchOutcome {
    /// The external interruption behind this outcome, if any.
    #[must_use]
    pub fn interrupt(self) -> Option<Interrupt> {
        match self {
            SearchOutcome::Cancelled => Some(Interrupt::Cancelled),
            SearchOutcome::DeadlineExceeded => Some(Interrupt::DeadlineExceeded),
            _ => None,
        }
    }

    /// Whether the search reached a certain verdict (`Sat` or `Unsat`).
    #[must_use]
    pub fn is_verdict(self) -> bool {
        matches!(self, SearchOutcome::Sat | SearchOutcome::Unsat)
    }
}

impl From<Interrupt> for SearchOutcome {
    fn from(interrupt: Interrupt) -> Self {
        match interrupt {
            Interrupt::Cancelled => SearchOutcome::Cancelled,
            Interrupt::DeadlineExceeded => SearchOutcome::DeadlineExceeded,
        }
    }
}

impl From<SearchOutcome> for DlOutcome {
    /// Collapse to the legacy three-way verdict: every way of stopping
    /// without an answer is a `ResourceLimit` — never a wrong verdict.
    fn from(outcome: SearchOutcome) -> Self {
        match outcome {
            SearchOutcome::Sat => DlOutcome::Sat,
            SearchOutcome::Unsat => DlOutcome::Unsat,
            SearchOutcome::BudgetExhausted
            | SearchOutcome::DeadlineExceeded
            | SearchOutcome::Cancelled => DlOutcome::ResourceLimit,
        }
    }
}

/// Whether `sub ⊑ sup` follows from the TBox: the standard reduction to
/// unsatisfiability of `sub ⊓ ¬sup`.
///
/// Returns `Some(true/false)` on a definitive answer and `None` when the
/// budget ran out.
///
/// ```
/// use orm_dl::concept::Concept;
/// use orm_dl::tableau::subsumes;
/// use orm_dl::tbox::TBox;
///
/// let mut tbox = TBox::new();
/// let a = Concept::Atomic(tbox.atom("A"));
/// let b = Concept::Atomic(tbox.atom("B"));
/// tbox.gci(a.clone(), b.clone());
/// assert_eq!(subsumes(&tbox, &b, &a, 100_000), Some(true)); // A ⊑ B
/// assert_eq!(subsumes(&tbox, &a, &b, 100_000), Some(false)); // B ⋢ A
/// assert_eq!(subsumes(&tbox, &a, &b, 0), None); // out of budget
/// ```
///
/// Repeated subsumption queries against one TBox (classification sweeps)
/// should go through [`crate::cache::SatCache::subsumes`] instead, which
/// memoizes verdicts per root label set.
pub fn subsumes(tbox: &TBox, sup: &Concept, sub: &Concept, budget: u64) -> Option<bool> {
    let query = Concept::and([sub.clone(), Concept::not(sup.clone())]);
    match satisfiable(tbox, &query, budget) {
        DlOutcome::Unsat => Some(true),
        DlOutcome::Sat => Some(false),
        DlOutcome::ResourceLimit => None,
    }
}

/// Check satisfiability of `query` with respect to `tbox`, spending at most
/// `budget` rule applications (see the module docs for what one unit of
/// budget buys).
///
/// Each call proves its verdict from scratch; batch workloads that re-ask
/// overlapping queries should route through
/// [`crate::cache::SatCache::satisfiable`].
///
/// ```
/// use orm_dl::concept::Concept;
/// use orm_dl::tableau::{satisfiable, DlOutcome};
/// use orm_dl::tbox::TBox;
///
/// let mut tbox = TBox::new();
/// let a = Concept::Atomic(tbox.atom("A"));
/// let b = Concept::Atomic(tbox.atom("B"));
/// tbox.gci(a.clone(), b.clone());
/// tbox.gci(Concept::and([a.clone(), b.clone()]), Concept::Bottom);
/// // A ⊑ B together with A ⊓ B ⊑ ⊥ dooms A.
/// assert_eq!(satisfiable(&tbox, &a, 100_000), DlOutcome::Unsat);
/// assert_eq!(satisfiable(&tbox, &b, 100_000), DlOutcome::Sat);
/// ```
pub fn satisfiable(tbox: &TBox, query: &Concept, budget: u64) -> DlOutcome {
    let mut engine = Engine::new(tbox, query, budget);
    if engine.clash.is_some() {
        return DlOutcome::Unsat;
    }
    match engine.search() {
        SResult::Sat => DlOutcome::Sat,
        SResult::Unsat(_) => DlOutcome::Unsat,
        SResult::Limit => DlOutcome::ResourceLimit,
    }
}

/// [`satisfiable`] under an execution context: the per-proof step budget
/// comes from [`ExecCx::steps`], the deadline and cancellation token are
/// checked cooperatively at every worklist pop and choice point, and the
/// run's step count is flushed into the context's [`crate::exec::Meter`].
/// An interrupted run reports the *distinct* [`SearchOutcome`] variant —
/// never a wrong verdict.
///
/// ```
/// use orm_dl::concept::Concept;
/// use orm_dl::exec::ExecCx;
/// use orm_dl::tableau::{satisfiable_cx, SearchOutcome};
/// use orm_dl::tbox::TBox;
///
/// let mut tbox = TBox::new();
/// let a = Concept::Atomic(tbox.atom("A"));
/// tbox.gci(a.clone(), Concept::Bottom);
/// let cx = ExecCx::with_steps(100_000);
/// assert_eq!(satisfiable_cx(&tbox, &a, &cx), SearchOutcome::Unsat);
/// // A pre-cancelled context stops before proving anything.
/// let cancelled = ExecCx::unlimited();
/// cancelled.cancel();
/// assert_eq!(satisfiable_cx(&tbox, &a, &cancelled), SearchOutcome::Cancelled);
/// ```
pub fn satisfiable_cx(tbox: &TBox, query: &Concept, cx: &ExecCx) -> SearchOutcome {
    // Already-interrupted contexts fail deterministically before any
    // search — a short proof must not slip past an expired deadline.
    if let Err(interrupt) = cx.check() {
        return interrupt.into();
    }
    cx.note_proof();
    let mut engine = Engine::new_cx(tbox, query, cx);
    if engine.clash.is_some() {
        engine.finish_metering();
        return SearchOutcome::Unsat;
    }
    let result = engine.search();
    engine.finish_metering();
    engine.outcome(result)
}

/// [`satisfiable_with_witness`] under an execution context; the witness
/// is extracted only on a certain `Sat` verdict.
pub fn satisfiable_with_witness_cx(
    tbox: &TBox,
    query: &Concept,
    cx: &ExecCx,
) -> (SearchOutcome, Option<Witness>) {
    if let Err(interrupt) = cx.check() {
        return (interrupt.into(), None);
    }
    cx.note_proof();
    let mut engine = Engine::new_cx(tbox, query, cx);
    if engine.clash.is_some() {
        engine.finish_metering();
        return (SearchOutcome::Unsat, None);
    }
    let result = engine.search();
    engine.finish_metering();
    match engine.outcome(result) {
        SearchOutcome::Sat => (SearchOutcome::Sat, Some(engine.into_witness())),
        other => (other, None),
    }
}

/// [`satisfiable_with_conflict`] under an execution context; the
/// conflict seed is reported only on a certain `Unsat` verdict.
pub fn satisfiable_with_conflict_cx(
    tbox: &TBox,
    query: &Concept,
    cx: &ExecCx,
) -> (SearchOutcome, Option<Vec<AxiomId>>) {
    if let Err(interrupt) = cx.check() {
        return (interrupt.into(), None);
    }
    cx.note_proof();
    let mut engine = Engine::new_tracking_cx(tbox, query, cx);
    if let Some(conflict) = engine.clash {
        engine.finish_metering();
        return (SearchOutcome::Unsat, Some(resolve_axioms(tbox, conflict.axs)));
    }
    let result = engine.search();
    engine.finish_metering();
    match result {
        SResult::Sat => (SearchOutcome::Sat, None),
        SResult::Unsat(conflict) => {
            (SearchOutcome::Unsat, Some(resolve_axioms(tbox, conflict.axs)))
        }
        SResult::Limit => (engine.outcome(SResult::Limit), None),
    }
}

/// [`subsumes`] under an execution context: `Ok(Some(..))` on a certain
/// answer, `Ok(None)` when the step budget ran out, `Err` when the
/// context was cancelled or its deadline passed.
pub fn subsumes_cx(
    tbox: &TBox,
    sup: &Concept,
    sub: &Concept,
    cx: &ExecCx,
) -> Result<Option<bool>, Interrupt> {
    let query = Concept::and([sub.clone(), Concept::not(sup.clone())]);
    match satisfiable_cx(tbox, &query, cx) {
        SearchOutcome::Unsat => Ok(Some(true)),
        SearchOutcome::Sat => Ok(Some(false)),
        SearchOutcome::BudgetExhausted => Ok(None),
        SearchOutcome::Cancelled => Err(Interrupt::Cancelled),
        SearchOutcome::DeadlineExceeded => Err(Interrupt::DeadlineExceeded),
    }
}

/// [`satisfiable`], additionally extracting a compact [`Witness`] model
/// from the final completion forest on a `Sat` verdict (`None`
/// otherwise). The witness is what lets [`crate::cache::SatCache`]
/// revalidate `Sat` entries against later TBox additions without
/// re-running the tableau.
pub fn satisfiable_with_witness(
    tbox: &TBox,
    query: &Concept,
    budget: u64,
) -> (DlOutcome, Option<Witness>) {
    let mut engine = Engine::new(tbox, query, budget);
    if engine.clash.is_some() {
        return (DlOutcome::Unsat, None);
    }
    match engine.search() {
        SResult::Sat => (DlOutcome::Sat, Some(engine.into_witness())),
        SResult::Unsat(_) => (DlOutcome::Unsat, None),
        SResult::Limit => (DlOutcome::ResourceLimit, None),
    }
}

/// [`satisfiable`] with axiom-usage tracking switched on: on an `Unsat`
/// verdict, additionally report the set of TBox axioms the refutation
/// rested on, resolved to provenance ids ([`AxiomId`]).
///
/// The reported set is a **conservative over-approximation** of a
/// conflict set — it is the seed [`crate::explain::explain_unsat`] then
/// verifies and shrinks into a minimal unsat core; callers wanting
/// guarantees should go through that API. `Sat` and `ResourceLimit`
/// verdicts carry `None`.
///
/// ```
/// use orm_dl::concept::Concept;
/// use orm_dl::tableau::{satisfiable_with_conflict, DlOutcome};
/// use orm_dl::tbox::TBox;
///
/// let mut tbox = TBox::new();
/// let a = Concept::Atomic(tbox.atom("A"));
/// let b = Concept::Atomic(tbox.atom("B"));
/// let doom = tbox.gci(a.clone(), Concept::Bottom);
/// tbox.gci(b.clone(), Concept::Top); // irrelevant to A's doom
/// let (verdict, conflict) = satisfiable_with_conflict(&tbox, &a, 100_000);
/// assert_eq!(verdict, DlOutcome::Unsat);
/// assert!(conflict.expect("unsat carries a conflict").contains(&doom));
/// ```
pub fn satisfiable_with_conflict(
    tbox: &TBox,
    query: &Concept,
    budget: u64,
) -> (DlOutcome, Option<Vec<AxiomId>>) {
    let mut engine = Engine::new_tracking(tbox, query, budget);
    if let Some(conflict) = engine.clash {
        return (DlOutcome::Unsat, Some(resolve_axioms(tbox, conflict.axs)));
    }
    match engine.search() {
        SResult::Sat => (DlOutcome::Sat, None),
        SResult::Unsat(conflict) => (DlOutcome::Unsat, Some(resolve_axioms(tbox, conflict.axs))),
        SResult::Limit => (DlOutcome::ResourceLimit, None),
    }
}

/// A compact model witnessing a `Sat` verdict: the label sets of the
/// alive nodes of the clash-free, complete forest (ids into the
/// witness's own arena, moved out of the engine — no re-interning) plus
/// the role-label set of every surviving parent edge.
///
/// The point of keeping it is **revalidation without a tableau rerun**:
/// when the TBox later grows by pure additions, [`Witness::confirms_gci`]
/// and [`Witness::respects_disjointness`] check the new axioms against
/// the stored model in one linear scan. Both checks are *sound
/// confirmations*: a `true` answer proves the induced model still
/// satisfies the grown TBox (so the old `Sat` verdict stands); a `false`
/// answer merely means "could not confirm" — the caller must re-prove,
/// never flip the verdict.
///
/// Memory trade-off: the witness keeps the proving engine's whole arena
/// (which interned the internalized TBox alongside the query), so a
/// cache full of `Sat` entries holds one arena per entry — O(TBox) each.
/// That is the price of id-comparable labels with zero re-interning at
/// revalidation time; sharing one interner across witnesses would shrink
/// it at the cost of coupling every entry's lifetime.
#[derive(Clone, Debug)]
pub struct Witness {
    arena: Arena,
    /// Sorted label set per alive node (the query root is node 0).
    labels: Vec<Vec<ConceptId>>,
    /// Role labels of each surviving parent edge.
    edges: Vec<Vec<RoleExprId>>,
}

impl Witness {
    /// Number of (alive) nodes in the witness forest.
    pub fn node_count(&self) -> usize {
        self.labels.len()
    }

    /// Whether the witness asserts any role edges at all. An edge-free
    /// witness is trivially immune to role-hierarchy growth.
    pub fn has_role_edges(&self) -> bool {
        !self.edges.is_empty()
    }

    /// Whether every node of the witness provably satisfies the new GCI
    /// `c ⊑ d` — i.e. its internalized form `¬c ⊔ d` holds everywhere.
    ///
    /// Soundness rests on two properties of the model a complete
    /// clash-free forest induces: every concept *in* a node's label holds
    /// at that node (the tableau soundness lemma), and atom extensions
    /// are *exactly* the labels, so `¬A` holds wherever `A` is absent.
    /// The check recurses through `⊓`/`⊔` and falls back to label
    /// membership for role-quantified concepts (whose semantic evaluation
    /// would need the blocked successors) — conservative, so `false`
    /// never proves a violation.
    ///
    /// The axiom is interned into the witness's own arena (its ids must
    /// be comparable with the stored labels): re-checking an axiom is
    /// free, and each *novel* axiom grows the arena by at most its own
    /// subconcept count — the deliberate price of the zero-copy label
    /// scan over a very long editing session.
    pub fn confirms_gci(&mut self, c: &Concept, d: &Concept) -> bool {
        let not_c = self.arena.intern_negated(c);
        let d = self.arena.intern(d);
        (0..self.labels.len()).all(|n| self.holds(n, not_c) || self.holds(n, d))
    }

    /// Whether `cid` provably holds at `node` in the induced model.
    fn holds(&self, node: usize, cid: ConceptId) -> bool {
        match self.arena.kind(cid) {
            CKind::Top => true,
            CKind::And(ids) => ids.iter().all(|c| self.holds(node, *c)),
            CKind::Or(ids) => ids.iter().any(|c| self.holds(node, *c)),
            CKind::NotAtomic(_) => {
                // Sound both ways: ¬A in the label, or A absent from it
                // (atom extensions are exactly the labels).
                let complement = self.arena.atom_complement(cid).expect("atoms carry complements");
                self.labels[node].binary_search(&complement).is_err()
            }
            CKind::Bottom => false,
            // Atoms and role-quantified concepts: membership only.
            _ => self.labels[node].binary_search(&cid).is_ok(),
        }
    }

    /// Whether no edge of the witness violates the disjointness
    /// declarations of `closure` (built from the *grown* TBox). The
    /// witness's role ids stay valid because role names are never
    /// removed, and the model's edges are exactly the forest edges — so
    /// a clean scan proves the grown disjointness set holds.
    pub fn respects_disjointness(&self, closure: &RoleClosure) -> bool {
        if !closure.has_disjointness() {
            return true;
        }
        let mut acc = vec![0u64; closure.words()];
        self.edges.iter().all(|roles| {
            acc.iter_mut().for_each(|w| *w = 0);
            for &r in roles {
                closure.union_row_into(&mut acc, r);
            }
            !closure.edge_violates_disjointness(&acc)
        })
    }

    /// Arena-independent serialization parts: per-node label sets
    /// resolved to concept trees, plus the edge role labels (already
    /// global — [`RoleExprId`] encodes `2·name + inverse` with no arena
    /// involved). The snapshot machinery stores these; the arena itself
    /// (process-local interning state) never leaves the process.
    pub(crate) fn snapshot_parts(&self) -> (Vec<Vec<Concept>>, Vec<Vec<RoleExprId>>) {
        let labels = self
            .labels
            .iter()
            .map(|ids| ids.iter().map(|&id| self.arena.resolve(id)).collect())
            .collect();
        (labels, self.edges.clone())
    }

    /// Rebuild a witness from [`Witness::snapshot_parts`] output: each
    /// label is re-interned into a fresh arena and the per-node id sets
    /// re-sorted (interning is content-addressed, so `holds`'s binary
    /// searches and `confirms_gci`'s id comparisons behave exactly as in
    /// the original witness).
    pub(crate) fn from_snapshot_parts(
        labels: Vec<Vec<Concept>>,
        edges: Vec<Vec<RoleExprId>>,
    ) -> Witness {
        let mut arena = Arena::new();
        let labels = labels
            .into_iter()
            .map(|concepts| {
                let mut ids: Vec<ConceptId> = concepts.iter().map(|c| arena.intern(c)).collect();
                ids.sort_unstable();
                ids.dedup();
                ids
            })
            .collect();
        Witness { arena, labels, edges }
    }
}

/// Internal search verdict: `Unsat` carries the conflict's justification
/// (decision levels for backjumping, axiom usage for core extraction) so
/// enclosing choice points can backjump past irrelevant siblings and the
/// final refutation can report the axioms it rested on.
#[derive(Clone, Copy, Debug)]
enum SResult {
    Sat,
    Unsat(Just),
    Limit,
}

const NO_PARENT: u32 = u32::MAX;

/// A dependency set: bit `ℓ-1` is set when the fact rests on the choice
/// made at decision level `ℓ`. Levels above 63 share the saturation bit
/// 63; the engine never skips alternatives at saturated levels, so the
/// approximation only costs backjump opportunities, never correctness.
type DepSet = u64;

/// The conflict-set bit of decision level `level` (1-based).
///
/// Total over all inputs: the engine only opens levels starting at 1
/// (asserted in debug builds), but a stray `choice_bit(0)` maps to bit 0
/// instead of underflowing `level - 1` (which panicked in debug and
/// wrapped to the saturation bit 63 in release — silently poisoning the
/// dependency set of every precise level-63 decision).
fn choice_bit(level: u32) -> DepSet {
    debug_assert!(level >= 1, "decision levels are 1-based");
    1u64 << level.saturating_sub(1).min(63)
}

/// Whether `level` owns its bit exclusively (bits 0–62). Only precise
/// levels may strip their bit from a conflict or skip siblings on a
/// conflict that omits it.
fn precise_level(level: u32) -> bool {
    level <= 63
}

/// An axiom-usage set: bit `i` is set when a fact rests on the axiom at
/// flat position `i` of the TBox ([`TBox::axiom_id_at_flat`]). Positions
/// 63 and beyond share the saturation bit 63, which resolves to *every*
/// axiom at flat position ≥ 63 — strictly conservative, like the
/// decision-level saturation.
type AxSet = u64;

/// The usage bit of the axiom at flat position `flat`.
fn ax_bit(flat: usize) -> AxSet {
    1u64 << flat.min(63)
}

/// The union of all usage bits for flat positions `start..start + len`.
fn ax_mask(start: usize, len: usize) -> AxSet {
    (start..start + len).fold(0, |m, i| m | ax_bit(i))
}

/// Resolve an [`AxSet`] against the TBox it was produced from: precise
/// bits name single axioms; the saturation bit expands to every axiom at
/// flat position ≥ 63.
fn resolve_axioms(tbox: &TBox, axs: AxSet) -> Vec<AxiomId> {
    let n = tbox.axiom_count();
    let mut out = Vec::new();
    for flat in 0..n.min(63) {
        if axs & (1u64 << flat) != 0 {
            out.extend(tbox.axiom_id_at_flat(flat));
        }
    }
    if axs & (1u64 << 63) != 0 {
        for flat in 63..n {
            out.extend(tbox.axiom_id_at_flat(flat));
        }
    }
    out
}

/// A fact's full justification: the decision levels it rests on (driving
/// backjumping) and the TBox axioms it rests on (driving unsat-core
/// extraction). The two bitmasks travel together through every rule so
/// that a clash reports both at once.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
struct Just {
    /// Decision-level dependency set (see [`DepSet`]).
    deps: DepSet,
    /// Axiom-usage set (see [`AxSet`]); always 0 when tracking is off.
    axs: AxSet,
}

impl Just {
    /// A justification carrying only axiom bits (TBox-derived facts).
    fn axioms(axs: AxSet) -> Just {
        Just { deps: 0, axs }
    }

    /// This justification plus the decision bit of a fresh choice.
    fn with_bit(self, bit: DepSet) -> Just {
        Just { deps: self.deps | bit, axs: self.axs }
    }
}

impl std::ops::BitOr for Just {
    type Output = Just;
    fn bitor(self, rhs: Just) -> Just {
        Just { deps: self.deps | rhs.deps, axs: self.axs | rhs.axs }
    }
}

impl std::ops::BitOrAssign for Just {
    fn bitor_assign(&mut self, rhs: Just) {
        self.deps |= rhs.deps;
        self.axs |= rhs.axs;
    }
}

/// A completion-forest node. Labels and edge labels are kept sorted so
/// that set queries are binary searches and set equality is slice
/// equality; the `*_hash` fields are XOR fingerprints maintained
/// incrementally (insert and trail-undo both XOR the same mix).
#[derive(Clone, Debug)]
struct ENode {
    alive: bool,
    parent: u32,
    /// Justification of this node's existence (and, transitively, of its
    /// current attachment point: reparenting merges OR the merge-choice
    /// deps in here).
    deps: Just,
    /// Sorted interned label set.
    label: Vec<ConceptId>,
    /// Justification per label member, parallel to `label`.
    label_deps: Vec<Just>,
    label_hash: u64,
    /// Sorted role labels of the edge from `parent` to this node.
    edge: Vec<RoleExprId>,
    /// Justification per edge role, parallel to `edge`.
    edge_deps: Vec<Just>,
    edge_hash: u64,
    /// Upward closure of `edge` (bitset): this node is an `R`-successor of
    /// its parent iff the bitset contains `R`.
    down_closure: Vec<u64>,
    /// Upward closure of the *inverted* edge: the parent is an
    /// `R`-neighbour of this node iff the bitset contains `R`.
    up_closure: Vec<u64>,
    children: Vec<u32>,
    /// Sorted ids of nodes asserted pairwise-distinct from this one.
    distinct: Vec<u32>,
    /// Justification per distinctness assertion, parallel to `distinct`.
    distinct_deps: Vec<Just>,
}

impl ENode {
    /// Union of all edge-role justifications: what this node's current
    /// neighbour links rest on.
    fn edge_deps_all(&self) -> Just {
        self.edge_deps.iter().fold(Just::default(), |a, &d| a | d)
    }
}

/// One reversible mutation. `rollback` pops these in reverse order, so
/// each undo sees exactly the state its op produced.
#[derive(Clone, Copy, Debug)]
enum Op {
    /// `cid` was inserted into `node`'s label.
    Label { node: u32, cid: ConceptId },
    /// `role` was inserted into `node`'s edge label set.
    EdgeRole { node: u32, role: RoleExprId },
    /// `a` and `b` were marked mutually distinct.
    Distinct { a: u32, b: u32 },
    /// A node was appended to the forest (and linked to its parent).
    NodeAdded,
    /// `node.alive` went from true to false.
    Killed { node: u32 },
    /// `child.parent` changed from `old_parent` to `new_parent` (child was
    /// appended to `new_parent.children`); `old_deps` is the node's
    /// justification before the merge-choice deps were OR-ed in.
    Reparented { child: u32, old_parent: u32, new_parent: u32, old_deps: Just },
    /// `child` was removed from `parent.children` at `index`.
    ChildUnlinked { parent: u32, child: u32, index: u32 },
    /// Generator agenda entry `idx` was marked permanently satisfied.
    GenDone { idx: u32 },
}

/// A branch point: trail length plus agenda cursors/lengths. The dirty
/// queue is empty at every mark (choices only open at quiescence), so
/// restoring it means clearing it.
#[derive(Clone, Copy, Debug)]
struct Mark {
    trail: usize,
    or_cursor: usize,
    or_len: usize,
    atmost_len: usize,
    gen_len: usize,
}

struct Engine {
    arena: Arena,
    roles: RoleClosure,
    /// Top-level conjuncts of the internalized TBox, seeded into every node.
    internal: Vec<ConceptId>,
    /// Axiom-usage bits per internal conjunct, parallel to `internal`
    /// (all zero when tracking is off; a conjunct two GCIs canonicalize to
    /// carries both bits).
    internal_ax: Vec<AxSet>,
    /// Usage bits of every role-inclusion axiom, folded into each edge
    /// fact (the role closure may have consulted any of them). Zero when
    /// tracking is off or the TBox has no inclusions.
    role_ax_mask: AxSet,
    /// Usage bits of every disjointness declaration, folded into each
    /// edge-disjointness clash. Zero when tracking is off.
    disjoint_ax_mask: AxSet,
    nodes: Vec<ENode>,
    trail: Vec<Op>,
    /// Dirty-node worklist + membership flags (no duplicate entries).
    dirty: Vec<u32>,
    in_dirty: Vec<bool>,
    /// `⊔` agenda: written at label-insert, consumed via `or_cursor`.
    /// Entries before the cursor are resolved or dead for the rest of the
    /// branch (both monotone until rollback, which restores the cursor).
    or_agenda: Vec<(u32, ConceptId)>,
    or_cursor: usize,
    /// `≤` agenda: one `(node, AtMost-concept)` entry per label
    /// occurrence. Violation is not monotone (generation adds
    /// neighbours), so no cursor.
    atmost_agenda: Vec<(u32, ConceptId)>,
    /// `∃`/`≥` agenda with sticky per-entry satisfaction bits
    /// (trail-recorded, since satisfaction is monotone only within a
    /// branch).
    gen_agenda: Vec<(u32, ConceptId)>,
    gen_done: Vec<bool>,
    /// Set eagerly by label/edge mutations that produce a clash; carries
    /// the conflict's justification (union of the culprits').
    clash: Option<Just>,
    /// Current decision level: number of open `⊔`/`≤` choice points.
    level: u32,
    budget: u64,
    /// The owning execution context, if any. `None` on the legacy `u64`
    /// entry points — those pay zero per-step overhead beyond the budget
    /// countdown they always had.
    cx: Option<ExecCx>,
    /// Steps spent since the last meter flush (flushed every
    /// [`CHECK_INTERVAL`] steps and at search exit).
    pending_steps: u64,
    /// The interrupt that stopped the search, when one did — this is
    /// what distinguishes [`SearchOutcome::Cancelled`] and
    /// [`SearchOutcome::DeadlineExceeded`] from plain budget exhaustion.
    tripped: Option<Interrupt>,
    /// Scratch buffer for neighbour collection (no per-call allocation).
    scratch: Vec<u32>,
}

impl Engine {
    fn new(tbox: &TBox, query: &Concept, budget: u64) -> Engine {
        Engine::build(tbox, query, budget, false, None)
    }

    /// An engine whose facts carry axiom-usage sets, for unsat-core
    /// seeding. Unlike [`Engine::new`] (which interns the memoized
    /// internalized concept in one go), this interns each GCI's `¬C ⊔ D`
    /// individually so every internal conjunct can be tagged with its
    /// axiom's bit — one `implies` clone per GCI per construction, the
    /// price the explanation path pays and the hot query paths do not.
    fn new_tracking(tbox: &TBox, query: &Concept, budget: u64) -> Engine {
        Engine::build(tbox, query, budget, true, None)
    }

    fn new_cx(tbox: &TBox, query: &Concept, cx: &ExecCx) -> Engine {
        Engine::build(tbox, query, cx.steps().unwrap_or(u64::MAX), false, Some(cx.clone()))
    }

    fn new_tracking_cx(tbox: &TBox, query: &Concept, cx: &ExecCx) -> Engine {
        Engine::build(tbox, query, cx.steps().unwrap_or(u64::MAX), true, Some(cx.clone()))
    }

    fn build(tbox: &TBox, query: &Concept, budget: u64, track: bool, cx: Option<ExecCx>) -> Engine {
        let mut arena = Arena::new();
        let mut internal = Vec::new();
        let mut internal_ax = Vec::new();
        if track {
            for (flat, (c, d)) in tbox.gcis().iter().enumerate() {
                let id = arena.intern(&Concept::implies(c.clone(), d.clone()));
                if matches!(arena.kind(id), CKind::Top) {
                    continue;
                }
                // Two GCIs may canonicalize to one conjunct: merge bits.
                match internal.iter().position(|x| *x == id) {
                    Some(pos) => internal_ax[pos] |= ax_bit(flat),
                    None => {
                        internal.push(id);
                        internal_ax.push(ax_bit(flat));
                    }
                }
            }
        } else {
            let internal_concept = tbox.internalized();
            let internal_id = arena.intern(&internal_concept);
            internal = match arena.kind(internal_id) {
                CKind::Top => Vec::new(),
                CKind::And(ids) => ids.to_vec(),
                _ => vec![internal_id],
            };
            internal_ax = vec![0; internal.len()];
        }
        let (role_ax_mask, disjoint_ax_mask) = if track {
            let g = tbox.gcis().len();
            let ri = tbox.axiom_ids().filter(|a| a.kind == AxiomKind::RoleInclusion).count();
            let dj = tbox.axiom_count() - g - ri;
            (ax_mask(g, ri), ax_mask(g + ri, dj))
        } else {
            (0, 0)
        };
        let query_id = arena.intern(query);
        let roles = tbox.role_closure();
        let words = roles.words();
        let root = ENode {
            alive: true,
            parent: NO_PARENT,
            deps: Just::default(),
            label: Vec::new(),
            label_deps: Vec::new(),
            label_hash: 0,
            edge: Vec::new(),
            edge_deps: Vec::new(),
            edge_hash: 0,
            down_closure: vec![0; words],
            up_closure: vec![0; words],
            children: Vec::new(),
            distinct: Vec::new(),
            distinct_deps: Vec::new(),
        };
        let mut engine = Engine {
            arena,
            roles,
            internal,
            internal_ax,
            role_ax_mask,
            disjoint_ax_mask,
            nodes: vec![root],
            trail: Vec::new(),
            dirty: Vec::new(),
            in_dirty: vec![false],
            or_agenda: Vec::new(),
            or_cursor: 0,
            atmost_agenda: Vec::new(),
            gen_agenda: Vec::new(),
            gen_done: Vec::new(),
            clash: None,
            level: 0,
            budget,
            cx,
            pending_steps: 0,
            tripped: None,
            scratch: Vec::new(),
        };
        engine.add_concept(0, query_id, Just::default());
        for (i, cid) in engine.internal.clone().into_iter().enumerate() {
            let axs = engine.internal_ax[i];
            engine.add_concept(0, cid, Just::axioms(axs));
        }
        engine
    }

    /// Extract the compact witness model of a `Sat` verdict: the alive
    /// nodes' labels and parent-edge role sets, carrying the engine's
    /// arena along so the ids stay resolvable (and later axioms can be
    /// interned into the same id space for revalidation).
    fn into_witness(self) -> Witness {
        let mut labels = Vec::new();
        let mut edges = Vec::new();
        for node in &self.nodes {
            if !node.alive {
                continue;
            }
            labels.push(node.label.clone());
            if node.parent != NO_PARENT && !node.edge.is_empty() {
                edges.push(node.edge.clone());
            }
        }
        Witness { arena: self.arena, labels, edges }
    }

    /// Spend one budget unit after a cooperative context check. Returns
    /// `false` when the search must stop: the context was interrupted
    /// (recorded in `self.tripped`) or the step budget is exhausted
    /// (`tripped` stays `None`). The cancellation flag is a relaxed
    /// atomic load checked on *every* call — i.e. at every worklist pop,
    /// choice point, generator, and quiescence certification; the
    /// expensive checks (clock read, meter flush, auto-cancel trigger)
    /// are amortized over [`CHECK_INTERVAL`] steps.
    fn spend(&mut self) -> bool {
        if self.tripped.is_some() {
            // Already interrupted: the unwinding alternatives must not
            // burn further steps before the Limit reaches the top.
            return false;
        }
        if let Some(cx) = &self.cx {
            if cx.is_cancelled() {
                self.tripped = Some(Interrupt::Cancelled);
                return false;
            }
            self.pending_steps += 1;
            if self.pending_steps >= CHECK_INTERVAL {
                let pending = std::mem::take(&mut self.pending_steps);
                if let Err(interrupt) = cx.check_after(pending) {
                    self.tripped = Some(interrupt);
                    return false;
                }
            }
        }
        if self.budget == 0 {
            return false;
        }
        self.budget -= 1;
        true
    }

    /// Flush the unflushed step count into the context's meter (a no-op
    /// without a context). Called once per public entry point after the
    /// search returns.
    fn finish_metering(&mut self) {
        if let Some(cx) = &self.cx {
            cx.meter().add_steps(std::mem::take(&mut self.pending_steps));
        }
    }

    /// Map an internal search result to the public five-way outcome,
    /// consulting `tripped` to distinguish external interruptions from
    /// the per-proof step budget running out.
    fn outcome(&self, result: SResult) -> SearchOutcome {
        match result {
            SResult::Sat => SearchOutcome::Sat,
            SResult::Unsat(_) => SearchOutcome::Unsat,
            SResult::Limit => match self.tripped {
                Some(Interrupt::Cancelled) => SearchOutcome::Cancelled,
                Some(Interrupt::DeadlineExceeded) => SearchOutcome::DeadlineExceeded,
                None => SearchOutcome::BudgetExhausted,
            },
        }
    }

    fn role_mix(role: RoleExprId) -> u64 {
        // Same SplitMix64 finalizer as the arena's concept mixes, under a
        // role-specific seed; used for the edge fingerprint.
        crate::arena::splitmix(0x517C_C1B7_2722_0A95 ^ u64::from(role))
    }

    fn mark_dirty(&mut self, node: u32) {
        if !self.in_dirty[node as usize] {
            self.in_dirty[node as usize] = true;
            self.dirty.push(node);
        }
    }

    /// The `i`-th conjunct of an interned `⊓` (re-fetched through the
    /// arena so hot loops need not clone the child slice).
    fn and_child(&self, cid: ConceptId, i: usize) -> ConceptId {
        match self.arena.kind(cid) {
            CKind::And(ids) => ids[i],
            _ => unreachable!("caller checked the kind"),
        }
    }

    /// The recorded justification of a label member. The first
    /// justification wins: re-deriving a present member under different
    /// deps keeps the original set (which is a valid justification for as
    /// long as the member survives rollback).
    fn label_dep(&self, node: u32, cid: ConceptId) -> Just {
        match self.nodes[node as usize].label.binary_search(&cid) {
            Ok(pos) => self.nodes[node as usize].label_deps[pos],
            Err(_) => Just::default(),
        }
    }

    /// Justification of the link between neighbours `x` and `y`:
    /// existence of both nodes plus every edge role either endpoint
    /// carries (conservative — the connecting edge lives on whichever of
    /// the two is the child).
    fn link_deps(&self, x: u32, y: u32) -> Just {
        let (nx, ny) = (&self.nodes[x as usize], &self.nodes[y as usize]);
        nx.deps | ny.deps | nx.edge_deps_all() | ny.edge_deps_all()
    }

    /// Insert `cid` into `node`'s label with justification `deps`, fusing
    /// the `⊓`-rule, recording the trail, feeding the agendas and
    /// detecting immediate clashes.
    fn add_concept(&mut self, node: u32, cid: ConceptId, deps: Just) {
        match self.arena.kind(cid) {
            CKind::Top => return,
            CKind::And(ids) => {
                // Index loop with per-iteration re-fetch: no allocation on
                // this path, which fires for every conjunctive disjunct,
                // ∀-body and merged label.
                let len = ids.len();
                for i in 0..len {
                    let child = self.and_child(cid, i);
                    self.add_concept(node, child, deps);
                }
                return;
            }
            _ => {}
        }
        let slot = match self.nodes[node as usize].label.binary_search(&cid) {
            Ok(_) => return,
            Err(slot) => slot,
        };
        let mix = self.arena.mix(cid);
        {
            let n = &mut self.nodes[node as usize];
            n.label.insert(slot, cid);
            n.label_deps.insert(slot, deps);
            n.label_hash ^= mix;
        }
        self.trail.push(Op::Label { node, cid });
        self.mark_dirty(node);
        match self.arena.kind(cid) {
            CKind::Bottom => {
                self.raise_clash(deps | self.nodes[node as usize].deps);
            }
            CKind::Atomic(_) | CKind::NotAtomic(_) => {
                let neg = self.arena.atom_complement(cid).expect("atoms carry complements");
                if self.nodes[node as usize].label.binary_search(&neg).is_ok() {
                    let conflict =
                        deps | self.label_dep(node, neg) | self.nodes[node as usize].deps;
                    self.raise_clash(conflict);
                }
            }
            CKind::Or(_) => self.or_agenda.push((node, cid)),
            CKind::Exists(..) | CKind::AtLeast(..) => {
                self.gen_agenda.push((node, cid));
                self.gen_done.push(false);
            }
            CKind::AtMost(..) => self.atmost_agenda.push((node, cid)),
            _ => {}
        }
    }

    /// Record a clash, keeping the first conflict of the branch (later
    /// clashes in the same propagation round are casualties of an already
    /// inconsistent state and may carry broader dependency sets).
    fn raise_clash(&mut self, conflict: Just) {
        if self.clash.is_none() {
            self.clash = Some(conflict);
        }
    }

    /// Insert `role` into `node`'s up-edge label set with justification
    /// `deps`, maintaining both closure bitsets and the edge fingerprint.
    /// Every edge fact additionally carries the role-inclusion axiom mask:
    /// whether this edge counts as an `S`-edge may rest on any inclusion.
    fn add_edge_role(&mut self, node: u32, role: RoleExprId, deps: Just) {
        let slot = match self.nodes[node as usize].edge.binary_search(&role) {
            Ok(_) => return,
            Err(slot) => slot,
        };
        let deps = deps | Just::axioms(self.role_ax_mask);
        let inv = invert_role_expr(role);
        let (parent, clash_deps) = {
            let roles = &self.roles;
            let n = &mut self.nodes[node as usize];
            n.edge.insert(slot, role);
            n.edge_deps.insert(slot, deps);
            n.edge_hash ^= Self::role_mix(role);
            roles.union_row_into(&mut n.down_closure, role);
            roles.union_row_into(&mut n.up_closure, inv);
            let clash_deps =
                if roles.has_disjointness() && roles.edge_violates_disjointness(&n.down_closure) {
                    // Conservative culprits: every role this edge carries.
                    Some(n.deps | n.edge_deps_all())
                } else {
                    None
                };
            (n.parent, clash_deps)
        };
        if let Some(conflict) = clash_deps {
            self.raise_clash(conflict | Just::axioms(self.disjoint_ax_mask));
        }
        self.trail.push(Op::EdgeRole { node, role });
        self.mark_dirty(node);
        if parent != NO_PARENT {
            self.mark_dirty(parent);
        }
    }

    fn add_distinct(&mut self, a: u32, b: u32, deps: Just) {
        let Err(slot) = self.nodes[a as usize].distinct.binary_search(&b) else { return };
        self.nodes[a as usize].distinct.insert(slot, b);
        self.nodes[a as usize].distinct_deps.insert(slot, deps);
        let slot = self.nodes[b as usize]
            .distinct
            .binary_search(&a)
            .expect_err("distinctness stored symmetrically");
        self.nodes[b as usize].distinct.insert(slot, a);
        self.nodes[b as usize].distinct_deps.insert(slot, deps);
        self.trail.push(Op::Distinct { a, b });
    }

    /// The recorded justification of the distinctness assertion between
    /// `a` and `b` (empty when absent).
    fn distinct_dep(&self, a: u32, b: u32) -> Just {
        match self.nodes[a as usize].distinct.binary_search(&b) {
            Ok(pos) => self.nodes[a as usize].distinct_deps[pos],
            Err(_) => Just::default(),
        }
    }

    /// Create a fresh `role`-child of `parent`, seeded with the
    /// internalized TBox plus `seed`. `deps` is the justification of the
    /// generating rule's premise (the `∃`/`≥` label plus the parent's own
    /// existence); everything about the new node inherits it.
    fn add_child(
        &mut self,
        parent: u32,
        role: RoleExprId,
        seed: Option<ConceptId>,
        deps: Just,
    ) -> u32 {
        let words = self.roles.words();
        let id = self.nodes.len() as u32;
        let edge_deps = deps | Just::axioms(self.role_ax_mask);
        let mut down_closure = vec![0; words];
        let mut up_closure = vec![0; words];
        self.roles.union_row_into(&mut down_closure, role);
        self.roles.union_row_into(&mut up_closure, invert_role_expr(role));
        if self.roles.has_disjointness() && self.roles.edge_violates_disjointness(&down_closure) {
            self.raise_clash(edge_deps | Just::axioms(self.disjoint_ax_mask));
        }
        self.nodes.push(ENode {
            alive: true,
            parent,
            deps,
            label: Vec::new(),
            label_deps: Vec::new(),
            label_hash: 0,
            edge: vec![role],
            edge_deps: vec![edge_deps],
            edge_hash: Self::role_mix(role),
            down_closure,
            up_closure,
            children: Vec::new(),
            distinct: Vec::new(),
            distinct_deps: Vec::new(),
        });
        self.in_dirty.push(false);
        self.nodes[parent as usize].children.push(id);
        self.trail.push(Op::NodeAdded);
        if let Some(cid) = seed {
            self.add_concept(id, cid, deps);
        }
        // Index loop: `internal` never changes after construction, and
        // cloning it here would put an allocation on every ∃/≥ firing.
        // Each conjunct rests on the node's existence plus its own axiom.
        for i in 0..self.internal.len() {
            let cid = self.internal[i];
            let axs = self.internal_ax[i];
            self.add_concept(id, cid, deps | Just::axioms(axs));
        }
        self.mark_dirty(parent);
        self.mark_dirty(id);
        id
    }

    /// Merge node `from` into node `to`; both are `R`-neighbours of `via`,
    /// with `from` a child of `via`. Every mutation is trail-recorded, so
    /// the merge unwinds like any other choice. `choice_deps` is the
    /// justification of the merge decision itself; every fact the merge
    /// transfers is additionally tagged with it.
    fn merge(&mut self, via: u32, from: u32, to: u32, choice_deps: Just) {
        debug_assert_eq!(self.nodes[from as usize].parent, via);
        debug_assert!(self.nodes[from as usize].alive && self.nodes[to as usize].alive);
        self.nodes[from as usize].alive = false;
        self.trail.push(Op::Killed { node: from });
        // Labels and distinctness accumulate on the survivor (the dead
        // node's own sets stay in place for rollback).
        for (i, cid) in self.nodes[from as usize].label.clone().into_iter().enumerate() {
            let dep = self.nodes[from as usize].label_deps[i] | choice_deps;
            self.add_concept(to, cid, dep);
        }
        for (i, d) in self.nodes[from as usize].distinct.clone().into_iter().enumerate() {
            if self.nodes[d as usize].alive {
                let dep = self.nodes[from as usize].distinct_deps[i] | choice_deps;
                self.add_distinct(to, d, dep);
            }
        }
        // Edges: `from` was a child of `via`.
        let from_edge = self.nodes[from as usize].edge.clone();
        let from_edge_deps = self.nodes[from as usize].edge_deps.clone();
        if self.nodes[to as usize].parent == via {
            // Sibling merge: fold edge labels onto the survivor's edge.
            for (role, dep) in from_edge.into_iter().zip(from_edge_deps) {
                self.add_edge_role(to, role, dep | choice_deps);
            }
        } else if self.nodes[via as usize].parent == to {
            // Child-into-parent merge: `via —S→ from` becomes
            // `to —S⁻→ via`, folded into via's existing up-edge.
            for (role, dep) in from_edge.into_iter().zip(from_edge_deps) {
                self.add_edge_role(via, invert_role_expr(role), dep | choice_deps);
            }
        }
        // Reparent from's children under the survivor. Their new
        // attachment exists only because of this merge, so the choice
        // deps are folded into their node dependency sets.
        for child in self.nodes[from as usize].children.clone() {
            let old_deps = self.nodes[child as usize].deps;
            self.nodes[child as usize].parent = to;
            self.nodes[child as usize].deps = old_deps | choice_deps;
            self.nodes[to as usize].children.push(child);
            self.trail.push(Op::Reparented { child, old_parent: from, new_parent: to, old_deps });
            self.mark_dirty(child);
        }
        // Unlink from from via's child list.
        let index = self.nodes[via as usize]
            .children
            .iter()
            .position(|c| *c == from)
            .expect("from is a child of via");
        self.nodes[via as usize].children.remove(index);
        self.trail.push(Op::ChildUnlinked { parent: via, child: from, index: index as u32 });
        self.mark_dirty(via);
        self.mark_dirty(to);
    }

    fn mark(&self) -> Mark {
        debug_assert!(self.dirty.is_empty(), "choices only open at quiescence");
        Mark {
            trail: self.trail.len(),
            or_cursor: self.or_cursor,
            or_len: self.or_agenda.len(),
            atmost_len: self.atmost_agenda.len(),
            gen_len: self.gen_agenda.len(),
        }
    }

    fn rollback(&mut self, mark: Mark) {
        // Pending work first: at every mark the dirty queue was empty.
        for &n in &self.dirty {
            self.in_dirty[n as usize] = false;
        }
        self.dirty.clear();
        self.clash = None;
        while self.trail.len() > mark.trail {
            match self.trail.pop().expect("len checked") {
                Op::Label { node, cid } => {
                    let mix = self.arena.mix(cid);
                    let n = &mut self.nodes[node as usize];
                    let pos = n.label.binary_search(&cid).expect("label op consistent");
                    n.label.remove(pos);
                    n.label_deps.remove(pos);
                    n.label_hash ^= mix;
                }
                Op::EdgeRole { node, role } => {
                    let roles = &self.roles;
                    let n = &mut self.nodes[node as usize];
                    let pos = n.edge.binary_search(&role).expect("edge op consistent");
                    n.edge.remove(pos);
                    n.edge_deps.remove(pos);
                    n.edge_hash ^= Self::role_mix(role);
                    // Closures are unions, not XORs: recompute from the
                    // remaining labels (edge mutations are rare).
                    n.down_closure.iter_mut().for_each(|w| *w = 0);
                    n.up_closure.iter_mut().for_each(|w| *w = 0);
                    for i in 0..n.edge.len() {
                        let r = n.edge[i];
                        roles.union_row_into(&mut n.down_closure, r);
                        roles.union_row_into(&mut n.up_closure, invert_role_expr(r));
                    }
                }
                Op::Distinct { a, b } => {
                    let pos =
                        self.nodes[a as usize].distinct.binary_search(&b).expect("distinct op");
                    self.nodes[a as usize].distinct.remove(pos);
                    self.nodes[a as usize].distinct_deps.remove(pos);
                    let pos =
                        self.nodes[b as usize].distinct.binary_search(&a).expect("distinct op");
                    self.nodes[b as usize].distinct.remove(pos);
                    self.nodes[b as usize].distinct_deps.remove(pos);
                }
                Op::NodeAdded => {
                    let node = self.nodes.pop().expect("node op consistent");
                    self.in_dirty.pop();
                    if node.parent != NO_PARENT {
                        let popped = self.nodes[node.parent as usize].children.pop();
                        debug_assert_eq!(popped, Some(self.nodes.len() as u32));
                    }
                }
                Op::Killed { node } => self.nodes[node as usize].alive = true,
                Op::Reparented { child, old_parent, new_parent, old_deps } => {
                    let popped = self.nodes[new_parent as usize].children.pop();
                    debug_assert_eq!(popped, Some(child));
                    self.nodes[child as usize].parent = old_parent;
                    self.nodes[child as usize].deps = old_deps;
                }
                Op::ChildUnlinked { parent, child, index } => {
                    self.nodes[parent as usize].children.insert(index as usize, child);
                }
                Op::GenDone { idx } => self.gen_done[idx as usize] = false,
            }
        }
        self.or_cursor = mark.or_cursor;
        self.or_agenda.truncate(mark.or_len);
        self.atmost_agenda.truncate(mark.atmost_len);
        self.gen_agenda.truncate(mark.gen_len);
        self.gen_done.truncate(mark.gen_len);
    }

    /// Whether `node`'s label makes `cid` true syntactically (membership,
    /// with conjunctions split).
    fn label_subsumes(&self, node: u32, cid: ConceptId) -> bool {
        match self.arena.kind(cid) {
            CKind::Top => true,
            CKind::And(ids) => ids.iter().all(|c| self.label_subsumes(node, *c)),
            _ => self.nodes[node as usize].label.binary_search(&cid).is_ok(),
        }
    }

    /// Collect the `role`-neighbours of `x` into `out` (children through a
    /// sub-role edge, plus the parent when the inverted edge closure
    /// reaches `role`). No allocation: callers pass the engine's scratch.
    fn collect_neighbors(nodes: &[ENode], x: u32, role: RoleExprId, out: &mut Vec<u32>) {
        out.clear();
        let n = &nodes[x as usize];
        for &child in &n.children {
            if nodes[child as usize].alive
                && RoleClosure::contains(&nodes[child as usize].down_closure, role)
            {
                out.push(child);
            }
        }
        if n.parent != NO_PARENT
            && nodes[n.parent as usize].alive
            && RoleClosure::contains(&n.up_closure, role)
        {
            out.push(n.parent);
        }
    }

    /// Deterministic work at one dirty node: `∀`-propagation to current
    /// neighbours plus this node's clash conditions (`≤` over distinct
    /// neighbours, edge disjointness).
    fn process_node(&mut self, x: u32) {
        if !self.nodes[x as usize].alive {
            return;
        }
        // ∀-rule: iterate by index — the label can grow during
        // propagation (back-propagation onto x itself).
        let mut i = 0;
        while i < self.nodes[x as usize].label.len() {
            let cid = self.nodes[x as usize].label[i];
            i += 1;
            let CKind::ForAll(role, body) = *self.arena.kind(cid) else { continue };
            // The ∀ label's own justification, read by id (inserts during
            // propagation can shift positions).
            let fdep = self.label_dep(x, cid);
            let mut c = 0;
            while c < self.nodes[x as usize].children.len() {
                let child = self.nodes[x as usize].children[c];
                c += 1;
                if self.nodes[child as usize].alive
                    && RoleClosure::contains(&self.nodes[child as usize].down_closure, role)
                    && !self.label_subsumes(child, body)
                {
                    let dep = fdep | self.link_deps(x, child);
                    self.add_concept(child, body, dep);
                }
            }
            let parent = self.nodes[x as usize].parent;
            if parent != NO_PARENT
                && self.nodes[parent as usize].alive
                && RoleClosure::contains(&self.nodes[x as usize].up_closure, role)
                && !self.label_subsumes(parent, body)
            {
                let dep = fdep | self.link_deps(x, parent);
                self.add_concept(parent, body, dep);
            }
            if self.clash.is_some() {
                return;
            }
        }
        // Edge disjointness.
        if self.roles.has_disjointness()
            && !self.nodes[x as usize].edge.is_empty()
            && self.roles.edge_violates_disjointness(&self.nodes[x as usize].down_closure)
        {
            let conflict = {
                let n = &self.nodes[x as usize];
                n.deps | n.edge_deps_all() | Just::axioms(self.disjoint_ax_mask)
            };
            self.raise_clash(conflict);
            return;
        }
        // ≤n R with more than n pairwise-distinct R-neighbours.
        let mut scratch = std::mem::take(&mut self.scratch);
        for i in 0..self.nodes[x as usize].label.len() {
            let cid = self.nodes[x as usize].label[i];
            let CKind::AtMost(n, role) = *self.arena.kind(cid) else { continue };
            Self::collect_neighbors(&self.nodes, x, role, &mut scratch);
            if scratch.len() > n as usize {
                if let Some(pair_deps) = self.all_pairwise_distinct(&scratch) {
                    let mut conflict =
                        pair_deps | self.label_dep(x, cid) | self.nodes[x as usize].deps;
                    for &y in &scratch {
                        conflict |= self.link_deps(x, y);
                    }
                    self.raise_clash(conflict);
                    break;
                }
            }
        }
        self.scratch = scratch;
    }

    /// `Some(deps)` when all of `nodes` are pairwise distinct, with `deps`
    /// the union of the distinctness assertions' justifications; `None`
    /// when some pair is mergeable.
    fn all_pairwise_distinct(&self, nodes: &[u32]) -> Option<Just> {
        let mut deps = Just::default();
        for (i, &a) in nodes.iter().enumerate() {
            for b in &nodes[i + 1..] {
                match self.nodes[a as usize].distinct.binary_search(b) {
                    Ok(pos) => deps |= self.nodes[a as usize].distinct_deps[pos],
                    Err(_) => return None,
                }
            }
        }
        Some(deps)
    }

    /// Whether `nodes` contains `n` mutually-distinct members (exhaustive
    /// over subsets; `n` is tiny in ORM workloads).
    fn has_n_pairwise_distinct(&self, nodes: &[u32], n: usize) -> bool {
        fn go(engine: &Engine, nodes: &[u32], chosen: &mut Vec<u32>, n: usize) -> bool {
            if chosen.len() == n {
                return true;
            }
            for (i, &cand) in nodes.iter().enumerate() {
                if chosen
                    .iter()
                    .all(|&c| engine.nodes[c as usize].distinct.binary_search(&cand).is_ok())
                {
                    chosen.push(cand);
                    if go(engine, &nodes[i + 1..], chosen, n) {
                        return true;
                    }
                    chosen.pop();
                }
            }
            false
        }
        if n <= 1 {
            return !nodes.is_empty();
        }
        go(self, nodes, &mut Vec::new(), n)
    }

    /// Ancestors of `x` (exclusive), root last.
    fn ancestors(&self, x: u32) -> impl Iterator<Item = u32> + '_ {
        let mut cur = self.nodes[x as usize].parent;
        std::iter::from_fn(move || {
            if cur == NO_PARENT {
                return None;
            }
            let here = cur;
            cur = self.nodes[cur as usize].parent;
            Some(here)
        })
    }

    /// Pairwise blocking with a fingerprint fast path: `x` is blocked when
    /// some ancestor pair mirrors `x` and its parent exactly, or some
    /// ancestor is itself directly blocked (indirect blocking).
    fn blocked(&self, x: u32) -> bool {
        if self.nodes[x as usize].parent == NO_PARENT {
            return false;
        }
        self.ancestors(x).any(|y| self.directly_blocks(y, x) || self.blocked_directly(y))
    }

    fn blocked_directly(&self, x: u32) -> bool {
        if self.nodes[x as usize].parent == NO_PARENT {
            return false;
        }
        self.ancestors(x).any(|y| self.directly_blocks(y, x))
    }

    /// Whether ancestor `y` (with its parent) mirrors `x` (with its
    /// parent): the pairwise-blocking witness test.
    fn directly_blocks(&self, y: u32, x: u32) -> bool {
        let yp = self.nodes[y as usize].parent;
        if yp == NO_PARENT {
            return false;
        }
        let xp = self.nodes[x as usize].parent;
        let (nx, ny) = (&self.nodes[x as usize], &self.nodes[y as usize]);
        let (nxp, nyp) = (&self.nodes[xp as usize], &self.nodes[yp as usize]);
        // Fingerprints first: almost every candidate fails here.
        if nx.label_hash != ny.label_hash
            || nxp.label_hash != nyp.label_hash
            || nx.edge_hash != ny.edge_hash
        {
            return false;
        }
        nx.label == ny.label && nxp.label == nyp.label && nx.edge == ny.edge
    }

    /// One alternative of a choice point: apply the mutation (already
    /// done by the caller), search the branch, roll back, and fold the
    /// outcome into the running conflict accumulator. Returns `Some(r)`
    /// when the whole choice point should return `r` immediately (model
    /// found, or a backjump past this level).
    fn explore_alternative(
        &mut self,
        mark: Mark,
        level: u32,
        bit: DepSet,
        acc: &mut Just,
        limited: &mut bool,
    ) -> Option<SResult> {
        let result =
            if let Some(conflict) = self.clash { SResult::Unsat(conflict) } else { self.search() };
        match result {
            SResult::Sat => {
                self.level -= 1;
                return Some(SResult::Sat);
            }
            SResult::Unsat(conflict) => {
                self.rollback(mark);
                if precise_level(level) && conflict.deps & bit == 0 {
                    // The refutation never used this choice: no sibling
                    // can avoid it. Jump straight past this choice point.
                    self.level -= 1;
                    return Some(SResult::Unsat(conflict));
                }
                // Strip this level's bit only when it is exclusively
                // ours; saturated levels keep bit 63 so outer saturated
                // frames never skip on its account. Axiom bits are never
                // stripped — every branch's culprits join the refutation.
                acc.deps |= if precise_level(level) { conflict.deps & !bit } else { conflict.deps };
                acc.axs |= conflict.axs;
            }
            SResult::Limit => {
                *limited = true;
                self.rollback(mark);
            }
        }
        None
    }

    /// The search loop: drain deterministic work, then branch on `⊔`,
    /// then on `≤`-merges, then apply one generating rule; a quiescent,
    /// clash-free forest is satisfiable. An `Unsat` result carries the
    /// conflict dependency set for backjumping.
    fn search(&mut self) -> SResult {
        loop {
            // Drain the dirty worklist (∀-propagation and clash checks).
            while let Some(x) = self.dirty.pop() {
                self.in_dirty[x as usize] = false;
                if !self.spend() {
                    return SResult::Limit;
                }
                self.process_node(x);
                if let Some(conflict) = self.clash {
                    return SResult::Unsat(conflict);
                }
            }

            // ⊔-rule: first live, unresolved disjunction on the agenda.
            while self.or_cursor < self.or_agenda.len() {
                let (node, cid) = self.or_agenda[self.or_cursor];
                let resolved = !self.nodes[node as usize].alive || {
                    let CKind::Or(ids) = self.arena.kind(cid) else {
                        unreachable!("or agenda holds disjunctions")
                    };
                    ids.iter().any(|d| self.label_subsumes(node, *d))
                };
                if resolved {
                    self.or_cursor += 1;
                    continue;
                }
                if !self.spend() {
                    return SResult::Limit;
                }
                let CKind::Or(ids) = self.arena.kind(cid) else { unreachable!() };
                let disjuncts = ids.clone().into_vec();
                // The choice exists because the disjunction label does:
                // every refutation of the whole point inherits its deps.
                let base = self.label_dep(node, cid) | self.nodes[node as usize].deps;
                self.level += 1;
                let level = self.level;
                let bit = choice_bit(level);
                let mut acc = base;
                let mut limited = false;
                for d in disjuncts {
                    let mark = self.mark();
                    self.add_concept(node, d, base.with_bit(bit));
                    if let Some(out) =
                        self.explore_alternative(mark, level, bit, &mut acc, &mut limited)
                    {
                        return out;
                    }
                }
                self.level -= 1;
                return if limited { SResult::Limit } else { SResult::Unsat(acc) };
            }

            // ≤-rule: merge surplus neighbours (violation is not monotone,
            // so the agenda is scanned in full).
            let mut le_choice = None;
            let mut scratch = std::mem::take(&mut self.scratch);
            for idx in 0..self.atmost_agenda.len() {
                let (node, cid) = self.atmost_agenda[idx];
                if !self.nodes[node as usize].alive {
                    continue;
                }
                let CKind::AtMost(n, role) = *self.arena.kind(cid) else {
                    unreachable!("atmost agenda holds ≤ concepts")
                };
                Self::collect_neighbors(&self.nodes, node, role, &mut scratch);
                if scratch.len() > n as usize {
                    le_choice = Some((node, cid, scratch.clone()));
                    break;
                }
            }
            self.scratch = scratch;
            if let Some((via, cid, neighbors)) = le_choice {
                if !self.spend() {
                    return SResult::Limit;
                }
                // The merge obligation rests on the ≤ label, the node and
                // the links to every surplus neighbour.
                let mut base = self.label_dep(via, cid) | self.nodes[via as usize].deps;
                for &y in &neighbors {
                    base |= self.link_deps(via, y);
                }
                self.level += 1;
                let level = self.level;
                let bit = choice_bit(level);
                let mut acc = base;
                let mut limited = false;
                // Try every mergeable pair; merge the child of the pair.
                // At least one pair is mergeable: were all pairs asserted
                // distinct, the clash check in process_node would have
                // fired before quiescence.
                let mut tried = false;
                for (i, &a) in neighbors.iter().enumerate() {
                    for &b in neighbors[i + 1..].iter() {
                        if self.nodes[a as usize].distinct.binary_search(&b).is_ok() {
                            // This pair is ruled out by a distinctness
                            // assertion: the refutation rests on it too.
                            acc |= self.distinct_dep(a, b);
                            continue;
                        }
                        // At most one of a, b is via's parent; merge the
                        // child into the other node.
                        let (from, to) =
                            if self.nodes[via as usize].parent == a { (b, a) } else { (a, b) };
                        tried = true;
                        let mark = self.mark();
                        self.merge(via, from, to, base.with_bit(bit));
                        if let Some(out) =
                            self.explore_alternative(mark, level, bit, &mut acc, &mut limited)
                        {
                            return out;
                        }
                    }
                }
                self.level -= 1;
                if !tried {
                    // Defensive: all pairs distinct yet uncaught above.
                    return SResult::Unsat(acc);
                }
                return if limited { SResult::Limit } else { SResult::Unsat(acc) };
            }

            // Generating rules on unblocked nodes.
            match self.apply_one_generator() {
                Some(true) => {
                    if let Some(conflict) = self.clash {
                        return SResult::Unsat(conflict);
                    }
                    continue;
                }
                None => return SResult::Limit,
                Some(false) => {}
            }
            if !self.spend() {
                // Out of budget exactly at quiescence: certifying
                // completeness costs the final unit, as in the original
                // engine's per-iteration accounting.
                return SResult::Limit;
            }

            // No rule applies: complete and clash-free.
            return SResult::Sat;
        }
    }

    /// Apply the first applicable `∃`/`≥` rule. `Some(true)`: one fired.
    /// `Some(false)`: none applicable. `None`: one was applicable but the
    /// budget is exhausted. Satisfied entries get a sticky (trail-recorded)
    /// done bit; blocked entries are skipped but stay pending, since
    /// blocking is not monotone.
    fn apply_one_generator(&mut self) -> Option<bool> {
        let mut scratch = std::mem::take(&mut self.scratch);
        for idx in 0..self.gen_agenda.len() {
            if self.gen_done[idx] {
                continue;
            }
            let (node, cid) = self.gen_agenda[idx];
            if !self.nodes[node as usize].alive {
                // Death is monotone within a branch: sticky-skip. The
                // label moved to the merge survivor, whose own agenda
                // entry covers the rule.
                self.gen_done[idx] = true;
                self.trail.push(Op::GenDone { idx: idx as u32 });
                continue;
            }
            match *self.arena.kind(cid) {
                CKind::Exists(role, body) => {
                    Self::collect_neighbors(&self.nodes, node, role, &mut scratch);
                    if scratch.iter().any(|&y| self.label_subsumes(y, body)) {
                        // Satisfaction is monotone within a branch (labels
                        // grow, merges preserve neighbours): sticky-skip.
                        self.gen_done[idx] = true;
                        self.trail.push(Op::GenDone { idx: idx as u32 });
                        continue;
                    }
                    if self.blocked(node) {
                        continue;
                    }
                    self.scratch = scratch;
                    if !self.spend() {
                        return None;
                    }
                    let deps = self.label_dep(node, cid) | self.nodes[node as usize].deps;
                    self.add_child(node, role, Some(body), deps);
                    self.gen_done[idx] = true;
                    self.trail.push(Op::GenDone { idx: idx as u32 });
                    return Some(true);
                }
                CKind::AtLeast(n, role) => {
                    if n == 0 {
                        // ≥0 R is ⊤; nothing to generate.
                        self.gen_done[idx] = true;
                        self.trail.push(Op::GenDone { idx: idx as u32 });
                        continue;
                    }
                    Self::collect_neighbors(&self.nodes, node, role, &mut scratch);
                    if scratch.len() >= n as usize
                        && self.has_n_pairwise_distinct(&scratch, n as usize)
                    {
                        self.gen_done[idx] = true;
                        self.trail.push(Op::GenDone { idx: idx as u32 });
                        continue;
                    }
                    if self.blocked(node) {
                        continue;
                    }
                    self.scratch = scratch;
                    if !self.spend() {
                        return None;
                    }
                    let deps = self.label_dep(node, cid) | self.nodes[node as usize].deps;
                    let fresh: Vec<u32> =
                        (0..n).map(|_| self.add_child(node, role, None, deps)).collect();
                    for (i, &a) in fresh.iter().enumerate() {
                        for &b in fresh[i + 1..].iter() {
                            self.add_distinct(a, b, deps);
                        }
                    }
                    self.gen_done[idx] = true;
                    self.trail.push(Op::GenDone { idx: idx as u32 });
                    return Some(true);
                }
                _ => unreachable!("generator agenda holds ∃/≥ concepts"),
            }
        }
        self.scratch = scratch;
        Some(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::concept::RoleExpr;

    /// The shared scenario suite (see `crate::test_scenarios`): every rule
    /// interaction with its expected verdict, run through the trail-based
    /// engine. `classic::tests` runs the identical list, so both engines
    /// answer to one specification.
    #[test]
    fn trail_engine_matches_expected_verdicts() {
        for case in crate::test_scenarios::all() {
            assert_eq!(
                satisfiable(&case.tbox, &case.query, case.budget),
                case.expected,
                "trail engine wrong on: {}",
                case.name
            );
        }
    }

    /// Conflicts raised while no choice point is open (decision level 0)
    /// must refute cleanly: the dependency machinery only mints bits for
    /// levels ≥ 1, so a level-0 clash carries an empty conflict set and
    /// must neither panic (the old `(level - 1)` underflow) nor smuggle a
    /// phantom bit into the dependency set.
    #[test]
    fn level_zero_conflicts_are_total() {
        // Immediate clash during root seeding: A ⊓ ¬A, empty TBox.
        let mut t = TBox::new();
        let a = Concept::Atomic(t.atom("A"));
        let query = Concept::and([a.clone(), Concept::not(a.clone())]);
        assert_eq!(satisfiable(&t, &query, 100_000), DlOutcome::Unsat);

        // Deterministic propagation clash with zero disjunctions opened:
        // A ⊑ ⊥ dooms A without a single ⊔/≤ choice point.
        let mut t = TBox::new();
        let a = Concept::Atomic(t.atom("A"));
        t.gci(a.clone(), Concept::Bottom);
        assert_eq!(satisfiable(&t, &a, 100_000), DlOutcome::Unsat);

        // And the refutation does not corrupt later verdicts in the same
        // TBox: B stays satisfiable after A's level-0 refutation.
        let b = Concept::Atomic(t.atom("B"));
        assert_eq!(satisfiable(&t, &b, 100_000), DlOutcome::Sat);
    }

    /// `choice_bit` is monotone over precise levels and saturates at 63;
    /// level 1 (the first real decision) owns bit 0.
    #[test]
    fn choice_bits_are_well_placed() {
        assert_eq!(choice_bit(1), 1);
        assert_eq!(choice_bit(2), 2);
        assert_eq!(choice_bit(63), 1 << 62);
        assert_eq!(choice_bit(64), 1 << 63);
        assert_eq!(choice_bit(1000), 1 << 63);
        assert!(precise_level(63));
        assert!(!precise_level(64));
    }

    /// Witness extraction: every `Sat` verdict yields a model whose root
    /// carries the query, and the confirmation checks behave soundly on
    /// axioms the model does / does not determine.
    #[test]
    fn witness_confirms_unaffecting_gcis() {
        let mut t = TBox::new();
        let a = Concept::Atomic(t.atom("A"));
        let b = Concept::Atomic(t.atom("B"));
        let fresh = Concept::Atomic(t.atom("Fresh"));
        t.gci(a.clone(), b.clone());
        let (verdict, witness) = satisfiable_with_witness(&t, &a, 100_000);
        assert_eq!(verdict, DlOutcome::Sat);
        let mut w = witness.expect("Sat carries a witness");
        assert!(w.node_count() >= 1);
        // `Fresh ⊑ ⊥` is vacuously satisfied: no node mentions Fresh.
        assert!(w.confirms_gci(&fresh, &Concept::Bottom));
        // `A ⊑ B` (already an axiom) is confirmed syntactically.
        assert!(w.confirms_gci(&a, &b));
        // `A ⊑ Fresh` cannot be confirmed: the root has A but not Fresh.
        assert!(!w.confirms_gci(&a, &fresh));
        // `⊤ ⊑ Fresh` likewise.
        assert!(!w.confirms_gci(&Concept::Top, &fresh));
    }

    #[test]
    fn unsat_and_limit_carry_no_witness() {
        let mut t = TBox::new();
        let a = Concept::Atomic(t.atom("A"));
        t.gci(a.clone(), Concept::Bottom);
        assert!(matches!(satisfiable_with_witness(&t, &a, 100_000), (DlOutcome::Unsat, None)));
        let r = RoleExpr::direct(t.role("R"));
        let b = Concept::Atomic(t.atom("B"));
        t.gci(b.clone(), Concept::Exists(r, Box::new(b.clone())));
        assert!(matches!(satisfiable_with_witness(&t, &b, 1), (DlOutcome::ResourceLimit, None)));
    }

    #[test]
    fn witness_edge_checks_respect_new_disjointness() {
        let mut t = TBox::new();
        let r = RoleExpr::direct(t.role("R"));
        let s = RoleExpr::direct(t.role("S"));
        let a = Concept::Atomic(t.atom("A"));
        t.gci(a.clone(), Concept::some(r));
        let (verdict, witness) = satisfiable_with_witness(&t, &a, 100_000);
        assert_eq!(verdict, DlOutcome::Sat);
        let w = witness.expect("witness");
        assert!(w.has_role_edges());
        // Disjointness between two roles the witness never pairs on one
        // edge is respected …
        let mut grown = t.clone();
        grown.disjoint(r, s);
        assert!(w.respects_disjointness(&grown.role_closure()));
        // … and a self-inconsistent declaration on the edge's own role is
        // caught by the scan.
        let mut doomed = t.clone();
        doomed.disjoint(r, r);
        assert!(!w.respects_disjointness(&doomed.role_closure()));
    }

    #[test]
    fn subsumes_reduces_to_unsatisfiability() {
        let mut t = TBox::new();
        let a = Concept::Atomic(t.atom("A"));
        let b = Concept::Atomic(t.atom("B"));
        t.gci(a.clone(), b.clone());
        assert_eq!(subsumes(&t, &b, &a, 500_000), Some(true));
        assert_eq!(subsumes(&t, &a, &b, 500_000), Some(false));
        assert_eq!(subsumes(&t, &a, &b, 0), None);
    }
}
