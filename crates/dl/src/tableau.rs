//! Tableau-based concept satisfiability with respect to a TBox.
//!
//! The procedure is the standard completion-forest tableau for ALC with
//! inverse roles, a role hierarchy and unqualified number restrictions
//! (GCIs internalized, pairwise blocking for termination, `≤`-merging) —
//! but engineered around three structural decisions that replace the
//! original clone-per-branch design (kept in [`crate::classic`] as the
//! differential baseline):
//!
//! * **Hash-consed labels** — every concept is interned once into an
//!   [`crate::arena::Arena`]; node labels are sorted `Vec<ConceptId>`, so
//!   membership is a `u32` binary search, the `A ⊓ ¬A` clash test is one
//!   lookup via the precomputed atom complement, and the label equalities
//!   of pairwise blocking compare ids (after an incrementally maintained
//!   XOR fingerprint rules out almost all candidates).
//! * **Trail-based backtracking** — non-deterministic choices (`⊔`
//!   disjuncts, `≤`-merge pairs) no longer clone the forest. Every
//!   mutation (label/edge/distinctness insert, node creation, kill,
//!   reparent) pushes an undo record on a trail; a branch point is a trail
//!   mark, and abandoning a branch pops records back to the mark.
//! * **Incremental scheduling** — a dirty-node worklist drives the
//!   deterministic rules (`∀`-propagation, clash detection) instead of a
//!   full-forest rescan per iteration; `⊔`/`∃`/`≥` candidates live on
//!   agendas written at label-insert time, consumed through
//!   rollback-aware cursors; and role-hierarchy queries go through the
//!   [`crate::tbox::RoleClosure`] bitsets (per-edge upward closures
//!   maintained on the nodes) rather than per-call `is_subrole` walks.
//!
//! # Budget semantics
//!
//! `budget` counts **rule applications**, exactly as in the original
//! engine: one unit per scheduler step — processing one dirty node
//! (`∀`-propagation plus that node's clash checks), opening one
//! non-deterministic choice point (`⊔` or `≤`), applying one generating
//! rule (`∃`/`≥`), or certifying completeness at quiescence. The count is
//! global across all branches of the search, not per branch. When the
//! budget reaches zero before the search concludes, the verdict is
//! [`DlOutcome::ResourceLimit`] — never a wrong answer. This is the knob
//! callers (e.g. `Translation::type_satisfiable`) use to bound the
//! exponential worst case the paper attributes to complete DL reasoning
//! (§4).

use crate::arena::{invert_role_expr, Arena, CKind, ConceptId, RoleExprId};
use crate::concept::Concept;
use crate::tbox::{RoleClosure, TBox};

/// Verdict of a satisfiability check.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DlOutcome {
    /// A clash-free, fully expanded completion forest exists.
    Sat,
    /// Every branch clashes.
    Unsat,
    /// The rule budget was exhausted before an answer was certain.
    ResourceLimit,
}

/// Whether `sub ⊑ sup` follows from the TBox: the standard reduction to
/// unsatisfiability of `sub ⊓ ¬sup`.
///
/// Returns `Some(true/false)` on a definitive answer and `None` when the
/// budget ran out.
pub fn subsumes(tbox: &TBox, sup: &Concept, sub: &Concept, budget: u64) -> Option<bool> {
    let query = Concept::and([sub.clone(), Concept::not(sup.clone())]);
    match satisfiable(tbox, &query, budget) {
        DlOutcome::Unsat => Some(true),
        DlOutcome::Sat => Some(false),
        DlOutcome::ResourceLimit => None,
    }
}

/// Check satisfiability of `query` with respect to `tbox`, spending at most
/// `budget` rule applications (see the module docs for what one unit of
/// budget buys).
pub fn satisfiable(tbox: &TBox, query: &Concept, budget: u64) -> DlOutcome {
    let mut engine = Engine::new(tbox, query, budget);
    if engine.clash {
        return DlOutcome::Unsat;
    }
    engine.search()
}

const NO_PARENT: u32 = u32::MAX;

/// A completion-forest node. Labels and edge labels are kept sorted so
/// that set queries are binary searches and set equality is slice
/// equality; the `*_hash` fields are XOR fingerprints maintained
/// incrementally (insert and trail-undo both XOR the same mix).
#[derive(Clone, Debug)]
struct ENode {
    alive: bool,
    parent: u32,
    /// Sorted interned label set.
    label: Vec<ConceptId>,
    label_hash: u64,
    /// Sorted role labels of the edge from `parent` to this node.
    edge: Vec<RoleExprId>,
    edge_hash: u64,
    /// Upward closure of `edge` (bitset): this node is an `R`-successor of
    /// its parent iff the bitset contains `R`.
    down_closure: Vec<u64>,
    /// Upward closure of the *inverted* edge: the parent is an
    /// `R`-neighbour of this node iff the bitset contains `R`.
    up_closure: Vec<u64>,
    children: Vec<u32>,
    /// Sorted ids of nodes asserted pairwise-distinct from this one.
    distinct: Vec<u32>,
}

/// One reversible mutation. `rollback` pops these in reverse order, so
/// each undo sees exactly the state its op produced.
#[derive(Clone, Copy, Debug)]
enum Op {
    /// `cid` was inserted into `node`'s label.
    Label { node: u32, cid: ConceptId },
    /// `role` was inserted into `node`'s edge label set.
    EdgeRole { node: u32, role: RoleExprId },
    /// `a` and `b` were marked mutually distinct.
    Distinct { a: u32, b: u32 },
    /// A node was appended to the forest (and linked to its parent).
    NodeAdded,
    /// `node.alive` went from true to false.
    Killed { node: u32 },
    /// `child.parent` changed from `old_parent` to `new_parent` (child was
    /// appended to `new_parent.children`).
    Reparented { child: u32, old_parent: u32, new_parent: u32 },
    /// `child` was removed from `parent.children` at `index`.
    ChildUnlinked { parent: u32, child: u32, index: u32 },
    /// Generator agenda entry `idx` was marked permanently satisfied.
    GenDone { idx: u32 },
}

/// A branch point: trail length plus agenda cursors/lengths. The dirty
/// queue is empty at every mark (choices only open at quiescence), so
/// restoring it means clearing it.
#[derive(Clone, Copy, Debug)]
struct Mark {
    trail: usize,
    or_cursor: usize,
    or_len: usize,
    atmost_len: usize,
    gen_len: usize,
}

struct Engine {
    arena: Arena,
    roles: RoleClosure,
    /// Top-level conjuncts of the internalized TBox, seeded into every node.
    internal: Vec<ConceptId>,
    nodes: Vec<ENode>,
    trail: Vec<Op>,
    /// Dirty-node worklist + membership flags (no duplicate entries).
    dirty: Vec<u32>,
    in_dirty: Vec<bool>,
    /// `⊔` agenda: written at label-insert, consumed via `or_cursor`.
    /// Entries before the cursor are resolved or dead for the rest of the
    /// branch (both monotone until rollback, which restores the cursor).
    or_agenda: Vec<(u32, ConceptId)>,
    or_cursor: usize,
    /// `≤` agenda: (node, n, role) per AtMost label occurrence. Violation
    /// is not monotone (generation adds neighbours), so no cursor.
    atmost_agenda: Vec<(u32, u32, RoleExprId)>,
    /// `∃`/`≥` agenda with sticky per-entry satisfaction bits
    /// (trail-recorded, since satisfaction is monotone only within a
    /// branch).
    gen_agenda: Vec<(u32, ConceptId)>,
    gen_done: Vec<bool>,
    /// Set eagerly by label/edge mutations that produce a clash.
    clash: bool,
    budget: u64,
    /// Scratch buffer for neighbour collection (no per-call allocation).
    scratch: Vec<u32>,
}

impl Engine {
    fn new(tbox: &TBox, query: &Concept, budget: u64) -> Engine {
        let mut arena = Arena::new();
        let internal_concept = tbox.internalized();
        let internal_id = arena.intern(&internal_concept);
        let internal = match arena.kind(internal_id) {
            CKind::Top => Vec::new(),
            CKind::And(ids) => ids.to_vec(),
            _ => vec![internal_id],
        };
        let query_id = arena.intern(query);
        let roles = tbox.role_closure();
        let words = roles.words();
        let root = ENode {
            alive: true,
            parent: NO_PARENT,
            label: Vec::new(),
            label_hash: 0,
            edge: Vec::new(),
            edge_hash: 0,
            down_closure: vec![0; words],
            up_closure: vec![0; words],
            children: Vec::new(),
            distinct: Vec::new(),
        };
        let mut engine = Engine {
            arena,
            roles,
            internal,
            nodes: vec![root],
            trail: Vec::new(),
            dirty: Vec::new(),
            in_dirty: vec![false],
            or_agenda: Vec::new(),
            or_cursor: 0,
            atmost_agenda: Vec::new(),
            gen_agenda: Vec::new(),
            gen_done: Vec::new(),
            clash: false,
            budget,
            scratch: Vec::new(),
        };
        engine.add_concept(0, query_id);
        for cid in engine.internal.clone() {
            engine.add_concept(0, cid);
        }
        engine
    }

    fn role_mix(role: RoleExprId) -> u64 {
        // Same SplitMix64 finalizer as the arena's concept mixes, under a
        // role-specific seed; used for the edge fingerprint.
        crate::arena::splitmix(0x517C_C1B7_2722_0A95 ^ u64::from(role))
    }

    fn mark_dirty(&mut self, node: u32) {
        if !self.in_dirty[node as usize] {
            self.in_dirty[node as usize] = true;
            self.dirty.push(node);
        }
    }

    /// The `i`-th conjunct of an interned `⊓` (re-fetched through the
    /// arena so hot loops need not clone the child slice).
    fn and_child(&self, cid: ConceptId, i: usize) -> ConceptId {
        match self.arena.kind(cid) {
            CKind::And(ids) => ids[i],
            _ => unreachable!("caller checked the kind"),
        }
    }

    /// Insert `cid` into `node`'s label, fusing the `⊓`-rule, recording
    /// the trail, feeding the agendas and detecting immediate clashes.
    fn add_concept(&mut self, node: u32, cid: ConceptId) {
        match self.arena.kind(cid) {
            CKind::Top => return,
            CKind::And(ids) => {
                // Index loop with per-iteration re-fetch: no allocation on
                // this path, which fires for every conjunctive disjunct,
                // ∀-body and merged label.
                let len = ids.len();
                for i in 0..len {
                    let child = self.and_child(cid, i);
                    self.add_concept(node, child);
                }
                return;
            }
            _ => {}
        }
        let slot = match self.nodes[node as usize].label.binary_search(&cid) {
            Ok(_) => return,
            Err(slot) => slot,
        };
        let mix = self.arena.mix(cid);
        {
            let n = &mut self.nodes[node as usize];
            n.label.insert(slot, cid);
            n.label_hash ^= mix;
        }
        self.trail.push(Op::Label { node, cid });
        self.mark_dirty(node);
        match self.arena.kind(cid) {
            CKind::Bottom => self.clash = true,
            CKind::Atomic(_) | CKind::NotAtomic(_) => {
                let neg = self.arena.atom_complement(cid).expect("atoms carry complements");
                if self.nodes[node as usize].label.binary_search(&neg).is_ok() {
                    self.clash = true;
                }
            }
            CKind::Or(_) => self.or_agenda.push((node, cid)),
            CKind::Exists(..) | CKind::AtLeast(..) => {
                self.gen_agenda.push((node, cid));
                self.gen_done.push(false);
            }
            CKind::AtMost(m, r) => {
                let (m, r) = (*m, *r);
                self.atmost_agenda.push((node, m, r));
            }
            _ => {}
        }
    }

    /// Insert `role` into `node`'s up-edge label set, maintaining both
    /// closure bitsets and the edge fingerprint.
    fn add_edge_role(&mut self, node: u32, role: RoleExprId) {
        let slot = match self.nodes[node as usize].edge.binary_search(&role) {
            Ok(_) => return,
            Err(slot) => slot,
        };
        let inv = invert_role_expr(role);
        let parent = {
            let roles = &self.roles;
            let n = &mut self.nodes[node as usize];
            n.edge.insert(slot, role);
            n.edge_hash ^= Self::role_mix(role);
            roles.union_row_into(&mut n.down_closure, role);
            roles.union_row_into(&mut n.up_closure, inv);
            if roles.has_disjointness() && roles.edge_violates_disjointness(&n.down_closure) {
                self.clash = true;
            }
            n.parent
        };
        self.trail.push(Op::EdgeRole { node, role });
        self.mark_dirty(node);
        if parent != NO_PARENT {
            self.mark_dirty(parent);
        }
    }

    fn add_distinct(&mut self, a: u32, b: u32) {
        let Err(slot) = self.nodes[a as usize].distinct.binary_search(&b) else { return };
        self.nodes[a as usize].distinct.insert(slot, b);
        let slot = self.nodes[b as usize]
            .distinct
            .binary_search(&a)
            .expect_err("distinctness stored symmetrically");
        self.nodes[b as usize].distinct.insert(slot, a);
        self.trail.push(Op::Distinct { a, b });
    }

    /// Create a fresh `role`-child of `parent`, seeded with the
    /// internalized TBox plus `seed`.
    fn add_child(&mut self, parent: u32, role: RoleExprId, seed: Option<ConceptId>) -> u32 {
        let words = self.roles.words();
        let id = self.nodes.len() as u32;
        let mut down_closure = vec![0; words];
        let mut up_closure = vec![0; words];
        self.roles.union_row_into(&mut down_closure, role);
        self.roles.union_row_into(&mut up_closure, invert_role_expr(role));
        if self.roles.has_disjointness() && self.roles.edge_violates_disjointness(&down_closure) {
            self.clash = true;
        }
        self.nodes.push(ENode {
            alive: true,
            parent,
            label: Vec::new(),
            label_hash: 0,
            edge: vec![role],
            edge_hash: Self::role_mix(role),
            down_closure,
            up_closure,
            children: Vec::new(),
            distinct: Vec::new(),
        });
        self.in_dirty.push(false);
        self.nodes[parent as usize].children.push(id);
        self.trail.push(Op::NodeAdded);
        if let Some(cid) = seed {
            self.add_concept(id, cid);
        }
        // Index loop: `internal` never changes after construction, and
        // cloning it here would put an allocation on every ∃/≥ firing.
        for i in 0..self.internal.len() {
            let cid = self.internal[i];
            self.add_concept(id, cid);
        }
        self.mark_dirty(parent);
        self.mark_dirty(id);
        id
    }

    /// Merge node `from` into node `to`; both are `R`-neighbours of `via`,
    /// with `from` a child of `via`. Every mutation is trail-recorded, so
    /// the merge unwinds like any other choice.
    fn merge(&mut self, via: u32, from: u32, to: u32) {
        debug_assert_eq!(self.nodes[from as usize].parent, via);
        debug_assert!(self.nodes[from as usize].alive && self.nodes[to as usize].alive);
        self.nodes[from as usize].alive = false;
        self.trail.push(Op::Killed { node: from });
        // Labels and distinctness accumulate on the survivor (the dead
        // node's own sets stay in place for rollback).
        for cid in self.nodes[from as usize].label.clone() {
            self.add_concept(to, cid);
        }
        for d in self.nodes[from as usize].distinct.clone() {
            if self.nodes[d as usize].alive {
                self.add_distinct(to, d);
            }
        }
        // Edges: `from` was a child of `via`.
        let from_edge = self.nodes[from as usize].edge.clone();
        if self.nodes[to as usize].parent == via {
            // Sibling merge: fold edge labels onto the survivor's edge.
            for role in from_edge {
                self.add_edge_role(to, role);
            }
        } else if self.nodes[via as usize].parent == to {
            // Child-into-parent merge: `via —S→ from` becomes
            // `to —S⁻→ via`, folded into via's existing up-edge.
            for role in from_edge {
                self.add_edge_role(via, invert_role_expr(role));
            }
        }
        // Reparent from's children under the survivor.
        for child in self.nodes[from as usize].children.clone() {
            self.nodes[child as usize].parent = to;
            self.nodes[to as usize].children.push(child);
            self.trail.push(Op::Reparented { child, old_parent: from, new_parent: to });
            self.mark_dirty(child);
        }
        // Unlink from from via's child list.
        let index = self.nodes[via as usize]
            .children
            .iter()
            .position(|c| *c == from)
            .expect("from is a child of via");
        self.nodes[via as usize].children.remove(index);
        self.trail.push(Op::ChildUnlinked { parent: via, child: from, index: index as u32 });
        self.mark_dirty(via);
        self.mark_dirty(to);
    }

    fn mark(&self) -> Mark {
        debug_assert!(self.dirty.is_empty(), "choices only open at quiescence");
        Mark {
            trail: self.trail.len(),
            or_cursor: self.or_cursor,
            or_len: self.or_agenda.len(),
            atmost_len: self.atmost_agenda.len(),
            gen_len: self.gen_agenda.len(),
        }
    }

    fn rollback(&mut self, mark: Mark) {
        // Pending work first: at every mark the dirty queue was empty.
        for &n in &self.dirty {
            self.in_dirty[n as usize] = false;
        }
        self.dirty.clear();
        self.clash = false;
        while self.trail.len() > mark.trail {
            match self.trail.pop().expect("len checked") {
                Op::Label { node, cid } => {
                    let mix = self.arena.mix(cid);
                    let n = &mut self.nodes[node as usize];
                    let pos = n.label.binary_search(&cid).expect("label op consistent");
                    n.label.remove(pos);
                    n.label_hash ^= mix;
                }
                Op::EdgeRole { node, role } => {
                    let roles = &self.roles;
                    let n = &mut self.nodes[node as usize];
                    let pos = n.edge.binary_search(&role).expect("edge op consistent");
                    n.edge.remove(pos);
                    n.edge_hash ^= Self::role_mix(role);
                    // Closures are unions, not XORs: recompute from the
                    // remaining labels (edge mutations are rare).
                    n.down_closure.iter_mut().for_each(|w| *w = 0);
                    n.up_closure.iter_mut().for_each(|w| *w = 0);
                    for i in 0..n.edge.len() {
                        let r = n.edge[i];
                        roles.union_row_into(&mut n.down_closure, r);
                        roles.union_row_into(&mut n.up_closure, invert_role_expr(r));
                    }
                }
                Op::Distinct { a, b } => {
                    let pos =
                        self.nodes[a as usize].distinct.binary_search(&b).expect("distinct op");
                    self.nodes[a as usize].distinct.remove(pos);
                    let pos =
                        self.nodes[b as usize].distinct.binary_search(&a).expect("distinct op");
                    self.nodes[b as usize].distinct.remove(pos);
                }
                Op::NodeAdded => {
                    let node = self.nodes.pop().expect("node op consistent");
                    self.in_dirty.pop();
                    if node.parent != NO_PARENT {
                        let popped = self.nodes[node.parent as usize].children.pop();
                        debug_assert_eq!(popped, Some(self.nodes.len() as u32));
                    }
                }
                Op::Killed { node } => self.nodes[node as usize].alive = true,
                Op::Reparented { child, old_parent, new_parent } => {
                    let popped = self.nodes[new_parent as usize].children.pop();
                    debug_assert_eq!(popped, Some(child));
                    self.nodes[child as usize].parent = old_parent;
                }
                Op::ChildUnlinked { parent, child, index } => {
                    self.nodes[parent as usize].children.insert(index as usize, child);
                }
                Op::GenDone { idx } => self.gen_done[idx as usize] = false,
            }
        }
        self.or_cursor = mark.or_cursor;
        self.or_agenda.truncate(mark.or_len);
        self.atmost_agenda.truncate(mark.atmost_len);
        self.gen_agenda.truncate(mark.gen_len);
        self.gen_done.truncate(mark.gen_len);
    }

    /// Whether `node`'s label makes `cid` true syntactically (membership,
    /// with conjunctions split).
    fn label_subsumes(&self, node: u32, cid: ConceptId) -> bool {
        match self.arena.kind(cid) {
            CKind::Top => true,
            CKind::And(ids) => ids.iter().all(|c| self.label_subsumes(node, *c)),
            _ => self.nodes[node as usize].label.binary_search(&cid).is_ok(),
        }
    }

    /// Collect the `role`-neighbours of `x` into `out` (children through a
    /// sub-role edge, plus the parent when the inverted edge closure
    /// reaches `role`). No allocation: callers pass the engine's scratch.
    fn collect_neighbors(nodes: &[ENode], x: u32, role: RoleExprId, out: &mut Vec<u32>) {
        out.clear();
        let n = &nodes[x as usize];
        for &child in &n.children {
            if nodes[child as usize].alive
                && RoleClosure::contains(&nodes[child as usize].down_closure, role)
            {
                out.push(child);
            }
        }
        if n.parent != NO_PARENT
            && nodes[n.parent as usize].alive
            && RoleClosure::contains(&n.up_closure, role)
        {
            out.push(n.parent);
        }
    }

    /// Deterministic work at one dirty node: `∀`-propagation to current
    /// neighbours plus this node's clash conditions (`≤` over distinct
    /// neighbours, edge disjointness).
    fn process_node(&mut self, x: u32) {
        if !self.nodes[x as usize].alive {
            return;
        }
        // ∀-rule: iterate by index — the label can grow during
        // propagation (back-propagation onto x itself).
        let mut i = 0;
        while i < self.nodes[x as usize].label.len() {
            let cid = self.nodes[x as usize].label[i];
            i += 1;
            let CKind::ForAll(role, body) = *self.arena.kind(cid) else { continue };
            let mut c = 0;
            while c < self.nodes[x as usize].children.len() {
                let child = self.nodes[x as usize].children[c];
                c += 1;
                if self.nodes[child as usize].alive
                    && RoleClosure::contains(&self.nodes[child as usize].down_closure, role)
                    && !self.label_subsumes(child, body)
                {
                    self.add_concept(child, body);
                }
            }
            let parent = self.nodes[x as usize].parent;
            if parent != NO_PARENT
                && self.nodes[parent as usize].alive
                && RoleClosure::contains(&self.nodes[x as usize].up_closure, role)
                && !self.label_subsumes(parent, body)
            {
                self.add_concept(parent, body);
            }
            if self.clash {
                return;
            }
        }
        // Edge disjointness.
        if self.roles.has_disjointness()
            && !self.nodes[x as usize].edge.is_empty()
            && self.roles.edge_violates_disjointness(&self.nodes[x as usize].down_closure)
        {
            self.clash = true;
            return;
        }
        // ≤n R with more than n pairwise-distinct R-neighbours.
        let mut scratch = std::mem::take(&mut self.scratch);
        for i in 0..self.nodes[x as usize].label.len() {
            let cid = self.nodes[x as usize].label[i];
            let CKind::AtMost(n, role) = *self.arena.kind(cid) else { continue };
            Self::collect_neighbors(&self.nodes, x, role, &mut scratch);
            if scratch.len() > n as usize && self.all_pairwise_distinct(&scratch) {
                self.clash = true;
                break;
            }
        }
        self.scratch = scratch;
    }

    fn all_pairwise_distinct(&self, nodes: &[u32]) -> bool {
        nodes.iter().enumerate().all(|(i, &a)| {
            nodes[i + 1..].iter().all(|b| self.nodes[a as usize].distinct.binary_search(b).is_ok())
        })
    }

    /// Whether `nodes` contains `n` mutually-distinct members (exhaustive
    /// over subsets; `n` is tiny in ORM workloads).
    fn has_n_pairwise_distinct(&self, nodes: &[u32], n: usize) -> bool {
        fn go(engine: &Engine, nodes: &[u32], chosen: &mut Vec<u32>, n: usize) -> bool {
            if chosen.len() == n {
                return true;
            }
            for (i, &cand) in nodes.iter().enumerate() {
                if chosen
                    .iter()
                    .all(|&c| engine.nodes[c as usize].distinct.binary_search(&cand).is_ok())
                {
                    chosen.push(cand);
                    if go(engine, &nodes[i + 1..], chosen, n) {
                        return true;
                    }
                    chosen.pop();
                }
            }
            false
        }
        if n <= 1 {
            return !nodes.is_empty();
        }
        go(self, nodes, &mut Vec::new(), n)
    }

    /// Ancestors of `x` (exclusive), root last.
    fn ancestors(&self, x: u32) -> impl Iterator<Item = u32> + '_ {
        let mut cur = self.nodes[x as usize].parent;
        std::iter::from_fn(move || {
            if cur == NO_PARENT {
                return None;
            }
            let here = cur;
            cur = self.nodes[cur as usize].parent;
            Some(here)
        })
    }

    /// Pairwise blocking with a fingerprint fast path: `x` is blocked when
    /// some ancestor pair mirrors `x` and its parent exactly, or some
    /// ancestor is itself directly blocked (indirect blocking).
    fn blocked(&self, x: u32) -> bool {
        if self.nodes[x as usize].parent == NO_PARENT {
            return false;
        }
        self.ancestors(x).any(|y| self.directly_blocks(y, x) || self.blocked_directly(y))
    }

    fn blocked_directly(&self, x: u32) -> bool {
        if self.nodes[x as usize].parent == NO_PARENT {
            return false;
        }
        self.ancestors(x).any(|y| self.directly_blocks(y, x))
    }

    /// Whether ancestor `y` (with its parent) mirrors `x` (with its
    /// parent): the pairwise-blocking witness test.
    fn directly_blocks(&self, y: u32, x: u32) -> bool {
        let yp = self.nodes[y as usize].parent;
        if yp == NO_PARENT {
            return false;
        }
        let xp = self.nodes[x as usize].parent;
        let (nx, ny) = (&self.nodes[x as usize], &self.nodes[y as usize]);
        let (nxp, nyp) = (&self.nodes[xp as usize], &self.nodes[yp as usize]);
        // Fingerprints first: almost every candidate fails here.
        if nx.label_hash != ny.label_hash
            || nxp.label_hash != nyp.label_hash
            || nx.edge_hash != ny.edge_hash
        {
            return false;
        }
        nx.label == ny.label && nxp.label == nyp.label && nx.edge == ny.edge
    }

    /// The search loop: drain deterministic work, then branch on `⊔`,
    /// then on `≤`-merges, then apply one generating rule; a quiescent,
    /// clash-free forest is satisfiable.
    fn search(&mut self) -> DlOutcome {
        loop {
            // Drain the dirty worklist (∀-propagation and clash checks).
            while let Some(x) = self.dirty.pop() {
                self.in_dirty[x as usize] = false;
                if self.budget == 0 {
                    return DlOutcome::ResourceLimit;
                }
                self.budget -= 1;
                self.process_node(x);
                if self.clash {
                    return DlOutcome::Unsat;
                }
            }

            // ⊔-rule: first live, unresolved disjunction on the agenda.
            while self.or_cursor < self.or_agenda.len() {
                let (node, cid) = self.or_agenda[self.or_cursor];
                let resolved = !self.nodes[node as usize].alive || {
                    let CKind::Or(ids) = self.arena.kind(cid) else {
                        unreachable!("or agenda holds disjunctions")
                    };
                    ids.iter().any(|d| self.label_subsumes(node, *d))
                };
                if resolved {
                    self.or_cursor += 1;
                    continue;
                }
                if self.budget == 0 {
                    return DlOutcome::ResourceLimit;
                }
                self.budget -= 1;
                let CKind::Or(ids) = self.arena.kind(cid) else { unreachable!() };
                let disjuncts = ids.clone().into_vec();
                let mut limited = false;
                for d in disjuncts {
                    let mark = self.mark();
                    self.add_concept(node, d);
                    if !self.clash {
                        match self.search() {
                            DlOutcome::Sat => return DlOutcome::Sat,
                            DlOutcome::Unsat => {}
                            DlOutcome::ResourceLimit => limited = true,
                        }
                    }
                    self.rollback(mark);
                }
                return if limited { DlOutcome::ResourceLimit } else { DlOutcome::Unsat };
            }

            // ≤-rule: merge surplus neighbours (violation is not monotone,
            // so the agenda is scanned in full).
            let mut le_choice = None;
            let mut scratch = std::mem::take(&mut self.scratch);
            for idx in 0..self.atmost_agenda.len() {
                let (node, n, role) = self.atmost_agenda[idx];
                if !self.nodes[node as usize].alive {
                    continue;
                }
                Self::collect_neighbors(&self.nodes, node, role, &mut scratch);
                if scratch.len() > n as usize {
                    le_choice = Some((node, scratch.clone()));
                    break;
                }
            }
            self.scratch = scratch;
            if let Some((via, neighbors)) = le_choice {
                if self.budget == 0 {
                    return DlOutcome::ResourceLimit;
                }
                self.budget -= 1;
                // Try every mergeable pair; merge the child of the pair.
                // At least one pair is mergeable: were all pairs asserted
                // distinct, the clash check in process_node would have
                // fired before quiescence.
                let mut limited = false;
                let mut tried = false;
                for (i, &a) in neighbors.iter().enumerate() {
                    for &b in neighbors[i + 1..].iter() {
                        if self.nodes[a as usize].distinct.binary_search(&b).is_ok() {
                            continue;
                        }
                        // At most one of a, b is via's parent; merge the
                        // child into the other node.
                        let (from, to) =
                            if self.nodes[via as usize].parent == a { (b, a) } else { (a, b) };
                        tried = true;
                        let mark = self.mark();
                        self.merge(via, from, to);
                        if !self.clash {
                            match self.search() {
                                DlOutcome::Sat => return DlOutcome::Sat,
                                DlOutcome::Unsat => {}
                                DlOutcome::ResourceLimit => limited = true,
                            }
                        }
                        self.rollback(mark);
                    }
                }
                if !tried {
                    // Defensive: all pairs distinct yet uncaught above.
                    return DlOutcome::Unsat;
                }
                return if limited { DlOutcome::ResourceLimit } else { DlOutcome::Unsat };
            }

            // Generating rules on unblocked nodes.
            match self.apply_one_generator() {
                Some(true) => {
                    if self.clash {
                        return DlOutcome::Unsat;
                    }
                    continue;
                }
                None => return DlOutcome::ResourceLimit,
                Some(false) => {}
            }
            if self.budget == 0 {
                // Out of budget exactly at quiescence: certifying
                // completeness costs the final unit, as in the original
                // engine's per-iteration accounting.
                return DlOutcome::ResourceLimit;
            }
            self.budget -= 1;

            // No rule applies: complete and clash-free.
            return DlOutcome::Sat;
        }
    }

    /// Apply the first applicable `∃`/`≥` rule. `Some(true)`: one fired.
    /// `Some(false)`: none applicable. `None`: one was applicable but the
    /// budget is exhausted. Satisfied entries get a sticky (trail-recorded)
    /// done bit; blocked entries are skipped but stay pending, since
    /// blocking is not monotone.
    fn apply_one_generator(&mut self) -> Option<bool> {
        let mut scratch = std::mem::take(&mut self.scratch);
        for idx in 0..self.gen_agenda.len() {
            if self.gen_done[idx] {
                continue;
            }
            let (node, cid) = self.gen_agenda[idx];
            if !self.nodes[node as usize].alive {
                // Death is monotone within a branch: sticky-skip. The
                // label moved to the merge survivor, whose own agenda
                // entry covers the rule.
                self.gen_done[idx] = true;
                self.trail.push(Op::GenDone { idx: idx as u32 });
                continue;
            }
            match *self.arena.kind(cid) {
                CKind::Exists(role, body) => {
                    Self::collect_neighbors(&self.nodes, node, role, &mut scratch);
                    if scratch.iter().any(|&y| self.label_subsumes(y, body)) {
                        // Satisfaction is monotone within a branch (labels
                        // grow, merges preserve neighbours): sticky-skip.
                        self.gen_done[idx] = true;
                        self.trail.push(Op::GenDone { idx: idx as u32 });
                        continue;
                    }
                    if self.blocked(node) {
                        continue;
                    }
                    self.scratch = scratch;
                    if self.budget == 0 {
                        return None;
                    }
                    self.budget -= 1;
                    self.add_child(node, role, Some(body));
                    self.gen_done[idx] = true;
                    self.trail.push(Op::GenDone { idx: idx as u32 });
                    return Some(true);
                }
                CKind::AtLeast(n, role) => {
                    if n == 0 {
                        // ≥0 R is ⊤; nothing to generate.
                        self.gen_done[idx] = true;
                        self.trail.push(Op::GenDone { idx: idx as u32 });
                        continue;
                    }
                    Self::collect_neighbors(&self.nodes, node, role, &mut scratch);
                    if scratch.len() >= n as usize
                        && self.has_n_pairwise_distinct(&scratch, n as usize)
                    {
                        self.gen_done[idx] = true;
                        self.trail.push(Op::GenDone { idx: idx as u32 });
                        continue;
                    }
                    if self.blocked(node) {
                        continue;
                    }
                    self.scratch = scratch;
                    if self.budget == 0 {
                        return None;
                    }
                    self.budget -= 1;
                    let fresh: Vec<u32> =
                        (0..n).map(|_| self.add_child(node, role, None)).collect();
                    for (i, &a) in fresh.iter().enumerate() {
                        for &b in fresh[i + 1..].iter() {
                            self.add_distinct(a, b);
                        }
                    }
                    self.gen_done[idx] = true;
                    self.trail.push(Op::GenDone { idx: idx as u32 });
                    return Some(true);
                }
                _ => unreachable!("generator agenda holds ∃/≥ concepts"),
            }
        }
        self.scratch = scratch;
        Some(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The shared scenario suite (see `crate::test_scenarios`): every rule
    /// interaction with its expected verdict, run through the trail-based
    /// engine. `classic::tests` runs the identical list, so both engines
    /// answer to one specification.
    #[test]
    fn trail_engine_matches_expected_verdicts() {
        for case in crate::test_scenarios::all() {
            assert_eq!(
                satisfiable(&case.tbox, &case.query, case.budget),
                case.expected,
                "trail engine wrong on: {}",
                case.name
            );
        }
    }

    #[test]
    fn subsumes_reduces_to_unsatisfiability() {
        let mut t = TBox::new();
        let a = Concept::Atomic(t.atom("A"));
        let b = Concept::Atomic(t.atom("B"));
        t.gci(a.clone(), b.clone());
        assert_eq!(subsumes(&t, &b, &a, 500_000), Some(true));
        assert_eq!(subsumes(&t, &a, &b, 500_000), Some(false));
        assert_eq!(subsumes(&t, &a, &b, 0), None);
    }
}
