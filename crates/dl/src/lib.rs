//! # orm-dl — a description-logic tableau reasoner and the ORM→DL mapping
//!
//! The paper's "complete procedure" maps ORM into the DLR description logic
//! and calls the (closed-source) RACER reasoner \[JF05\]. This crate rebuilds
//! that pipeline from scratch on an open footing:
//!
//! * [`concept`] — a DL concept language with inverse roles and
//!   *unqualified* number restrictions (`ALCNI` plus a role hierarchy and
//!   role disjointness — exactly what the binary-ORM mapping needs; DLR's
//!   n-ary features degenerate to this fragment for binary predicates);
//! * [`tbox`] — TBoxes of general concept inclusions, role inclusions and
//!   role disjointness, with (memoized) GCI internalization and a
//!   mutation-stamped identity ([`tbox::TBox::cache_stamp`]) backed by a
//!   **delta log** ([`tbox::TBox::delta_since`]) that tells caches *what*
//!   changed, not just *that* something changed;
//! * [`tableau`] — a sound and terminating tableau procedure with pairwise
//!   blocking, successor merging, a rule budget, trail-based backtracking,
//!   dependency-directed backjumping and per-fact **axiom-usage tracking**
//!   ([`tableau::satisfiable_with_conflict`] reports which axioms a
//!   refutation rested on); the retained clone-per-branch baseline lives
//!   in [`classic`] for differential testing;
//! * [`explain`] — minimal **unsat cores**: the tableau's conflict axioms
//!   verified and deletion-minimized, so an `Unsat` verdict names the
//!   exact axiom set that causes it; MARCO-style **MUS enumeration**
//!   ([`explain::enumerate_mus`]) lifts one core to the whole family of
//!   independent contradictions, and minimal **hitting-set repairs**
//!   ([`explain::ranked_repairs`]) name the axiom sets whose removal is
//!   re-proved to restore satisfiability (guarantees in
//!   `docs/EXPLANATIONS.md`);
//! * [`cache`] — a [`SatCache`] memoizing verdicts per interned root
//!   label set, and its sharded counterpart [`SatShards`] (independently
//!   locked, stamp-validated shards routed by a structural hash of the
//!   canonical root label set) consulted by every [`Translation`]
//!   satisfiability helper so classify-heavy workloads pay for each
//!   distinct query once — from any number of threads. Entries **survive
//!   monotone TBox edits**: `Unsat` verdicts are retained outright and
//!   `Sat` verdicts are revalidated against their stored [`Witness`]
//!   models, so an editor-in-the-loop session keeps its warm cache
//!   across constraint additions ([`Translation::edit`]);
//! * [`exec`] — the unified execution context [`ExecCx`]: a step budget,
//!   an optional wall-clock deadline, a shared hierarchical
//!   [`CancelToken`] and a [`Meter`] of work counters, consumed by every
//!   `_cx` entry point in the stack. The tableau checks it cooperatively
//!   at worklist pops and choice points, so [`tableau::SearchOutcome`]
//!   can distinguish `Cancelled` / `DeadlineExceeded` from a plain
//!   `BudgetExhausted` — and caches never record interrupted runs;
//! * [`par`] — a work-stealing scoped-thread scheduler
//!   ([`par::fan_out_cx`], with [`par::fan_out`] as the unlimited-context
//!   wrapper) driving the parallel query batteries
//!   [`Translation::classify_par`] and [`Translation::role_sweep_par`]:
//!   per-worker deques, steal-on-empty, and cooperative cancellation
//!   between items;
//! * [`saturation`] — a third engine beside the tableau and the bounded
//!   model finder: a graph-saturation **model finder**
//!   ([`SaturationEngine`]) that saturates a small candidate graph to
//!   fixpoint under ring/value/frequency semantics, verifies every `Sat`
//!   witness against the population conformance rules, and attributes
//!   every `Unsat` to refuting [`NonDlOrigin`]s — flagging the verdicts
//!   the DL translation could not have produced (`beyond_dl`); verdicts
//!   are memoized in revision-stamped [`SaturationShards`];
//! * [`orm_to_dl`] — the schema translation, recording an
//!   [`AxiomOrigin`] per emitted axiom so unsat cores map back to the
//!   ORM constructs that caused them ([`Translation::explain_unsat`] /
//!   [`Translation::core_origins`]). Ring constraints, value
//!   constraints and spanning frequency constraints are reported as
//!   *unmapped* — the same expressivity gap the paper concedes for DLR
//!   (footnote 10); the bounded model finder (`orm-reasoner`) covers them.
//!
//! ```
//! use orm_dl::concept::{Concept, RoleExpr};
//! use orm_dl::tbox::TBox;
//! use orm_dl::tableau::{satisfiable, DlOutcome};
//!
//! let mut tbox = TBox::new();
//! let a = tbox.atom("A");
//! let b = tbox.atom("B");
//! // A ⊑ B and A ⊓ ¬B unsatisfiable.
//! tbox.gci(Concept::Atomic(a), Concept::Atomic(b));
//! let query = Concept::and([Concept::Atomic(a), Concept::not(Concept::Atomic(b))]);
//! assert_eq!(satisfiable(&tbox, &query, 100_000), DlOutcome::Unsat);
//! let _ = RoleExpr::direct(0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arena;
pub mod cache;
pub mod classic;
pub mod concept;
pub mod exec;
pub mod explain;
pub mod orm_to_dl;
pub mod par;
pub mod saturation;
pub mod tableau;
pub mod tbox;

#[cfg(test)]
mod test_scenarios;

pub use arena::{Arena, ConceptId};
pub use cache::{CacheStats, RestoreReport, SatCache, SatShards, SnapshotError};
pub use concept::{Concept, RoleExpr};
pub use exec::{CancelToken, ExecCx, Interrupt, Meter};
pub use explain::{
    enumerate_mus, enumerate_mus_cx, enumerate_mus_seeded, explain_unsat, explain_unsat_cx,
    explain_unsat_seeded, ranked_repairs, ranked_repairs_cx, repair_sets, Explanation,
    MusEnumeration, MusFamily, RepairSet, UnsatCore,
};
pub use orm_to_dl::{translate, AxiomOrigin, EditSession, Translation};
pub use saturation::{
    ModelGraph, NonDlOrigin, Refutation, SaturationCacheStats, SaturationEngine, SaturationOutcome,
    SaturationShards, SaturationTarget,
};
pub use tableau::{
    satisfiable, satisfiable_cx, satisfiable_with_conflict, satisfiable_with_conflict_cx,
    satisfiable_with_witness, satisfiable_with_witness_cx, subsumes, subsumes_cx, DlOutcome,
    SearchOutcome, Witness,
};
pub use tbox::{AdditionDelta, AxiomId, AxiomKind, AxiomRef, Delta, EditKind, RoleClosure, TBox};
