//! A verdict cache for repeated satisfiability queries against one TBox.
//!
//! The ORM workload is *classify-heavy*: `Translation::classify` asks
//! `O(n²)` subsumption questions against a single TBox, per-role sweeps
//! re-prove `∃R.⊤`-style queries for every role, and interactive editing
//! re-runs the whole battery after each schema change. The queries
//! overlap massively — the same root label set shows up again and again —
//! so [`SatCache`] memoizes verdicts keyed on the **interned, sorted root
//! `ConceptId` label set** of the query.
//!
//! # Key canonicalization
//!
//! The cache owns a private [`Arena`]; each query is interned there and
//! its top-level conjunct list (which the arena stores sorted and
//! deduplicated) becomes the key. Two queries that differ only in `⊓`
//! argument order, duplication or nesting therefore share one cache line:
//! `A ⊓ (B ⊓ A)` and `B ⊓ A` hit the same entry.
//!
//! # Invalidation
//!
//! Entries are proved against one TBox state, witnessed by
//! [`TBox::cache_stamp`] — a process-unique TBox identity plus a mutation
//! revision. Any mutation bumps the revision, and clones get fresh
//! identities, so a stamp mismatch (detected on the next query) clears
//! the cache wholesale. There is no way to observe a stale verdict.
//!
//! # Budget semantics
//!
//! Definitive verdicts (`Sat`/`Unsat`) are budget-independent facts about
//! the TBox, so a hit returns them even when the caller's budget is
//! smaller than the one that proved them — the cache upgrades answers,
//! never downgrades. An inconclusive attempt is remembered as
//! [`DlOutcome::ResourceLimit`] *together with the budget that failed*:
//! it only short-circuits callers asking for at most that much budget. A
//! larger-budget retry runs the tableau again (and overwrites the entry
//! with whatever it learns), so an `Unknown` under budget `b` can never
//! shadow a later, better-funded run.
//!
//! ```
//! use orm_dl::cache::SatCache;
//! use orm_dl::concept::Concept;
//! use orm_dl::tableau::DlOutcome;
//! use orm_dl::tbox::TBox;
//!
//! let mut tbox = TBox::new();
//! let a = Concept::Atomic(tbox.atom("A"));
//! let b = Concept::Atomic(tbox.atom("B"));
//! tbox.gci(a.clone(), b.clone());
//!
//! let mut cache = SatCache::new();
//! let query = Concept::and([a.clone(), Concept::not(b.clone())]);
//! assert_eq!(cache.satisfiable(&tbox, &query, 100_000), DlOutcome::Unsat);
//! // Same root label set, different ⊓ spelling: a pure cache hit.
//! let again = Concept::and([Concept::not(b.clone()), a.clone(), a.clone()]);
//! assert_eq!(cache.satisfiable(&tbox, &again, 100_000), DlOutcome::Unsat);
//! assert_eq!(cache.stats().hits, 1);
//!
//! // Mutating the TBox invalidates every entry.
//! tbox.gci(b.clone(), a.clone());
//! assert_eq!(cache.satisfiable(&tbox, &query, 100_000), DlOutcome::Unsat);
//! assert_eq!(cache.stats().invalidations, 1);
//! ```

use crate::arena::{Arena, CKind, ConceptId};
use crate::concept::Concept;
use crate::tableau::{satisfiable, DlOutcome};
use crate::tbox::TBox;
use std::collections::HashMap;

/// Hit/miss/invalidation counters, for benches and acceptance checks.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Queries answered from the cache without running the tableau.
    pub hits: u64,
    /// Queries that ran the tableau (and populated an entry).
    pub misses: u64,
    /// Wholesale clears caused by a TBox stamp change.
    pub invalidations: u64,
}

/// A cached verdict. `Sat`/`Unsat` are final; `Unknown` records the
/// largest budget that failed to decide the query.
#[derive(Clone, Copy, Debug)]
enum Entry {
    Sat,
    Unsat,
    Unknown { budget: u64 },
}

/// Memoizes [`satisfiable`] verdicts per root label set for one TBox
/// state. See the [module docs](self) for key and budget semantics.
#[derive(Clone, Debug, Default)]
pub struct SatCache {
    arena: Arena,
    /// The stamp the current entries were proved against.
    stamp: Option<(u64, u64)>,
    entries: HashMap<Box<[ConceptId]>, Entry>,
    stats: CacheStats,
}

impl SatCache {
    /// An empty cache, bound to no TBox yet.
    pub fn new() -> SatCache {
        SatCache::default()
    }

    /// Counters since construction (survive invalidation).
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache currently holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Drop every entry (keeps the stats).
    pub fn clear(&mut self) {
        self.entries.clear();
        self.arena = Arena::new();
        self.stamp = None;
    }

    /// Clear when `tbox` is not the TBox state the entries were proved
    /// against.
    fn validate(&mut self, tbox: &TBox) {
        let stamp = tbox.cache_stamp();
        if self.stamp != Some(stamp) {
            if self.stamp.is_some() {
                self.stats.invalidations += 1;
            }
            self.entries.clear();
            self.arena = Arena::new();
            self.stamp = Some(stamp);
        }
    }

    /// The canonical root label set of `query`: its interned top-level
    /// conjuncts (sorted, deduplicated by the arena).
    fn key(&mut self, query: &Concept) -> Box<[ConceptId]> {
        let id = self.arena.intern(query);
        match self.arena.kind(id) {
            CKind::And(ids) => ids.clone(),
            CKind::Top => Box::new([]),
            _ => Box::new([id]),
        }
    }

    /// Cached [`satisfiable`]: consult the verdict cache, fall back to the
    /// tableau on a miss, and remember what it learned.
    pub fn satisfiable(&mut self, tbox: &TBox, query: &Concept, budget: u64) -> DlOutcome {
        self.validate(tbox);
        let key = self.key(query);
        match self.entries.get(&key) {
            Some(Entry::Sat) => {
                self.stats.hits += 1;
                return DlOutcome::Sat;
            }
            Some(Entry::Unsat) => {
                self.stats.hits += 1;
                return DlOutcome::Unsat;
            }
            Some(Entry::Unknown { budget: tried }) if *tried >= budget => {
                // The cached attempt had at least this much budget and
                // still ran out: re-running with less cannot do better.
                self.stats.hits += 1;
                return DlOutcome::ResourceLimit;
            }
            _ => {}
        }
        self.stats.misses += 1;
        let verdict = satisfiable(tbox, query, budget);
        let entry = match verdict {
            DlOutcome::Sat => Entry::Sat,
            DlOutcome::Unsat => Entry::Unsat,
            DlOutcome::ResourceLimit => Entry::Unknown { budget },
        };
        self.entries.insert(key, entry);
        verdict
    }

    /// Cached [`crate::tableau::subsumes`]: the standard reduction of
    /// `sub ⊑ sup` to unsatisfiability of `sub ⊓ ¬sup`, through
    /// [`SatCache::satisfiable`] so repeated classification sweeps share
    /// verdicts.
    pub fn subsumes(
        &mut self,
        tbox: &TBox,
        sup: &Concept,
        sub: &Concept,
        budget: u64,
    ) -> Option<bool> {
        let query = Concept::and([sub.clone(), Concept::not(sup.clone())]);
        match self.satisfiable(tbox, &query, budget) {
            DlOutcome::Unsat => Some(true),
            DlOutcome::Sat => Some(false),
            DlOutcome::ResourceLimit => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::concept::RoleExpr;

    fn ab_tbox() -> (TBox, Concept, Concept) {
        let mut t = TBox::new();
        let a = Concept::Atomic(t.atom("A"));
        let b = Concept::Atomic(t.atom("B"));
        t.gci(a.clone(), b.clone());
        (t, a, b)
    }

    #[test]
    fn repeated_queries_hit() {
        let (t, a, b) = ab_tbox();
        let mut cache = SatCache::new();
        let q = Concept::and([a.clone(), Concept::not(b.clone())]);
        assert_eq!(cache.satisfiable(&t, &q, 100_000), DlOutcome::Unsat);
        for _ in 0..10 {
            assert_eq!(cache.satisfiable(&t, &q, 100_000), DlOutcome::Unsat);
        }
        assert_eq!(cache.stats().misses, 1);
        assert_eq!(cache.stats().hits, 10);
    }

    #[test]
    fn key_canonicalizes_conjunction_spelling() {
        let (t, a, b) = ab_tbox();
        let mut cache = SatCache::new();
        let q1 = Concept::and([a.clone(), b.clone()]);
        let q2 = Concept::and([b.clone(), a.clone(), a.clone()]);
        assert_eq!(cache.satisfiable(&t, &q1, 100_000), DlOutcome::Sat);
        assert_eq!(cache.satisfiable(&t, &q2, 100_000), DlOutcome::Sat);
        assert_eq!(cache.stats().misses, 1);
        assert_eq!(cache.stats().hits, 1);
    }

    #[test]
    fn mutation_invalidates() {
        let (mut t, a, b) = ab_tbox();
        let mut cache = SatCache::new();
        let q = Concept::and([a.clone(), Concept::not(b.clone())]);
        assert_eq!(cache.satisfiable(&t, &q, 100_000), DlOutcome::Unsat);
        // New axiom: same query must be re-proved, not replayed.
        t.gci(b.clone(), a.clone());
        assert_eq!(cache.satisfiable(&t, &q, 100_000), DlOutcome::Unsat);
        assert_eq!(cache.stats().invalidations, 1);
        assert_eq!(cache.stats().misses, 2);
    }

    #[test]
    fn clones_never_alias() {
        let (t, a, b) = ab_tbox();
        let mut clone = t.clone();
        let mut cache = SatCache::new();
        let q = Concept::and([a.clone(), Concept::not(b.clone())]);
        assert_eq!(cache.satisfiable(&t, &q, 100_000), DlOutcome::Unsat);
        // The clone diverges: A ⊑ B is joined by B ⊑ ⊥.
        clone.gci(b.clone(), Concept::Bottom);
        // A alone is now unsatisfiable in the clone; the entry proved
        // against `t` must not answer for it.
        assert_eq!(cache.satisfiable(&clone, &a, 100_000), DlOutcome::Unsat);
        assert_eq!(cache.satisfiable(&t, &a, 100_000), DlOutcome::Sat);
    }

    #[test]
    fn unknown_entries_are_budget_aware() {
        // A query the tableau cannot decide under a tiny budget.
        let mut t = TBox::new();
        let r = RoleExpr::direct(t.role("R"));
        let a = Concept::Atomic(t.atom("A"));
        t.gci(a.clone(), Concept::Exists(r, Box::new(a.clone())));
        let mut cache = SatCache::new();
        assert_eq!(cache.satisfiable(&t, &a, 1), DlOutcome::ResourceLimit);
        // Same or smaller budget: short-circuited.
        assert_eq!(cache.satisfiable(&t, &a, 1), DlOutcome::ResourceLimit);
        assert_eq!(cache.stats().hits, 1);
        // A larger budget must actually re-run — and succeeds.
        assert_eq!(cache.satisfiable(&t, &a, 100_000), DlOutcome::Sat);
        // The definitive verdict now answers even tiny-budget callers.
        assert_eq!(cache.satisfiable(&t, &a, 1), DlOutcome::Sat);
    }

    #[test]
    fn subsumes_through_cache_matches_uncached() {
        let (t, a, b) = ab_tbox();
        let mut cache = SatCache::new();
        assert_eq!(cache.subsumes(&t, &b, &a, 100_000), Some(true));
        assert_eq!(cache.subsumes(&t, &a, &b, 100_000), Some(false));
        assert_eq!(
            cache.subsumes(&t, &b, &a, 100_000),
            crate::tableau::subsumes(&t, &b, &a, 100_000)
        );
    }
}
