//! Verdict caches for repeated satisfiability queries against one TBox:
//! the single-threaded [`SatCache`] and its sharded, lock-striped
//! counterpart [`SatShards`] for parallel query batteries.
//!
//! The ORM workload is *classify-heavy*: `Translation::classify` asks
//! `O(n²)` subsumption questions against a single TBox, per-role sweeps
//! re-prove `∃R.⊤`-style queries for every role, and interactive editing
//! re-runs the whole battery after each schema change. The queries
//! overlap massively — the same root label set shows up again and again —
//! so [`SatCache`] memoizes verdicts keyed on the **interned, sorted root
//! `ConceptId` label set** of the query.
//!
//! # Key canonicalization
//!
//! The cache owns a private [`Arena`]; each query is interned there and
//! its top-level conjunct list (which the arena stores sorted and
//! deduplicated) becomes the key. Two queries that differ only in `⊓`
//! argument order, duplication or nesting therefore share one cache line:
//! `A ⊓ (B ⊓ A)` and `B ⊓ A` hit the same entry. Subsumption queries
//! ([`SatCache::subsumes`]) build the key for `sub ⊓ ¬sup` directly from
//! interned ids ([`Arena::intern_negated`]) — no concept tree is cloned
//! on the hot path, and the entry is shared with any
//! [`SatCache::satisfiable`] call that spells the same root label set.
//!
//! # Invalidation — delta-aware since PR 4
//!
//! Entries are proved against one TBox state, witnessed by
//! [`TBox::cache_stamp`] — a process-unique TBox identity plus a mutation
//! revision. On a revision mismatch the cache no longer clears wholesale:
//! it asks [`TBox::delta_since`] *what* happened and applies per-entry
//! retention rules when the delta is pure additions:
//!
//! * **`Unsat` entries are kept outright** (counted in
//!   [`CacheStats::retained`]). Additions are monotone — every model of
//!   the grown TBox is a model of the old one, so nothing unsatisfiable
//!   becomes satisfiable.
//! * **`Sat` entries are revalidated against their stored witness
//!   model** ([`crate::tableau::Witness`], emitted by every tableau run
//!   the cache performs): each added GCI is checked to hold at every
//!   witness node and each added disjointness against every witness
//!   edge — a linear scan, no tableau rerun. Confirmed entries stay
//!   (counted in [`CacheStats::revalidated`]); unconfirmed ones are
//!   dropped individually (counted in [`CacheStats::evicted`]) and
//!   re-proved lazily on their next query. Added *role inclusions* keep
//!   only edge-free witnesses (hierarchy growth can re-route `∀`/`≤`
//!   reasoning across edges).
//! * **Budget-`Unknown` entries are evicted**: they are facts about a
//!   proof attempt, not about the TBox, and the grown TBox may well be
//!   decidable within the same budget.
//!
//! A **destructive** delta (axiom retraction) or a different TBox
//! identity (clones get fresh uids) still clears wholesale and counts one
//! `invalidations`. An **explicit** [`SatCache::clear`] also drops every
//! entry but is counted separately in [`CacheStats::clears`] — the
//! counters partition "entries died" events by cause, so stats never
//! silently drift. There is no way to observe a stale verdict: retention
//! only ever keeps entries whose proof provably transfers to the grown
//! TBox.
//!
//! # Budget semantics
//!
//! Definitive verdicts (`Sat`/`Unsat`) are budget-independent facts about
//! the TBox, so a hit returns them even when the caller's budget is
//! smaller than the one that proved them — the cache upgrades answers,
//! never downgrades. An inconclusive attempt is remembered as
//! [`DlOutcome::ResourceLimit`] *together with the budget that failed*:
//! it only short-circuits callers asking for at most that much budget. A
//! larger-budget retry runs the tableau again (and overwrites the entry
//! with whatever it learns), so an `Unknown` under budget `b` can never
//! shadow a later, better-funded run.
//!
//! ```
//! use orm_dl::cache::SatCache;
//! use orm_dl::concept::Concept;
//! use orm_dl::tableau::DlOutcome;
//! use orm_dl::tbox::TBox;
//!
//! let mut tbox = TBox::new();
//! let a = Concept::Atomic(tbox.atom("A"));
//! let b = Concept::Atomic(tbox.atom("B"));
//! tbox.gci(a.clone(), b.clone());
//!
//! let mut cache = SatCache::new();
//! let query = Concept::and([a.clone(), Concept::not(b.clone())]);
//! assert_eq!(cache.satisfiable(&tbox, &query, 100_000), DlOutcome::Unsat);
//! // Same root label set, different ⊓ spelling: a pure cache hit.
//! let again = Concept::and([Concept::not(b.clone()), a.clone(), a.clone()]);
//! assert_eq!(cache.satisfiable(&tbox, &again, 100_000), DlOutcome::Unsat);
//! assert_eq!(cache.stats().hits, 1);
//!
//! // Adding an axiom no longer clears the cache: the Unsat entry is
//! // monotone-safe and survives, so the re-query is another hit.
//! tbox.gci(b.clone(), a.clone());
//! assert_eq!(cache.satisfiable(&tbox, &query, 100_000), DlOutcome::Unsat);
//! let stats = cache.stats();
//! assert_eq!((stats.invalidations, stats.retained, stats.hits), (0, 1, 2));
//!
//! // Retracting one does: destructive edits clear wholesale.
//! tbox.retract_gci(1);
//! assert_eq!(cache.satisfiable(&tbox, &query, 100_000), DlOutcome::Unsat);
//! assert_eq!(cache.stats().invalidations, 1);
//! ```
//!
//! # Sharding ([`SatShards`])
//!
//! A single `Mutex<SatCache>` serializes every query of a parallel
//! battery. [`SatShards`] stripes the key space over `N` independent
//! caches, each behind its own lock; a query is routed by an
//! order/duplication-independent **structural hash** of its canonical
//! root label set, computed without touching any arena — so two threads
//! asking about different label sets almost always take different locks.
//! Each shard's lock is held across the whole lookup-prove-insert
//! sequence, which makes per-key work exactly-once: aggregated hit/miss
//! totals are deterministic and equal to what a sequential [`SatCache`]
//! run of the same battery reports.

use crate::arena::{splitmix, Arena, CKind, ConceptId};
use crate::concept::{Concept, RoleExpr};
use crate::exec::{ExecCx, Interrupt};
use crate::explain::{
    enumerate_mus, enumerate_mus_cx, enumerate_mus_seeded, enumerate_mus_seeded_cx, explain_unsat,
    explain_unsat_cx, explain_unsat_seeded, explain_unsat_seeded_cx, Explanation, MusEnumeration,
    MusFamily, UnsatCore,
};
use crate::tableau::{
    satisfiable_with_witness, satisfiable_with_witness_cx, DlOutcome, SearchOutcome, Witness,
};
use crate::tbox::{AdditionDelta, AxiomId, Delta, TBox};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::fmt;

mod snapshot;

pub use snapshot::{RestoreReport, SnapshotError};

/// Hit/miss/invalidation/retention counters, for benches and acceptance
/// checks.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Queries answered from the cache without running the tableau.
    pub hits: u64,
    /// Queries that ran the tableau (and populated an entry).
    pub misses: u64,
    /// Wholesale clears caused by a TBox identity change or a destructive
    /// delta (pure additions no longer count here — see `retained`,
    /// `revalidated` and `evicted`).
    pub invalidations: u64,
    /// Wholesale clears requested explicitly through [`SatCache::clear`]
    /// (kept apart from `invalidations` so the two causes stay
    /// distinguishable).
    pub clears: u64,
    /// `Unsat` entries kept verbatim across a pure-addition delta
    /// (additions are monotone: nothing unsatisfiable becomes
    /// satisfiable).
    pub retained: u64,
    /// `Sat` entries whose stored witness model confirmed every added
    /// axiom — kept without a tableau rerun.
    pub revalidated: u64,
    /// Entries dropped individually during a pure-addition delta (witness
    /// could not confirm an added axiom, or the entry was a
    /// budget-`Unknown`); each is re-proved lazily on its next query.
    pub evicted: u64,
    /// Tableau runs cut short by a tripped cancellation token. Interrupted
    /// runs leave **no entry** — a cancelled proof says nothing about the
    /// query, so recording an `Unknown` for it would mask a provable
    /// verdict from later, uncancelled callers.
    pub cancelled: u64,
    /// Tableau runs cut short by an expired wall-clock deadline. Like
    /// `cancelled`, these leave no entry.
    pub deadlined: u64,
    /// Requests refused outright by a service admission layer
    /// ([`SatShards::note_shed`] — the cache itself never sheds).
    pub sheds: u64,
    /// Requests admitted with a tightened step budget
    /// ([`SatShards::note_downgrade`]).
    pub downgrades: u64,
    /// Successful [`SatShards::snapshot`] serializations.
    pub snapshots: u64,
    /// Successful [`SatShards::restore`] installs.
    pub restores: u64,
    /// Snapshot blobs rejected by [`SatShards::restore`] — corrupt bytes
    /// (truncation, bit-flips, checksum mismatch) or a TBox
    /// stamp/fingerprint mismatch. Each rejection degrades to a cold
    /// shard, never a panic or a stale verdict.
    pub corrupt_rejected: u64,
}

impl fmt::Display for CacheStats {
    /// One compact line (`hits 3 / misses 2 / retained 1 / revalidated 0 /
    /// evicted 0 / invalidations 0 / clears 0`) — the format every example
    /// and bench report prints instead of hand-assembling the fields.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "hits {} / misses {} / retained {} / revalidated {} / evicted {} / \
             invalidations {} / clears {} / cancelled {} / deadlined {} / sheds {} / \
             downgrades {} / snapshots {} / restores {} / corrupt_rejected {}",
            self.hits,
            self.misses,
            self.retained,
            self.revalidated,
            self.evicted,
            self.invalidations,
            self.clears,
            self.cancelled,
            self.deadlined,
            self.sheds,
            self.downgrades,
            self.snapshots,
            self.restores,
            self.corrupt_rejected
        )
    }
}

impl CacheStats {
    /// Field-wise sum — the aggregation [`SatShards::stats`] performs
    /// across its shards.
    pub fn merge(self, other: CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits + other.hits,
            misses: self.misses + other.misses,
            invalidations: self.invalidations + other.invalidations,
            clears: self.clears + other.clears,
            retained: self.retained + other.retained,
            revalidated: self.revalidated + other.revalidated,
            evicted: self.evicted + other.evicted,
            cancelled: self.cancelled + other.cancelled,
            deadlined: self.deadlined + other.deadlined,
            sheds: self.sheds + other.sheds,
            downgrades: self.downgrades + other.downgrades,
            snapshots: self.snapshots + other.snapshots,
            restores: self.restores + other.restores,
            corrupt_rejected: self.corrupt_rejected + other.corrupt_rejected,
        }
    }

    /// The **stable serialized form** bench runs and trajectory files
    /// record: a JSON object whose key set and order are fixed (every
    /// field, always, in declaration order), so downstream tooling can
    /// diff counters across runs without schema sniffing.
    ///
    /// ```
    /// use orm_dl::cache::CacheStats;
    ///
    /// let json = CacheStats::default().to_json();
    /// assert!(json.starts_with("{\"hits\": 0, \"misses\": 0"));
    /// assert!(json.contains("\"cancelled\": 0"));
    /// assert!(json.contains("\"corrupt_rejected\": 0"));
    /// ```
    pub fn to_json(&self) -> String {
        format!(
            "{{\"hits\": {}, \"misses\": {}, \"invalidations\": {}, \"clears\": {}, \
             \"retained\": {}, \"revalidated\": {}, \"evicted\": {}, \"cancelled\": {}, \
             \"deadlined\": {}, \"sheds\": {}, \"downgrades\": {}, \"snapshots\": {}, \
             \"restores\": {}, \"corrupt_rejected\": {}}}",
            self.hits,
            self.misses,
            self.invalidations,
            self.clears,
            self.retained,
            self.revalidated,
            self.evicted,
            self.cancelled,
            self.deadlined,
            self.sheds,
            self.downgrades,
            self.snapshots,
            self.restores,
            self.corrupt_rejected
        )
    }
}

/// A cached verdict. `Sat`/`Unsat` are final; `Sat` carries the witness
/// model its tableau run produced (the handle delta revalidation checks
/// new axioms against); `Unsat` carries its minimal unsat core once an
/// explanation has been requested (`None` until then — cores are computed
/// lazily, but never twice); `Unknown` records the largest budget that
/// failed to decide the query.
///
/// Cores survive the pure-addition retention rule alongside their `Unsat`
/// verdicts: the core's axioms persist under additions (per-kind indices
/// are append-stable), its restriction is unchanged — so it stays a
/// certified, minimal core of the grown TBox. The cached MUS `family`
/// (once an enumeration has been requested) survives the same way —
/// every cached core is still a certified, minimal core — but its
/// *completeness* flag is conservatively cleared: added axioms can create
/// brand-new MUSes the cached family has never seen.
#[derive(Clone, Debug)]
enum Entry {
    Sat { witness: Option<Witness> },
    Unsat { core: Option<UnsatCore>, family: Option<MusFamily> },
    Unknown { budget: u64 },
}

/// Memoizes [`crate::tableau::satisfiable`] verdicts per root label set for one TBox
/// state. See the [module docs](self) for key and budget semantics.
#[derive(Clone, Debug, Default)]
pub struct SatCache {
    arena: Arena,
    /// The stamp the current entries were proved against.
    stamp: Option<(u64, u64)>,
    entries: HashMap<Box<[ConceptId]>, Entry>,
    stats: CacheStats,
}

impl SatCache {
    /// An empty cache, bound to no TBox yet.
    pub fn new() -> SatCache {
        SatCache::default()
    }

    /// Counters since construction (survive invalidation).
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache currently holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Drop every entry and detach from the current TBox stamp. Counted
    /// in [`CacheStats::clears`]; the later re-binding to a TBox is *not*
    /// additionally counted as an invalidation (nothing stale was
    /// discarded by it — this clear already did).
    pub fn clear(&mut self) {
        self.entries.clear();
        self.arena = Arena::new();
        self.stamp = None;
        self.stats.clears += 1;
    }

    /// Reconcile the cache with `tbox`'s current state: nothing on a
    /// stamp match, per-entry retention on a pure-addition delta of the
    /// same TBox, wholesale clear on identity change or destruction.
    fn validate(&mut self, tbox: &TBox) {
        let stamp = tbox.cache_stamp();
        if self.stamp == Some(stamp) {
            return;
        }
        if let Some((uid, revision)) = self.stamp {
            if uid == stamp.0 {
                if let Delta::Additions(delta) = tbox.delta_since(revision) {
                    self.revalidate(tbox, &delta);
                    self.stamp = Some(stamp);
                    return;
                }
            }
            // Different TBox value or destructive history: nothing proved
            // before can be trusted.
            self.stats.invalidations += 1;
        }
        self.entries.clear();
        self.arena = Arena::new();
        self.stamp = Some(stamp);
    }

    /// Apply the retention rules for a pure-addition delta: keep `Unsat`
    /// outright, re-check each `Sat` witness against the added axioms,
    /// evict everything else. One linear scan over the entries — the
    /// arena (and with it every key) survives untouched.
    fn revalidate(&mut self, tbox: &TBox, delta: &AdditionDelta<'_>) {
        if delta.is_empty() {
            return;
        }
        // One closure build covers every witness's disjointness scan; the
        // common all-GCI delta skips it entirely.
        let closure = (!delta.disjoint_roles.is_empty()).then(|| tbox.role_closure());
        let role_hierarchy_grew = !delta.role_inclusions.is_empty();
        // In-place retain (no re-hash, no reallocation — the common case
        // keeps everything); counters are locals because `retain` holds
        // the entries borrow.
        let (mut retained, mut revalidated, mut evicted) = (0, 0, 0);
        self.entries.retain(|_, entry| match entry {
            Entry::Unsat { family, .. } => {
                // Each cached core remains a certified, minimal MUS (its
                // restriction is untouched by additions), but new axioms
                // can spawn *new* MUSes: the family can no longer claim
                // to hold every one.
                if let Some(family) = family {
                    family.complete = false;
                }
                retained += 1;
                true
            }
            Entry::Unknown { .. } | Entry::Sat { witness: None } => {
                evicted += 1;
                false
            }
            Entry::Sat { witness: Some(witness) } => {
                let confirmed = (!role_hierarchy_grew || !witness.has_role_edges())
                    && closure.as_ref().is_none_or(|c| witness.respects_disjointness(c))
                    && delta.gcis.iter().all(|(c, d)| witness.confirms_gci(c, d));
                if confirmed {
                    revalidated += 1;
                } else {
                    evicted += 1;
                }
                confirmed
            }
        });
        self.stats.retained += retained;
        self.stats.revalidated += revalidated;
        self.stats.evicted += evicted;
    }

    /// The canonical root label set of `query`: its interned top-level
    /// conjuncts (sorted, deduplicated by the arena).
    fn key(&mut self, query: &Concept) -> Box<[ConceptId]> {
        let id = self.arena.intern(query);
        match self.arena.kind(id) {
            CKind::And(ids) => ids.clone(),
            CKind::Top => Box::new([]),
            _ => Box::new([id]),
        }
    }

    /// The canonical root label set of `a ⊓ b` given both parts by id:
    /// the sorted, deduplicated union of their top-level conjunct lists.
    /// Matches [`SatCache::key`] of the equivalent [`Concept::and`]
    /// spelling, so the two query paths share entries.
    fn pair_key(&self, a: ConceptId, b: ConceptId) -> Box<[ConceptId]> {
        fn push_root_conjuncts(arena: &Arena, id: ConceptId, out: &mut Vec<ConceptId>) {
            match arena.kind(id) {
                CKind::Top => {}
                CKind::And(ids) => out.extend_from_slice(ids),
                _ => out.push(id),
            }
        }
        let mut ids = Vec::new();
        push_root_conjuncts(&self.arena, a, &mut ids);
        push_root_conjuncts(&self.arena, b, &mut ids);
        ids.sort_unstable();
        ids.dedup();
        ids.into_boxed_slice()
    }

    /// Cache lookup for `key` under `budget`, counting a hit when the
    /// entry answers (see the budget semantics in the module docs).
    fn probe(&mut self, key: &[ConceptId], budget: u64) -> Option<DlOutcome> {
        let outcome = match self.entries.get(key)? {
            Entry::Sat { .. } => DlOutcome::Sat,
            Entry::Unsat { .. } => DlOutcome::Unsat,
            Entry::Unknown { budget: tried } if *tried >= budget => {
                // The cached attempt had at least this much budget and
                // still ran out: re-running with less cannot do better.
                DlOutcome::ResourceLimit
            }
            Entry::Unknown { .. } => return None,
        };
        self.stats.hits += 1;
        Some(outcome)
    }

    /// Remember what a tableau run under `budget` learned about `key`
    /// (`Sat` keeps the run's witness model for later delta
    /// revalidation).
    fn record(
        &mut self,
        key: Box<[ConceptId]>,
        verdict: DlOutcome,
        budget: u64,
        witness: Option<Witness>,
    ) {
        match verdict {
            DlOutcome::Sat => {
                self.entries.insert(key, Entry::Sat { witness });
            }
            DlOutcome::Unsat => {
                self.entries.insert(key, Entry::Unsat { core: None, family: None });
            }
            DlOutcome::ResourceLimit => self.record_unknown(key, budget),
        }
    }

    /// Remember a budget starvation at `budget` — monotonically. An
    /// `Unknown` is a fact about *how much* budget failed, so a starved
    /// run may only ever raise the recorded stamp: a deadline-starved
    /// request that admission control downgraded to a tiny budget must
    /// not overwrite a richer cached `Unknown { budget }` (the richer
    /// stamp short-circuits more future callers), and no starvation may
    /// shadow a certified `Sat`/`Unsat` verdict.
    fn record_unknown(&mut self, key: Box<[ConceptId]>, budget: u64) {
        match self.entries.get(&key) {
            Some(Entry::Sat { .. } | Entry::Unsat { .. }) => {}
            Some(Entry::Unknown { budget: tried }) if *tried >= budget => {}
            _ => {
                self.entries.insert(key, Entry::Unknown { budget });
            }
        }
    }

    /// Cached [`crate::tableau::satisfiable`]: consult the verdict cache,
    /// fall back to the tableau on a miss, and remember what it learned.
    pub fn satisfiable(&mut self, tbox: &TBox, query: &Concept, budget: u64) -> DlOutcome {
        self.validate(tbox);
        let key = self.key(query);
        if let Some(verdict) = self.probe(&key, budget) {
            return verdict;
        }
        self.stats.misses += 1;
        let (verdict, witness) = satisfiable_with_witness(tbox, query, budget);
        self.record(key, verdict, budget, witness);
        verdict
    }

    /// Cached [`crate::tableau::satisfiable_cx`]: the context's per-proof
    /// step budget plays the legacy `budget` role for probing (`Unknown`
    /// entries answer only callers whose budget is no richer than the one
    /// that starved), and **interrupted runs record nothing** — a
    /// cancelled or deadlined proof is counted
    /// ([`CacheStats::cancelled`] / [`CacheStats::deadlined`]) but leaves
    /// the entry map untouched, so no `Unknown` ever masks a verdict a
    /// later uncancelled caller could prove.
    pub fn satisfiable_cx(&mut self, tbox: &TBox, query: &Concept, cx: &ExecCx) -> SearchOutcome {
        self.validate(tbox);
        let budget = cx.steps().unwrap_or(u64::MAX);
        let key = self.key(query);
        if let Some(verdict) = self.probe(&key, budget) {
            return match verdict {
                DlOutcome::Sat => SearchOutcome::Sat,
                DlOutcome::Unsat => SearchOutcome::Unsat,
                DlOutcome::ResourceLimit => SearchOutcome::BudgetExhausted,
            };
        }
        self.stats.misses += 1;
        let (outcome, witness) = satisfiable_with_witness_cx(tbox, query, cx);
        match outcome {
            SearchOutcome::Sat => self.record(key, DlOutcome::Sat, budget, witness),
            SearchOutcome::Unsat => self.record(key, DlOutcome::Unsat, budget, None),
            SearchOutcome::BudgetExhausted => {
                self.record(key, DlOutcome::ResourceLimit, budget, None);
            }
            SearchOutcome::Cancelled => self.stats.cancelled += 1,
            SearchOutcome::DeadlineExceeded => self.stats.deadlined += 1,
        }
        outcome
    }

    /// Cached [`crate::explain::explain_unsat`]: minimal unsat cores are
    /// stored **beside** their `Unsat` verdicts and computed at most once
    /// per entry lifetime — a repeat explanation request is a hit, and a
    /// plain [`SatCache::satisfiable`] on the same label set shares the
    /// entry (the verdict half answers it). A cached `Sat` short-circuits
    /// to [`Explanation::Satisfiable`] without any tableau run; a cached
    /// core survives pure additions together with its entry (additions
    /// change neither the core's axioms nor their restriction).
    ///
    /// ```
    /// use orm_dl::cache::SatCache;
    /// use orm_dl::concept::Concept;
    /// use orm_dl::explain::Explanation;
    /// use orm_dl::tbox::TBox;
    ///
    /// let mut tbox = TBox::new();
    /// let a = Concept::Atomic(tbox.atom("A"));
    /// let doom = tbox.gci(a.clone(), Concept::Bottom);
    ///
    /// let mut cache = SatCache::new();
    /// let Explanation::Unsat(core) = cache.explain(&tbox, &a, 100_000) else {
    ///     panic!("A is doomed");
    /// };
    /// assert_eq!(core.axioms, vec![doom]);
    /// // Second request: answered from the stored core.
    /// assert!(matches!(cache.explain(&tbox, &a, 100_000), Explanation::Unsat(_)));
    /// assert_eq!((cache.stats().hits, cache.stats().misses), (1, 1));
    /// ```
    pub fn explain(&mut self, tbox: &TBox, query: &Concept, budget: u64) -> Explanation {
        self.explain_seeded(tbox, query, budget, &[])
    }

    /// [`SatCache::explain`] with a warm-start seed: on a cache miss the
    /// extraction goes through [`explain_unsat_seeded`], probing `seed`'s
    /// restriction before falling back to the full cold path. Caching
    /// semantics are identical — the seed only steers how a missing core
    /// gets computed, never what gets stored.
    pub fn explain_seeded(
        &mut self,
        tbox: &TBox,
        query: &Concept,
        budget: u64,
        seed: &[AxiomId],
    ) -> Explanation {
        self.validate(tbox);
        let key = self.key(query);
        match self.entries.get(&key) {
            Some(Entry::Unsat { core: Some(core), .. }) => {
                self.stats.hits += 1;
                return Explanation::Unsat(core.clone());
            }
            Some(Entry::Sat { .. }) => {
                self.stats.hits += 1;
                return Explanation::Satisfiable;
            }
            Some(Entry::Unknown { budget: tried }) if *tried >= budget => {
                self.stats.hits += 1;
                return Explanation::ResourceLimit;
            }
            // An Unsat entry without a core still needs the extraction
            // run; Unknowns under a bigger budget re-run like any query.
            _ => {}
        }
        self.stats.misses += 1;
        let explanation = if seed.is_empty() {
            explain_unsat(tbox, query, budget)
        } else {
            explain_unsat_seeded(tbox, query, budget, seed)
        };
        match &explanation {
            Explanation::Unsat(core) => {
                // Preserve a previously cached family (its cores stay
                // certified regardless of which single core this
                // extraction landed on).
                let family = match self.entries.remove(&key) {
                    Some(Entry::Unsat { family, .. }) => family,
                    _ => None,
                };
                self.entries.insert(key, Entry::Unsat { core: Some(core.clone()), family });
            }
            // The explanation path has no witness to store; the entry
            // still upgrades verdict hits (and is simply evicted instead
            // of revalidated on the next addition).
            Explanation::Satisfiable => {
                self.entries.insert(key, Entry::Sat { witness: None });
            }
            // A failed extraction must never *downgrade* a certified
            // verdict or a richer-budget Unknown: `record_unknown` keeps
            // an `Unsat { core: None }` entry (proved by a plain query,
            // possibly under a larger budget) — only the explanation
            // attempt failed, not the verdict.
            Explanation::ResourceLimit => self.record_unknown(key, budget),
        }
        explanation
    }

    /// [`SatCache::explain_seeded`] under an execution context. Cached
    /// verdicts answer without touching the context; a miss runs the
    /// extraction with every probe inheriting `cx`. A genuine budget
    /// starvation records `Unknown` at the context's step budget, while
    /// an interrupted run (cancel or deadline) records **nothing** — a
    /// deadline says nothing about how many steps a later caller could
    /// afford, so such an entry could mask a provable verdict.
    pub fn explain_seeded_cx(
        &mut self,
        tbox: &TBox,
        query: &Concept,
        cx: &ExecCx,
        seed: &[AxiomId],
    ) -> Explanation {
        self.validate(tbox);
        let budget = cx.steps().unwrap_or(u64::MAX);
        let key = self.key(query);
        match self.entries.get(&key) {
            Some(Entry::Unsat { core: Some(core), .. }) => {
                self.stats.hits += 1;
                return Explanation::Unsat(core.clone());
            }
            Some(Entry::Sat { .. }) => {
                self.stats.hits += 1;
                return Explanation::Satisfiable;
            }
            Some(Entry::Unknown { budget: tried }) if *tried >= budget => {
                self.stats.hits += 1;
                return Explanation::ResourceLimit;
            }
            _ => {}
        }
        self.stats.misses += 1;
        let explanation = if seed.is_empty() {
            explain_unsat_cx(tbox, query, cx)
        } else {
            explain_unsat_seeded_cx(tbox, query, cx, seed)
        };
        match &explanation {
            Explanation::Unsat(core) => {
                let family = match self.entries.remove(&key) {
                    Some(Entry::Unsat { family, .. }) => family,
                    _ => None,
                };
                self.entries.insert(key, Entry::Unsat { core: Some(core.clone()), family });
            }
            Explanation::Satisfiable => {
                self.entries.insert(key, Entry::Sat { witness: None });
            }
            Explanation::ResourceLimit => match cx.check() {
                Err(Interrupt::Cancelled) => self.stats.cancelled += 1,
                Err(Interrupt::DeadlineExceeded) => self.stats.deadlined += 1,
                Ok(()) => self.record_unknown(key, budget),
            },
        }
        explanation
    }

    /// Cached [`enumerate_mus`]: the full MUS family is stored **beside**
    /// the `Unsat` verdict (and its single core), so a repeat enumeration
    /// is a hit. Answering rules for a cached family:
    ///
    /// * a **complete** family answers any `limit ≥ len` verbatim, and a
    ///   `limit < len` request gets the first `limit` cores with
    ///   [`MusFamily::truncated`] set (a prefix of all MUSes is a valid
    ///   top-k answer);
    /// * an **incomplete** family (truncated earlier, or carried across a
    ///   pure-addition delta, which clears completeness) answers only
    ///   `limit ≤ len` requests; a larger `limit` re-enumerates, seeded
    ///   by every cached core's axioms, and overwrites the entry.
    ///
    /// A cached `Sat` short-circuits to [`MusEnumeration::Satisfiable`];
    /// a family computed here also fills the entry's single-core slot, so
    /// later [`SatCache::explain`] calls hit.
    pub fn enumerate(
        &mut self,
        tbox: &TBox,
        query: &Concept,
        budget: u64,
        limit: usize,
    ) -> MusEnumeration {
        self.enumerate_seeded(tbox, query, budget, limit, &[])
    }

    /// [`SatCache::enumerate`] with a warm-start seed for the first
    /// extraction on a miss (the [`enumerate_mus_seeded`] path). The seed
    /// only steers the search, never what gets stored or answered.
    pub fn enumerate_seeded(
        &mut self,
        tbox: &TBox,
        query: &Concept,
        budget: u64,
        limit: usize,
        seed: &[AxiomId],
    ) -> MusEnumeration {
        self.validate(tbox);
        let limit = limit.max(1);
        let key = self.key(query);
        match self.entries.get(&key) {
            Some(Entry::Sat { .. }) => {
                self.stats.hits += 1;
                return MusEnumeration::Satisfiable;
            }
            Some(Entry::Unsat { family: Some(family), .. }) => {
                if family.complete && family.cores.len() <= limit {
                    self.stats.hits += 1;
                    return MusEnumeration::Unsat(family.clone());
                }
                if family.cores.len() >= limit {
                    self.stats.hits += 1;
                    return MusEnumeration::Unsat(MusFamily {
                        cores: family.cores[..limit].to_vec(),
                        truncated: true,
                        complete: false,
                    });
                }
                // Incomplete and smaller than asked: fall through to a
                // re-enumeration warm-started by the cached cores.
            }
            Some(Entry::Unknown { budget: tried }) if *tried >= budget => {
                self.stats.hits += 1;
                return MusEnumeration::ResourceLimit;
            }
            _ => {}
        }
        self.stats.misses += 1;
        // Warm-start the first extraction from the caller's seed plus any
        // cached certified axioms (single core and family cores alike).
        let mut warm: Vec<AxiomId> = seed.to_vec();
        if let Some(Entry::Unsat { core, family }) = self.entries.get(&key) {
            if let Some(core) = core {
                warm.extend(core.axioms.iter().copied());
            }
            if let Some(family) = family {
                warm.extend(family.cores.iter().flat_map(|c| c.axioms.iter().copied()));
            }
        }
        warm.sort_unstable();
        warm.dedup();
        let enumeration = if warm.is_empty() {
            enumerate_mus(tbox, query, budget, limit)
        } else {
            enumerate_mus_seeded(tbox, query, budget, limit, &warm)
        };
        match &enumeration {
            MusEnumeration::Unsat(family) => {
                let core = match self.entries.remove(&key) {
                    Some(Entry::Unsat { core: Some(core), .. }) => Some(core),
                    _ => family.cores.first().cloned(),
                };
                self.entries.insert(key, Entry::Unsat { core, family: Some(family.clone()) });
            }
            MusEnumeration::Satisfiable => {
                self.entries.insert(key, Entry::Sat { witness: None });
            }
            // Never downgrade a certified Unsat verdict (or a
            // richer-budget Unknown) because one enumeration attempt
            // starved.
            MusEnumeration::ResourceLimit => self.record_unknown(key, budget),
        }
        enumeration
    }

    /// [`SatCache::enumerate_seeded`] under an execution context: same
    /// answering rules for cached families, with the extraction on a miss
    /// inheriting `cx` so enumeration stops cleanly mid-family. Budget
    /// starvation records `Unknown` at the context's step budget; an
    /// interrupted run records nothing (see
    /// [`SatCache::explain_seeded_cx`]). A family truncated by an
    /// interrupt still caches its certified cores — they remain valid
    /// MUSes and warm-start the next, richer attempt.
    pub fn enumerate_seeded_cx(
        &mut self,
        tbox: &TBox,
        query: &Concept,
        cx: &ExecCx,
        limit: usize,
        seed: &[AxiomId],
    ) -> MusEnumeration {
        self.validate(tbox);
        let budget = cx.steps().unwrap_or(u64::MAX);
        let limit = limit.max(1);
        let key = self.key(query);
        match self.entries.get(&key) {
            Some(Entry::Sat { .. }) => {
                self.stats.hits += 1;
                return MusEnumeration::Satisfiable;
            }
            Some(Entry::Unsat { family: Some(family), .. }) => {
                if family.complete && family.cores.len() <= limit {
                    self.stats.hits += 1;
                    return MusEnumeration::Unsat(family.clone());
                }
                if family.cores.len() >= limit {
                    self.stats.hits += 1;
                    return MusEnumeration::Unsat(MusFamily {
                        cores: family.cores[..limit].to_vec(),
                        truncated: true,
                        complete: false,
                    });
                }
            }
            Some(Entry::Unknown { budget: tried }) if *tried >= budget => {
                self.stats.hits += 1;
                return MusEnumeration::ResourceLimit;
            }
            _ => {}
        }
        self.stats.misses += 1;
        let mut warm: Vec<AxiomId> = seed.to_vec();
        if let Some(Entry::Unsat { core, family }) = self.entries.get(&key) {
            if let Some(core) = core {
                warm.extend(core.axioms.iter().copied());
            }
            if let Some(family) = family {
                warm.extend(family.cores.iter().flat_map(|c| c.axioms.iter().copied()));
            }
        }
        warm.sort_unstable();
        warm.dedup();
        let enumeration = if warm.is_empty() {
            enumerate_mus_cx(tbox, query, cx, limit)
        } else {
            enumerate_mus_seeded_cx(tbox, query, cx, limit, &warm)
        };
        match &enumeration {
            MusEnumeration::Unsat(family) => {
                let core = match self.entries.remove(&key) {
                    Some(Entry::Unsat { core: Some(core), .. }) => Some(core),
                    _ => family.cores.first().cloned(),
                };
                self.entries.insert(key, Entry::Unsat { core, family: Some(family.clone()) });
            }
            MusEnumeration::Satisfiable => {
                self.entries.insert(key, Entry::Sat { witness: None });
            }
            MusEnumeration::ResourceLimit => match cx.check() {
                Err(Interrupt::Cancelled) => self.stats.cancelled += 1,
                Err(Interrupt::DeadlineExceeded) => self.stats.deadlined += 1,
                Ok(()) => self.record_unknown(key, budget),
            },
        }
        enumeration
    }

    /// Cached [`crate::tableau::subsumes`]: the standard reduction of
    /// `sub ⊑ sup` to unsatisfiability of `sub ⊓ ¬sup`, sharing entries
    /// with [`SatCache::satisfiable`] calls on the same root label set.
    ///
    /// The key is built from interned ids (`sub` interned as-is, `sup`
    /// through [`Arena::intern_negated`]) — no `Concept` tree is cloned
    /// per call; the query concept is only reconstructed on a miss, where
    /// the tableau run dominates the allocation anyway.
    pub fn subsumes(
        &mut self,
        tbox: &TBox,
        sup: &Concept,
        sub: &Concept,
        budget: u64,
    ) -> Option<bool> {
        self.validate(tbox);
        let sub_id = self.arena.intern(sub);
        let neg_sup_id = self.arena.intern_negated(sup);
        let key = self.pair_key(sub_id, neg_sup_id);
        let verdict = match self.probe(&key, budget) {
            Some(verdict) => verdict,
            None => {
                self.stats.misses += 1;
                let query =
                    Concept::and([self.arena.resolve(sub_id), self.arena.resolve(neg_sup_id)]);
                let (verdict, witness) = satisfiable_with_witness(tbox, &query, budget);
                self.record(key, verdict, budget, witness);
                verdict
            }
        };
        match verdict {
            DlOutcome::Unsat => Some(true),
            DlOutcome::Sat => Some(false),
            DlOutcome::ResourceLimit => None,
        }
    }

    /// Cached [`crate::tableau::subsumes_cx`], sharing entries with the
    /// other entry points on the same root label set: `Ok(Some(..))` on a
    /// certain answer (cached or proved), `Ok(None)` when the per-proof
    /// step budget ran out, `Err` when the context was interrupted —
    /// interrupted runs record nothing (see [`SatCache::satisfiable_cx`]).
    pub fn subsumes_cx(
        &mut self,
        tbox: &TBox,
        sup: &Concept,
        sub: &Concept,
        cx: &ExecCx,
    ) -> Result<Option<bool>, Interrupt> {
        self.validate(tbox);
        let budget = cx.steps().unwrap_or(u64::MAX);
        let sub_id = self.arena.intern(sub);
        let neg_sup_id = self.arena.intern_negated(sup);
        let key = self.pair_key(sub_id, neg_sup_id);
        let verdict = match self.probe(&key, budget) {
            Some(verdict) => verdict,
            None => {
                self.stats.misses += 1;
                let query =
                    Concept::and([self.arena.resolve(sub_id), self.arena.resolve(neg_sup_id)]);
                let (outcome, witness) = satisfiable_with_witness_cx(tbox, &query, cx);
                match outcome {
                    SearchOutcome::Sat => {
                        self.record(key, DlOutcome::Sat, budget, witness);
                        DlOutcome::Sat
                    }
                    SearchOutcome::Unsat => {
                        self.record(key, DlOutcome::Unsat, budget, None);
                        DlOutcome::Unsat
                    }
                    SearchOutcome::BudgetExhausted => {
                        self.record(key, DlOutcome::ResourceLimit, budget, None);
                        DlOutcome::ResourceLimit
                    }
                    SearchOutcome::Cancelled => {
                        self.stats.cancelled += 1;
                        return Err(Interrupt::Cancelled);
                    }
                    SearchOutcome::DeadlineExceeded => {
                        self.stats.deadlined += 1;
                        return Err(Interrupt::DeadlineExceeded);
                    }
                }
            }
        };
        Ok(match verdict {
            DlOutcome::Unsat => Some(true),
            DlOutcome::Sat => Some(false),
            DlOutcome::ResourceLimit => None,
        })
    }
}

/// Number of shards a [`SatShards::new`] cache stripes over — comfortably
/// above the thread counts the query batteries fan out to, so concurrent
/// queries on distinct label sets rarely contend for one lock.
pub const DEFAULT_SHARDS: usize = 16;

/// A sharded [`SatCache`]: `N` independently locked, stamp-validated
/// shards, routed by a structural hash of the query's canonical root
/// label set. Shared by reference (`&SatShards` is `Sync`) across the
/// scoped worker threads of [`crate::par::fan_out`].
///
/// Routing is *stable*: two spellings of the same canonical label set
/// reach the same shard (the hash is invariant under `⊓`/`⊔` argument
/// order, duplication and constructor-level flattening, mirroring the
/// arena canonicalization that builds the keys). A routing collision
/// between *different* label sets merely co-locates them behind one lock
/// — never a correctness concern.
///
/// Each shard's lock is held across lookup **and** proof, so a key is
/// proved at most once per TBox state no matter how many threads race on
/// it, and [`SatShards::stats`] aggregates to exactly the sequential
/// totals of the same battery.
///
/// ```
/// use orm_dl::cache::SatShards;
/// use orm_dl::concept::Concept;
/// use orm_dl::tableau::DlOutcome;
/// use orm_dl::tbox::TBox;
///
/// let mut tbox = TBox::new();
/// let a = Concept::Atomic(tbox.atom("A"));
/// let b = Concept::Atomic(tbox.atom("B"));
/// tbox.gci(a.clone(), b.clone());
///
/// let shards = SatShards::new();
/// // `&shards` suffices: shard locks are interior.
/// assert_eq!(shards.subsumes(&tbox, &b, &a, 100_000), Some(true));
/// // Same label set spelled as a satisfiability query: routed to the
/// // same shard, answered from the same entry.
/// let q = Concept::and([a.clone(), Concept::not(b.clone())]);
/// assert_eq!(shards.satisfiable(&tbox, &q, 100_000), DlOutcome::Unsat);
/// let stats = shards.stats();
/// assert_eq!((stats.misses, stats.hits), (1, 1));
/// ```
#[derive(Debug)]
pub struct SatShards {
    shards: Box<[Mutex<SatCache>]>,
    /// Union of certified unsat-core axioms, shared across shards as the
    /// warm-start seed for later extractions (see [`SatShards::explain`]).
    seed_pool: Mutex<SeedPool>,
}

/// Certified core axioms accumulated against one exact TBox state.
/// Elements of one schema typically share their doom (one contradictory
/// axiom cluster sinks many types at once), so the pool makes every
/// extraction after the first start from an already-certified
/// neighborhood instead of a cold full-TBox tableau run.
#[derive(Debug, Default)]
struct SeedPool {
    /// The [`TBox::cache_stamp`] the axioms were certified against; a
    /// mismatch resets the pool (axiom ids are only meaningful per state).
    stamp: (u64, u64),
    /// Sorted, deduplicated axiom ids, capped at [`SEED_POOL_CAP`].
    axioms: Vec<AxiomId>,
}

/// Upper bound on pooled seed axioms — a seed approaching the whole TBox
/// would make the warm probe as expensive as the cold run it replaces.
const SEED_POOL_CAP: usize = 256;

impl Default for SatShards {
    fn default() -> SatShards {
        SatShards::new()
    }
}

impl SatShards {
    /// A sharded cache with [`DEFAULT_SHARDS`] shards.
    pub fn new() -> SatShards {
        SatShards::with_shards(DEFAULT_SHARDS)
    }

    /// A sharded cache with `n` shards (`n = 0` is promoted to 1).
    pub fn with_shards(n: usize) -> SatShards {
        SatShards {
            shards: (0..n.max(1)).map(|_| Mutex::new(SatCache::new())).collect(),
            seed_pool: Mutex::new(SeedPool::default()),
        }
    }

    /// Number of shards (fixed at construction).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    fn shard(&self, route: u64) -> &Mutex<SatCache> {
        &self.shards[(route % self.shards.len() as u64) as usize]
    }

    /// Cached [`crate::tableau::satisfiable`] through the owning shard (see
    /// [`SatCache::satisfiable`] for key/budget semantics).
    pub fn satisfiable(&self, tbox: &TBox, query: &Concept, budget: u64) -> DlOutcome {
        self.shard(route_satisfiable(query)).lock().satisfiable(tbox, query, budget)
    }

    /// Cached subsumption through the owning shard (see
    /// [`SatCache::subsumes`]).
    pub fn subsumes(&self, tbox: &TBox, sup: &Concept, sub: &Concept, budget: u64) -> Option<bool> {
        self.shard(route_subsumes(sup, sub)).lock().subsumes(tbox, sup, sub, budget)
    }

    /// Cached [`crate::tableau::satisfiable_cx`] through the owning shard
    /// (see [`SatCache::satisfiable_cx`] — interrupted runs record no
    /// entry). The shard lock is held across lookup and proof, so even
    /// racing contexts prove a key at most once per TBox state.
    pub fn satisfiable_cx(&self, tbox: &TBox, query: &Concept, cx: &ExecCx) -> SearchOutcome {
        self.shard(route_satisfiable(query)).lock().satisfiable_cx(tbox, query, cx)
    }

    /// Cached [`crate::tableau::subsumes_cx`] through the owning shard
    /// (see [`SatCache::subsumes_cx`]).
    pub fn subsumes_cx(
        &self,
        tbox: &TBox,
        sup: &Concept,
        sub: &Concept,
        cx: &ExecCx,
    ) -> Result<Option<bool>, Interrupt> {
        self.shard(route_subsumes(sup, sub)).lock().subsumes_cx(tbox, sup, sub, cx)
    }

    /// Cached unsat-core extraction through the owning shard (see
    /// [`SatCache::explain`]); routed like [`SatShards::satisfiable`], so
    /// a verdict proved by either entry point answers the other.
    ///
    /// Extractions **warm-start each other across shards**: every
    /// certified core's axioms join a shared seed pool (keyed on the
    /// exact [`TBox::cache_stamp`]), and each later miss first probes the
    /// pooled axioms' restriction instead of running the cold full-TBox
    /// tableau (see [`explain_unsat_seeded`]). Soundness is untouched —
    /// seeds only steer the search; every returned core is still
    /// certified by its own tableau runs.
    pub fn explain(&self, tbox: &TBox, query: &Concept, budget: u64) -> Explanation {
        let stamp = tbox.cache_stamp();
        let seed: Vec<AxiomId> = {
            let mut pool = self.seed_pool.lock();
            if pool.stamp != stamp {
                pool.stamp = stamp;
                pool.axioms.clear();
            }
            pool.axioms.clone()
        };
        let explanation =
            self.shard(route_satisfiable(query)).lock().explain_seeded(tbox, query, budget, &seed);
        if let Explanation::Unsat(core) = &explanation {
            let mut pool = self.seed_pool.lock();
            if pool.stamp == stamp && pool.axioms.len() < SEED_POOL_CAP {
                pool.axioms.extend(core.axioms.iter().copied());
                pool.axioms.sort_unstable();
                pool.axioms.dedup();
                pool.axioms.truncate(SEED_POOL_CAP);
            }
        }
        explanation
    }

    /// Cached MUS-family enumeration through the owning shard (see
    /// [`SatCache::enumerate`]); routed like [`SatShards::satisfiable`],
    /// so verdicts, single cores and families all share one entry.
    ///
    /// Enumerations join the same cross-shard **seed pool** as
    /// [`SatShards::explain`]: the pooled certified axioms warm-start the
    /// first extraction of each enumeration, and every enumerated core's
    /// axioms feed back into the pool — the reuse that keeps all-MUS
    /// enumeration within the same cost envelope as single-core
    /// extraction on multi-element diagnosis sweeps.
    pub fn enumerate(
        &self,
        tbox: &TBox,
        query: &Concept,
        budget: u64,
        limit: usize,
    ) -> MusEnumeration {
        let stamp = tbox.cache_stamp();
        let seed: Vec<AxiomId> = {
            let mut pool = self.seed_pool.lock();
            if pool.stamp != stamp {
                pool.stamp = stamp;
                pool.axioms.clear();
            }
            pool.axioms.clone()
        };
        let enumeration = self
            .shard(route_satisfiable(query))
            .lock()
            .enumerate_seeded(tbox, query, budget, limit, &seed);
        if let MusEnumeration::Unsat(family) = &enumeration {
            let mut pool = self.seed_pool.lock();
            if pool.stamp == stamp && pool.axioms.len() < SEED_POOL_CAP {
                pool.axioms.extend(family.cores.iter().flat_map(|c| c.axioms.iter().copied()));
                pool.axioms.sort_unstable();
                pool.axioms.dedup();
                pool.axioms.truncate(SEED_POOL_CAP);
            }
        }
        enumeration
    }

    /// Cached unsat-core extraction under an execution context (see
    /// [`SatCache::explain_seeded_cx`] — interrupted runs record no
    /// entry). Shares the cross-shard seed pool with
    /// [`SatShards::explain`]; pool updates only happen for certified
    /// cores, so an interrupted extraction never pollutes the pool.
    pub fn explain_cx(&self, tbox: &TBox, query: &Concept, cx: &ExecCx) -> Explanation {
        let stamp = tbox.cache_stamp();
        let seed: Vec<AxiomId> = {
            let mut pool = self.seed_pool.lock();
            if pool.stamp != stamp {
                pool.stamp = stamp;
                pool.axioms.clear();
            }
            pool.axioms.clone()
        };
        let explanation =
            self.shard(route_satisfiable(query)).lock().explain_seeded_cx(tbox, query, cx, &seed);
        if let Explanation::Unsat(core) = &explanation {
            let mut pool = self.seed_pool.lock();
            if pool.stamp == stamp && pool.axioms.len() < SEED_POOL_CAP {
                pool.axioms.extend(core.axioms.iter().copied());
                pool.axioms.sort_unstable();
                pool.axioms.dedup();
                pool.axioms.truncate(SEED_POOL_CAP);
            }
        }
        explanation
    }

    /// Cached MUS-family enumeration under an execution context (see
    /// [`SatCache::enumerate_seeded_cx`]). Certified cores from a family
    /// truncated by an interrupt still feed the seed pool — they are
    /// valid MUSes and warm-start the retry under a richer context.
    pub fn enumerate_cx(
        &self,
        tbox: &TBox,
        query: &Concept,
        cx: &ExecCx,
        limit: usize,
    ) -> MusEnumeration {
        let stamp = tbox.cache_stamp();
        let seed: Vec<AxiomId> = {
            let mut pool = self.seed_pool.lock();
            if pool.stamp != stamp {
                pool.stamp = stamp;
                pool.axioms.clear();
            }
            pool.axioms.clone()
        };
        let enumeration = self
            .shard(route_satisfiable(query))
            .lock()
            .enumerate_seeded_cx(tbox, query, cx, limit, &seed);
        if let MusEnumeration::Unsat(family) = &enumeration {
            let mut pool = self.seed_pool.lock();
            if pool.stamp == stamp && pool.axioms.len() < SEED_POOL_CAP {
                pool.axioms.extend(family.cores.iter().flat_map(|c| c.axioms.iter().copied()));
                pool.axioms.sort_unstable();
                pool.axioms.dedup();
                pool.axioms.truncate(SEED_POOL_CAP);
            }
        }
        enumeration
    }

    /// Counters aggregated across all shards.
    pub fn stats(&self) -> CacheStats {
        self.shards.iter().fold(CacheStats::default(), |acc, s| acc.merge(s.lock().stats()))
    }

    /// Total live entries across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }

    /// Whether no shard holds any entry.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.lock().is_empty())
    }

    /// Explicitly clear every shard (each counts one
    /// [`CacheStats::clears`]).
    pub fn clear(&self) {
        for shard in self.shards.iter() {
            shard.lock().clear();
        }
    }

    /// Record one shed request in [`CacheStats::sheds`]. Admission
    /// control lives above this crate (in `orm-serve`); the counter
    /// lives here so one `stats()` call reports the whole service story.
    /// Booked against shard 0 — the aggregate is what bench runs assert.
    pub fn note_shed(&self) {
        self.shards[0].lock().stats.sheds += 1;
    }

    /// Record one downgraded request in [`CacheStats::downgrades`]
    /// (see [`SatShards::note_shed`]).
    pub fn note_downgrade(&self) {
        self.shards[0].lock().stats.downgrades += 1;
    }
}

// ---------------------------------------------------------------------------
// Shard routing: a structural hash of the canonical root label set.
//
// The hash must satisfy one invariant: two queries whose canonical cache
// keys are equal (same interned, sorted, deduplicated root conjunct set)
// must hash equally — otherwise one logical query could live in two
// shards and be proved twice. The arena canonicalizes `⊓`/`⊔` child
// lists by sorting and deduplicating interned ids, so the hash mirrors
// that: child hashes are sorted and deduplicated at every level before
// being folded. Collisions in the *other* direction (distinct label sets
// sharing a shard) only affect lock striping, never verdicts.

/// Distinct per-constructor seeds, mixed through `splitmix` so that tags
/// land far apart in the hash space.
mod shape_tag {
    pub const TOP: u64 = 0xA1;
    pub const BOTTOM: u64 = 0xA2;
    pub const ATOM: u64 = 0xA3;
    pub const NOT_ATOM: u64 = 0xA4;
    pub const AND: u64 = 0xA5;
    pub const OR: u64 = 0xA6;
    pub const EXISTS: u64 = 0xA7;
    pub const FORALL: u64 = 0xA8;
    pub const AT_LEAST: u64 = 0xA9;
    pub const AT_MOST: u64 = 0xAA;
    pub const ROOT: u64 = 0xAB;
}

fn role_bits(r: RoleExpr) -> u64 {
    (u64::from(r.name) << 1) | u64::from(r.inverse)
}

fn number_hash(tag: u64, n: u32, r: RoleExpr) -> u64 {
    splitmix(tag ^ (u64::from(n) << 8) ^ (role_bits(r) << 40))
}

/// Structural hash of `c` (or of `¬c` in NNF when `negated` — computed
/// without materializing the negation, dual to [`Arena::intern_negated`]).
fn shape_hash(c: &Concept, negated: bool) -> u64 {
    use shape_tag as t;
    match c {
        Concept::Top => splitmix(if negated { t::BOTTOM } else { t::TOP }),
        Concept::Bottom => splitmix(if negated { t::TOP } else { t::BOTTOM }),
        Concept::Atomic(a) => {
            splitmix(if negated { t::NOT_ATOM } else { t::ATOM } ^ (u64::from(*a) << 8))
        }
        Concept::NotAtomic(a) => {
            splitmix(if negated { t::ATOM } else { t::NOT_ATOM } ^ (u64::from(*a) << 8))
        }
        Concept::And(cs) | Concept::Or(cs) => {
            let conjunctive = matches!(c, Concept::And(_)) != negated;
            let mut hs: Vec<u64> = cs.iter().map(|x| shape_hash(x, negated)).collect();
            // Order/duplication independence, mirroring the arena's
            // sorted-deduplicated child lists.
            hs.sort_unstable();
            hs.dedup();
            let mut h = splitmix(if conjunctive { t::AND } else { t::OR });
            for x in hs {
                h = splitmix(h ^ x);
            }
            h
        }
        Concept::Exists(r, body) | Concept::ForAll(r, body) => {
            let existential = matches!(c, Concept::Exists(..)) != negated;
            let tag = if existential { t::EXISTS } else { t::FORALL };
            splitmix(splitmix(tag ^ (role_bits(*r) << 8)) ^ shape_hash(body, negated))
        }
        // ¬(≥0 R) = ¬⊤ = ⊥, otherwise ¬(≥n R) = ≤(n-1) R.
        Concept::AtLeast(0, _) if negated => splitmix(t::BOTTOM),
        Concept::AtLeast(n, r) if negated => number_hash(t::AT_MOST, n - 1, *r),
        Concept::AtLeast(n, r) => number_hash(t::AT_LEAST, *n, *r),
        // ¬(≤n R) = ≥(n+1) R.
        Concept::AtMost(n, r) if negated => number_hash(t::AT_LEAST, n + 1, *r),
        Concept::AtMost(n, r) => number_hash(t::AT_MOST, *n, *r),
    }
}

/// The structural hashes of the top-level conjuncts `c` (or `¬c`)
/// contributes to a root label set, matching how [`SatCache::key`] /
/// [`SatCache::pair_key`] split one `⊓` level.
fn push_root_hashes(c: &Concept, negated: bool, out: &mut Vec<u64>) {
    match (c, negated) {
        (Concept::And(cs), false) => out.extend(cs.iter().map(|x| shape_hash(x, false))),
        // ¬(⊔ cs) = ⊓ ¬cs: the negated disjuncts are the conjuncts.
        (Concept::Or(cs), true) => out.extend(cs.iter().map(|x| shape_hash(x, true))),
        // ⊤ contributes nothing to a conjunction.
        (Concept::Top, false) | (Concept::Bottom, true) => {}
        _ => out.push(shape_hash(c, negated)),
    }
}

fn fold_root(mut hs: Vec<u64>) -> u64 {
    hs.sort_unstable();
    hs.dedup();
    let mut h = splitmix(shape_tag::ROOT);
    for x in hs {
        h = splitmix(h ^ x);
    }
    h
}

/// Shard route of a satisfiability query on `query`.
fn route_satisfiable(query: &Concept) -> u64 {
    let mut hs = Vec::new();
    push_root_hashes(query, false, &mut hs);
    fold_root(hs)
}

/// Shard route of the subsumption query `sub ⊓ ¬sup` — identical to
/// [`route_satisfiable`] of the [`Concept::and`] spelling, so the two
/// entry points co-locate shared label sets.
fn route_subsumes(sup: &Concept, sub: &Concept) -> u64 {
    let mut hs = Vec::new();
    push_root_hashes(sub, false, &mut hs);
    push_root_hashes(sup, true, &mut hs);
    fold_root(hs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::concept::RoleExpr;

    fn ab_tbox() -> (TBox, Concept, Concept) {
        let mut t = TBox::new();
        let a = Concept::Atomic(t.atom("A"));
        let b = Concept::Atomic(t.atom("B"));
        t.gci(a.clone(), b.clone());
        (t, a, b)
    }

    #[test]
    fn repeated_queries_hit() {
        let (t, a, b) = ab_tbox();
        let mut cache = SatCache::new();
        let q = Concept::and([a.clone(), Concept::not(b.clone())]);
        assert_eq!(cache.satisfiable(&t, &q, 100_000), DlOutcome::Unsat);
        for _ in 0..10 {
            assert_eq!(cache.satisfiable(&t, &q, 100_000), DlOutcome::Unsat);
        }
        assert_eq!(cache.stats().misses, 1);
        assert_eq!(cache.stats().hits, 10);
    }

    #[test]
    fn key_canonicalizes_conjunction_spelling() {
        let (t, a, b) = ab_tbox();
        let mut cache = SatCache::new();
        let q1 = Concept::and([a.clone(), b.clone()]);
        let q2 = Concept::and([b.clone(), a.clone(), a.clone()]);
        assert_eq!(cache.satisfiable(&t, &q1, 100_000), DlOutcome::Sat);
        assert_eq!(cache.satisfiable(&t, &q2, 100_000), DlOutcome::Sat);
        assert_eq!(cache.stats().misses, 1);
        assert_eq!(cache.stats().hits, 1);
    }

    /// Retention rule 1: `Unsat` entries survive any pure addition
    /// outright (additions are monotone), answering the re-query as a
    /// hit with zero invalidations.
    #[test]
    fn unsat_survives_pure_addition() {
        let (mut t, a, b) = ab_tbox();
        let mut cache = SatCache::new();
        let q = Concept::and([a.clone(), Concept::not(b.clone())]);
        assert_eq!(cache.satisfiable(&t, &q, 100_000), DlOutcome::Unsat);
        t.gci(b.clone(), a.clone());
        assert_eq!(cache.satisfiable(&t, &q, 100_000), DlOutcome::Unsat);
        let stats = cache.stats();
        assert_eq!(stats.invalidations, 0, "addition cleared the cache wholesale");
        assert_eq!(stats.retained, 1);
        assert_eq!((stats.misses, stats.hits), (1, 1));
        // Role-axiom additions keep Unsat entries too.
        let r = RoleExpr::direct(t.role("R"));
        let s = RoleExpr::direct(t.role("S"));
        t.role_inclusion(r, s);
        t.disjoint(r, s);
        assert_eq!(cache.satisfiable(&t, &q, 100_000), DlOutcome::Unsat);
        let stats = cache.stats();
        assert_eq!(stats.invalidations, 0);
        assert_eq!(stats.retained, 2, "one per addition-delta the entry lived through");
        assert_eq!(stats.hits, 2);
    }

    /// Retention rule 2: a `Sat` entry whose witness confirms the added
    /// axioms is kept (revalidated); one whose witness cannot confirm
    /// them is evicted individually and re-proved on the next query —
    /// with the *new* verdict.
    #[test]
    fn sat_witness_revalidation_keeps_or_evicts() {
        let (mut t, a, b) = ab_tbox();
        let c = Concept::Atomic(t.atom("C"));
        let mut cache = SatCache::new();
        assert_eq!(cache.satisfiable(&t, &a, 100_000), DlOutcome::Sat);
        // `C ⊑ B` leaves the witness untouched (no node mentions C).
        t.gci(c.clone(), b.clone());
        assert_eq!(cache.satisfiable(&t, &a, 100_000), DlOutcome::Sat);
        let stats = cache.stats();
        assert_eq!((stats.invalidations, stats.revalidated, stats.hits), (0, 1, 1));
        // `A ⊑ ⊥` is violated by the witness (its root carries A): the
        // entry is evicted and the re-query re-proves — now Unsat.
        t.gci(a.clone(), Concept::Bottom);
        assert_eq!(cache.satisfiable(&t, &a, 100_000), DlOutcome::Unsat);
        let stats = cache.stats();
        assert_eq!(stats.invalidations, 0);
        assert_eq!(stats.evicted, 1);
        assert_eq!(stats.misses, 2, "evicted entry must be re-proved");
    }

    /// Retention rule 3: destructive edits (axiom retraction) still clear
    /// wholesale — removals grow the model class, so no stored proof
    /// transfers.
    #[test]
    fn destructive_edit_clears_wholesale() {
        let (mut t, a, b) = ab_tbox();
        let mut cache = SatCache::new();
        let q = Concept::and([a.clone(), Concept::not(b.clone())]);
        assert_eq!(cache.satisfiable(&t, &q, 100_000), DlOutcome::Unsat);
        let retracted = t.retract_gci(0);
        assert_eq!(retracted, (a.clone(), b.clone()));
        // Without A ⊑ B the query is satisfiable — a replayed entry would
        // be observably wrong.
        assert_eq!(cache.satisfiable(&t, &q, 100_000), DlOutcome::Sat);
        let stats = cache.stats();
        assert_eq!(stats.invalidations, 1);
        assert_eq!((stats.retained, stats.revalidated), (0, 0));
        assert_eq!(stats.misses, 2);
    }

    /// Budget-`Unknown` entries are evicted on any delta: the grown TBox
    /// may be decidable within the budget that previously ran out.
    #[test]
    fn unknown_entries_evicted_on_additions() {
        let mut t = TBox::new();
        let r = RoleExpr::direct(t.role("R"));
        let a = Concept::Atomic(t.atom("A"));
        let b = Concept::Atomic(t.atom("B"));
        t.gci(a.clone(), Concept::Exists(r, Box::new(a.clone())));
        let mut cache = SatCache::new();
        assert_eq!(cache.satisfiable(&t, &a, 1), DlOutcome::ResourceLimit);
        t.gci(b.clone(), Concept::Top);
        // The entry is gone: the query re-runs rather than replaying the
        // stale Unknown.
        assert_eq!(cache.satisfiable(&t, &a, 1), DlOutcome::ResourceLimit);
        let stats = cache.stats();
        assert_eq!(stats.evicted, 1);
        assert_eq!(stats.misses, 2);
        assert_eq!(stats.hits, 0);
    }

    /// Interning a fresh name is not a mutation: entries survive without
    /// even a revalidation pass.
    #[test]
    fn fresh_names_leave_entries_untouched() {
        let (mut t, a, b) = ab_tbox();
        let mut cache = SatCache::new();
        let q = Concept::and([a.clone(), Concept::not(b.clone())]);
        assert_eq!(cache.satisfiable(&t, &q, 100_000), DlOutcome::Unsat);
        t.atom("Fresh");
        t.role("FreshRole");
        assert_eq!(cache.satisfiable(&t, &q, 100_000), DlOutcome::Unsat);
        let stats = cache.stats();
        assert_eq!((stats.invalidations, stats.retained, stats.revalidated), (0, 0, 0));
        assert_eq!((stats.misses, stats.hits), (1, 1));
    }

    /// Role-inclusion additions keep edge-free `Sat` witnesses and evict
    /// edged ones (hierarchy growth can re-route `∀`/`≤` reasoning).
    #[test]
    fn role_inclusions_keep_only_edge_free_witnesses() {
        let mut t = TBox::new();
        let r = RoleExpr::direct(t.role("R"));
        let s = RoleExpr::direct(t.role("S"));
        let a = Concept::Atomic(t.atom("A"));
        let b = Concept::Atomic(t.atom("B"));
        t.gci(a.clone(), Concept::some(r));
        let mut cache = SatCache::new();
        // `a` forces an R-edge in its witness; `b` stays edge-free.
        assert_eq!(cache.satisfiable(&t, &a, 100_000), DlOutcome::Sat);
        assert_eq!(cache.satisfiable(&t, &b, 100_000), DlOutcome::Sat);
        t.role_inclusion(r, s);
        assert_eq!(cache.satisfiable(&t, &b, 100_000), DlOutcome::Sat);
        assert_eq!(cache.satisfiable(&t, &a, 100_000), DlOutcome::Sat);
        let stats = cache.stats();
        assert_eq!(stats.revalidated, 1, "edge-free witness should survive");
        assert_eq!(stats.evicted, 1, "edged witness must be re-proved");
        assert_eq!(stats.misses, 3);
    }

    /// Disjointness additions are checked against the witness's edges:
    /// a violated witness is evicted (and the re-proof may flip the
    /// verdict), an untouched one survives.
    #[test]
    fn disjointness_additions_check_witness_edges() {
        let mut t = TBox::new();
        let r = RoleExpr::direct(t.role("R"));
        let s = RoleExpr::direct(t.role("S"));
        let a = Concept::Atomic(t.atom("A"));
        let b = Concept::Atomic(t.atom("B"));
        t.gci(a.clone(), Concept::and([Concept::some(r), Concept::some(s)]));
        let mut cache = SatCache::new();
        assert_eq!(cache.satisfiable(&t, &a, 100_000), DlOutcome::Sat);
        assert_eq!(cache.satisfiable(&t, &b, 100_000), DlOutcome::Sat);
        // R and S land on *different* witness edges here, so both
        // entries survive the new disjointness.
        t.disjoint(r, s);
        assert_eq!(cache.satisfiable(&t, &a, 100_000), DlOutcome::Sat);
        assert_eq!(cache.satisfiable(&t, &b, 100_000), DlOutcome::Sat);
        let stats = cache.stats();
        assert_eq!((stats.revalidated, stats.evicted), (2, 0));
        // A self-disjointness on R violates `a`'s witness edge: evicted,
        // re-proved, and genuinely Unsat now.
        t.disjoint(r, r);
        assert_eq!(cache.satisfiable(&t, &a, 100_000), DlOutcome::Unsat);
        assert_eq!(cache.satisfiable(&t, &b, 100_000), DlOutcome::Sat);
        let stats = cache.stats();
        assert_eq!(stats.evicted, 1);
        assert_eq!(stats.invalidations, 0);
    }

    /// Explicit clears are observable in `stats().clears` — they used to
    /// vanish entirely (the stamp reset skipped the `invalidations`
    /// counter on the next validate), leaving the stats claiming the
    /// cache had never been emptied.
    #[test]
    fn explicit_clear_is_counted() {
        let (t, a, b) = ab_tbox();
        let mut cache = SatCache::new();
        let q = Concept::and([a.clone(), Concept::not(b.clone())]);
        assert_eq!(cache.satisfiable(&t, &q, 100_000), DlOutcome::Unsat);
        assert_eq!(cache.len(), 1);
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.stats().clears, 1);
        // Re-binding to the same TBox after an explicit clear is not a
        // stamp-mismatch invalidation: nothing stale was discarded.
        assert_eq!(cache.satisfiable(&t, &q, 100_000), DlOutcome::Unsat);
        let stats = cache.stats();
        assert_eq!(stats.invalidations, 0);
        assert_eq!(stats.clears, 1);
        assert_eq!(stats.misses, 2);
    }

    /// A failed explanation attempt must never downgrade a certified
    /// verdict: an `Unsat` entry proved by a plain query (possibly under
    /// a larger budget) survives a small-budget `explain` that runs out
    /// of budget — the verdict keeps answering, only the core is absent.
    #[test]
    fn failed_explanation_does_not_downgrade_unsat() {
        use crate::explain::Explanation;
        // B ⊑ C, C ⊑ ⊥: refuting B needs actual rule applications (the
        // internalized `¬B ⊔ C` opens a choice point), so a zero budget
        // cannot re-derive what the funded run proved.
        let mut t = TBox::new();
        let b = Concept::Atomic(t.atom("B"));
        let c = Concept::Atomic(t.atom("C"));
        t.gci(b.clone(), c.clone());
        t.gci(c.clone(), Concept::Bottom);
        let mut cache = SatCache::new();
        // Certify the verdict through the plain path with an ample budget.
        assert_eq!(cache.satisfiable(&t, &b, 100_000), DlOutcome::Unsat);
        // A starved explanation request fails …
        assert_eq!(cache.explain(&t, &b, 0), Explanation::ResourceLimit);
        // … but the certified Unsat entry still answers, as a hit.
        let hits_before = cache.stats().hits;
        assert_eq!(cache.satisfiable(&t, &b, 0), DlOutcome::Unsat);
        assert_eq!(cache.stats().hits, hits_before + 1, "verdict entry was destroyed");
        // And a funded explanation later completes and stores the core.
        assert!(matches!(cache.explain(&t, &b, 100_000), Explanation::Unsat(_)));
    }

    #[test]
    fn clones_never_alias() {
        let (t, a, b) = ab_tbox();
        let mut clone = t.clone();
        let mut cache = SatCache::new();
        let q = Concept::and([a.clone(), Concept::not(b.clone())]);
        assert_eq!(cache.satisfiable(&t, &q, 100_000), DlOutcome::Unsat);
        // The clone diverges: A ⊑ B is joined by B ⊑ ⊥.
        clone.gci(b.clone(), Concept::Bottom);
        // A alone is now unsatisfiable in the clone; the entry proved
        // against `t` must not answer for it.
        assert_eq!(cache.satisfiable(&clone, &a, 100_000), DlOutcome::Unsat);
        assert_eq!(cache.satisfiable(&t, &a, 100_000), DlOutcome::Sat);
    }

    #[test]
    fn unknown_entries_are_budget_aware() {
        // A query the tableau cannot decide under a tiny budget.
        let mut t = TBox::new();
        let r = RoleExpr::direct(t.role("R"));
        let a = Concept::Atomic(t.atom("A"));
        t.gci(a.clone(), Concept::Exists(r, Box::new(a.clone())));
        let mut cache = SatCache::new();
        assert_eq!(cache.satisfiable(&t, &a, 1), DlOutcome::ResourceLimit);
        // Same or smaller budget: short-circuited.
        assert_eq!(cache.satisfiable(&t, &a, 1), DlOutcome::ResourceLimit);
        assert_eq!(cache.stats().hits, 1);
        // A larger budget must actually re-run — and succeeds.
        assert_eq!(cache.satisfiable(&t, &a, 100_000), DlOutcome::Sat);
        // The definitive verdict now answers even tiny-budget callers.
        assert_eq!(cache.satisfiable(&t, &a, 1), DlOutcome::Sat);
    }

    #[test]
    fn subsumes_through_cache_matches_uncached() {
        let (t, a, b) = ab_tbox();
        let mut cache = SatCache::new();
        assert_eq!(cache.subsumes(&t, &b, &a, 100_000), Some(true));
        assert_eq!(cache.subsumes(&t, &a, &b, 100_000), Some(false));
        assert_eq!(
            cache.subsumes(&t, &b, &a, 100_000),
            crate::tableau::subsumes(&t, &b, &a, 100_000)
        );
    }

    /// The id-built subsumption key equals the key of the equivalent
    /// `Concept::and` satisfiability spelling: asking one way then the
    /// other is one miss plus one hit, in either order.
    #[test]
    fn subsumes_and_satisfiable_share_entries() {
        let (t, a, b) = ab_tbox();

        let mut cache = SatCache::new();
        assert_eq!(cache.subsumes(&t, &b, &a, 100_000), Some(true));
        let q = Concept::and([a.clone(), Concept::not(b.clone())]);
        assert_eq!(cache.satisfiable(&t, &q, 100_000), DlOutcome::Unsat);
        let stats = cache.stats();
        assert_eq!((stats.misses, stats.hits), (1, 1), "satisfiable missed the subsumes entry");

        let mut cache = SatCache::new();
        assert_eq!(cache.satisfiable(&t, &q, 100_000), DlOutcome::Unsat);
        assert_eq!(cache.subsumes(&t, &b, &a, 100_000), Some(true));
        let stats = cache.stats();
        assert_eq!((stats.misses, stats.hits), (1, 1), "subsumes missed the satisfiable entry");

        // Compound sides exercise the De Morgan split of the key: sup an
        // ⊔ (whose negation contributes several conjuncts) and sub an ⊓.
        let mut cache = SatCache::new();
        let sup = Concept::or([b.clone(), Concept::some(RoleExpr::direct(0))]);
        let sub = Concept::and([a.clone(), b.clone()]);
        let spelled = Concept::and([sub.clone(), Concept::not(sup.clone())]);
        let via_ids = cache.subsumes(&t, &sup, &sub, 100_000);
        assert_eq!(
            cache.satisfiable(&t, &spelled, 100_000) == DlOutcome::Unsat,
            via_ids == Some(true)
        );
        let stats = cache.stats();
        assert_eq!((stats.misses, stats.hits), (1, 1), "compound keys diverged");
    }

    #[test]
    fn shards_route_spellings_to_one_entry() {
        let (t, a, b) = ab_tbox();
        let shards = SatShards::new();
        let q1 = Concept::and([a.clone(), Concept::not(b.clone())]);
        let q2 = Concept::and([Concept::not(b.clone()), a.clone(), a.clone()]);
        assert_eq!(shards.satisfiable(&t, &q1, 100_000), DlOutcome::Unsat);
        assert_eq!(shards.satisfiable(&t, &q2, 100_000), DlOutcome::Unsat);
        assert_eq!(shards.subsumes(&t, &b, &a, 100_000), Some(true));
        let stats = shards.stats();
        assert_eq!((stats.misses, stats.hits), (1, 2), "spellings split across shards");
        assert_eq!(shards.len(), 1);
    }

    #[test]
    fn shards_spread_distinct_queries() {
        let mut t = TBox::new();
        let atoms: Vec<Concept> =
            (0..64).map(|i| Concept::Atomic(t.atom(format!("A{i}")))).collect();
        let shards = SatShards::with_shards(8);
        for q in &atoms {
            assert_eq!(shards.satisfiable(&t, q, 100_000), DlOutcome::Sat);
        }
        assert_eq!(shards.len(), 64);
        // With 64 distinct keys over 8 shards, a constant router would
        // put everything in one shard; the structural hash must occupy
        // several.
        let occupied = shards.shards.iter().filter(|s| !s.lock().is_empty()).count();
        assert!(occupied > 1, "router degenerated to a single shard");
        let stats = shards.stats();
        assert_eq!((stats.misses, stats.hits), (64, 0));
    }

    #[test]
    fn shards_clear_counts_per_shard() {
        let (t, a, _) = ab_tbox();
        let shards = SatShards::with_shards(4);
        assert_eq!(shards.satisfiable(&t, &a, 100_000), DlOutcome::Sat);
        shards.clear();
        assert!(shards.is_empty());
        assert_eq!(shards.stats().clears, 4);
    }

    /// A TBox with two independent refutations of `A` — the enumeration
    /// fixture the cache-interaction tests share.
    fn two_mus_tbox() -> (TBox, Concept) {
        let mut t = TBox::new();
        let a = Concept::Atomic(t.atom("A"));
        let b = Concept::Atomic(t.atom("B"));
        t.gci(a.clone(), Concept::Bottom);
        t.gci(a.clone(), b.clone());
        t.gci(b.clone(), Concept::Bottom);
        (t, a)
    }

    /// A repeat enumeration is a pure hit, and the family answers
    /// smaller-limit requests as an honestly truncated prefix.
    #[test]
    fn enumeration_caches_families() {
        let (t, a) = two_mus_tbox();
        let mut cache = SatCache::new();
        let MusEnumeration::Unsat(family) = cache.enumerate(&t, &a, 100_000, usize::MAX) else {
            panic!("A is doomed");
        };
        assert_eq!(family.cores.len(), 2);
        assert!(family.complete);
        assert_eq!(cache.enumerate(&t, &a, 100_000, usize::MAX), MusEnumeration::Unsat(family));
        assert_eq!((cache.stats().misses, cache.stats().hits), (1, 1));
        // Top-1 from the cached complete family: a truncated prefix.
        let MusEnumeration::Unsat(top1) = cache.enumerate(&t, &a, 100_000, 1) else {
            panic!("A is doomed");
        };
        assert_eq!(top1.cores.len(), 1);
        assert!(top1.truncated && !top1.complete);
        assert_eq!(cache.stats().hits, 2);
        // The family also fills the single-core slot: explain hits too.
        assert!(matches!(cache.explain(&t, &a, 100_000), Explanation::Unsat(_)));
        assert_eq!(cache.stats().hits, 3);
    }

    /// Pure additions keep the cached family's cores (append-stable ids,
    /// restriction untouched) but clear its completeness: a later
    /// full-family request re-enumerates and finds the new MUS.
    #[test]
    fn families_survive_additions_without_claiming_completeness() {
        let (mut t, a) = two_mus_tbox();
        let mut cache = SatCache::new();
        let MusEnumeration::Unsat(before) = cache.enumerate(&t, &a, 100_000, usize::MAX) else {
            panic!("A is doomed");
        };
        assert!(before.complete);
        // An addition creating a *third* MUS: A ⊑ C, C ⊑ ⊥.
        let c = Concept::Atomic(t.atom("C"));
        t.gci(a.clone(), c.clone());
        t.gci(c.clone(), Concept::Bottom);
        // Top-2 answers from the retained family (a valid truncated
        // prefix — both cores are still certified MUSes).
        let MusEnumeration::Unsat(top2) = cache.enumerate(&t, &a, 100_000, 2) else {
            panic!("A is doomed");
        };
        assert_eq!(top2.cores, before.cores);
        assert!(top2.truncated && !top2.complete);
        assert_eq!(cache.stats().retained, 1);
        // A full request must NOT replay the stale family: it re-runs and
        // finds all three.
        let MusEnumeration::Unsat(after) = cache.enumerate(&t, &a, 100_000, usize::MAX) else {
            panic!("A is doomed");
        };
        assert_eq!(after.cores.len(), 3);
        assert!(after.complete);
    }

    /// Destructive deltas clear families wholesale with the rest of the
    /// cache — the re-enumeration sees only the surviving refutation.
    #[test]
    fn families_invalidated_by_destructive_deltas() {
        let (mut t, a) = two_mus_tbox();
        let mut cache = SatCache::new();
        let MusEnumeration::Unsat(family) = cache.enumerate(&t, &a, 100_000, usize::MAX) else {
            panic!("A is doomed");
        };
        assert_eq!(family.cores.len(), 2);
        // Retract `A ⊑ ⊥` (gci index 0): only the chained MUS remains —
        // and its gci indices have shifted, so a replayed family would be
        // observably wrong.
        t.retract_gci(0);
        let MusEnumeration::Unsat(after) = cache.enumerate(&t, &a, 100_000, usize::MAX) else {
            panic!("A is still doomed through B");
        };
        assert_eq!(cache.stats().invalidations, 1);
        assert_eq!(after.cores.len(), 1);
        assert_eq!(after.cores[0].len(), 2);
        assert!(after.complete);
    }

    /// Sharded enumeration agrees with the sequential cache and shares
    /// entries with the explain/satisfiable paths.
    #[test]
    fn shards_enumerate_agrees_with_sequential() {
        let (t, a) = two_mus_tbox();
        let shards = SatShards::new();
        let mut sequential = SatCache::new();
        let via_shards = shards.enumerate(&t, &a, 100_000, usize::MAX);
        let via_cache = sequential.enumerate(&t, &a, 100_000, usize::MAX);
        let (MusEnumeration::Unsat(fs), MusEnumeration::Unsat(fc)) = (&via_shards, &via_cache)
        else {
            panic!("A is doomed both ways");
        };
        let sets = |f: &MusFamily| {
            let mut s: Vec<_> = f.cores.iter().map(|c| c.axioms.clone()).collect();
            s.sort();
            s
        };
        assert_eq!(sets(fs), sets(fc));
        assert_eq!((fs.complete, fs.truncated), (fc.complete, fc.truncated));
        // The family entry answers the other entry points as hits.
        assert_eq!(shards.satisfiable(&t, &a, 100_000), DlOutcome::Unsat);
        assert!(matches!(shards.explain(&t, &a, 100_000), Explanation::Unsat(_)));
        let stats = shards.stats();
        assert_eq!((stats.misses, stats.hits), (1, 2));
    }

    /// An infinite-model query that starves any finite budget but is
    /// decided (Sat) once the budget is generous.
    fn starving_tbox() -> (TBox, Concept) {
        let mut t = TBox::new();
        let r = RoleExpr::direct(t.role("R"));
        let a = Concept::Atomic(t.atom("A"));
        t.gci(a.clone(), Concept::Exists(r, Box::new(a.clone())));
        (t, a)
    }

    /// Satellite regression, direction 1: an `Unknown` starved at a small
    /// budget must NOT answer a caller whose context affords more steps.
    /// Direction 2: it MUST answer callers at or below the starving
    /// budget, and a definitive verdict answers everyone.
    #[test]
    fn unknown_entries_are_budget_aware_cx() {
        let (t, a) = starving_tbox();
        let mut cache = SatCache::new();
        let tiny = ExecCx::with_steps(1);
        assert_eq!(cache.satisfiable_cx(&t, &a, &tiny), SearchOutcome::BudgetExhausted);
        // Same budget: short-circuited by the stored Unknown.
        assert_eq!(cache.satisfiable_cx(&t, &a, &tiny), SearchOutcome::BudgetExhausted);
        assert_eq!((cache.stats().misses, cache.stats().hits), (1, 1));
        // A richer context must re-prove — and decides.
        let rich = ExecCx::with_steps(100_000);
        assert_eq!(cache.satisfiable_cx(&t, &a, &rich), SearchOutcome::Sat);
        assert_eq!(cache.stats().misses, 2, "richer context answered by starved Unknown");
        // The definitive verdict now answers even tiny-budget callers.
        assert_eq!(cache.satisfiable_cx(&t, &a, &tiny), SearchOutcome::Sat);
    }

    /// Interrupted runs (cancelled or past deadline) must never record an
    /// entry: a later full-budget caller re-proves and gets the real
    /// verdict — no `Unknown` masks it.
    #[test]
    fn interrupted_runs_record_nothing() {
        let (t, a) = starving_tbox();
        let mut cache = SatCache::new();

        let cancelled = ExecCx::unlimited();
        cancelled.cancel();
        assert_eq!(cache.satisfiable_cx(&t, &a, &cancelled), SearchOutcome::Cancelled);
        assert_eq!(cache.len(), 0, "cancelled run left an entry behind");
        assert_eq!(cache.stats().cancelled, 1);

        let expired = ExecCx::unlimited()
            .with_deadline(std::time::Instant::now() - std::time::Duration::from_millis(1));
        assert_eq!(cache.satisfiable_cx(&t, &a, &expired), SearchOutcome::DeadlineExceeded);
        assert_eq!(cache.len(), 0, "deadlined run left an entry behind");
        assert_eq!(cache.stats().deadlined, 1);

        // The provable verdict is still reachable — nothing masked it.
        assert_eq!(cache.satisfiable_cx(&t, &a, &ExecCx::with_steps(100_000)), SearchOutcome::Sat);
        assert_eq!(cache.len(), 1);
    }

    /// The `Unknown` budget stamp is monotone: it records the *hardest*
    /// failed attempt, so a downgraded (tighter-budget) retry — the
    /// admission layer's overload response — can never weaken it, while
    /// a richer failure upgrades it.
    #[test]
    fn record_unknown_is_monotone_in_budget() {
        let mut cache = SatCache::new();
        let k = cache.key(&Concept::Atomic(0));
        fn stamp(cache: &SatCache, k: &[ConceptId]) -> u64 {
            match cache.entries.get(k) {
                Some(Entry::Unknown { budget }) => *budget,
                other => panic!("expected Unknown, got {:?}", other.is_some()),
            }
        }
        cache.record(k.clone(), DlOutcome::ResourceLimit, 100, None);
        assert_eq!(stamp(&cache, &k), 100);
        // Downgraded retry fails at a tighter budget — stamp unchanged.
        cache.record(k.clone(), DlOutcome::ResourceLimit, 10, None);
        assert_eq!(stamp(&cache, &k), 100, "downgraded run weakened the Unknown stamp");
        // A richer failure upgrades it.
        cache.record(k.clone(), DlOutcome::ResourceLimit, 500, None);
        assert_eq!(stamp(&cache, &k), 500);
        cache.record(k.clone(), DlOutcome::ResourceLimit, 500, None);
        assert_eq!(stamp(&cache, &k), 500);
    }

    /// An `Unknown` must never displace a definitive verdict already in
    /// the cache — not even one claiming an unlimited budget.
    #[test]
    fn unknown_never_replaces_a_definitive_verdict() {
        let mut cache = SatCache::new();
        let k_sat = cache.key(&Concept::Atomic(0));
        let k_unsat = cache.key(&Concept::Atomic(1));
        cache.record(k_sat.clone(), DlOutcome::Sat, 1000, None);
        cache.record(k_unsat.clone(), DlOutcome::Unsat, 1000, None);
        cache.record(k_sat.clone(), DlOutcome::ResourceLimit, u64::MAX, None);
        cache.record(k_unsat.clone(), DlOutcome::ResourceLimit, u64::MAX, None);
        assert!(
            matches!(cache.entries.get(&k_sat), Some(Entry::Sat { .. })),
            "Unknown clobbered a Sat verdict"
        );
        assert!(
            matches!(cache.entries.get(&k_unsat), Some(Entry::Unsat { .. })),
            "Unknown clobbered an Unsat verdict"
        );
    }

    /// Public-API shape of the monotonicity invariant: with `Unknown{50}`
    /// cached, a downgraded 10-step caller short-circuits (hit) and does
    /// not shrink the stamp — a later 50-step caller still hits instead
    /// of re-proving — while a caller above the stamp re-proves and
    /// upgrades the entry to the real verdict for everyone.
    #[test]
    fn downgraded_probe_neither_reproves_nor_weakens() {
        let (t, a) = starving_tbox();
        let mut cache = SatCache::new();
        cache.validate(&t);
        let k = cache.key(&a);
        cache.record(k, DlOutcome::ResourceLimit, 50, None);

        assert_eq!(cache.satisfiable(&t, &a, 10), DlOutcome::ResourceLimit);
        assert_eq!((cache.stats().hits, cache.stats().misses), (1, 0));
        assert_eq!(cache.satisfiable(&t, &a, 50), DlOutcome::ResourceLimit);
        assert_eq!(
            (cache.stats().hits, cache.stats().misses),
            (2, 0),
            "downgraded probe shrank the stamp: the 50-step caller re-proved"
        );
        assert_eq!(cache.satisfiable(&t, &a, 100_000), DlOutcome::Sat);
        assert_eq!(cache.stats().misses, 1);
        assert_eq!(cache.satisfiable(&t, &a, 1), DlOutcome::Sat);
    }

    /// The explain/enumerate cx paths obey the same recording rule:
    /// interrupts bump the counters and leave no entry, budget
    /// starvation records a budget-stamped Unknown.
    #[test]
    fn explain_cx_interrupts_record_nothing() {
        let mut t = TBox::new();
        let a = Concept::Atomic(t.atom("A"));
        t.gci(a.clone(), Concept::Bottom);
        let mut cache = SatCache::new();

        let cancelled = ExecCx::unlimited();
        cancelled.cancel();
        assert_eq!(cache.explain_seeded_cx(&t, &a, &cancelled, &[]), Explanation::ResourceLimit);
        assert_eq!(cache.len(), 0);
        assert!(matches!(
            cache.enumerate_seeded_cx(&t, &a, &cancelled, 4, &[]),
            MusEnumeration::ResourceLimit
        ));
        assert_eq!(cache.len(), 0);
        assert_eq!(cache.stats().cancelled, 2);

        // An uninterrupted context certifies the core — and caches it.
        let rich = ExecCx::with_steps(100_000);
        assert!(matches!(cache.explain_seeded_cx(&t, &a, &rich, &[]), Explanation::Unsat(_)));
        assert!(matches!(
            cache.enumerate_seeded_cx(&t, &a, &rich, 4, &[]),
            MusEnumeration::Unsat(_)
        ));
    }

    /// The shard-level cx wrappers share entries with the legacy paths
    /// and aggregate the new counters.
    #[test]
    fn shards_cx_paths_share_entries_and_counters() {
        let (t, a, b) = ab_tbox();
        let shards = SatShards::new();
        let q = Concept::and([a.clone(), Concept::not(b.clone())]);
        let rich = ExecCx::with_steps(100_000);
        assert_eq!(shards.satisfiable_cx(&t, &q, &rich), SearchOutcome::Unsat);
        // The legacy entry point hits the cx-proved entry.
        assert_eq!(shards.satisfiable(&t, &q, 100_000), DlOutcome::Unsat);
        assert_eq!(shards.subsumes_cx(&t, &b, &a, &rich), Ok(Some(true)));
        assert!(matches!(shards.explain_cx(&t, &q, &rich), Explanation::Unsat(_)));
        let cancelled = ExecCx::unlimited();
        cancelled.cancel();
        assert_eq!(shards.satisfiable_cx(&t, &a, &cancelled), SearchOutcome::Cancelled);
        assert_eq!(shards.stats().cancelled, 1);
    }
}
