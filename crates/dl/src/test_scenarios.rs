//! Shared unit scenarios for both tableau engines.
//!
//! One case per rule interaction (clash, `⊔`, `∃`/`∀`, inverses, number
//! restrictions, merging, role hierarchy/disjointness, blocking, budget),
//! each with its expected verdict. `tableau::tests` and `classic::tests`
//! both iterate this list, so the two engines are held to the same
//! specification without duplicating the scenarios.

use crate::concept::{Concept as C, RoleExpr};
use crate::tableau::DlOutcome;
use crate::tbox::TBox;

/// A named satisfiability scenario with its expected verdict.
pub(crate) struct Case {
    /// What the scenario exercises.
    pub name: &'static str,
    /// The terminology.
    pub tbox: TBox,
    /// The query concept.
    pub query: C,
    /// Rule-application budget.
    pub budget: u64,
    /// The verdict both engines must return.
    pub expected: DlOutcome,
}

const BUDGET: u64 = 500_000;

fn case(name: &'static str, tbox: TBox, query: C, expected: DlOutcome) -> Case {
    Case { name, tbox, query, budget: BUDGET, expected }
}

/// All shared scenarios.
pub(crate) fn all() -> Vec<Case> {
    let mut out = Vec::new();

    out.push(case("top is satisfiable", TBox::new(), C::Top, DlOutcome::Sat));
    out.push(case("bottom is unsatisfiable", TBox::new(), C::Bottom, DlOutcome::Unsat));

    {
        let mut t = TBox::new();
        let a = C::Atomic(t.atom("A"));
        out.push(case("atomic clash", t, C::and([a.clone(), C::not(a)]), DlOutcome::Unsat));
    }

    {
        // A ⊑ B: A ⊓ ¬B unsatisfiable, A alone satisfiable.
        let mut t = TBox::new();
        let a = C::Atomic(t.atom("A"));
        let b = C::Atomic(t.atom("B"));
        t.gci(a.clone(), b.clone());
        out.push(case(
            "tbox subsumption refutes A ⊓ ¬B",
            t.clone(),
            C::and([a.clone(), C::not(b)]),
            DlOutcome::Unsat,
        ));
        out.push(case("subsumed atom stays satisfiable", t, a, DlOutcome::Sat));
    }

    {
        // Disjunction branching.
        let mut t = TBox::new();
        let a = C::Atomic(t.atom("A"));
        let b = C::Atomic(t.atom("B"));
        out.push(case(
            "disjunction survives through the other branch",
            t.clone(),
            C::and([C::or([a.clone(), b.clone()]), C::not(a.clone())]),
            DlOutcome::Sat,
        ));
        out.push(case(
            "disjunction clashes on both branches",
            t,
            C::and([C::or([a.clone(), b.clone()]), C::not(a), C::not(b)]),
            DlOutcome::Unsat,
        ));
    }

    {
        // ∃/∀ interaction.
        let mut t = TBox::new();
        let a = C::Atomic(t.atom("A"));
        let r = RoleExpr::direct(t.role("R"));
        out.push(case(
            "∃R.A ⊓ ∀R.¬A clashes at the successor",
            t.clone(),
            C::and([C::Exists(r, Box::new(a.clone())), C::ForAll(r, Box::new(C::not(a.clone())))]),
            DlOutcome::Unsat,
        ));
        out.push(case(
            "∃R.A ⊓ ∀R.A is satisfiable",
            t.clone(),
            C::and([C::Exists(r, Box::new(a.clone())), C::ForAll(r, Box::new(a.clone()))]),
            DlOutcome::Sat,
        ));
        out.push(case(
            "inverse role propagates back to the root",
            t,
            C::and([
                C::not(a.clone()),
                C::Exists(r, Box::new(C::ForAll(r.inverse(), Box::new(a)))),
            ]),
            DlOutcome::Unsat,
        ));
    }

    {
        // Unqualified number restrictions.
        let mut t = TBox::new();
        let r = RoleExpr::direct(t.role("R"));
        out.push(case(
            "≥2 R ⊓ ≤1 R is unsatisfiable",
            t.clone(),
            C::and([C::AtLeast(2, r), C::AtMost(1, r)]),
            DlOutcome::Unsat,
        ));
        out.push(case(
            "≥2 R ⊓ ≤2 R is satisfiable",
            t,
            C::and([C::AtLeast(2, r), C::AtMost(2, r)]),
            DlOutcome::Sat,
        ));
    }

    {
        // ≤-merging of successors.
        let mut t = TBox::new();
        let a = C::Atomic(t.atom("A"));
        let b = C::Atomic(t.atom("B"));
        let r = RoleExpr::direct(t.role("R"));
        out.push(case(
            "≤1 merges two successors into one",
            t.clone(),
            C::and([
                C::Exists(r, Box::new(a.clone())),
                C::Exists(r, Box::new(b.clone())),
                C::AtMost(1, r),
            ]),
            DlOutcome::Sat,
        ));
        t.gci(C::and([a.clone(), b.clone()]), C::Bottom);
        out.push(case(
            "merge clashes when the successors are disjoint",
            t,
            C::and([C::Exists(r, Box::new(a)), C::Exists(r, Box::new(b)), C::AtMost(1, r)]),
            DlOutcome::Unsat,
        ));
    }

    {
        // Role hierarchy: sub-role successors count toward ≤.
        let mut t = TBox::new();
        let r = t.role("R");
        let s = t.role("S");
        t.role_inclusion(RoleExpr::direct(s), RoleExpr::direct(r));
        out.push(case(
            "sub-role successor counts toward ≤0 on the super-role",
            t,
            C::and([C::some(RoleExpr::direct(s)), C::AtMost(0, RoleExpr::direct(r))]),
            DlOutcome::Unsat,
        ));
    }

    {
        // Role disjointness: harmless apart, clashing when merged.
        let mut t = TBox::new();
        let r = t.role("R");
        let s = t.role("S");
        t.disjoint(RoleExpr::direct(r), RoleExpr::direct(s));
        out.push(case(
            "disjoint roles on separate successors are fine",
            t,
            C::and([C::some(RoleExpr::direct(r)), C::some(RoleExpr::direct(s))]),
            DlOutcome::Sat,
        ));
        let mut t2 = TBox::new();
        let r2 = t2.role("R");
        let s2 = t2.role("S");
        let q2 = t2.role("Q");
        t2.role_inclusion(RoleExpr::direct(r2), RoleExpr::direct(q2));
        t2.role_inclusion(RoleExpr::direct(s2), RoleExpr::direct(q2));
        t2.disjoint(RoleExpr::direct(r2), RoleExpr::direct(s2));
        out.push(case(
            "≤1 over a common super-role forces a disjointness clash",
            t2,
            C::and([
                C::some(RoleExpr::direct(r2)),
                C::some(RoleExpr::direct(s2)),
                C::AtMost(1, RoleExpr::direct(q2)),
            ]),
            DlOutcome::Unsat,
        ));
    }

    {
        // Blocking terminates infinite-model TBoxes.
        let mut t = TBox::new();
        let r = RoleExpr::direct(t.role("R"));
        t.gci(C::Top, C::some(r));
        out.push(case("⊤ ⊑ ∃R.⊤ terminates via blocking", t.clone(), C::Top, DlOutcome::Sat));
        out.push(Case {
            name: "tiny budget reports ResourceLimit",
            tbox: t,
            query: C::Top,
            budget: 2,
            expected: DlOutcome::ResourceLimit,
        });
        let mut t2 = TBox::new();
        let a = C::Atomic(t2.atom("A"));
        let r2 = RoleExpr::direct(t2.role("R"));
        t2.gci(a.clone(), C::Exists(r2, Box::new(a.clone())));
        t2.gci(C::Top, C::ForAll(r2.inverse(), Box::new(a.clone())));
        out.push(case("pairwise blocking with inverse cycles", t2, a, DlOutcome::Sat));
    }

    {
        // The ORM functionality idiom.
        let mut t = TBox::new();
        let a = C::Atomic(t.atom("A"));
        let r = RoleExpr::direct(t.role("R"));
        t.gci(C::some(r), a.clone());
        t.gci(a.clone(), C::some(r));
        t.gci(C::Top, C::AtMost(1, r));
        out.push(case("functional mandatory role is satisfiable", t, a, DlOutcome::Sat));
    }

    {
        // Frequency-style contradiction; weak satisfiability survives.
        let mut t = TBox::new();
        let r = RoleExpr::direct(t.role("R"));
        t.gci(C::some(r), C::AtLeast(2, r));
        t.gci(C::Top, C::AtMost(1, r));
        out.push(case(
            "frequency contradiction kills the role",
            t.clone(),
            C::some(r),
            DlOutcome::Unsat,
        ));
        out.push(case("frequency contradiction spares ⊤", t, C::Top, DlOutcome::Sat));
    }

    out
}
