//! A unified execution context for every reasoning entry point.
//!
//! The paper's tableau procedures are worst-case exponential, so any
//! service-shaped deployment must be able to *meter*, *deadline*, and
//! *cancel* individual proofs without corrupting shared state. Before
//! this module, resource control was an ad-hoc `budget: u64` copied
//! through a dozen signatures; [`ExecCx`] turns that number into an
//! enforced, observable execution policy:
//!
//! * a **step budget** ([`ExecCx::with_steps`]) — the familiar
//!   rule-application budget, applied *per proof* so a batch entry point
//!   gives every member query the same ceiling a sequential loop would
//!   (this is what keeps parallel and sequential sweeps verdict-identical);
//! * an optional **wall-clock deadline** ([`ExecCx::with_deadline`] /
//!   [`ExecCx::with_timeout`]) — shared across every proof run under the
//!   context, checked cooperatively every [`CHECK_INTERVAL`] worklist
//!   pops;
//! * a shared **cancellation token** ([`CancelToken`]) — a relaxed
//!   atomic flag checked at every choice point and worklist pop, with
//!   parent-chained child tokens ([`ExecCx::child`]) so cancelling one
//!   batch item never poisons its siblings;
//! * **metering counters** ([`Meter`]) — steps, proofs, tasks, and
//!   steals aggregated across every engine run and scheduler worker that
//!   shares the context.
//!
//! Interrupted runs surface as the distinct [`Interrupt`] variants
//! (`Cancelled` / `DeadlineExceeded`), which the tableau maps into
//! [`crate::tableau::SearchOutcome`] — never into a wrong verdict, and
//! never into a cache entry (see `dl::cache`: only genuine
//! `BudgetExhausted` runs record `Unknown`, stamped with the budget they
//! starved at).
//!
//! ```
//! use orm_dl::exec::ExecCx;
//!
//! // A context with a per-proof step budget and a 50 ms wall deadline.
//! let cx = ExecCx::with_steps(100_000).with_timeout(std::time::Duration::from_millis(50));
//! assert_eq!(cx.steps(), Some(100_000));
//! assert!(cx.check().is_ok());
//!
//! // Cancelling the context trips every clone and child sharing the token.
//! let child = cx.child();
//! cx.cancel();
//! assert!(child.check().is_err());
//! ```

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How many worklist pops the tableau runs between *expensive* context
/// checks (deadline reads of the monotonic clock, meter flushes). The
/// cancellation flag itself is a relaxed atomic load and is checked at
/// every pop and choice point; only the clock read is amortized. At
/// ~64 pops per check a cancelled or expired proof is observed within
/// microseconds on every workload in the bench battery.
pub const CHECK_INTERVAL: u64 = 64;

/// Why a run stopped before reaching a verdict — the two *external*
/// interruptions, as opposed to [`crate::tableau::SearchOutcome::BudgetExhausted`]
/// which is the context's own per-proof step policy running out.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Interrupt {
    /// The context's cancellation token (or an ancestor's) was tripped.
    Cancelled,
    /// The context's wall-clock deadline passed.
    DeadlineExceeded,
}

/// A shared cancellation flag with optional parent chaining: a token is
/// *tripped* when its own flag — or any ancestor's — is set. Cloning
/// shares the same flag; [`CancelToken::child`] derives a token that
/// observes the parent but can be cancelled independently, which is how
/// the scheduler isolates batch items from each other.
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
    parent: Option<Arc<CancelToken>>,
}

impl CancelToken {
    /// A fresh, untripped token with no parent.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Trip this token: every clone, and every child derived from it,
    /// observes the cancellation on its next check.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    /// Has this token — or any ancestor — been tripped? A relaxed load
    /// per level, cheap enough for every worklist pop.
    #[must_use]
    pub fn is_cancelled(&self) -> bool {
        if self.flag.load(Ordering::Relaxed) {
            return true;
        }
        self.parent.as_ref().is_some_and(|p| p.is_cancelled())
    }

    /// Derive a child token: tripped whenever `self` is, but cancelling
    /// the child leaves `self` (and its other children) untouched.
    #[must_use]
    pub fn child(&self) -> Self {
        Self { flag: Arc::new(AtomicBool::new(false)), parent: Some(Arc::new(self.clone())) }
    }
}

/// Shared metering counters, aggregated across every engine run and
/// scheduler worker that holds a clone of the owning [`ExecCx`]. All
/// counters are relaxed atomics — they are observability, not
/// synchronization.
#[derive(Debug, Default)]
pub struct Meter {
    /// Tableau rule applications (worklist pops, choice points,
    /// generators, quiescence certifications) across all proofs.
    steps: AtomicU64,
    /// Individual proofs started under this context.
    proofs: AtomicU64,
    /// Batch items executed by scheduler workers.
    tasks: AtomicU64,
    /// Batch items a worker stole from another worker's queue.
    steals: AtomicU64,
    /// Requests refused outright by a service admission layer.
    sheds: AtomicU64,
    /// Requests admitted with a tightened step budget by a service
    /// admission layer.
    downgrades: AtomicU64,
}

impl Meter {
    /// Total tableau steps flushed so far.
    #[must_use]
    pub fn steps(&self) -> u64 {
        self.steps.load(Ordering::Relaxed)
    }

    /// Proofs started under the owning context.
    #[must_use]
    pub fn proofs(&self) -> u64 {
        self.proofs.load(Ordering::Relaxed)
    }

    /// Batch items executed by scheduler workers.
    #[must_use]
    pub fn tasks(&self) -> u64 {
        self.tasks.load(Ordering::Relaxed)
    }

    /// Batch items stolen across worker queues.
    #[must_use]
    pub fn steals(&self) -> u64 {
        self.steals.load(Ordering::Relaxed)
    }

    /// Requests refused outright by a service admission layer.
    #[must_use]
    pub fn sheds(&self) -> u64 {
        self.sheds.load(Ordering::Relaxed)
    }

    /// Requests admitted with a tightened step budget.
    #[must_use]
    pub fn downgrades(&self) -> u64 {
        self.downgrades.load(Ordering::Relaxed)
    }

    /// Record one shed request. Public because admission control lives
    /// above this crate (in `orm-serve`), not inside the engine.
    pub fn add_shed(&self) {
        self.sheds.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one downgraded request.
    pub fn add_downgrade(&self) {
        self.downgrades.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn add_steps(&self, n: u64) {
        self.steps.fetch_add(n, Ordering::Relaxed);
    }

    pub(crate) fn add_proof(&self) {
        self.proofs.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn add_task(&self) {
        self.tasks.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn add_steal(&self) {
        self.steals.fetch_add(1, Ordering::Relaxed);
    }
}

/// The unified execution context: per-proof step budget, optional
/// wall-clock deadline, shared cancellation token, and metering. Cheap
/// to clone (two `Arc`s and two `Copy` fields); clones share the token,
/// the meter, and the optional auto-cancel trigger.
///
/// **Propagation rules** (documented in `docs/ARCHITECTURE.md`):
/// pass `&ExecCx` down; clone only to move across a thread boundary;
/// derive with [`ExecCx::child`] exactly when the callee must be
/// cancellable independently of its siblings (the scheduler does this
/// per batch item). The step budget is *per proof*, not shared — a
/// context's deadline and token are the shared resources.
#[derive(Clone, Debug)]
pub struct ExecCx {
    steps: Option<u64>,
    deadline: Option<Instant>,
    cancel: CancelToken,
    meter: Arc<Meter>,
    /// Auto-trip the token once the shared meter crosses this many
    /// steps — the deterministic cancellation trigger used by tests and
    /// the bench battery (wall-clock cancellation is inherently racy;
    /// step counts are not).
    cancel_at_steps: Option<u64>,
}

impl Default for ExecCx {
    fn default() -> Self {
        Self::unlimited()
    }
}

impl ExecCx {
    /// A context with no step budget, no deadline, and a fresh token —
    /// the back-compat default every legacy `u64` wrapper ultimately
    /// narrows to when given `u64::MAX`.
    #[must_use]
    pub fn unlimited() -> Self {
        Self {
            steps: None,
            deadline: None,
            cancel: CancelToken::new(),
            meter: Arc::new(Meter::default()),
            cancel_at_steps: None,
        }
    }

    /// A context whose every proof gets `steps` rule applications —
    /// exactly the semantics of the legacy `budget: u64` parameter.
    /// `u64::MAX` means unmetered (no per-step countdown at all).
    #[must_use]
    pub fn with_steps(steps: u64) -> Self {
        Self { steps: (steps != u64::MAX).then_some(steps), ..Self::unlimited() }
    }

    /// Attach an absolute wall-clock deadline.
    #[must_use]
    pub fn with_deadline(mut self, deadline: Instant) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Attach a deadline `timeout` from now.
    #[must_use]
    pub fn with_timeout(self, timeout: Duration) -> Self {
        self.with_deadline(Instant::now() + timeout)
    }

    /// Replace the cancellation token (e.g. with one the caller holds on
    /// another thread).
    #[must_use]
    pub fn with_cancel(mut self, cancel: CancelToken) -> Self {
        self.cancel = cancel;
        self
    }

    /// Share metering with a caller-held [`Meter`] — the service layer
    /// uses this so every admitted request, whatever its budget or
    /// deadline, aggregates into one service-lifetime meter that the
    /// admission policy reads for load.
    #[must_use]
    pub fn with_meter(mut self, meter: Arc<Meter>) -> Self {
        self.meter = meter;
        self
    }

    /// Replace the per-proof step budget on an existing context, keeping
    /// its deadline, token, meter and auto-cancel trigger — the
    /// admission layer's *downgrade* primitive: an overloaded service
    /// re-issues a request's context with a tighter budget, so the run
    /// ends in an honest `BudgetExhausted` instead of holding a slot.
    /// `u64::MAX` clears the budget (unmetered).
    #[must_use]
    pub fn with_step_budget(mut self, steps: u64) -> Self {
        self.steps = (steps != u64::MAX).then_some(steps);
        self
    }

    /// Auto-cancel once the shared meter crosses `n` total steps — the
    /// deterministic stand-in for "a user pressed stop mid-batch" that
    /// tests and the bench battery use. The trip happens inside
    /// [`ExecCx::check`], so it is observed at the same points a real
    /// cancellation would be.
    #[must_use]
    pub fn cancel_after_steps(mut self, n: u64) -> Self {
        self.cancel_at_steps = Some(n);
        self
    }

    /// The per-proof step budget, if any.
    #[must_use]
    pub fn steps(&self) -> Option<u64> {
        self.steps
    }

    /// The wall-clock deadline, if any.
    #[must_use]
    pub fn deadline(&self) -> Option<Instant> {
        self.deadline
    }

    /// The context's cancellation token.
    #[must_use]
    pub fn token(&self) -> &CancelToken {
        &self.cancel
    }

    /// The shared metering counters.
    #[must_use]
    pub fn meter(&self) -> &Meter {
        &self.meter
    }

    /// Trip the context's token.
    pub fn cancel(&self) {
        self.cancel.cancel();
    }

    /// Has the token (or an ancestor) been tripped? Cheap — suitable for
    /// every worklist pop.
    #[must_use]
    pub fn is_cancelled(&self) -> bool {
        self.cancel.is_cancelled()
    }

    /// Derive a child context: same deadline, step policy, and meter,
    /// but a [`CancelToken::child`] token — cancelling the child leaves
    /// siblings running; cancelling `self` still stops everyone.
    #[must_use]
    pub fn child(&self) -> Self {
        Self { cancel: self.cancel.child(), ..self.clone() }
    }

    /// Flush `steps` into the meter and run the *expensive* checks:
    /// the auto-cancel step trigger and the wall-clock deadline. The
    /// engine calls this every [`CHECK_INTERVAL`] pops; the cancellation
    /// flag itself is checked far more often via [`ExecCx::is_cancelled`].
    pub fn check_after(&self, steps: u64) -> Result<(), Interrupt> {
        if steps > 0 {
            self.meter.add_steps(steps);
        }
        if let Some(limit) = self.cancel_at_steps {
            if self.meter.steps() >= limit {
                self.cancel.cancel();
            }
        }
        self.check()
    }

    /// The full interrupt check: cancellation first (deterministic,
    /// cheap), then the deadline (a monotonic clock read).
    pub fn check(&self) -> Result<(), Interrupt> {
        if self.is_cancelled() {
            return Err(Interrupt::Cancelled);
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                return Err(Interrupt::DeadlineExceeded);
            }
        }
        Ok(())
    }

    /// Record the start of one proof under this context.
    pub(crate) fn note_proof(&self) {
        self.meter.add_proof();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_context_never_interrupts() {
        let cx = ExecCx::unlimited();
        assert_eq!(cx.steps(), None);
        assert!(cx.check().is_ok());
        assert!(cx.check_after(1_000_000).is_ok());
    }

    #[test]
    fn steps_max_means_unmetered() {
        assert_eq!(ExecCx::with_steps(u64::MAX).steps(), None);
        assert_eq!(ExecCx::with_steps(42).steps(), Some(42));
    }

    #[test]
    fn cancellation_is_shared_across_clones() {
        let cx = ExecCx::unlimited();
        let clone = cx.clone();
        assert!(clone.check().is_ok());
        cx.cancel();
        assert_eq!(clone.check(), Err(Interrupt::Cancelled));
    }

    #[test]
    fn child_cancellation_does_not_poison_siblings_or_parent() {
        let parent = ExecCx::unlimited();
        let a = parent.child();
        let b = parent.child();
        a.cancel();
        assert_eq!(a.check(), Err(Interrupt::Cancelled));
        assert!(b.check().is_ok(), "sibling must keep running");
        assert!(parent.check().is_ok(), "parent must keep running");
        // But a parent cancellation reaches every child.
        parent.cancel();
        assert_eq!(b.check(), Err(Interrupt::Cancelled));
    }

    #[test]
    fn expired_deadline_reports_deadline_exceeded() {
        let cx = ExecCx::unlimited().with_deadline(Instant::now() - Duration::from_millis(1));
        assert_eq!(cx.check(), Err(Interrupt::DeadlineExceeded));
        // Cancellation wins over the deadline when both apply — it is
        // the deterministic signal.
        cx.cancel();
        assert_eq!(cx.check(), Err(Interrupt::Cancelled));
    }

    #[test]
    fn far_deadline_does_not_interrupt() {
        let cx = ExecCx::unlimited().with_timeout(Duration::from_secs(3600));
        assert!(cx.check().is_ok());
    }

    #[test]
    fn cancel_after_steps_trips_deterministically() {
        let cx = ExecCx::unlimited().cancel_after_steps(100);
        assert!(cx.check_after(50).is_ok());
        assert_eq!(cx.check_after(50), Err(Interrupt::Cancelled));
        // Once tripped, stays tripped.
        assert_eq!(cx.check(), Err(Interrupt::Cancelled));
    }

    #[test]
    fn with_meter_shares_a_caller_held_meter() {
        let meter = Arc::new(Meter::default());
        let a = ExecCx::unlimited().with_meter(Arc::clone(&meter));
        let b = ExecCx::with_steps(10).with_meter(Arc::clone(&meter));
        let _ = a.check_after(7);
        let _ = b.check_after(5);
        meter.add_shed();
        meter.add_downgrade();
        meter.add_downgrade();
        assert_eq!(meter.steps(), 12);
        assert_eq!(meter.sheds(), 1);
        assert_eq!(meter.downgrades(), 2);
    }

    #[test]
    fn meter_aggregates_across_clones() {
        let cx = ExecCx::unlimited();
        let clone = cx.clone();
        let _ = cx.check_after(10);
        let _ = clone.check_after(5);
        cx.meter().add_task();
        clone.meter().add_steal();
        assert_eq!(cx.meter().steps(), 15);
        assert_eq!(cx.meter().tasks(), 1);
        assert_eq!(cx.meter().steals(), 1);
    }
}
