//! A scoped-thread fan-out for embarrassingly parallel query batteries.
//!
//! The classification and per-role sweep workloads are batteries of
//! *independent* satisfiability queries against one shared, read-only
//! TBox — the cheapest parallelism a DL reasoner can buy. [`fan_out`]
//! partitions such a battery across a small pool of scoped threads
//! (`std::thread::scope`, so borrowed inputs need no `'static` bound and
//! no external thread-pool/registry dependency) and returns the results
//! in input order.
//!
//! Work is scheduled *dynamically*: workers claim the next unprocessed
//! index from a shared atomic counter, so a few expensive queries (an
//! unsatisfiable type whose refutation explores many branches) cannot
//! strand a statically assigned chunk while other workers sit idle.
//! Results are written into pre-assigned slots, which keeps the output
//! order identical to the sequential `items.iter().map(f)` order — the
//! differential suites compare the two element for element.
//!
//! ```
//! use orm_dl::par::fan_out;
//!
//! let inputs: Vec<u64> = (0..100).collect();
//! let squares = fan_out(&inputs, 4, |_, &x| x * x);
//! assert_eq!(squares[10], 100);
//! assert_eq!(squares.len(), inputs.len());
//! ```

use parking_lot::Mutex;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Upper bound on worker threads [`default_threads`] reports — a battery
/// rarely has enough independent weight to feed more, and the shard
/// count of the verdict cache ([`crate::cache::DEFAULT_SHARDS`]) is
/// sized to keep this many workers off each other's locks.
const MAX_DEFAULT_THREADS: usize = 8;

/// The hardware parallelism available to a fan-out, clamped to
/// [1, 8]. Callers that pass this to [`fan_out`] get a pool matched to
/// the machine; passing any other value is equally valid.
pub fn default_threads() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get()).min(MAX_DEFAULT_THREADS)
}

/// Apply `f` to every item of `items` across up to `threads` scoped
/// worker threads, returning the results in input order. `f` receives
/// the item's index alongside the item.
///
/// `threads <= 1` (or a battery of at most one item) runs inline on the
/// calling thread — zero spawn overhead, bitwise-identical behaviour.
/// Worker panics propagate to the caller when the scope joins.
pub fn fan_out<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let workers = threads.min(items.len());
    if workers <= 1 {
        return items.iter().enumerate().map(|(i, item)| f(i, item)).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(item) = items.get(i) else { break };
                let result = f(i, item);
                *slots[i].lock() = Some(result);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| slot.into_inner().expect("every index was claimed and completed"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let items: Vec<usize> = (0..257).collect();
        for threads in [0, 1, 2, 3, 8, 300] {
            let out = fan_out(&items, threads, |i, &x| {
                assert_eq!(i, x);
                x * 3
            });
            assert_eq!(out.len(), items.len());
            for (i, v) in out.into_iter().enumerate() {
                assert_eq!(v, i * 3, "slot {i} out of order at {threads} threads");
            }
        }
    }

    #[test]
    fn empty_and_singleton_batteries() {
        let empty: [u8; 0] = [];
        assert!(fan_out(&empty, 8, |_, &x| x).is_empty());
        assert_eq!(fan_out(&[7u8], 8, |_, &x| x + 1), vec![8]);
    }

    #[test]
    fn workers_share_borrowed_state() {
        // The scoped pool must observe borrowed (non-'static) inputs and
        // interior-mutable shared state, exactly how the query batteries
        // use it (shared &TBox + &SatShards).
        let counter = AtomicUsize::new(0);
        let items: Vec<u32> = (0..64).collect();
        let out = fan_out(&items, 4, |_, &x| {
            counter.fetch_add(1, Ordering::Relaxed);
            x
        });
        assert_eq!(counter.load(Ordering::Relaxed), 64);
        assert_eq!(out, items);
    }

    #[test]
    fn default_threads_is_positive_and_clamped() {
        let n = default_threads();
        assert!((1..=8).contains(&n));
    }
}
