//! A work-stealing scoped-thread scheduler for embarrassingly parallel
//! query batteries.
//!
//! The classification and per-role sweep workloads are batteries of
//! *independent* satisfiability queries against one shared, read-only
//! TBox — the cheapest parallelism a DL reasoner can buy. [`fan_out_cx`]
//! partitions such a battery across a small pool of scoped threads
//! (`std::thread::scope`, so borrowed inputs need no `'static` bound and
//! no external thread-pool/registry dependency) and returns the results
//! in input order, together with [`SchedStats`] describing how the work
//! actually moved.
//!
//! # Scheduling
//!
//! Indices are striped round-robin into **per-worker deques** (worker
//! `w` of `n` seeds `w, w+n, w+2n, …`). Each worker drains its own deque
//! from the front; a worker whose deque runs dry **steals from the back**
//! of a sibling's deque instead of idling, so a few expensive queries (an
//! unsatisfiable type whose refutation explores many branches) cannot
//! strand a stripe while other workers sit idle. An index is claimed
//! exactly once — there is no re-queueing — so when every deque is empty
//! the battery is fully claimed and workers exit. Results are written
//! into pre-assigned slots, which keeps the output order identical to the
//! sequential `items.iter().map(f)` order — the differential suites
//! compare the two element for element.
//!
//! # Cancellation
//!
//! The scheduler is context-aware: between items every worker consults
//! the batch's [`ExecCx`] and stops claiming work once the context is
//! cancelled or past its deadline. Already-running items finish (the
//! tableau inside them observes the same context and unwinds at its next
//! check point); unclaimed items are *skipped* and surface as `None` in
//! [`Batch::results`]. Skipping is the only effect an interrupt has on
//! the batch — completed verdicts are kept, and because cancelling a
//! [`CancelToken`](crate::exec::CancelToken) **child** never trips its
//! parent or siblings, an item that bounds its own sub-proof with a child
//! context cannot poison the rest of the battery.
//!
//! ```
//! use orm_dl::par::fan_out;
//!
//! let inputs: Vec<u64> = (0..100).collect();
//! let squares = fan_out(&inputs, 4, |_, &x| x * x);
//! assert_eq!(squares[10], 100);
//! assert_eq!(squares.len(), inputs.len());
//! ```

use crate::exec::ExecCx;
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};

/// Upper bound on worker threads [`default_threads`] reports — a battery
/// rarely has enough independent weight to feed more, and the shard
/// count of the verdict cache ([`crate::cache::DEFAULT_SHARDS`]) is
/// sized to keep this many workers off each other's locks.
const MAX_DEFAULT_THREADS: usize = 8;

/// The hardware parallelism available to a fan-out, clamped to
/// [1, 8]. Callers that pass this to [`fan_out`] get a pool matched to
/// the machine; passing any other value is equally valid.
pub fn default_threads() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get()).min(MAX_DEFAULT_THREADS)
}

/// How a [`fan_out_cx`] battery was actually scheduled.
///
/// `executed + skipped + panicked == items.len()` always holds: every
/// index is either claimed and run to completion by some worker, left
/// behind after an interrupt, or claimed but lost to a panic in the
/// caller's closure. `stolen ≤ executed` counts the executed items that
/// ran on a worker other than the one whose deque they were seeded into.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SchedStats {
    /// Worker threads the battery actually used (1 = ran inline).
    pub workers: usize,
    /// Items claimed and executed to completion.
    pub executed: u64,
    /// Executed items that were stolen from another worker's deque.
    pub stolen: u64,
    /// Items never claimed because the context was interrupted.
    pub skipped: u64,
    /// Items whose closure panicked — caught per item, so one poisoned
    /// item never kills its siblings (see [`Batch::panics`]).
    pub panicked: u64,
}

impl SchedStats {
    /// Stable serialized form: one JSON object with fixed key order
    /// `workers, executed, stolen, skipped, panicked`. Consumed by the
    /// bench harness and CI asserts — extend it, never reorder it.
    ///
    /// ```
    /// use orm_dl::par::SchedStats;
    ///
    /// let stats =
    ///     SchedStats { workers: 4, executed: 10, stolen: 3, skipped: 0, panicked: 0 };
    /// assert_eq!(
    ///     stats.to_json(),
    ///     r#"{"workers":4,"executed":10,"stolen":3,"skipped":0,"panicked":0}"#
    /// );
    /// ```
    pub fn to_json(&self) -> String {
        format!(
            r#"{{"workers":{},"executed":{},"stolen":{},"skipped":{},"panicked":{}}}"#,
            self.workers, self.executed, self.stolen, self.skipped, self.panicked
        )
    }
}

impl std::fmt::Display for SchedStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "workers {} / executed {} / stolen {} / skipped {} / panicked {}",
            self.workers, self.executed, self.stolen, self.skipped, self.panicked
        )
    }
}

/// The outcome of a [`fan_out_cx`] battery: per-item results in input
/// order (`None` for items skipped after an interrupt or lost to a
/// panic) plus the scheduling counters.
#[derive(Debug)]
pub struct Batch<R> {
    /// `results[i]` is `Some` iff item `i` was executed to completion.
    pub results: Vec<Option<R>>,
    /// How the battery was scheduled.
    pub stats: SchedStats,
    /// Why items were skipped, if any were — `None` for a complete run.
    pub interrupt: Option<crate::exec::Interrupt>,
    /// `(index, message)` for every item whose closure panicked, in
    /// ascending index order. The panic is caught per item
    /// (`catch_unwind`), so sibling items keep their verdicts; callers
    /// that must not swallow failures inspect this and re-raise.
    pub panics: Vec<(usize, String)>,
}

impl<R> Batch<R> {
    /// Whether every item ran to completion.
    pub fn is_complete(&self) -> bool {
        self.stats.skipped == 0 && self.stats.panicked == 0
    }
}

/// Render a caught panic payload for [`Batch::panics`]. The standard
/// `panic!` macros carry `&str` or `String`; anything else gets a fixed
/// placeholder rather than a `Debug` dump of an opaque box.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Apply `f` to every item of `items` across up to `threads` scoped
/// worker threads under the execution context `cx`, returning a
/// [`Batch`] of results in input order. `f` receives the item's index
/// alongside the item.
///
/// `threads <= 1` (or a battery of at most one item) runs inline on the
/// calling thread — zero spawn overhead, same per-item interrupt checks.
/// A panic inside `f` is caught **per item** (`catch_unwind`): the
/// panicking item's slot stays `None`, the payload is recorded in
/// [`Batch::panics`], and every other item — including the rest of the
/// panicking worker's stripe — still runs. The battery itself never
/// unwinds.
///
/// Executed and stolen items are also metered into `cx`'s
/// [`Meter`](crate::exec::Meter) (as tasks and steals), so nested
/// batteries aggregate into one counter set.
///
/// ```
/// use orm_dl::exec::ExecCx;
/// use orm_dl::par::fan_out_cx;
///
/// let inputs: Vec<u64> = (0..64).collect();
/// let cx = ExecCx::unlimited();
/// let batch = fan_out_cx(&inputs, 4, &cx, |_, &x| x + 1);
/// assert!(batch.is_complete());
/// assert_eq!(batch.results[5], Some(6));
/// assert_eq!(batch.stats.executed, 64);
///
/// // A pre-cancelled context executes nothing — and says so.
/// cx.cancel();
/// let batch = fan_out_cx(&inputs, 4, &cx, |_, &x| x + 1);
/// assert_eq!(batch.stats.executed, 0);
/// assert_eq!(batch.stats.skipped, 64);
/// assert!(batch.results.iter().all(Option::is_none));
/// ```
pub fn fan_out_cx<T, R, F>(items: &[T], threads: usize, cx: &ExecCx, f: F) -> Batch<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let workers = threads.min(items.len()).max(1);
    if workers <= 1 {
        let mut results: Vec<Option<R>> = Vec::with_capacity(items.len());
        let mut panics: Vec<(usize, String)> = Vec::new();
        let mut executed = 0u64;
        for (i, item) in items.iter().enumerate() {
            if cx.check().is_err() {
                break;
            }
            match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(i, item))) {
                Ok(result) => {
                    results.push(Some(result));
                    executed += 1;
                    cx.meter().add_task();
                }
                Err(payload) => {
                    results.push(None);
                    panics.push((i, panic_message(payload.as_ref())));
                }
            }
        }
        results.resize_with(items.len(), || None);
        let panicked = panics.len() as u64;
        let skipped = items.len() as u64 - executed - panicked;
        return Batch {
            results,
            stats: SchedStats { workers: 1, executed, stolen: 0, skipped, panicked },
            interrupt: if skipped > 0 { cx.check().err() } else { None },
            panics,
        };
    }

    // Seed the per-worker deques round-robin: worker w owns indices
    // w, w+workers, w+2·workers, … Owners pop from the front, thieves
    // from the back, so a steal grabs the victim's *coldest* work.
    let queues: Vec<Mutex<VecDeque<usize>>> =
        (0..workers).map(|w| Mutex::new((w..items.len()).step_by(workers).collect())).collect();
    let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
    let executed = AtomicU64::new(0);
    let stolen = AtomicU64::new(0);
    let panics: Mutex<Vec<(usize, String)>> = Mutex::new(Vec::new());
    std::thread::scope(|scope| {
        for w in 0..workers {
            let queues = &queues;
            let slots = &slots;
            let executed = &executed;
            let stolen = &stolen;
            let panics = &panics;
            let f = &f;
            scope.spawn(move || loop {
                if cx.check().is_err() {
                    break;
                }
                // Own deque first; steal on empty. Claiming under the
                // victim's lock makes each index run exactly once. The
                // own-deque guard must drop before the steal scan: a
                // worker that held its own lock while locking a
                // neighbour's would form a cycle with neighbours doing
                // the same once every deque drains at once.
                let own = queues[w].lock().pop_front();
                let claimed = own.map(|i| (i, false)).or_else(|| {
                    (1..workers).find_map(|d| {
                        queues[(w + d) % workers].lock().pop_back().map(|i| (i, true))
                    })
                });
                let Some((i, was_steal)) = claimed else { break };
                if was_steal {
                    stolen.fetch_add(1, Ordering::Relaxed);
                    cx.meter().add_steal();
                }
                // Catch the panic *outside* any slot lock, so a poisoned
                // item can neither kill the worker (stranding its stripe)
                // nor wedge a lock a sibling needs.
                match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(i, &items[i]))) {
                    Ok(result) => {
                        *slots[i].lock() = Some(result);
                        executed.fetch_add(1, Ordering::Relaxed);
                        cx.meter().add_task();
                    }
                    Err(payload) => {
                        panics.lock().push((i, panic_message(payload.as_ref())));
                    }
                }
            });
        }
    });
    let results: Vec<Option<R>> = slots.into_iter().map(Mutex::into_inner).collect();
    let executed = executed.into_inner();
    let mut panics = panics.into_inner();
    panics.sort_unstable_by_key(|&(i, _)| i);
    let panicked = panics.len() as u64;
    let skipped = items.len() as u64 - executed - panicked;
    Batch {
        results,
        stats: SchedStats { workers, executed, stolen: stolen.into_inner(), skipped, panicked },
        interrupt: if skipped > 0 { cx.check().err() } else { None },
        panics,
    }
}

/// Apply `f` to every item of `items` across up to `threads` scoped
/// worker threads, returning the results in input order. `f` receives
/// the item's index alongside the item.
///
/// Back-compat wrapper over [`fan_out_cx`] under an unlimited context —
/// nothing can interrupt it, so every slot is guaranteed filled. A panic
/// inside `f` is re-raised here after the rest of the battery finishes:
/// this wrapper returns bare `R`s, so it has no honest way to report a
/// lost slot (context-aware callers use [`fan_out_cx`] and read
/// [`Batch::panics`] instead).
pub fn fan_out<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let batch = fan_out_cx(items, threads, &ExecCx::unlimited(), f);
    if let Some((i, message)) = batch.panics.into_iter().next() {
        panic!("fan_out item {i} panicked: {message}");
    }
    batch
        .results
        .into_iter()
        .map(|slot| slot.expect("an unlimited context never skips items"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::Interrupt;
    use std::sync::atomic::AtomicUsize;
    use std::time::Duration;

    #[test]
    fn preserves_input_order() {
        let items: Vec<usize> = (0..257).collect();
        for threads in [0, 1, 2, 3, 8, 300] {
            let out = fan_out(&items, threads, |i, &x| {
                assert_eq!(i, x);
                x * 3
            });
            assert_eq!(out.len(), items.len());
            for (i, v) in out.into_iter().enumerate() {
                assert_eq!(v, i * 3, "slot {i} out of order at {threads} threads");
            }
        }
    }

    #[test]
    fn drained_deques_never_deadlock() {
        // Regression: with fewer items than workers most deques start
        // empty, so nearly every worker goes straight to the steal
        // scan while the loaded stripes are being popped — the exact
        // state that deadlocked when a worker held its own deque's
        // lock across the scan (cyclic lock order). Many quick rounds
        // make the overlap all but certain; the buggy scheduler hangs
        // here rather than failing an assert.
        for round in 0..200 {
            let items: Vec<u64> = (0..4).collect();
            let out = fan_out(&items, 8, |_, &x| x + 1);
            assert_eq!(out, vec![1, 2, 3, 4], "round {round}");
        }
    }

    #[test]
    fn empty_and_singleton_batteries() {
        let empty: [u8; 0] = [];
        assert!(fan_out(&empty, 8, |_, &x| x).is_empty());
        assert_eq!(fan_out(&[7u8], 8, |_, &x| x + 1), vec![8]);
    }

    #[test]
    fn workers_share_borrowed_state() {
        // The scoped pool must observe borrowed (non-'static) inputs and
        // interior-mutable shared state, exactly how the query batteries
        // use it (shared &TBox + &SatShards).
        let counter = AtomicUsize::new(0);
        let items: Vec<u32> = (0..64).collect();
        let out = fan_out(&items, 4, |_, &x| {
            counter.fetch_add(1, Ordering::Relaxed);
            x
        });
        assert_eq!(counter.load(Ordering::Relaxed), 64);
        assert_eq!(out, items);
    }

    #[test]
    fn default_threads_is_positive_and_clamped() {
        let n = default_threads();
        assert!((1..=8).contains(&n));
    }

    #[test]
    fn accounting_is_exact() {
        let items: Vec<usize> = (0..100).collect();
        let cx = ExecCx::unlimited();
        let batch = fan_out_cx(&items, 4, &cx, |_, &x| x);
        assert!(batch.is_complete());
        assert!(batch.interrupt.is_none());
        assert_eq!(batch.stats.executed, 100);
        assert_eq!(batch.stats.skipped, 0);
        assert!(batch.stats.stolen <= batch.stats.executed);
        assert_eq!(cx.meter().tasks(), 100);
        assert_eq!(cx.meter().steals(), batch.stats.stolen);
        for (i, slot) in batch.results.iter().enumerate() {
            assert_eq!(*slot, Some(i));
        }
    }

    #[test]
    fn idle_workers_steal_from_loaded_stripes() {
        // Two workers; worker 0's stripe (even indices) is made slow, so
        // worker 1 drains its own stripe and must steal the rest of
        // worker 0's.
        let items: Vec<usize> = (0..16).collect();
        let cx = ExecCx::unlimited();
        let batch = fan_out_cx(&items, 2, &cx, |_, &x| {
            if x % 2 == 0 {
                std::thread::sleep(Duration::from_millis(10));
            }
            x
        });
        assert!(batch.is_complete());
        assert!(batch.stats.stolen >= 1, "expected steals, got {:?}", batch.stats);
    }

    #[test]
    fn cancel_mid_battery_skips_remaining_inline() {
        // Inline path (threads = 1) is deterministic: cancelling while
        // item 2 runs completes it and skips everything after.
        let items: Vec<usize> = (0..10).collect();
        let cx = ExecCx::unlimited();
        let token = cx.token();
        let batch = fan_out_cx(&items, 1, &cx, |i, &x| {
            if i == 2 {
                token.cancel();
            }
            x
        });
        assert_eq!(batch.stats.executed, 3);
        assert_eq!(batch.stats.skipped, 7);
        assert_eq!(batch.interrupt, Some(Interrupt::Cancelled));
        assert_eq!(batch.results[..3], [Some(0), Some(1), Some(2)]);
        assert!(batch.results[3..].iter().all(Option::is_none));
    }

    #[test]
    fn cancelled_child_does_not_poison_siblings() {
        // One item cancels a *child* of the batch context — the batch
        // itself must still run to completion.
        let items: Vec<usize> = (0..32).collect();
        let cx = ExecCx::unlimited();
        let batch = fan_out_cx(&items, 4, &cx, |i, &x| {
            if i == 5 {
                let child = cx.child();
                child.cancel();
                assert!(child.is_cancelled());
            }
            x
        });
        assert!(batch.is_complete());
        assert_eq!(batch.stats.executed, 32);
        assert!(!cx.is_cancelled());
    }

    #[test]
    fn panicking_item_does_not_kill_siblings() {
        // Regression: one poisoned item among healthy siblings. Before
        // per-item catch_unwind the panic unwound through the scoped
        // worker and aborted the whole batch at scope join.
        let items: Vec<usize> = (0..64).collect();
        for threads in [1, 4] {
            let cx = ExecCx::unlimited();
            let batch = fan_out_cx(&items, threads, &cx, |_, &x| {
                assert!(x != 13, "poisoned item {x}");
                x * 2
            });
            assert!(!batch.is_complete());
            assert!(batch.interrupt.is_none(), "a panic is not an interrupt");
            assert_eq!(batch.stats.panicked, 1);
            assert_eq!(batch.stats.executed, 63);
            assert_eq!(batch.stats.skipped, 0);
            assert_eq!(batch.panics.len(), 1);
            assert_eq!(batch.panics[0].0, 13);
            assert!(batch.panics[0].1.contains("poisoned item 13"), "{:?}", batch.panics);
            assert_eq!(batch.results[13], None);
            for (i, slot) in batch.results.iter().enumerate() {
                if i != 13 {
                    assert_eq!(*slot, Some(i * 2), "sibling {i} lost at {threads} threads");
                }
            }
            // Panicked items are not metered as executed tasks.
            assert_eq!(cx.meter().tasks(), 63);
        }
    }

    #[test]
    fn many_panics_are_all_isolated_and_ordered() {
        let items: Vec<usize> = (0..40).collect();
        let cx = ExecCx::unlimited();
        let batch = fan_out_cx(&items, 4, &cx, |_, &x| {
            assert!(x % 10 != 7, "bad {x}");
            x
        });
        assert_eq!(batch.stats.panicked, 4);
        assert_eq!(batch.stats.executed, 36);
        let indices: Vec<usize> = batch.panics.iter().map(|&(i, _)| i).collect();
        assert_eq!(indices, vec![7, 17, 27, 37]);
    }

    #[test]
    fn fan_out_repropagates_a_caught_panic() {
        let items: Vec<usize> = (0..8).collect();
        let err = std::panic::catch_unwind(|| {
            fan_out(&items, 2, |_, &x| {
                assert!(x != 3, "exploding item");
                x
            })
        });
        let message = panic_message(err.expect_err("panic must propagate").as_ref());
        assert!(message.contains("exploding item"), "{message}");
    }

    #[test]
    fn expired_deadline_skips_everything() {
        let items: Vec<usize> = (0..8).collect();
        let cx = ExecCx::unlimited().with_timeout(Duration::ZERO);
        std::thread::sleep(Duration::from_millis(1));
        for threads in [1, 4] {
            let batch = fan_out_cx(&items, threads, &cx, |_, &x| x);
            assert_eq!(batch.stats.executed, 0);
            assert_eq!(batch.stats.skipped, 8);
            assert_eq!(batch.interrupt, Some(Interrupt::DeadlineExceeded));
        }
    }
}
