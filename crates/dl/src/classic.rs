//! The original clone-per-branch tableau, retained as a reference engine.
//!
//! This is the seed implementation that [`crate::tableau`] replaced: node
//! labels are `BTreeSet<Concept>` (deep `Ord` comparisons), every
//! non-deterministic choice (`⊔`, the `≤`-merge pair) deep-clones the
//! whole completion forest, rules are found by rescanning every node per
//! iteration, and sub-role queries re-derive the hierarchy closure per
//! call. It is kept — not exported from the crate root — for two jobs:
//!
//! * the **differential suite** (`tests/dl_agreement.rs`) checks the
//!   optimized engine's verdicts against it on generated schemas;
//! * the **`tableau_hotpath` bench** and `experiments tableau` measure the
//!   speedup of the trail-based engine against it, recorded in
//!   `BENCH_tableau.json`.
//!
//! Verdict semantics ([`DlOutcome`], budget as rule applications) are
//! identical to the optimized engine; only cost differs.

use crate::concept::{Concept, RoleExpr};
use crate::tableau::DlOutcome;
use crate::tbox::TBox;
use std::collections::BTreeSet;

/// Whether `sub ⊑ sup` follows from the TBox: the standard reduction to
/// unsatisfiability of `sub ⊓ ¬sup`.
///
/// Returns `Some(true/false)` on a definitive answer and `None` when the
/// budget ran out.
pub fn subsumes(tbox: &TBox, sup: &Concept, sub: &Concept, budget: u64) -> Option<bool> {
    let query = Concept::and([sub.clone(), Concept::not(sup.clone())]);
    match satisfiable(tbox, &query, budget) {
        DlOutcome::Unsat => Some(true),
        DlOutcome::Sat => Some(false),
        DlOutcome::ResourceLimit => None,
    }
}

/// Check satisfiability of `query` with respect to `tbox`, spending at most
/// `budget` rule applications.
pub fn satisfiable(tbox: &TBox, query: &Concept, budget: u64) -> DlOutcome {
    let internal = tbox.internalized();
    let mut root_label = BTreeSet::new();
    add_concept(&mut root_label, query.clone());
    add_concept(&mut root_label, (*internal).clone());
    let graph = Forest {
        nodes: vec![Node {
            alive: true,
            label: root_label,
            parent: None,
            edge: BTreeSet::new(),
            children: Vec::new(),
            distinct: BTreeSet::new(),
        }],
    };
    let mut budget = budget;
    expand(tbox, &internal, graph, &mut budget)
}

#[derive(Clone, Debug)]
struct Node {
    alive: bool,
    label: BTreeSet<Concept>,
    parent: Option<usize>,
    /// Role labels of the edge from `parent` to this node.
    edge: BTreeSet<RoleExpr>,
    children: Vec<usize>,
    /// Nodes asserted pairwise-distinct from this one.
    distinct: BTreeSet<usize>,
}

#[derive(Clone, Debug)]
struct Forest {
    nodes: Vec<Node>,
}

/// Flatten conjunctions eagerly when inserting (the ⊓-rule, fused).
fn add_concept(label: &mut BTreeSet<Concept>, c: Concept) {
    match c {
        Concept::Top => {}
        Concept::And(cs) => {
            for c in cs {
                add_concept(label, c);
            }
        }
        other => {
            label.insert(other);
        }
    }
}

impl Forest {
    fn alive(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.nodes.len()).filter(|i| self.nodes[*i].alive)
    }

    /// R-neighbours of `x`: children via a sub-role edge, plus the parent
    /// when the inverted edge label is a sub-role of `R`.
    fn neighbors(&self, tbox: &TBox, x: usize, role: RoleExpr) -> Vec<usize> {
        let mut out = Vec::new();
        for &child in &self.nodes[x].children {
            if !self.nodes[child].alive {
                continue;
            }
            if self.nodes[child].edge.iter().any(|s| tbox.is_subrole(*s, role)) {
                out.push(child);
            }
        }
        if let Some(parent) = self.nodes[x].parent {
            if self.nodes[parent].alive
                && self.nodes[x].edge.iter().any(|s| tbox.is_subrole(s.inverse(), role))
            {
                out.push(parent);
            }
        }
        out
    }

    fn has_clash(&self, tbox: &TBox) -> bool {
        for i in self.alive() {
            let node = &self.nodes[i];
            if node.label.contains(&Concept::Bottom) {
                return true;
            }
            for c in &node.label {
                if let Concept::Atomic(a) = c {
                    if node.label.contains(&Concept::NotAtomic(*a)) {
                        return true;
                    }
                }
            }
            if !node.edge.is_empty() && tbox.edge_violates_disjointness(&node.edge) {
                return true;
            }
            // ≤n R with > n pairwise-distinct R-neighbours.
            for c in &node.label {
                if let Concept::AtMost(n, r) = c {
                    let neighbors = self.neighbors(tbox, i, *r);
                    if neighbors.len() > *n as usize && all_pairwise_distinct(self, &neighbors) {
                        return true;
                    }
                }
            }
        }
        false
    }

    /// Ancestor chain of `x`, excluding `x`.
    fn ancestors(&self, x: usize) -> Vec<usize> {
        let mut out = Vec::new();
        let mut cur = self.nodes[x].parent;
        while let Some(p) = cur {
            out.push(p);
            cur = self.nodes[p].parent;
        }
        out
    }

    /// Pairwise blocking: `x` is blocked when some ancestor pair mirrors
    /// `x` and its parent exactly.
    fn blocked(&self, x: usize) -> bool {
        let Some(xp) = self.nodes[x].parent else { return false };
        for y in self.ancestors(x) {
            let Some(yp) = self.nodes[y].parent else { continue };
            if self.nodes[x].label == self.nodes[y].label
                && self.nodes[xp].label == self.nodes[yp].label
                && self.nodes[x].edge == self.nodes[y].edge
            {
                return true;
            }
            // A node below a blocked ancestor is indirectly blocked.
            if self.blocked_directly(y) {
                return true;
            }
        }
        false
    }

    fn blocked_directly(&self, x: usize) -> bool {
        let Some(xp) = self.nodes[x].parent else { return false };
        for y in self.ancestors(x) {
            let Some(yp) = self.nodes[y].parent else { continue };
            if self.nodes[x].label == self.nodes[y].label
                && self.nodes[xp].label == self.nodes[yp].label
                && self.nodes[x].edge == self.nodes[y].edge
            {
                return true;
            }
        }
        false
    }

    fn add_child(
        &mut self,
        parent: usize,
        edge: BTreeSet<RoleExpr>,
        label: BTreeSet<Concept>,
    ) -> usize {
        let id = self.nodes.len();
        self.nodes.push(Node {
            alive: true,
            label,
            parent: Some(parent),
            edge,
            children: Vec::new(),
            distinct: BTreeSet::new(),
        });
        self.nodes[parent].children.push(id);
        id
    }

    /// Merge node `from` into node `to`; both must be R-neighbours of the
    /// same node `via`, with `from` a child of `via`.
    fn merge(&mut self, via: usize, from: usize, to: usize) {
        debug_assert_eq!(self.nodes[from].parent, Some(via));
        let from_node = std::mem::replace(
            &mut self.nodes[from],
            Node {
                alive: false,
                label: BTreeSet::new(),
                parent: None,
                edge: BTreeSet::new(),
                children: Vec::new(),
                distinct: BTreeSet::new(),
            },
        );
        // Labels and distinctness accumulate on the survivor.
        let label = from_node.label;
        for c in label {
            self.nodes[to].label.insert(c);
        }
        let distinct = from_node.distinct;
        self.nodes[to].distinct.extend(distinct.iter().copied());
        for d in distinct {
            if self.nodes[d].alive {
                self.nodes[d].distinct.insert(to);
            }
        }
        // Edges: `from` was a child of `via`.
        if self.nodes[to].parent == Some(via) {
            // Sibling merge: fold edge labels.
            let edge = from_node.edge;
            for e in edge {
                self.nodes[to].edge.insert(e);
            }
        } else if Some(to) == self.nodes[via].parent {
            // Child-into-parent merge: `via —S→ from` becomes
            // `to —S⁻→ via` folded into via's existing up-edge.
            let inverted: Vec<RoleExpr> = from_node.edge.iter().map(|s| s.inverse()).collect();
            for e in inverted {
                self.nodes[via].edge.insert(e);
            }
        }
        // Reparent from's children under the survivor.
        let children = from_node.children;
        for child in &children {
            self.nodes[*child].parent = Some(to);
        }
        self.nodes[to].children.extend(children);
        self.nodes[via].children.retain(|c| *c != from);
    }
}

fn all_pairwise_distinct(forest: &Forest, nodes: &[usize]) -> bool {
    for (i, &a) in nodes.iter().enumerate() {
        for &b in nodes.iter().skip(i + 1) {
            if !forest.nodes[a].distinct.contains(&b) {
                return false;
            }
        }
    }
    true
}

fn expand(tbox: &TBox, internal: &Concept, mut forest: Forest, budget: &mut u64) -> DlOutcome {
    loop {
        if *budget == 0 {
            return DlOutcome::ResourceLimit;
        }
        *budget -= 1;

        if forest.has_clash(tbox) {
            return DlOutcome::Unsat;
        }

        // Deterministic ∀-rule to fixpoint.
        let mut changed = false;
        let alive: Vec<usize> = forest.alive().collect();
        for x in alive {
            let foralls: Vec<(RoleExpr, Concept)> = forest.nodes[x]
                .label
                .iter()
                .filter_map(|c| match c {
                    Concept::ForAll(r, body) => Some((*r, (**body).clone())),
                    _ => None,
                })
                .collect();
            for (r, body) in foralls {
                for y in forest.neighbors(tbox, x, r) {
                    if !label_subsumes(&forest.nodes[y].label, &body) {
                        add_concept(&mut forest.nodes[y].label, body.clone());
                        changed = true;
                    }
                }
            }
        }
        if changed {
            continue;
        }

        // ⊔-rule: first node with an unresolved disjunction.
        let alive: Vec<usize> = forest.alive().collect();
        for &x in &alive {
            let disjunction = forest.nodes[x].label.iter().find_map(|c| match c {
                Concept::Or(cs)
                    if !cs.iter().any(|d| label_subsumes(&forest.nodes[x].label, d)) =>
                {
                    Some(cs.clone())
                }
                _ => None,
            });
            if let Some(cs) = disjunction {
                let mut limited = false;
                for d in cs {
                    let mut branch = forest.clone();
                    add_concept(&mut branch.nodes[x].label, d);
                    match expand(tbox, internal, branch, budget) {
                        DlOutcome::Sat => return DlOutcome::Sat,
                        DlOutcome::Unsat => {}
                        DlOutcome::ResourceLimit => limited = true,
                    }
                }
                return if limited { DlOutcome::ResourceLimit } else { DlOutcome::Unsat };
            }
        }

        // ≤-rule: merge surplus neighbours.
        for &x in &alive {
            let at_mosts: Vec<(u32, RoleExpr)> = forest.nodes[x]
                .label
                .iter()
                .filter_map(|c| match c {
                    Concept::AtMost(n, r) => Some((*n, *r)),
                    _ => None,
                })
                .collect();
            for (n, r) in at_mosts {
                let neighbors = forest.neighbors(tbox, x, r);
                if neighbors.len() <= n as usize {
                    continue;
                }
                // Try every mergeable pair; merge the child of the pair.
                // At least one pair is mergeable here: were all pairs
                // asserted distinct, the clash check above would have
                // fired.
                let mut limited = false;
                let mut tried = false;
                for (i, &a) in neighbors.iter().enumerate() {
                    for &b in neighbors.iter().skip(i + 1) {
                        if forest.nodes[a].distinct.contains(&b) {
                            continue;
                        }
                        // At most one of a, b is x's parent; merge the
                        // child into the other node.
                        let (from, to) =
                            if forest.nodes[x].parent == Some(a) { (b, a) } else { (a, b) };
                        tried = true;
                        let mut branch = forest.clone();
                        branch.merge(x, from, to);
                        match expand(tbox, internal, branch, budget) {
                            DlOutcome::Sat => return DlOutcome::Sat,
                            DlOutcome::Unsat => {}
                            DlOutcome::ResourceLimit => limited = true,
                        }
                    }
                }
                if !tried {
                    // Defensive: all pairs distinct yet uncaught above.
                    return DlOutcome::Unsat;
                }
                return if limited { DlOutcome::ResourceLimit } else { DlOutcome::Unsat };
            }
        }

        // Generating rules on unblocked nodes.
        let mut generated = false;
        for &x in &alive {
            if !forest.nodes[x].alive || forest.blocked(x) {
                continue;
            }
            let label = forest.nodes[x].label.clone();
            for c in &label {
                match c {
                    Concept::Exists(r, body) => {
                        let satisfied = forest
                            .neighbors(tbox, x, *r)
                            .into_iter()
                            .any(|y| label_subsumes(&forest.nodes[y].label, body));
                        if !satisfied {
                            let mut child_label = BTreeSet::new();
                            add_concept(&mut child_label, (**body).clone());
                            add_concept(&mut child_label, internal.clone());
                            forest.add_child(x, BTreeSet::from([*r]), child_label);
                            generated = true;
                        }
                    }
                    Concept::AtLeast(n, r) => {
                        let neighbors = forest.neighbors(tbox, x, *r);
                        let enough = neighbors.len() >= *n as usize
                            && has_n_pairwise_distinct(&forest, &neighbors, *n as usize);
                        if !enough {
                            let mut fresh = Vec::new();
                            for _ in 0..*n {
                                let mut child_label = BTreeSet::new();
                                add_concept(&mut child_label, internal.clone());
                                let id = forest.add_child(x, BTreeSet::from([*r]), child_label);
                                fresh.push(id);
                            }
                            for (i, &a) in fresh.iter().enumerate() {
                                for &b in fresh.iter().skip(i + 1) {
                                    forest.nodes[a].distinct.insert(b);
                                    forest.nodes[b].distinct.insert(a);
                                }
                            }
                            generated = true;
                        }
                    }
                    _ => {}
                }
                if generated {
                    break;
                }
            }
            if generated {
                break;
            }
        }
        if generated {
            continue;
        }

        // No rule applies: complete and clash-free.
        return DlOutcome::Sat;
    }
}

/// Whether `label` already makes `c` true syntactically (membership, with
/// conjunctions split).
fn label_subsumes(label: &BTreeSet<Concept>, c: &Concept) -> bool {
    match c {
        Concept::Top => true,
        Concept::And(cs) => cs.iter().all(|d| label_subsumes(label, d)),
        other => label.contains(other),
    }
}

/// Whether `nodes` contains `n` mutually-distinct members.
fn has_n_pairwise_distinct(forest: &Forest, nodes: &[usize], n: usize) -> bool {
    if n <= 1 {
        return !nodes.is_empty();
    }
    // Greedy clique search over the distinctness graph; n is tiny (≤ a few)
    // in ORM-generated workloads, so exhaustive search over subsets is fine.
    subsets_of_size(nodes, n).into_iter().any(|combo| {
        combo
            .iter()
            .enumerate()
            .all(|(i, &a)| combo.iter().skip(i + 1).all(|&b| forest.nodes[a].distinct.contains(&b)))
    })
}

fn subsets_of_size(items: &[usize], k: usize) -> Vec<Vec<usize>> {
    if k > items.len() {
        return Vec::new();
    }
    if k == 0 {
        return vec![Vec::new()];
    }
    let mut out = Vec::new();
    for (i, &first) in items.iter().enumerate() {
        for mut rest in subsets_of_size(&items[i + 1..], k - 1) {
            rest.insert(0, first);
            out.push(rest);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    /// The shared scenario suite, run through the reference engine (the
    /// trail-based engine runs the identical list in `tableau::tests`).
    #[test]
    fn classic_engine_matches_expected_verdicts() {
        for case in crate::test_scenarios::all() {
            assert_eq!(
                super::satisfiable(&case.tbox, &case.query, case.budget),
                case.expected,
                "classic engine wrong on: {}",
                case.name
            );
        }
    }
}
