//! TBoxes: concept axioms, role hierarchy and role disjointness.
//!
//! Besides the axiom store, this module hosts [`RoleClosure`]: the
//! reflexive-transitive super-role relation (closed under inversion)
//! precomputed once per satisfiability check as per-role-expression
//! bitsets. The tableau's neighbour tests and edge-disjointness checks
//! index these bitsets instead of re-walking the inclusion list on every
//! call, which [`TBox::super_roles`] / [`TBox::is_subrole`] do.

use crate::arena::{role_expr_id, RoleExprId};
use crate::concept::{AtomId, Concept, RoleExpr, RoleNameId};
use std::collections::BTreeSet;

/// A terminology: named atoms/roles, general concept inclusions, role
/// inclusions and role disjointness pairs.
///
/// Every TBox carries a *cache stamp* ([`TBox::cache_stamp`]): a
/// process-unique identity assigned at construction plus a revision
/// counter bumped by every mutation. [`crate::cache::SatCache`] keys its
/// verdicts on the stamp, so stale entries can never survive an axiom
/// change — and because clones receive a fresh identity, two TBoxes that
/// diverge after a clone can never alias each other's cache lines.
#[derive(Debug)]
pub struct TBox {
    atom_names: Vec<String>,
    role_names: Vec<String>,
    gcis: Vec<(Concept, Concept)>,
    /// Role inclusions `sub ⊑ sup` (over role expressions; closed under
    /// inversion on query).
    role_inclusions: Vec<(RoleExpr, RoleExpr)>,
    /// Pairs of disjoint role expressions.
    disjoint_roles: Vec<(RoleExpr, RoleExpr)>,
    /// Process-unique identity (fresh per construction and per clone).
    uid: u64,
    /// Mutation counter: bumped whenever an axiom or name is added.
    revision: u64,
}

fn next_tbox_uid() -> u64 {
    use std::sync::atomic::{AtomicU64, Ordering};
    static NEXT: AtomicU64 = AtomicU64::new(1);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

impl Default for TBox {
    fn default() -> TBox {
        TBox {
            atom_names: Vec::new(),
            role_names: Vec::new(),
            gcis: Vec::new(),
            role_inclusions: Vec::new(),
            disjoint_roles: Vec::new(),
            uid: next_tbox_uid(),
            revision: 0,
        }
    }
}

impl Clone for TBox {
    /// Clones carry the same axioms but a *fresh* cache identity: a clone
    /// is free to diverge from the original, so verdicts proved against
    /// one must never be replayed against the other.
    fn clone(&self) -> TBox {
        TBox {
            atom_names: self.atom_names.clone(),
            role_names: self.role_names.clone(),
            gcis: self.gcis.clone(),
            role_inclusions: self.role_inclusions.clone(),
            disjoint_roles: self.disjoint_roles.clone(),
            uid: next_tbox_uid(),
            revision: self.revision,
        }
    }
}

impl TBox {
    /// Empty TBox.
    pub fn new() -> TBox {
        TBox::default()
    }

    /// The `(identity, revision)` pair caches key their entries on: the
    /// identity is process-unique per TBox value (clones get their own)
    /// and the revision increments on every mutation.
    pub fn cache_stamp(&self) -> (u64, u64) {
        (self.uid, self.revision)
    }

    /// Intern an atomic concept name.
    pub fn atom(&mut self, name: impl Into<String>) -> AtomId {
        let name = name.into();
        if let Some(i) = self.atom_names.iter().position(|n| *n == name) {
            return i as AtomId;
        }
        self.revision += 1;
        self.atom_names.push(name);
        (self.atom_names.len() - 1) as AtomId
    }

    /// Intern a role name.
    pub fn role(&mut self, name: impl Into<String>) -> RoleNameId {
        let name = name.into();
        if let Some(i) = self.role_names.iter().position(|n| *n == name) {
            return i as RoleNameId;
        }
        self.revision += 1;
        self.role_names.push(name);
        (self.role_names.len() - 1) as RoleNameId
    }

    /// Resolve an atom's name.
    pub fn atom_name(&self, id: AtomId) -> &str {
        &self.atom_names[id as usize]
    }

    /// Resolve a role's name.
    pub fn role_name(&self, id: RoleNameId) -> &str {
        &self.role_names[id as usize]
    }

    /// Add a general concept inclusion `c ⊑ d`.
    pub fn gci(&mut self, c: Concept, d: Concept) {
        self.revision += 1;
        self.gcis.push((c, d));
    }

    /// Add a role inclusion `sub ⊑ sup` (its inverse form `sub⁻ ⊑ sup⁻` is
    /// implied automatically).
    pub fn role_inclusion(&mut self, sub: RoleExpr, sup: RoleExpr) {
        self.revision += 1;
        self.role_inclusions.push((sub, sup));
    }

    /// Declare two role expressions disjoint.
    pub fn disjoint(&mut self, a: RoleExpr, b: RoleExpr) {
        self.revision += 1;
        self.disjoint_roles.push((a, b));
    }

    /// The concept inclusions.
    pub fn gcis(&self) -> &[(Concept, Concept)] {
        &self.gcis
    }

    /// Number of interned atoms.
    pub fn atom_count(&self) -> usize {
        self.atom_names.len()
    }

    /// Number of interned role names.
    pub fn role_count(&self) -> usize {
        self.role_names.len()
    }

    /// Precompute the sub-role closure and disjointness tables used by the
    /// tableau engine (one pass per satisfiability check, replacing the
    /// per-call [`TBox::is_subrole`] walks on the hot path).
    pub fn role_closure(&self) -> RoleClosure {
        RoleClosure::build(self)
    }

    /// The internalized TBox concept `⊓ (¬Cᵢ ⊔ Dᵢ)`, which must hold at
    /// every node of a tableau.
    pub fn internalized(&self) -> Concept {
        Concept::and(
            self.gcis
                .iter()
                .map(|(c, d)| Concept::implies(c.clone(), d.clone()))
                .collect::<Vec<_>>(),
        )
    }

    /// All super-role expressions of `role`, reflexively and transitively,
    /// closing inclusions under inversion.
    pub fn super_roles(&self, role: RoleExpr) -> BTreeSet<RoleExpr> {
        let mut out = BTreeSet::from([role]);
        loop {
            let mut grew = false;
            for (sub, sup) in &self.role_inclusions {
                for r in out.clone() {
                    if r == *sub && out.insert(*sup) {
                        grew = true;
                    }
                    if r == sub.inverse() && out.insert(sup.inverse()) {
                        grew = true;
                    }
                }
            }
            if !grew {
                return out;
            }
        }
    }

    /// Whether `sub ⊑* sup` holds in the role hierarchy.
    pub fn is_subrole(&self, sub: RoleExpr, sup: RoleExpr) -> bool {
        self.super_roles(sub).contains(&sup)
    }

    /// Whether a set of role expressions held by one edge violates a role
    /// disjointness declaration (considering the hierarchy upward closure).
    pub fn edge_violates_disjointness(&self, labels: &BTreeSet<RoleExpr>) -> bool {
        let mut closure: BTreeSet<RoleExpr> = BTreeSet::new();
        for l in labels {
            closure.extend(self.super_roles(*l));
        }
        for (a, b) in &self.disjoint_roles {
            let has = |r: RoleExpr| closure.contains(&r);
            // Disjointness is direction-sensitive but closed under joint
            // inversion: R ⊓ S = ∅ ⟺ R⁻ ⊓ S⁻ = ∅.
            if (has(*a) && has(*b)) || (has(a.inverse()) && has(b.inverse())) {
                return true;
            }
        }
        false
    }
}

/// Precomputed role-hierarchy tables, indexed by [`RoleExprId`].
///
/// `closure` stores, for every role expression `r`, the bitset of all
/// `s ⊒ r` (reflexively, transitively, closed under inversion: `r ⊑ s`
/// implies `r⁻ ⊑ s⁻`). An edge labelled `{r₁, …}` is an `S`-edge iff the
/// union of the labels' closure rows contains `S` — one bitset test where
/// the naive engine re-derived [`TBox::super_roles`] per neighbour probe.
#[derive(Clone, Debug)]
pub struct RoleClosure {
    /// Number of role expressions (`2 ·` role names).
    n_exprs: usize,
    /// `u64` words per bitset row.
    words: usize,
    /// `n_exprs` rows of `words` words each.
    closure: Vec<u64>,
    /// Disjoint pairs as `(a, b, a⁻, b⁻)` expression ids.
    disjoint: Vec<(RoleExprId, RoleExprId, RoleExprId, RoleExprId)>,
}

impl RoleClosure {
    fn build(tbox: &TBox) -> RoleClosure {
        let n_exprs = tbox.role_count() * 2;
        let words = n_exprs.div_ceil(64).max(1);
        let mut closure = vec![0u64; n_exprs * words];
        // Direct-inclusion adjacency, closed under inversion.
        let mut direct: Vec<Vec<RoleExprId>> = vec![Vec::new(); n_exprs];
        for (sub, sup) in &tbox.role_inclusions {
            direct[role_expr_id(*sub) as usize].push(role_expr_id(*sup));
            direct[role_expr_id(sub.inverse()) as usize].push(role_expr_id(sup.inverse()));
        }
        // Reflexive-transitive closure by DFS from each expression.
        let mut stack = Vec::new();
        for start in 0..n_exprs {
            let row = start * words;
            closure[row + start / 64] |= 1 << (start % 64);
            stack.push(start as RoleExprId);
            while let Some(r) = stack.pop() {
                for &sup in &direct[r as usize] {
                    let (w, b) = (row + sup as usize / 64, 1u64 << (sup % 64));
                    if closure[w] & b == 0 {
                        closure[w] |= b;
                        stack.push(sup);
                    }
                }
            }
        }
        let disjoint = tbox
            .disjoint_roles
            .iter()
            .map(|(a, b)| {
                (
                    role_expr_id(*a),
                    role_expr_id(*b),
                    role_expr_id(a.inverse()),
                    role_expr_id(b.inverse()),
                )
            })
            .collect();
        RoleClosure { n_exprs, words, closure, disjoint }
    }

    /// Words per bitset row (size edge-closure accumulators to this).
    pub fn words(&self) -> usize {
        self.words
    }

    /// Number of role expressions covered.
    pub fn n_exprs(&self) -> usize {
        self.n_exprs
    }

    /// The closure row of `r`: the bitset of all super-expressions of `r`.
    pub fn row(&self, r: RoleExprId) -> &[u64] {
        let start = r as usize * self.words;
        &self.closure[start..start + self.words]
    }

    /// Whether `sub ⊑* sup`.
    pub fn is_subrole(&self, sub: RoleExprId, sup: RoleExprId) -> bool {
        Self::contains(self.row(sub), sup)
    }

    /// Union `r`'s closure row into an accumulator bitset.
    pub fn union_row_into(&self, acc: &mut [u64], r: RoleExprId) {
        for (a, w) in acc.iter_mut().zip(self.row(r)) {
            *a |= w;
        }
    }

    /// Whether an accumulator bitset contains `r`.
    pub fn contains(acc: &[u64], r: RoleExprId) -> bool {
        acc[r as usize / 64] & (1 << (r % 64)) != 0
    }

    /// Whether an upward-closed edge bitset violates a role disjointness
    /// declaration (`R ⊓ S = ∅` is checked in both joint orientations,
    /// matching [`TBox::edge_violates_disjointness`]).
    pub fn edge_violates_disjointness(&self, acc: &[u64]) -> bool {
        self.disjoint.iter().any(|&(a, b, ai, bi)| {
            (Self::contains(acc, a) && Self::contains(acc, b))
                || (Self::contains(acc, ai) && Self::contains(acc, bi))
        })
    }

    /// Whether any disjointness declarations exist at all (lets the engine
    /// skip edge checks entirely on the common no-disjointness case).
    pub fn has_disjointness(&self) -> bool {
        !self.disjoint.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_deduplicates() {
        let mut t = TBox::new();
        let a1 = t.atom("A");
        let a2 = t.atom("A");
        assert_eq!(a1, a2);
        assert_eq!(t.atom_name(a1), "A");
        let r1 = t.role("R");
        let r2 = t.role("R");
        assert_eq!(r1, r2);
        assert_eq!(t.role_name(r1), "R");
        assert_eq!(t.atom_count(), 1);
    }

    #[test]
    fn internalization_shape() {
        let mut t = TBox::new();
        let a = t.atom("A");
        let b = t.atom("B");
        t.gci(Concept::Atomic(a), Concept::Atomic(b));
        let internal = t.internalized();
        assert_eq!(internal, Concept::Or(vec![Concept::NotAtomic(a), Concept::Atomic(b)]));
        assert_eq!(TBox::new().internalized(), Concept::Top);
    }

    #[test]
    fn role_hierarchy_closure() {
        let mut t = TBox::new();
        let r = t.role("R");
        let s = t.role("S");
        let q = t.role("Q");
        t.role_inclusion(RoleExpr::direct(r), RoleExpr::direct(s));
        t.role_inclusion(RoleExpr::direct(s), RoleExpr::direct(q));
        assert!(t.is_subrole(RoleExpr::direct(r), RoleExpr::direct(q)));
        assert!(t.is_subrole(RoleExpr::direct(r), RoleExpr::direct(r)));
        assert!(!t.is_subrole(RoleExpr::direct(q), RoleExpr::direct(r)));
        // Closed under inversion.
        assert!(t.is_subrole(RoleExpr::inv_of(r), RoleExpr::inv_of(q)));
    }

    #[test]
    fn inverse_oriented_inclusion() {
        // Rf ⊑ Rg⁻ (a cross-oriented predicate subset).
        let mut t = TBox::new();
        let f = t.role("F");
        let g = t.role("G");
        t.role_inclusion(RoleExpr::direct(f), RoleExpr::inv_of(g));
        assert!(t.is_subrole(RoleExpr::direct(f), RoleExpr::inv_of(g)));
        assert!(t.is_subrole(RoleExpr::inv_of(f), RoleExpr::direct(g)));
    }

    #[test]
    fn disjointness_detection() {
        let mut t = TBox::new();
        let f = t.role("F");
        let g = t.role("G");
        t.disjoint(RoleExpr::direct(f), RoleExpr::direct(g));
        let both: BTreeSet<RoleExpr> =
            [RoleExpr::direct(f), RoleExpr::direct(g)].into_iter().collect();
        assert!(t.edge_violates_disjointness(&both));
        let inv_both: BTreeSet<RoleExpr> =
            [RoleExpr::inv_of(f), RoleExpr::inv_of(g)].into_iter().collect();
        assert!(t.edge_violates_disjointness(&inv_both));
        let single: BTreeSet<RoleExpr> = [RoleExpr::direct(f)].into_iter().collect();
        assert!(!t.edge_violates_disjointness(&single));
    }

    #[test]
    fn closure_table_agrees_with_is_subrole() {
        let mut t = TBox::new();
        let r = t.role("R");
        let s = t.role("S");
        let q = t.role("Q");
        let f = t.role("F");
        let g = t.role("G");
        t.role_inclusion(RoleExpr::direct(r), RoleExpr::direct(s));
        t.role_inclusion(RoleExpr::direct(s), RoleExpr::direct(q));
        t.role_inclusion(RoleExpr::direct(f), RoleExpr::inv_of(g));
        let table = t.role_closure();
        let exprs: Vec<RoleExpr> = (0..t.role_count() as u32)
            .flat_map(|n| [RoleExpr::direct(n), RoleExpr::inv_of(n)])
            .collect();
        for &sub in &exprs {
            for &sup in &exprs {
                assert_eq!(
                    table.is_subrole(role_expr_id(sub), role_expr_id(sup)),
                    t.is_subrole(sub, sup),
                    "closure table disagrees on {sub} ⊑ {sup}"
                );
            }
        }
    }

    #[test]
    fn closure_table_disjointness_matches() {
        let mut t = TBox::new();
        let f = t.role("F");
        let g = t.role("G");
        let h = t.role("H");
        t.role_inclusion(RoleExpr::direct(h), RoleExpr::direct(f));
        t.disjoint(RoleExpr::direct(f), RoleExpr::direct(g));
        let table = t.role_closure();
        assert!(table.has_disjointness());
        // Edge {H, G}: upward closure holds F and G → violation.
        let mut acc = vec![0u64; table.words()];
        table.union_row_into(&mut acc, role_expr_id(RoleExpr::direct(h)));
        table.union_row_into(&mut acc, role_expr_id(RoleExpr::direct(g)));
        assert!(table.edge_violates_disjointness(&acc));
        // Edge {H} alone is fine.
        let mut acc = vec![0u64; table.words()];
        table.union_row_into(&mut acc, role_expr_id(RoleExpr::direct(h)));
        assert!(!table.edge_violates_disjointness(&acc));
        // Jointly inverted orientation also violates.
        let mut acc = vec![0u64; table.words()];
        table.union_row_into(&mut acc, role_expr_id(RoleExpr::inv_of(h)));
        table.union_row_into(&mut acc, role_expr_id(RoleExpr::inv_of(g)));
        assert!(table.edge_violates_disjointness(&acc));
    }

    #[test]
    fn disjointness_through_hierarchy() {
        // H ⊑ F, F disjoint G ⇒ an edge with {H, G} clashes.
        let mut t = TBox::new();
        let f = t.role("F");
        let g = t.role("G");
        let h = t.role("H");
        t.role_inclusion(RoleExpr::direct(h), RoleExpr::direct(f));
        t.disjoint(RoleExpr::direct(f), RoleExpr::direct(g));
        let labels: BTreeSet<RoleExpr> =
            [RoleExpr::direct(h), RoleExpr::direct(g)].into_iter().collect();
        assert!(t.edge_violates_disjointness(&labels));
    }
}
