//! TBoxes: concept axioms, role hierarchy and role disjointness.

use crate::concept::{AtomId, Concept, RoleExpr, RoleNameId};
use std::collections::BTreeSet;

/// A terminology: named atoms/roles, general concept inclusions, role
/// inclusions and role disjointness pairs.
#[derive(Clone, Debug, Default)]
pub struct TBox {
    atom_names: Vec<String>,
    role_names: Vec<String>,
    gcis: Vec<(Concept, Concept)>,
    /// Role inclusions `sub ⊑ sup` (over role expressions; closed under
    /// inversion on query).
    role_inclusions: Vec<(RoleExpr, RoleExpr)>,
    /// Pairs of disjoint role expressions.
    disjoint_roles: Vec<(RoleExpr, RoleExpr)>,
}

impl TBox {
    /// Empty TBox.
    pub fn new() -> TBox {
        TBox::default()
    }

    /// Intern an atomic concept name.
    pub fn atom(&mut self, name: impl Into<String>) -> AtomId {
        let name = name.into();
        if let Some(i) = self.atom_names.iter().position(|n| *n == name) {
            return i as AtomId;
        }
        self.atom_names.push(name);
        (self.atom_names.len() - 1) as AtomId
    }

    /// Intern a role name.
    pub fn role(&mut self, name: impl Into<String>) -> RoleNameId {
        let name = name.into();
        if let Some(i) = self.role_names.iter().position(|n| *n == name) {
            return i as RoleNameId;
        }
        self.role_names.push(name);
        (self.role_names.len() - 1) as RoleNameId
    }

    /// Resolve an atom's name.
    pub fn atom_name(&self, id: AtomId) -> &str {
        &self.atom_names[id as usize]
    }

    /// Resolve a role's name.
    pub fn role_name(&self, id: RoleNameId) -> &str {
        &self.role_names[id as usize]
    }

    /// Add a general concept inclusion `c ⊑ d`.
    pub fn gci(&mut self, c: Concept, d: Concept) {
        self.gcis.push((c, d));
    }

    /// Add a role inclusion `sub ⊑ sup` (its inverse form `sub⁻ ⊑ sup⁻` is
    /// implied automatically).
    pub fn role_inclusion(&mut self, sub: RoleExpr, sup: RoleExpr) {
        self.role_inclusions.push((sub, sup));
    }

    /// Declare two role expressions disjoint.
    pub fn disjoint(&mut self, a: RoleExpr, b: RoleExpr) {
        self.disjoint_roles.push((a, b));
    }

    /// The concept inclusions.
    pub fn gcis(&self) -> &[(Concept, Concept)] {
        &self.gcis
    }

    /// Number of interned atoms.
    pub fn atom_count(&self) -> usize {
        self.atom_names.len()
    }

    /// The internalized TBox concept `⊓ (¬Cᵢ ⊔ Dᵢ)`, which must hold at
    /// every node of a tableau.
    pub fn internalized(&self) -> Concept {
        Concept::and(
            self.gcis
                .iter()
                .map(|(c, d)| Concept::implies(c.clone(), d.clone()))
                .collect::<Vec<_>>(),
        )
    }

    /// All super-role expressions of `role`, reflexively and transitively,
    /// closing inclusions under inversion.
    pub fn super_roles(&self, role: RoleExpr) -> BTreeSet<RoleExpr> {
        let mut out = BTreeSet::from([role]);
        loop {
            let mut grew = false;
            for (sub, sup) in &self.role_inclusions {
                for r in out.clone() {
                    if r == *sub && out.insert(*sup) {
                        grew = true;
                    }
                    if r == sub.inverse() && out.insert(sup.inverse()) {
                        grew = true;
                    }
                }
            }
            if !grew {
                return out;
            }
        }
    }

    /// Whether `sub ⊑* sup` holds in the role hierarchy.
    pub fn is_subrole(&self, sub: RoleExpr, sup: RoleExpr) -> bool {
        self.super_roles(sub).contains(&sup)
    }

    /// Whether a set of role expressions held by one edge violates a role
    /// disjointness declaration (considering the hierarchy upward closure).
    pub fn edge_violates_disjointness(&self, labels: &BTreeSet<RoleExpr>) -> bool {
        let mut closure: BTreeSet<RoleExpr> = BTreeSet::new();
        for l in labels {
            closure.extend(self.super_roles(*l));
        }
        for (a, b) in &self.disjoint_roles {
            let has = |r: RoleExpr| closure.contains(&r);
            // Disjointness is direction-sensitive but closed under joint
            // inversion: R ⊓ S = ∅ ⟺ R⁻ ⊓ S⁻ = ∅.
            if (has(*a) && has(*b)) || (has(a.inverse()) && has(b.inverse())) {
                return true;
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_deduplicates() {
        let mut t = TBox::new();
        let a1 = t.atom("A");
        let a2 = t.atom("A");
        assert_eq!(a1, a2);
        assert_eq!(t.atom_name(a1), "A");
        let r1 = t.role("R");
        let r2 = t.role("R");
        assert_eq!(r1, r2);
        assert_eq!(t.role_name(r1), "R");
        assert_eq!(t.atom_count(), 1);
    }

    #[test]
    fn internalization_shape() {
        let mut t = TBox::new();
        let a = t.atom("A");
        let b = t.atom("B");
        t.gci(Concept::Atomic(a), Concept::Atomic(b));
        let internal = t.internalized();
        assert_eq!(
            internal,
            Concept::Or(vec![Concept::NotAtomic(a), Concept::Atomic(b)])
        );
        assert_eq!(TBox::new().internalized(), Concept::Top);
    }

    #[test]
    fn role_hierarchy_closure() {
        let mut t = TBox::new();
        let r = t.role("R");
        let s = t.role("S");
        let q = t.role("Q");
        t.role_inclusion(RoleExpr::direct(r), RoleExpr::direct(s));
        t.role_inclusion(RoleExpr::direct(s), RoleExpr::direct(q));
        assert!(t.is_subrole(RoleExpr::direct(r), RoleExpr::direct(q)));
        assert!(t.is_subrole(RoleExpr::direct(r), RoleExpr::direct(r)));
        assert!(!t.is_subrole(RoleExpr::direct(q), RoleExpr::direct(r)));
        // Closed under inversion.
        assert!(t.is_subrole(RoleExpr::inv_of(r), RoleExpr::inv_of(q)));
    }

    #[test]
    fn inverse_oriented_inclusion() {
        // Rf ⊑ Rg⁻ (a cross-oriented predicate subset).
        let mut t = TBox::new();
        let f = t.role("F");
        let g = t.role("G");
        t.role_inclusion(RoleExpr::direct(f), RoleExpr::inv_of(g));
        assert!(t.is_subrole(RoleExpr::direct(f), RoleExpr::inv_of(g)));
        assert!(t.is_subrole(RoleExpr::inv_of(f), RoleExpr::direct(g)));
    }

    #[test]
    fn disjointness_detection() {
        let mut t = TBox::new();
        let f = t.role("F");
        let g = t.role("G");
        t.disjoint(RoleExpr::direct(f), RoleExpr::direct(g));
        let both: BTreeSet<RoleExpr> =
            [RoleExpr::direct(f), RoleExpr::direct(g)].into_iter().collect();
        assert!(t.edge_violates_disjointness(&both));
        let inv_both: BTreeSet<RoleExpr> =
            [RoleExpr::inv_of(f), RoleExpr::inv_of(g)].into_iter().collect();
        assert!(t.edge_violates_disjointness(&inv_both));
        let single: BTreeSet<RoleExpr> = [RoleExpr::direct(f)].into_iter().collect();
        assert!(!t.edge_violates_disjointness(&single));
    }

    #[test]
    fn disjointness_through_hierarchy() {
        // H ⊑ F, F disjoint G ⇒ an edge with {H, G} clashes.
        let mut t = TBox::new();
        let f = t.role("F");
        let g = t.role("G");
        let h = t.role("H");
        t.role_inclusion(RoleExpr::direct(h), RoleExpr::direct(f));
        t.disjoint(RoleExpr::direct(f), RoleExpr::direct(g));
        let labels: BTreeSet<RoleExpr> =
            [RoleExpr::direct(h), RoleExpr::direct(g)].into_iter().collect();
        assert!(t.edge_violates_disjointness(&labels));
    }
}
