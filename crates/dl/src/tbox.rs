//! TBoxes: concept axioms, role hierarchy and role disjointness.
//!
//! Besides the axiom store, this module hosts [`RoleClosure`]: the
//! reflexive-transitive super-role relation (closed under inversion)
//! precomputed once per satisfiability check as per-role-expression
//! bitsets. The tableau's neighbour tests and edge-disjointness checks
//! index these bitsets instead of re-walking the inclusion list on every
//! call, which [`TBox::super_roles`] / [`TBox::is_subrole`] do.

use crate::arena::{role_expr_id, RoleExprId};
use crate::concept::{AtomId, Concept, RoleExpr, RoleNameId};
use parking_lot::Mutex;
use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;

/// Which axiom store a provenance id points into. Paired with a per-store
/// index in [`AxiomId`]; the per-store indices are append-stable, so an id
/// handed out at insertion keeps naming the same axiom across any sequence
/// of pure additions (destructive edits such as [`TBox::retract_gci`] may
/// shift them — exactly the edits that already invalidate every cache).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum AxiomKind {
    /// A general concept inclusion ([`TBox::gci`]).
    Gci,
    /// A role inclusion ([`TBox::role_inclusion`]).
    RoleInclusion,
    /// A role disjointness pair ([`TBox::disjoint`]).
    Disjointness,
}

/// Provenance id of one TBox axiom, assigned at insertion (the mutating
/// methods return it). Unsat cores ([`crate::explain`]) are sets of these,
/// and `orm_to_dl` keys its ORM-constraint provenance table on them.
///
/// ```
/// use orm_dl::concept::Concept;
/// use orm_dl::tbox::{AxiomId, AxiomKind, AxiomRef, TBox};
///
/// let mut tbox = TBox::new();
/// let a = Concept::Atomic(tbox.atom("A"));
/// let id: AxiomId = tbox.gci(a.clone(), Concept::Bottom);
/// assert_eq!(id, AxiomId { kind: AxiomKind::Gci, index: 0 });
/// match tbox.axiom(id) {
///     AxiomRef::Gci(c, d) => assert_eq!((c, d), (&a, &Concept::Bottom)),
///     other => panic!("expected a GCI, got {other:?}"),
/// }
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AxiomId {
    /// The store the axiom lives in.
    pub kind: AxiomKind,
    /// Position within that store (insertion order).
    pub index: u32,
}

impl std::fmt::Display for AxiomId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let tag = match self.kind {
            AxiomKind::Gci => "gci",
            AxiomKind::RoleInclusion => "ri",
            AxiomKind::Disjointness => "dj",
        };
        write!(f, "{tag}#{}", self.index)
    }
}

/// A borrowed view of one axiom, resolved from an [`AxiomId`] by
/// [`TBox::axiom`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AxiomRef<'a> {
    /// `C ⊑ D`.
    Gci(&'a Concept, &'a Concept),
    /// `sub ⊑ sup` over role expressions.
    RoleInclusion(RoleExpr, RoleExpr),
    /// `a` and `b` are disjoint.
    Disjointness(RoleExpr, RoleExpr),
}

/// The kind of one recorded TBox mutation, appended to the delta log by
/// every revision bump.
///
/// The first three kinds are *pure additions*: they shrink the TBox's
/// model class monotonically (every model of the new TBox is a model of
/// the old one), which is what lets [`crate::cache::SatCache`] keep
/// `Unsat` verdicts outright and revalidate `Sat` witnesses instead of
/// clearing wholesale. `Destructive` covers everything else.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EditKind {
    /// A general concept inclusion was appended ([`TBox::gci`]).
    Gci,
    /// A role inclusion was appended ([`TBox::role_inclusion`]).
    RoleInclusion,
    /// A role disjointness pair was appended ([`TBox::disjoint`]).
    Disjointness,
    /// A non-monotone edit (e.g. [`TBox::retract_gci`]); caches must
    /// discard everything proved before it.
    Destructive,
}

/// What happened to a TBox between an observed revision and now — the
/// question [`TBox::delta_since`] answers for revision-stamped caches.
#[derive(Clone, Copy, Debug)]
pub enum Delta<'a> {
    /// No mutation at all: every cached fact still stands.
    Unchanged,
    /// Only pure additions: the borrowed tails list exactly the axioms
    /// that arrived since the observed revision.
    Additions(AdditionDelta<'a>),
    /// At least one destructive edit (or an unrecognizable revision):
    /// nothing proved before can be trusted.
    Destructive,
}

/// The axioms added between two revisions of a purely-grown TBox
/// (borrowed tails of the axiom stores, in insertion order).
#[derive(Clone, Copy, Debug)]
pub struct AdditionDelta<'a> {
    /// GCIs `C ⊑ D` appended since the observed revision.
    pub gcis: &'a [(Concept, Concept)],
    /// Role inclusions appended since the observed revision.
    pub role_inclusions: &'a [(RoleExpr, RoleExpr)],
    /// Disjoint role pairs appended since the observed revision.
    pub disjoint_roles: &'a [(RoleExpr, RoleExpr)],
}

impl AdditionDelta<'_> {
    /// Whether the delta contains no axioms at all (revision churn from
    /// edits that cannot affect verdicts).
    pub fn is_empty(&self) -> bool {
        self.gcis.is_empty() && self.role_inclusions.is_empty() && self.disjoint_roles.is_empty()
    }
}

/// A terminology: named atoms/roles, general concept inclusions, role
/// inclusions and role disjointness pairs.
///
/// Every TBox carries a *cache stamp* ([`TBox::cache_stamp`]): a
/// process-unique identity assigned at construction plus a revision
/// counter bumped by every axiom mutation. Since PR 4 the revision is the
/// length of a **delta log** ([`TBox::delta_since`]) recording each
/// mutation's [`EditKind`], so a cache holding entries proved at revision
/// `r` can ask *what* happened since `r` — pure additions admit
/// entry-level retention ([`crate::cache::SatCache`]) where the flat
/// counter could only clear wholesale. Clones receive a fresh identity,
/// so two TBoxes that diverge after a clone can never alias each other's
/// cache lines. Interning a *fresh* atom or role name is deliberately
/// **not** a mutation: a name mentioned by no axiom cannot change any
/// verdict.
#[derive(Debug)]
pub struct TBox {
    atom_names: Vec<String>,
    /// Name → id index (interning used to be an `O(n)` scan per call).
    atom_index: HashMap<String, AtomId>,
    role_names: Vec<String>,
    role_index: HashMap<String, RoleNameId>,
    gcis: Vec<(Concept, Concept)>,
    /// Role inclusions `sub ⊑ sup` (over role expressions; closed under
    /// inversion on query).
    role_inclusions: Vec<(RoleExpr, RoleExpr)>,
    /// Pairs of disjoint role expressions.
    disjoint_roles: Vec<(RoleExpr, RoleExpr)>,
    /// Process-unique identity (fresh per construction and per clone).
    uid: u64,
    /// One entry per mutation; the revision is the log length.
    log: Vec<EditKind>,
    /// The internalized concept memoized per revision (rebuilt lazily
    /// when the log has grown; shared by `Arc` so repeated
    /// satisfiability calls stop cloning every GCI).
    internal_memo: Mutex<Option<(u64, Arc<Concept>)>>,
}

fn next_tbox_uid() -> u64 {
    use std::sync::atomic::{AtomicU64, Ordering};
    static NEXT: AtomicU64 = AtomicU64::new(1);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

impl Default for TBox {
    fn default() -> TBox {
        TBox {
            atom_names: Vec::new(),
            atom_index: HashMap::new(),
            role_names: Vec::new(),
            role_index: HashMap::new(),
            gcis: Vec::new(),
            role_inclusions: Vec::new(),
            disjoint_roles: Vec::new(),
            uid: next_tbox_uid(),
            log: Vec::new(),
            internal_memo: Mutex::new(None),
        }
    }
}

impl Clone for TBox {
    /// Clones carry the same axioms but a *fresh* cache identity: a clone
    /// is free to diverge from the original, so verdicts proved against
    /// one must never be replayed against the other.
    fn clone(&self) -> TBox {
        TBox {
            atom_names: self.atom_names.clone(),
            atom_index: self.atom_index.clone(),
            role_names: self.role_names.clone(),
            role_index: self.role_index.clone(),
            gcis: self.gcis.clone(),
            role_inclusions: self.role_inclusions.clone(),
            disjoint_roles: self.disjoint_roles.clone(),
            uid: next_tbox_uid(),
            log: self.log.clone(),
            internal_memo: Mutex::new(self.internal_memo.lock().clone()),
        }
    }
}

impl TBox {
    /// Empty TBox.
    pub fn new() -> TBox {
        TBox::default()
    }

    /// The `(identity, revision)` pair caches key their entries on: the
    /// identity is process-unique per TBox value (clones get their own)
    /// and the revision increments on every axiom mutation (the delta-log
    /// length — see [`TBox::delta_since`]).
    pub fn cache_stamp(&self) -> (u64, u64) {
        (self.uid, self.revision())
    }

    /// Current revision: the number of axiom mutations recorded in the
    /// delta log. Interning fresh names does not count.
    pub fn revision(&self) -> u64 {
        self.log.len() as u64
    }

    /// What happened between `revision` (a value previously read off
    /// [`TBox::cache_stamp`] for *this* TBox) and now.
    ///
    /// Returns [`Delta::Additions`] with the exact axiom tails when every
    /// intervening mutation was a pure addition, so a cache can retain
    /// monotone-safe entries and revalidate the rest against just the new
    /// axioms; any destructive entry in the window (or a revision this
    /// TBox never reached) degrades to [`Delta::Destructive`].
    pub fn delta_since(&self, revision: u64) -> Delta<'_> {
        let now = self.revision();
        if revision == now {
            return Delta::Unchanged;
        }
        if revision > now {
            return Delta::Destructive;
        }
        let tail = &self.log[revision as usize..];
        if tail.contains(&EditKind::Destructive) {
            return Delta::Destructive;
        }
        let count = |kind: EditKind| tail.iter().filter(|k| **k == kind).count();
        let (g, ri, dj) =
            (count(EditKind::Gci), count(EditKind::RoleInclusion), count(EditKind::Disjointness));
        Delta::Additions(AdditionDelta {
            gcis: &self.gcis[self.gcis.len() - g..],
            role_inclusions: &self.role_inclusions[self.role_inclusions.len() - ri..],
            disjoint_roles: &self.disjoint_roles[self.disjoint_roles.len() - dj..],
        })
    }

    /// Intern an atomic concept name.
    ///
    /// Interning a *fresh* name is not a mutation: an atom mentioned by
    /// no axiom cannot change any verdict, so the revision (and with it
    /// every cached verdict) is left alone.
    pub fn atom(&mut self, name: impl Into<String>) -> AtomId {
        let name = name.into();
        if let Some(&id) = self.atom_index.get(&name) {
            return id;
        }
        let id = self.atom_names.len() as AtomId;
        self.atom_index.insert(name.clone(), id);
        self.atom_names.push(name);
        id
    }

    /// Intern a role name (fresh names are not mutations, as with
    /// [`TBox::atom`]).
    pub fn role(&mut self, name: impl Into<String>) -> RoleNameId {
        let name = name.into();
        if let Some(&id) = self.role_index.get(&name) {
            return id;
        }
        let id = self.role_names.len() as RoleNameId;
        self.role_index.insert(name.clone(), id);
        self.role_names.push(name);
        id
    }

    /// Resolve an atom's name.
    pub fn atom_name(&self, id: AtomId) -> &str {
        &self.atom_names[id as usize]
    }

    /// Resolve a role's name.
    pub fn role_name(&self, id: RoleNameId) -> &str {
        &self.role_names[id as usize]
    }

    /// Add a general concept inclusion `c ⊑ d`, returning its provenance
    /// id.
    pub fn gci(&mut self, c: Concept, d: Concept) -> AxiomId {
        self.log.push(EditKind::Gci);
        self.gcis.push((c, d));
        AxiomId { kind: AxiomKind::Gci, index: (self.gcis.len() - 1) as u32 }
    }

    /// Add a role inclusion `sub ⊑ sup` (its inverse form `sub⁻ ⊑ sup⁻` is
    /// implied automatically), returning its provenance id.
    pub fn role_inclusion(&mut self, sub: RoleExpr, sup: RoleExpr) -> AxiomId {
        self.log.push(EditKind::RoleInclusion);
        self.role_inclusions.push((sub, sup));
        AxiomId { kind: AxiomKind::RoleInclusion, index: (self.role_inclusions.len() - 1) as u32 }
    }

    /// Declare two role expressions disjoint, returning the declaration's
    /// provenance id.
    pub fn disjoint(&mut self, a: RoleExpr, b: RoleExpr) -> AxiomId {
        self.log.push(EditKind::Disjointness);
        self.disjoint_roles.push((a, b));
        AxiomId { kind: AxiomKind::Disjointness, index: (self.disjoint_roles.len() - 1) as u32 }
    }

    /// Total number of axioms across all three stores.
    pub fn axiom_count(&self) -> usize {
        self.gcis.len() + self.role_inclusions.len() + self.disjoint_roles.len()
    }

    /// Every current axiom's provenance id, in the canonical *flat order*
    /// (all GCIs, then all role inclusions, then all disjointness pairs —
    /// the order [`TBox::axiom_id_at_flat`] indexes).
    pub fn axiom_ids(&self) -> impl Iterator<Item = AxiomId> + '_ {
        let gci = (0..self.gcis.len() as u32).map(|index| AxiomId { kind: AxiomKind::Gci, index });
        let ri = (0..self.role_inclusions.len() as u32)
            .map(|index| AxiomId { kind: AxiomKind::RoleInclusion, index });
        let dj = (0..self.disjoint_roles.len() as u32)
            .map(|index| AxiomId { kind: AxiomKind::Disjointness, index });
        gci.chain(ri).chain(dj)
    }

    /// Resolve a provenance id to its axiom.
    ///
    /// # Panics
    /// Panics when `id.index` is out of bounds for its store (an id minted
    /// by a different TBox, or orphaned by a destructive edit).
    pub fn axiom(&self, id: AxiomId) -> AxiomRef<'_> {
        match id.kind {
            AxiomKind::Gci => {
                let (c, d) = &self.gcis[id.index as usize];
                AxiomRef::Gci(c, d)
            }
            AxiomKind::RoleInclusion => {
                let (sub, sup) = self.role_inclusions[id.index as usize];
                AxiomRef::RoleInclusion(sub, sup)
            }
            AxiomKind::Disjointness => {
                let (a, b) = self.disjoint_roles[id.index as usize];
                AxiomRef::Disjointness(a, b)
            }
        }
    }

    /// The provenance id at position `flat` of the canonical flat order
    /// (see [`TBox::axiom_ids`]); `None` past the end. The tableau's
    /// axiom-usage bitmasks are indexed in this order.
    pub fn axiom_id_at_flat(&self, flat: usize) -> Option<AxiomId> {
        let (g, ri) = (self.gcis.len(), self.role_inclusions.len());
        if flat < g {
            Some(AxiomId { kind: AxiomKind::Gci, index: flat as u32 })
        } else if flat < g + ri {
            Some(AxiomId { kind: AxiomKind::RoleInclusion, index: (flat - g) as u32 })
        } else if flat < self.axiom_count() {
            Some(AxiomId { kind: AxiomKind::Disjointness, index: (flat - g - ri) as u32 })
        } else {
            None
        }
    }

    /// The delta-log position at which `id`'s axiom was recorded — the
    /// **edit recency** repair ranking sorts by (a larger position means a
    /// later edit). Reconstructed from the log: per-kind indices are
    /// insertion-ordered, so axiom `{kind, index}` was logged at the
    /// position of the `(index + 1)`-th entry of its matching
    /// [`EditKind`]. Exact on addition-only histories; after a
    /// destructive edit the surviving indices shift and the mapping is
    /// best-effort (it may attribute an axiom to an earlier, retracted
    /// sibling's log slot). `None` when the log holds too few entries of
    /// the kind (an id from a different TBox).
    pub fn axiom_recency(&self, id: AxiomId) -> Option<u64> {
        let wanted = match id.kind {
            AxiomKind::Gci => EditKind::Gci,
            AxiomKind::RoleInclusion => EditKind::RoleInclusion,
            AxiomKind::Disjointness => EditKind::Disjointness,
        };
        let mut seen = 0u32;
        for (pos, kind) in self.log.iter().enumerate() {
            if *kind == wanted {
                if seen == id.index {
                    return Some(pos as u64);
                }
                seen += 1;
            }
        }
        None
    }

    /// A new TBox with the same interned names (atom and role ids stay
    /// valid) but only the axioms named in `keep` — the sub-terminology a
    /// candidate unsat core induces ([`crate::explain`] proves cores
    /// against these). Duplicate ids contribute one axiom each time they
    /// appear; the new TBox has a fresh cache identity.
    pub fn restrict_to(&self, keep: &[AxiomId]) -> TBox {
        let mut out = TBox::new();
        for name in &self.atom_names {
            out.atom(name.clone());
        }
        for name in &self.role_names {
            out.role(name.clone());
        }
        for &id in keep {
            match self.axiom(id) {
                AxiomRef::Gci(c, d) => {
                    out.gci(c.clone(), d.clone());
                }
                AxiomRef::RoleInclusion(sub, sup) => {
                    out.role_inclusion(sub, sup);
                }
                AxiomRef::Disjointness(a, b) => {
                    out.disjoint(a, b);
                }
            }
        }
        out
    }

    /// Remove the GCI at `index` (an editor deleting a constraint) and
    /// return it. A **destructive** edit: unlike additions, removals grow
    /// the model class, so every cached verdict proved before it is
    /// discarded wholesale on the next query.
    ///
    /// # Panics
    /// Panics when `index` is out of bounds (before the log records
    /// anything, so a caught panic leaves no phantom destructive entry).
    pub fn retract_gci(&mut self, index: usize) -> (Concept, Concept) {
        let removed = self.gcis.remove(index);
        self.log.push(EditKind::Destructive);
        removed
    }

    /// The concept inclusions.
    pub fn gcis(&self) -> &[(Concept, Concept)] {
        &self.gcis
    }

    /// The role inclusions `sub ⊑ sup`, in insertion order.
    pub fn role_inclusion_axioms(&self) -> &[(RoleExpr, RoleExpr)] {
        &self.role_inclusions
    }

    /// The disjoint role pairs, in insertion order.
    pub fn disjoint_role_axioms(&self) -> &[(RoleExpr, RoleExpr)] {
        &self.disjoint_roles
    }

    /// Number of interned atoms.
    pub fn atom_count(&self) -> usize {
        self.atom_names.len()
    }

    /// Number of interned role names.
    pub fn role_count(&self) -> usize {
        self.role_names.len()
    }

    /// Precompute the sub-role closure and disjointness tables used by the
    /// tableau engine (one pass per satisfiability check, replacing the
    /// per-call [`TBox::is_subrole`] walks on the hot path).
    pub fn role_closure(&self) -> RoleClosure {
        RoleClosure::build(self)
    }

    /// The internalized TBox concept `⊓ (¬Cᵢ ⊔ Dᵢ)`, which must hold at
    /// every node of a tableau.
    ///
    /// Memoized per revision: the concept is built (one `implies` clone
    /// per GCI) the first time a revision is asked for and then shared by
    /// `Arc` — a classification battery of `O(n²)` satisfiability calls
    /// stops re-cloning every GCI per query. Any revision bump (read off
    /// the delta log) invalidates the memo lazily.
    pub fn internalized(&self) -> Arc<Concept> {
        let revision = self.revision();
        let mut memo = self.internal_memo.lock();
        if let Some((rev, concept)) = memo.as_ref() {
            if *rev == revision {
                return Arc::clone(concept);
            }
        }
        let built = Arc::new(Concept::and(
            self.gcis
                .iter()
                .map(|(c, d)| Concept::implies(c.clone(), d.clone()))
                .collect::<Vec<_>>(),
        ));
        *memo = Some((revision, Arc::clone(&built)));
        built
    }

    /// All super-role expressions of `role`, reflexively and transitively,
    /// closing inclusions under inversion (worklist fixed point — the
    /// previous version re-cloned the whole result set per inner pass).
    pub fn super_roles(&self, role: RoleExpr) -> BTreeSet<RoleExpr> {
        let mut out = BTreeSet::from([role]);
        let mut work = vec![role];
        while let Some(r) = work.pop() {
            for (sub, sup) in &self.role_inclusions {
                if r == *sub && out.insert(*sup) {
                    work.push(*sup);
                }
                if r == sub.inverse() && out.insert(sup.inverse()) {
                    work.push(sup.inverse());
                }
            }
        }
        out
    }

    /// Whether `sub ⊑* sup` holds in the role hierarchy.
    pub fn is_subrole(&self, sub: RoleExpr, sup: RoleExpr) -> bool {
        self.super_roles(sub).contains(&sup)
    }

    /// Whether a set of role expressions held by one edge violates a role
    /// disjointness declaration (considering the hierarchy upward closure).
    pub fn edge_violates_disjointness(&self, labels: &BTreeSet<RoleExpr>) -> bool {
        let mut closure: BTreeSet<RoleExpr> = BTreeSet::new();
        for l in labels {
            closure.extend(self.super_roles(*l));
        }
        for (a, b) in &self.disjoint_roles {
            let has = |r: RoleExpr| closure.contains(&r);
            // Disjointness is direction-sensitive but closed under joint
            // inversion: R ⊓ S = ∅ ⟺ R⁻ ⊓ S⁻ = ∅.
            if (has(*a) && has(*b)) || (has(a.inverse()) && has(b.inverse())) {
                return true;
            }
        }
        false
    }
}

/// Precomputed role-hierarchy tables, indexed by [`RoleExprId`].
///
/// `closure` stores, for every role expression `r`, the bitset of all
/// `s ⊒ r` (reflexively, transitively, closed under inversion: `r ⊑ s`
/// implies `r⁻ ⊑ s⁻`). An edge labelled `{r₁, …}` is an `S`-edge iff the
/// union of the labels' closure rows contains `S` — one bitset test where
/// the naive engine re-derived [`TBox::super_roles`] per neighbour probe.
#[derive(Clone, Debug)]
pub struct RoleClosure {
    /// Number of role expressions (`2 ·` role names).
    n_exprs: usize,
    /// `u64` words per bitset row.
    words: usize,
    /// `n_exprs` rows of `words` words each.
    closure: Vec<u64>,
    /// Disjoint pairs as `(a, b, a⁻, b⁻)` expression ids.
    disjoint: Vec<(RoleExprId, RoleExprId, RoleExprId, RoleExprId)>,
}

impl RoleClosure {
    fn build(tbox: &TBox) -> RoleClosure {
        let n_exprs = tbox.role_count() * 2;
        let words = n_exprs.div_ceil(64).max(1);
        let mut closure = vec![0u64; n_exprs * words];
        // Direct-inclusion adjacency, closed under inversion.
        let mut direct: Vec<Vec<RoleExprId>> = vec![Vec::new(); n_exprs];
        for (sub, sup) in &tbox.role_inclusions {
            direct[role_expr_id(*sub) as usize].push(role_expr_id(*sup));
            direct[role_expr_id(sub.inverse()) as usize].push(role_expr_id(sup.inverse()));
        }
        // Reflexive-transitive closure by DFS from each expression.
        let mut stack = Vec::new();
        for start in 0..n_exprs {
            let row = start * words;
            closure[row + start / 64] |= 1 << (start % 64);
            stack.push(start as RoleExprId);
            while let Some(r) = stack.pop() {
                for &sup in &direct[r as usize] {
                    let (w, b) = (row + sup as usize / 64, 1u64 << (sup % 64));
                    if closure[w] & b == 0 {
                        closure[w] |= b;
                        stack.push(sup);
                    }
                }
            }
        }
        let disjoint = tbox
            .disjoint_roles
            .iter()
            .map(|(a, b)| {
                (
                    role_expr_id(*a),
                    role_expr_id(*b),
                    role_expr_id(a.inverse()),
                    role_expr_id(b.inverse()),
                )
            })
            .collect();
        RoleClosure { n_exprs, words, closure, disjoint }
    }

    /// Words per bitset row (size edge-closure accumulators to this).
    pub fn words(&self) -> usize {
        self.words
    }

    /// Number of role expressions covered.
    pub fn n_exprs(&self) -> usize {
        self.n_exprs
    }

    /// The closure row of `r`: the bitset of all super-expressions of `r`.
    pub fn row(&self, r: RoleExprId) -> &[u64] {
        let start = r as usize * self.words;
        &self.closure[start..start + self.words]
    }

    /// Whether `sub ⊑* sup`.
    pub fn is_subrole(&self, sub: RoleExprId, sup: RoleExprId) -> bool {
        Self::contains(self.row(sub), sup)
    }

    /// Union `r`'s closure row into an accumulator bitset.
    pub fn union_row_into(&self, acc: &mut [u64], r: RoleExprId) {
        for (a, w) in acc.iter_mut().zip(self.row(r)) {
            *a |= w;
        }
    }

    /// Whether an accumulator bitset contains `r`.
    pub fn contains(acc: &[u64], r: RoleExprId) -> bool {
        acc[r as usize / 64] & (1 << (r % 64)) != 0
    }

    /// Whether an upward-closed edge bitset violates a role disjointness
    /// declaration (`R ⊓ S = ∅` is checked in both joint orientations,
    /// matching [`TBox::edge_violates_disjointness`]).
    pub fn edge_violates_disjointness(&self, acc: &[u64]) -> bool {
        self.disjoint.iter().any(|&(a, b, ai, bi)| {
            (Self::contains(acc, a) && Self::contains(acc, b))
                || (Self::contains(acc, ai) && Self::contains(acc, bi))
        })
    }

    /// Whether any disjointness declarations exist at all (lets the engine
    /// skip edge checks entirely on the common no-disjointness case).
    pub fn has_disjointness(&self) -> bool {
        !self.disjoint.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_deduplicates() {
        let mut t = TBox::new();
        let a1 = t.atom("A");
        let a2 = t.atom("A");
        assert_eq!(a1, a2);
        assert_eq!(t.atom_name(a1), "A");
        let r1 = t.role("R");
        let r2 = t.role("R");
        assert_eq!(r1, r2);
        assert_eq!(t.role_name(r1), "R");
        assert_eq!(t.atom_count(), 1);
    }

    #[test]
    fn internalization_shape() {
        let mut t = TBox::new();
        let a = t.atom("A");
        let b = t.atom("B");
        t.gci(Concept::Atomic(a), Concept::Atomic(b));
        let internal = t.internalized();
        assert_eq!(*internal, Concept::Or(vec![Concept::NotAtomic(a), Concept::Atomic(b)]));
        assert_eq!(*TBox::new().internalized(), Concept::Top);
    }

    /// The memo hands out one shared allocation per revision and rebuilds
    /// exactly when the delta log grows.
    #[test]
    fn internalized_is_memoized_per_revision() {
        let mut t = TBox::new();
        let a = Concept::Atomic(t.atom("A"));
        let b = Concept::Atomic(t.atom("B"));
        t.gci(a.clone(), b.clone());
        let first = t.internalized();
        assert!(Arc::ptr_eq(&first, &t.internalized()), "same revision rebuilt the concept");
        // A fresh name is not a mutation: the memo survives.
        t.atom("Fresh");
        assert!(Arc::ptr_eq(&first, &t.internalized()), "name interning dropped the memo");
        // An axiom is: the memo is rebuilt with the new GCI folded in.
        t.gci(b.clone(), a.clone());
        let second = t.internalized();
        assert!(!Arc::ptr_eq(&first, &second));
        assert_eq!(
            *second,
            Concept::and([Concept::implies(a.clone(), b.clone()), Concept::implies(b, a)])
        );
    }

    #[test]
    fn fresh_names_do_not_bump_revision() {
        let mut t = TBox::new();
        let r0 = t.revision();
        t.atom("A");
        t.role("R");
        assert_eq!(t.revision(), r0, "fresh names must not invalidate caches");
        // Re-interning is also free.
        t.atom("A");
        assert_eq!(t.revision(), r0);
        t.gci(Concept::Atomic(0), Concept::Top);
        assert_eq!(t.revision(), r0 + 1);
    }

    #[test]
    fn delta_since_reports_addition_tails() {
        let mut t = TBox::new();
        let a = Concept::Atomic(t.atom("A"));
        let b = Concept::Atomic(t.atom("B"));
        let r = t.role("R");
        t.gci(a.clone(), b.clone());
        let observed = t.revision();
        assert!(matches!(t.delta_since(observed), Delta::Unchanged));

        t.gci(b.clone(), a.clone());
        t.role_inclusion(RoleExpr::direct(r), RoleExpr::inv_of(r));
        t.disjoint(RoleExpr::direct(r), RoleExpr::inv_of(r));
        match t.delta_since(observed) {
            Delta::Additions(delta) => {
                assert_eq!(delta.gcis, &[(b.clone(), a.clone())]);
                assert_eq!(delta.role_inclusions.len(), 1);
                assert_eq!(delta.disjoint_roles.len(), 1);
                assert!(!delta.is_empty());
            }
            other => panic!("expected additions, got {other:?}"),
        }
        // From revision 0 the tails cover everything.
        match t.delta_since(0) {
            Delta::Additions(delta) => assert_eq!(delta.gcis.len(), 2),
            other => panic!("expected additions, got {other:?}"),
        }
    }

    #[test]
    fn delta_since_degrades_on_destruction() {
        let mut t = TBox::new();
        let a = Concept::Atomic(t.atom("A"));
        t.gci(a.clone(), Concept::Bottom);
        let observed = t.revision();
        let retracted = t.retract_gci(0);
        assert_eq!(retracted.0, a);
        assert!(t.gcis().is_empty());
        assert!(matches!(t.delta_since(observed), Delta::Destructive));
        // Additions after the destruction do not launder the window …
        t.gci(a.clone(), Concept::Top);
        assert!(matches!(t.delta_since(observed), Delta::Destructive));
        // … but a window opened after it is clean again.
        assert!(matches!(t.delta_since(t.revision()), Delta::Unchanged));
        // A revision from "the future" (e.g. a different TBox's stamp) is
        // never trusted.
        assert!(matches!(t.delta_since(t.revision() + 7), Delta::Destructive));
    }

    #[test]
    fn axiom_ids_resolve_and_flat_order_is_stable() {
        let mut t = TBox::new();
        let a = Concept::Atomic(t.atom("A"));
        let b = Concept::Atomic(t.atom("B"));
        let r = RoleExpr::direct(t.role("R"));
        let s = RoleExpr::direct(t.role("S"));
        let g0 = t.gci(a.clone(), b.clone());
        let ri0 = t.role_inclusion(r, s);
        let dj0 = t.disjoint(r, s);
        let g1 = t.gci(b.clone(), a.clone());
        assert_eq!(t.axiom_count(), 4);
        assert_eq!(t.axiom(g0), AxiomRef::Gci(&a, &b));
        assert_eq!(t.axiom(g1), AxiomRef::Gci(&b, &a));
        assert_eq!(t.axiom(ri0), AxiomRef::RoleInclusion(r, s));
        assert_eq!(t.axiom(dj0), AxiomRef::Disjointness(r, s));
        // Flat order: GCIs, role inclusions, disjointness — and the
        // iterator agrees with the positional lookup.
        let flat: Vec<AxiomId> = t.axiom_ids().collect();
        assert_eq!(flat, vec![g0, g1, ri0, dj0]);
        for (i, id) in flat.iter().enumerate() {
            assert_eq!(t.axiom_id_at_flat(i), Some(*id));
        }
        assert_eq!(t.axiom_id_at_flat(4), None);
        // Ids are append-stable: g0 still names A ⊑ B after more growth.
        t.gci(a.clone(), Concept::Top);
        assert_eq!(t.axiom(g0), AxiomRef::Gci(&a, &b));
        assert_eq!(format!("{g0} {ri0} {dj0}"), "gci#0 ri#0 dj#0");
    }

    #[test]
    fn restrict_to_preserves_interning() {
        let mut t = TBox::new();
        let a = Concept::Atomic(t.atom("A"));
        let b = Concept::Atomic(t.atom("B"));
        let r = RoleExpr::direct(t.role("R"));
        let g0 = t.gci(a.clone(), b.clone());
        let g1 = t.gci(b.clone(), Concept::Bottom);
        let dj = t.disjoint(r, r);
        let sub = t.restrict_to(&[g1, dj]);
        // Names (and with them every AtomId/RoleNameId baked into the kept
        // concepts) carry over unchanged.
        assert_eq!(sub.atom_count(), t.atom_count());
        assert_eq!(sub.atom_name(0), "A");
        assert_eq!(sub.role_name(0), "R");
        assert_eq!(sub.gcis(), &[(b.clone(), Concept::Bottom)]);
        assert_eq!(sub.axiom_count(), 2);
        // The restriction is a fresh TBox value: fresh cache identity.
        assert_ne!(sub.cache_stamp().0, t.cache_stamp().0);
        let _ = g0;
    }

    #[test]
    fn role_hierarchy_closure() {
        let mut t = TBox::new();
        let r = t.role("R");
        let s = t.role("S");
        let q = t.role("Q");
        t.role_inclusion(RoleExpr::direct(r), RoleExpr::direct(s));
        t.role_inclusion(RoleExpr::direct(s), RoleExpr::direct(q));
        assert!(t.is_subrole(RoleExpr::direct(r), RoleExpr::direct(q)));
        assert!(t.is_subrole(RoleExpr::direct(r), RoleExpr::direct(r)));
        assert!(!t.is_subrole(RoleExpr::direct(q), RoleExpr::direct(r)));
        // Closed under inversion.
        assert!(t.is_subrole(RoleExpr::inv_of(r), RoleExpr::inv_of(q)));
    }

    #[test]
    fn inverse_oriented_inclusion() {
        // Rf ⊑ Rg⁻ (a cross-oriented predicate subset).
        let mut t = TBox::new();
        let f = t.role("F");
        let g = t.role("G");
        t.role_inclusion(RoleExpr::direct(f), RoleExpr::inv_of(g));
        assert!(t.is_subrole(RoleExpr::direct(f), RoleExpr::inv_of(g)));
        assert!(t.is_subrole(RoleExpr::inv_of(f), RoleExpr::direct(g)));
    }

    #[test]
    fn disjointness_detection() {
        let mut t = TBox::new();
        let f = t.role("F");
        let g = t.role("G");
        t.disjoint(RoleExpr::direct(f), RoleExpr::direct(g));
        let both: BTreeSet<RoleExpr> =
            [RoleExpr::direct(f), RoleExpr::direct(g)].into_iter().collect();
        assert!(t.edge_violates_disjointness(&both));
        let inv_both: BTreeSet<RoleExpr> =
            [RoleExpr::inv_of(f), RoleExpr::inv_of(g)].into_iter().collect();
        assert!(t.edge_violates_disjointness(&inv_both));
        let single: BTreeSet<RoleExpr> = [RoleExpr::direct(f)].into_iter().collect();
        assert!(!t.edge_violates_disjointness(&single));
    }

    #[test]
    fn closure_table_agrees_with_is_subrole() {
        let mut t = TBox::new();
        let r = t.role("R");
        let s = t.role("S");
        let q = t.role("Q");
        let f = t.role("F");
        let g = t.role("G");
        t.role_inclusion(RoleExpr::direct(r), RoleExpr::direct(s));
        t.role_inclusion(RoleExpr::direct(s), RoleExpr::direct(q));
        t.role_inclusion(RoleExpr::direct(f), RoleExpr::inv_of(g));
        let table = t.role_closure();
        let exprs: Vec<RoleExpr> = (0..t.role_count() as u32)
            .flat_map(|n| [RoleExpr::direct(n), RoleExpr::inv_of(n)])
            .collect();
        for &sub in &exprs {
            for &sup in &exprs {
                assert_eq!(
                    table.is_subrole(role_expr_id(sub), role_expr_id(sup)),
                    t.is_subrole(sub, sup),
                    "closure table disagrees on {sub} ⊑ {sup}"
                );
            }
        }
    }

    #[test]
    fn closure_table_disjointness_matches() {
        let mut t = TBox::new();
        let f = t.role("F");
        let g = t.role("G");
        let h = t.role("H");
        t.role_inclusion(RoleExpr::direct(h), RoleExpr::direct(f));
        t.disjoint(RoleExpr::direct(f), RoleExpr::direct(g));
        let table = t.role_closure();
        assert!(table.has_disjointness());
        // Edge {H, G}: upward closure holds F and G → violation.
        let mut acc = vec![0u64; table.words()];
        table.union_row_into(&mut acc, role_expr_id(RoleExpr::direct(h)));
        table.union_row_into(&mut acc, role_expr_id(RoleExpr::direct(g)));
        assert!(table.edge_violates_disjointness(&acc));
        // Edge {H} alone is fine.
        let mut acc = vec![0u64; table.words()];
        table.union_row_into(&mut acc, role_expr_id(RoleExpr::direct(h)));
        assert!(!table.edge_violates_disjointness(&acc));
        // Jointly inverted orientation also violates.
        let mut acc = vec![0u64; table.words()];
        table.union_row_into(&mut acc, role_expr_id(RoleExpr::inv_of(h)));
        table.union_row_into(&mut acc, role_expr_id(RoleExpr::inv_of(g)));
        assert!(table.edge_violates_disjointness(&acc));
    }

    #[test]
    fn disjointness_through_hierarchy() {
        // H ⊑ F, F disjoint G ⇒ an edge with {H, G} clashes.
        let mut t = TBox::new();
        let f = t.role("F");
        let g = t.role("G");
        let h = t.role("H");
        t.role_inclusion(RoleExpr::direct(h), RoleExpr::direct(f));
        t.disjoint(RoleExpr::direct(f), RoleExpr::direct(g));
        let labels: BTreeSet<RoleExpr> =
            [RoleExpr::direct(h), RoleExpr::direct(g)].into_iter().collect();
        assert!(t.edge_violates_disjointness(&labels));
    }
}
